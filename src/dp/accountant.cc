#include "dp/accountant.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

struct DeltaContext {
  double rho;
  double eps;
};

// log delta(alpha) from Proposition 4, parameterized as alpha = 1 + e^u so
// the search domain is unconstrained and the function stays unimodal.
double LogDeltaOfU(double u, const void* ctx_ptr) {
  const auto* ctx = static_cast<const DeltaContext*>(ctx_ptr);
  double alpha = 1.0 + std::exp(u);
  double log_delta = (alpha - 1.0) * (alpha * ctx->rho - ctx->eps) -
                     std::log(alpha - 1.0) +
                     alpha * std::log1p(-1.0 / alpha);
  return log_delta;
}

}  // namespace

double CdpDelta(double rho, double eps) {
  AIM_CHECK_GE(rho, 0.0);
  AIM_CHECK_GE(eps, 0.0);
  if (rho == 0.0) return 0.0;
  DeltaContext ctx{rho, eps};
  double best_u = GoldenSectionMinimize(&LogDeltaOfU, &ctx, -40.0, 40.0, 200);
  double log_delta = LogDeltaOfU(best_u, &ctx);
  double delta = std::exp(log_delta);
  return std::min(delta, 1.0);
}

double CdpEps(double rho, double delta) {
  AIM_CHECK_GE(rho, 0.0);
  AIM_CHECK_GT(delta, 0.0);
  if (rho == 0.0) return 0.0;
  // CdpDelta is decreasing in eps. Find an upper bracket, then bisect.
  double lo = 0.0;
  double hi = rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta)) + 1.0;
  while (CdpDelta(rho, hi) > delta) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (CdpDelta(rho, mid) > delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double CdpRho(double eps, double delta) {
  AIM_CHECK_GE(eps, 0.0);
  AIM_CHECK_GT(delta, 0.0);
  // CdpDelta is increasing in rho. Largest rho with delta(rho, eps) <= delta.
  double lo = 0.0;
  double hi = 1.0;
  while (CdpDelta(hi, eps) < delta) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (CdpDelta(mid, eps) <= delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double GaussianRho(double sigma) {
  AIM_CHECK_GT(sigma, 0.0);
  return 1.0 / (2.0 * sigma * sigma);
}

double ExponentialRho(double eps) {
  AIM_CHECK_GE(eps, 0.0);
  return eps * eps / 8.0;
}

PrivacyFilter::PrivacyFilter(double rho_budget) : budget_(rho_budget) {
  AIM_CHECK_GE(rho_budget, 0.0);
}

bool PrivacyFilter::CanSpend(double rho) const {
  AIM_CHECK_GE(rho, 0.0);
  return spent_ + rho <= budget_ * (1.0 + 1e-9) + 1e-12;
}

void PrivacyFilter::Spend(double rho) {
  AIM_CHECK(CanSpend(rho)) << "privacy filter overspend: spent=" << spent_
                           << " rho=" << rho << " budget=" << budget_;
  spent_ += rho;
}

}  // namespace aim
