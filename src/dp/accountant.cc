#include "dp/accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

struct DeltaContext {
  double rho;
  double eps;
};

// log delta(alpha) from Proposition 4, parameterized as alpha = 1 + e^u so
// the search domain is unconstrained and the function stays unimodal.
double LogDeltaOfU(double u, const void* ctx_ptr) {
  const auto* ctx = static_cast<const DeltaContext*>(ctx_ptr);
  double alpha = 1.0 + std::exp(u);
  double log_delta = (alpha - 1.0) * (alpha * ctx->rho - ctx->eps) -
                     std::log(alpha - 1.0) +
                     alpha * std::log1p(-1.0 / alpha);
  return log_delta;
}

}  // namespace

double CdpDelta(double rho, double eps) {
  AIM_CHECK_GE(rho, 0.0);
  AIM_CHECK_GE(eps, 0.0);
  if (rho == 0.0) return 0.0;
  DeltaContext ctx{rho, eps};
  // The minimizing alpha sits near (rho + eps) / (2 rho) (the stationary
  // point of the quadratic term), i.e. u* ~= log((eps - rho) / (2 rho)).
  // A fixed u-bracket of [-40, 40] caps alpha at 1 + e^40 ~= 2.4e17: for
  // very small rho the true minimizer lies beyond it and the truncated
  // minimum silently OVERestimates delta (and so every epsilon derived
  // from it — the audit's reference claim included). Widen the upper edge
  // to cover the stationary point, capped so 1 + e^u stays finite.
  double u_hi = 40.0;
  if (eps > rho) {
    const double u_star = std::log((eps - rho) / (2.0 * rho));
    if (std::isfinite(u_star)) u_hi = std::max(u_hi, u_star + 5.0);
    u_hi = std::min(u_hi, 700.0);
  }
  double best_u = GoldenSectionMinimize(&LogDeltaOfU, &ctx, -40.0, u_hi, 200);
  double log_delta = LogDeltaOfU(best_u, &ctx);
  double delta = std::exp(log_delta);
  return std::min(delta, 1.0);
}

double CdpEps(double rho, double delta) {
  AIM_CHECK_GE(rho, 0.0);
  AIM_CHECK_GT(delta, 0.0);
  AIM_CHECK(std::isfinite(rho)) << "CdpEps: rho must be finite";
  if (rho == 0.0) return 0.0;
  // Any mechanism is (0, delta)-DP once delta >= 1, and a NaN delta would
  // silently disable the bracket test below, so both are handled up front
  // (NaN fails the CHECK_GT above).
  if (delta >= 1.0) return 0.0;
  // CdpDelta is decreasing in eps. Find an upper bracket, then bisect. The
  // standard conversion eps = rho + 2*sqrt(rho*log(1/delta)) is already an
  // upper bound, so the doubling loop only compensates for numerical slack
  // in the Proposition-4 minimization; it must terminate long before the
  // bound below, and `hi` must stay finite (an unbounded loop can push `hi`
  // to inf for extreme rho/delta, poisoning the bisection).
  double lo = 0.0;
  double hi = rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta)) + 1.0;
  for (int doublings = 0; CdpDelta(rho, hi) > delta; ++doublings) {
    AIM_CHECK_LT(doublings, 200)
        << "CdpEps: bracket search failed (rho=" << rho
        << ", delta=" << delta << ")";
    hi *= 2.0;
    AIM_CHECK(std::isfinite(hi))
        << "CdpEps: bracket overflow (rho=" << rho << ", delta=" << delta
        << ")";
  }
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (CdpDelta(rho, mid) > delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double CdpRho(double eps, double delta) {
  AIM_CHECK_GE(eps, 0.0);
  AIM_CHECK_GT(delta, 0.0);
  // delta >= 1 puts no constraint on the mechanism: CdpDelta is clamped to
  // 1, so the bracket loop below would chase an unreachable (or barely
  // reachable) target forever. Callers must ask for a real delta.
  AIM_CHECK_LT(delta, 1.0) << "CdpRho: delta must be in (0, 1)";
  AIM_CHECK(std::isfinite(eps)) << "CdpRho: eps must be finite";
  // CdpDelta is increasing in rho. Largest rho with delta(rho, eps) <= delta.
  double lo = 0.0;
  double hi = 1.0;
  for (int doublings = 0; CdpDelta(hi, eps) < delta; ++doublings) {
    AIM_CHECK_LT(doublings, 200)
        << "CdpRho: bracket search failed (eps=" << eps
        << ", delta=" << delta << ")";
    hi *= 2.0;
    AIM_CHECK(std::isfinite(hi))
        << "CdpRho: bracket overflow (eps=" << eps << ", delta=" << delta
        << ")";
  }
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (CdpDelta(mid, eps) <= delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double GaussianRho(double sigma) {
  AIM_CHECK_GT(sigma, 0.0);
  return 1.0 / (2.0 * sigma * sigma);
}

double ExponentialRho(double eps) {
  AIM_CHECK_GE(eps, 0.0);
  return eps * eps / 8.0;
}

PrivacyFilter::PrivacyFilter(double rho_budget) : budget_(rho_budget) {
  AIM_CHECK_GE(rho_budget, 0.0);
}

bool PrivacyFilter::CanSpend(double rho) const {
  AIM_CHECK_GE(rho, 0.0);
  return spent_ + rho <= budget_ * (1.0 + 1e-9) + 1e-12;
}

void PrivacyFilter::Spend(double rho) {
  AIM_CHECK(CanSpend(rho)) << "privacy filter overspend: spent=" << spent_
                           << " rho=" << rho << " budget=" << budget_;
  spent_ += rho;
  // The CanSpend tolerance admits a final spend that overshoots the budget
  // by floating-point dust; without this clamp the run would end with
  // spent_ > budget_ and report a rho_used the accountant cannot honor.
  // The clamp lands the ledger on the exact budget instead.
  if (spent_ > budget_) spent_ = budget_;
  ledger_.push_back(spent_);
}

Status PrivacyFilter::RestoreSpent(double spent) {
  if (!(spent >= 0.0)) {
    return InvalidArgumentError("privacy filter: cannot restore negative "
                                "spent rho " +
                                std::to_string(spent));
  }
  if (spent > budget_ * (1.0 + 1e-9) + 1e-12) {
    return FailedPreconditionError(
        "privacy filter: restored ledger " + std::to_string(spent) +
        " exceeds budget " + std::to_string(budget_));
  }
  spent_ = std::min(spent, budget_);
  ledger_.assign(1, spent_);
  return Status::Ok();
}

double PrivacyFilter::Finish() const {
  AIM_CHECK_LE(spent_, budget_)
      << "privacy filter finished overspent: spent=" << spent_
      << " budget=" << budget_;
  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    // Per-run gauges are looked up (not statically cached) so a job label
    // scope splits them per job: concurrent aimd jobs must not clobber each
    // other's spent/budget values. Finish runs once per mechanism run, so
    // the registry mutex here is never hot.
    registry.gauge(ScopedMetricName("dp.filter.spent")).Set(spent_);
    registry.gauge(ScopedMetricName("dp.filter.budget")).Set(budget_);
    static Counter& finish_counter = registry.counter("dp.filter.finishes");
    finish_counter.Add(1);
  }
  return spent_;
}

}  // namespace aim
