// Building-block randomized mechanisms: Gaussian noise addition
// (Definition 5) and the exponential mechanism (Definition 6).

#ifndef AIM_DP_MECHANISMS_H_
#define AIM_DP_MECHANISMS_H_

#include <vector>

#include "util/rng.h"

namespace aim {

// Adds iid N(0, sigma^2) noise to every entry (Gaussian mechanism with L2
// sensitivity folded into sigma). Costs GaussianRho(sigma) zCDP when the
// underlying query has L2 sensitivity 1.
std::vector<double> AddGaussianNoise(const std::vector<double>& values,
                                     double sigma, Rng& rng);

// Exponential mechanism: samples index i with probability proportional to
// exp(eps * scores[i] / (2 * sensitivity)), exactly, via the Gumbel-max
// trick. Costs ExponentialRho(eps) zCDP. With eps = +inf this degenerates to
// argmax. `sensitivity` must be positive.
int ExponentialMechanism(const std::vector<double>& scores, double eps,
                         double sensitivity, Rng& rng);

// Report-noisy-max with Gumbel noise of the given scale added to each score
// (equivalent to the exponential mechanism with eps/(2*sensitivity) =
// 1/scale). Exposed for mechanisms (RAP) specified in this form.
// A slate where every score is -inf (every candidate filtered out) selects
// uniformly at random — the exponential mechanism's conditional
// distribution over such a slate — instead of degenerating to index 0.
int NoisyMax(const std::vector<double>& scores, double gumbel_scale, Rng& rng);

// Generalized exponential mechanism (Raskhodnikova & Smith [39]) for
// quality scores with heterogeneous sensitivities: candidate i's score is
// replaced by the sensitivity-normalized margin
//   s_i = min_{j != i} (scores[i] - scores[j]) / (sensitivities[i] +
//   sensitivities[j]),
// which has sensitivity 1, and the standard exponential mechanism is run on
// s with parameter eps. Costs ExponentialRho(eps) zCDP. This is the
// alternative the AIM paper mentions to using Delta_t = max_r w_r.
// All sensitivities must be positive. O(k) via a top-2 scan when all
// sensitivities are equal and all scores finite (the common case); exact
// O(k^2) fallback otherwise. Both paths select identically.
int GeneralizedExponentialMechanism(const std::vector<double>& scores,
                                    const std::vector<double>& sensitivities,
                                    double eps, Rng& rng);

// Laplace(scale) sample via inverse-CDF transform of u in [-1/2, 1/2).
// Defined for the closed boundary u = -1/2 (which Rng::Uniform() can
// produce): the log argument is clamped away from 0 so the sample is the
// distribution's finite tail cap instead of -inf. Exposed so the boundary
// behavior is directly testable.
double LaplaceInverseCdf(double u, double scale);

// Adds iid Laplace(scale) noise to every entry. For a query with L1
// sensitivity 1 this satisfies (1/scale)-DP, hence 1/(2*scale^2)-zCDP —
// the Section-3.2 "use Gaussian noise" comparison point. Never produces
// infinite noise (see LaplaceInverseCdf).
std::vector<double> AddLaplaceNoise(const std::vector<double>& values,
                                    double scale, Rng& rng);

// zCDP cost of the Laplace mechanism with the given scale and L1
// sensitivity 1: (1/scale)^2 / 2 (pure-DP epsilon squared over two).
double LaplaceRho(double scale);

}  // namespace aim

#endif  // AIM_DP_MECHANISMS_H_
