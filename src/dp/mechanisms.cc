#include "dp/mechanisms.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace aim {

std::vector<double> AddGaussianNoise(const std::vector<double>& values,
                                     double sigma, Rng& rng) {
  AIM_CHECK_GE(sigma, 0.0);
  std::vector<double> noisy(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    noisy[i] = values[i] + sigma * rng.Gaussian();
  }
  return noisy;
}

int NoisyMax(const std::vector<double>& scores, double gumbel_scale,
             Rng& rng) {
  AIM_CHECK(!scores.empty());
  // Degenerate slate: every candidate filtered to -inf. Gumbel noise leaves
  // every perturbed score at -inf, so the scan below would never update and
  // return index 0 deterministically — a biased pick that leaks nothing but
  // also samples nothing. The exponential mechanism conditioned on such a
  // slate is uniform, so draw uniformly (consuming the RNG deterministically
  // to keep paired/replayed streams aligned).
  bool any_finite = false;
  for (double s : scores) {
    if (s > -std::numeric_limits<double>::infinity()) {
      any_finite = true;
      break;
    }
  }
  if (!any_finite) {
    return static_cast<int>(rng.UniformInt(scores.size()));
  }
  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < scores.size(); ++i) {
    double s = scores[i] + rng.Gumbel(gumbel_scale);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int ExponentialMechanism(const std::vector<double>& scores, double eps,
                         double sensitivity, Rng& rng) {
  AIM_CHECK(!scores.empty());
  AIM_CHECK_GT(sensitivity, 0.0);
  AIM_CHECK_GE(eps, 0.0);
  if (std::isinf(eps)) {
    int best = 0;
    for (size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] > scores[best]) best = static_cast<int>(i);
    }
    return best;
  }
  double scale = 2.0 * sensitivity / eps;
  if (std::isinf(scale)) {
    // eps == 0: uniform choice.
    return static_cast<int>(rng.UniformInt(scores.size()));
  }
  return NoisyMax(scores, scale, rng);
}

int GeneralizedExponentialMechanism(const std::vector<double>& scores,
                                    const std::vector<double>& sensitivities,
                                    double eps, Rng& rng) {
  AIM_CHECK(!scores.empty());
  AIM_CHECK_EQ(scores.size(), sensitivities.size());
  const size_t k = scores.size();
  bool uniform_sensitivity = true;
  bool finite_scores = true;
  for (size_t i = 0; i < k; ++i) {
    AIM_CHECK_GT(sensitivities[i], 0.0);
    uniform_sensitivity &= sensitivities[i] == sensitivities[0];
    finite_scores &= std::isfinite(scores[i]);
  }
  std::vector<double> normalized(k);
  if (k > 1 && uniform_sensitivity && finite_scores) {
    // O(k) fast path for the common case (AIM feeds equal workload weights,
    // so all sensitivities coincide). With one shared sensitivity every
    // margin term for candidate i has the same positive denominator, and
    // IEEE subtraction and division are monotone in s_j, so the min over j
    // is attained at the largest other score: margin_i =
    // (s_i - max_{j != i} s_j) / (sens_i + sens_j*). A top-2 scan therefore
    // reproduces the quadratic loop's result exactly (asserted bitwise on
    // randomized inputs in tests/extras_test.cc). Non-uniform sensitivities
    // break the argument — a far-away score with a huge sensitivity can
    // undercut the argmax — and non-finite scores break it through inf-inf
    // and NaN-ignoring std::min, so both fall back to the exact O(k^2) loop.
    size_t best = scores[1] > scores[0] ? 1 : 0;
    size_t second = 1 - best;
    for (size_t j = 2; j < k; ++j) {
      if (scores[j] > scores[best]) {
        second = best;
        best = j;
      } else if (scores[j] > scores[second]) {
        second = j;
      }
    }
    for (size_t i = 0; i < k; ++i) {
      const size_t j = i == best ? second : best;
      normalized[i] =
          (scores[i] - scores[j]) / (sensitivities[i] + sensitivities[j]);
    }
  } else {
    for (size_t i = 0; i < k; ++i) {
      double margin = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < k; ++j) {
        if (j == i) continue;
        margin = std::min(margin, (scores[i] - scores[j]) /
                                      (sensitivities[i] + sensitivities[j]));
      }
      normalized[i] = k > 1 ? margin : 0.0;
    }
  }
  return ExponentialMechanism(normalized, eps, 1.0, rng);
}

double LaplaceInverseCdf(double u, double scale) {
  // Laplace = -scale * sign(u) * ln(1 - 2|u|). Uniform() includes 0, so
  // u = -0.5 is reachable and 1 - 2|u| underflows to exactly 0, which
  // log() turns into -inf noise. Clamp the log argument to the smallest
  // positive normal double: for every non-boundary draw 1 - 2|u| is at
  // least ~2^-54 (Sterbenz), so the clamp only changes the boundary draw —
  // from an infinite sample to the distribution's finite tail cap.
  double a = std::max(1.0 - 2.0 * std::fabs(u),
                      std::numeric_limits<double>::min());
  double magnitude = -scale * std::log(a);
  return u < 0 ? -magnitude : magnitude;
}

std::vector<double> AddLaplaceNoise(const std::vector<double>& values,
                                    double scale, Rng& rng) {
  AIM_CHECK_GE(scale, 0.0);
  std::vector<double> noisy(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    // Inverse-CDF sampling, u uniform on [-1/2, 1/2).
    noisy[i] = values[i] + LaplaceInverseCdf(rng.Uniform() - 0.5, scale);
  }
  return noisy;
}

double LaplaceRho(double scale) {
  AIM_CHECK_GT(scale, 0.0);
  const double eps = 1.0 / scale;
  return eps * eps / 2.0;
}

}  // namespace aim
