#include "dp/mechanisms.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace aim {

std::vector<double> AddGaussianNoise(const std::vector<double>& values,
                                     double sigma, Rng& rng) {
  AIM_CHECK_GE(sigma, 0.0);
  std::vector<double> noisy(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    noisy[i] = values[i] + sigma * rng.Gaussian();
  }
  return noisy;
}

int NoisyMax(const std::vector<double>& scores, double gumbel_scale,
             Rng& rng) {
  AIM_CHECK(!scores.empty());
  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < scores.size(); ++i) {
    double s = scores[i] + rng.Gumbel(gumbel_scale);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int ExponentialMechanism(const std::vector<double>& scores, double eps,
                         double sensitivity, Rng& rng) {
  AIM_CHECK(!scores.empty());
  AIM_CHECK_GT(sensitivity, 0.0);
  AIM_CHECK_GE(eps, 0.0);
  if (std::isinf(eps)) {
    int best = 0;
    for (size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] > scores[best]) best = static_cast<int>(i);
    }
    return best;
  }
  double scale = 2.0 * sensitivity / eps;
  if (std::isinf(scale)) {
    // eps == 0: uniform choice.
    return static_cast<int>(rng.UniformInt(scores.size()));
  }
  return NoisyMax(scores, scale, rng);
}

int GeneralizedExponentialMechanism(const std::vector<double>& scores,
                                    const std::vector<double>& sensitivities,
                                    double eps, Rng& rng) {
  AIM_CHECK(!scores.empty());
  AIM_CHECK_EQ(scores.size(), sensitivities.size());
  const size_t k = scores.size();
  std::vector<double> normalized(k);
  for (size_t i = 0; i < k; ++i) {
    AIM_CHECK_GT(sensitivities[i], 0.0);
    double margin = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      margin = std::min(margin, (scores[i] - scores[j]) /
                                    (sensitivities[i] + sensitivities[j]));
    }
    normalized[i] = k > 1 ? margin : 0.0;
  }
  return ExponentialMechanism(normalized, eps, 1.0, rng);
}

std::vector<double> AddLaplaceNoise(const std::vector<double>& values,
                                    double scale, Rng& rng) {
  AIM_CHECK_GE(scale, 0.0);
  std::vector<double> noisy(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    // Inverse-CDF sampling: Laplace = -scale * sign(u) * ln(1 - 2|u|),
    // u uniform on (-1/2, 1/2).
    double u = rng.Uniform() - 0.5;
    double magnitude = -scale * std::log(1.0 - 2.0 * std::fabs(u));
    noisy[i] = values[i] + (u < 0 ? -magnitude : magnitude);
  }
  return noisy;
}

double LaplaceRho(double scale) {
  AIM_CHECK_GT(scale, 0.0);
  const double eps = 1.0 / scale;
  return eps * eps / 2.0;
}

}  // namespace aim
