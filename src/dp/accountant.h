// zCDP accounting: composition ledger (privacy filter), and the conversion
// between rho-zCDP and (epsilon, delta)-DP (Propositions 1-4 of the paper).

#ifndef AIM_DP_ACCOUNTANT_H_
#define AIM_DP_ACCOUNTANT_H_

#include <vector>

#include "util/status.h"

namespace aim {

// delta such that rho-zCDP implies (eps, delta)-DP (Proposition 4):
//   delta = min_{alpha>1} exp((alpha-1)(alpha*rho - eps)) / (alpha-1)
//           * (1 - 1/alpha)^alpha
// computed by numeric minimization over alpha.
double CdpDelta(double rho, double eps);

// Smallest eps such that rho-zCDP implies (eps, delta)-DP, via bisection.
// rho must be finite and delta positive; delta >= 1 returns 0 (every
// mechanism is (0, 1)-DP).
double CdpEps(double rho, double delta);

// Largest rho such that rho-zCDP implies (eps, delta)-DP, via bisection.
// This is how a mechanism's (eps, delta) privacy budget is converted to the
// zCDP budget it actually spends. Requires delta in (0, 1): delta >= 1
// would make every rho admissible.
double CdpRho(double eps, double delta);

// zCDP cost of the Gaussian mechanism with noise scale sigma and L2
// sensitivity 1 (Proposition 1): 1 / (2 sigma^2).
double GaussianRho(double sigma);

// zCDP cost of the exponential mechanism run with parameter eps
// (Proposition 2): eps^2 / 8.
double ExponentialRho(double eps);

// Privacy filter (Rogers et al.): a ledger of adaptively-spent zCDP budget
// that refuses to overspend. AIM's stopping rule is "run until the filter
// is exactly exhausted".
//
// Invariant: spent() <= budget() always. A spend that lands inside the
// CanSpend numerical tolerance but past the budget (the "final round" of a
// run that divides the budget into floating-point slices) is clamped to the
// exact remaining budget, so the ledger never reports a claim the
// accountant cannot back — the empirical audit harness (src/audit/)
// reconciles spent() against the claimed CdpEps(budget, delta).
class PrivacyFilter {
 public:
  explicit PrivacyFilter(double rho_budget);

  double budget() const { return budget_; }
  double spent() const { return spent_; }
  double remaining() const { return budget_ - spent_; }

  // True if an additional `rho` can be spent without exceeding the budget
  // (with a small numerical tolerance).
  bool CanSpend(double rho) const;

  // Records spending `rho`; CHECK-fails on overspend beyond tolerance.
  // Within tolerance, the ledger is clamped so spent() never exceeds
  // budget().
  void Spend(double rho);

  // Restores the ledger to a previously-recorded position (checkpoint
  // resume). Unlike Spend this returns a Status rather than CHECK-failing:
  // an overspent or negative position comes from a snapshot file, i.e. an
  // input error, not a programming error. Uses the CanSpend tolerance (and
  // the same clamp, so the invariant survives resume).
  Status RestoreSpent(double spent);

  // Per-spend ledger snapshots: entry i is the ledger position after the
  // i-th recorded spend (clamping included; reset by RestoreSpent). The
  // audit harness reads this to reconcile per-round trace records against
  // the accountant.
  const std::vector<double>& ledger() const { return ledger_; }

  // Finalizes the ledger: asserts the spent() <= budget() invariant,
  // publishes dp.filter.{spent,budget} gauges when metrics are enabled, and
  // returns the final spent(). Mechanisms call this once before reporting
  // rho_used.
  double Finish() const;

 private:
  double budget_;
  double spent_ = 0.0;
  std::vector<double> ledger_;
};

}  // namespace aim

#endif  // AIM_DP_ACCOUNTANT_H_
