#include "audit/canary.h"

#include "marginal/marginal.h"
#include "util/logging.h"

namespace aim {

CanaryPair MakeWorstCaseCanaryPair(const Domain& domain,
                                   int64_t num_records) {
  AIM_CHECK_GE(num_records, 1);
  const int d = domain.num_attributes();
  AIM_CHECK_GE(d, 1);
  for (int a = 0; a < d; ++a) {
    AIM_CHECK_GE(domain.size(a), 2)
        << "canary construction needs attribute " << a
        << " to have at least 2 values";
  }
  CanaryPair pair;
  pair.base = Dataset(domain);
  pair.base.Reserve(num_records);
  std::vector<int> record(d);
  for (int64_t r = 0; r < num_records; ++r) {
    for (int a = 0; a < d; ++a) {
      record[a] = static_cast<int>((r + a) % (domain.size(a) - 1));
    }
    pair.base.AppendRecord(record);
  }
  pair.canary.resize(d);
  for (int a = 0; a < d; ++a) pair.canary[a] = domain.size(a) - 1;
  pair.with_canary = pair.base;
  pair.with_canary.AppendRecord(pair.canary);
  return pair;
}

int64_t CanaryCell(const Domain& domain, const AttrSet& attrs,
                   const std::vector<int>& canary) {
  AIM_CHECK(!attrs.empty());
  AIM_CHECK_EQ(static_cast<int>(canary.size()), domain.num_attributes());
  MarginalIndexer indexer(domain, attrs);
  std::vector<int> tuple;
  tuple.reserve(static_cast<size_t>(attrs.size()));
  for (int a : attrs) tuple.push_back(canary[static_cast<size_t>(a)]);
  return indexer.IndexOfTuple(tuple);
}

}  // namespace aim
