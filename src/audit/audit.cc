#include "audit/audit.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "dp/accountant.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "parallel/parallel.h"
#include "robust/fault.h"
#include "util/logging.h"

namespace aim {
namespace {

// Shares the eval harness's per-trial fault point so one AIM_FAULTS spec
// covers both fan-outs.
const FaultPointRegistration kTrialRunFault{"trial_run"};

// Median of the pooled statistics, computed from a sorted copy — a
// deterministic, symmetric threshold that does not favor either side.
double PooledMedian(const std::vector<double>& base,
                    const std::vector<double>& canary) {
  std::vector<double> pooled;
  pooled.reserve(base.size() + canary.size());
  pooled.insert(pooled.end(), base.begin(), base.end());
  pooled.insert(pooled.end(), canary.begin(), canary.end());
  std::sort(pooled.begin(), pooled.end());
  const size_t n = pooled.size();
  if (n % 2 == 1) return pooled[n / 2];
  return 0.5 * (pooled[n / 2 - 1] + pooled[n / 2]);
}

}  // namespace

StatusOr<AuditResult> RunAudit(const Mechanism& mechanism,
                               const Domain& domain,
                               const Workload& workload,
                               const AuditOptions& options) {
  if (options.pairs < 1) {
    return InvalidArgumentError("audit needs at least one pair");
  }
  if (!(options.epsilon > 0.0)) {
    return InvalidArgumentError("audited epsilon must be positive");
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return InvalidArgumentError("audited delta must be in (0, 1)");
  }
  if (!(options.confidence > 0.0 && options.confidence < 1.0)) {
    return InvalidArgumentError("confidence must be in (0, 1)");
  }
  const auto start_time = std::chrono::steady_clock::now();
  const CanaryPair pair =
      MakeWorstCaseCanaryPair(domain, options.num_records);
  const double rho = CdpRho(options.epsilon, options.delta);

  AuditResult audit;
  audit.mechanism = mechanism.name();
  audit.claimed_epsilon = options.epsilon;
  audit.delta = options.delta;
  audit.rho = rho;
  audit.statistic = options.statistic;

  struct PairOutcome {
    double base = 0.0;
    double canary = 0.0;
    bool failed = false;
    bool skipped = false;  // cancellation arrived before this pair started
    std::string message;
  };
  const bool traced = TraceEnabled();
  const bool metered = MetricsEnabled();
  // Pair fan-out mirrors RunTrials: outcome t is a pure function of
  // (options.seed, t) and the shared read-only inputs, so the results are
  // bitwise identical for every thread count. Both sides of a pair replay
  // the SAME TrialRng stream — the mechanism consumes randomness in the
  // same order on D and D', so every draw not causally downstream of the
  // canary is literally shared, maximizing the attack's power (the
  // randomized-response view of auditing with coupled randomness).
  std::vector<PairOutcome> outcomes =
      ParallelMap(options.pairs, [&](int64_t t) {
        LapClock clock(traced || metered);
        PairOutcome outcome;
        if (options.cancel != nullptr && options.cancel->cancelled()) {
          // Wind down at the pair boundary: pairs already running finish
          // (their statistics are simply discarded below), new ones stop.
          outcome.skipped = true;
          return outcome;
        }
        try {
          if (ShouldInjectFault("trial_run", static_cast<uint64_t>(t))) {
            throw FaultInjectedError("trial_run");
          }
          Rng base_rng = TrialRng(options.seed, t);
          Rng canary_rng = TrialRng(options.seed, t);
          const MechanismResult base_result =
              mechanism.Run(pair.base, workload, rho, base_rng);
          const MechanismResult canary_result =
              mechanism.Run(pair.with_canary, workload, rho, canary_rng);
          outcome.base = ExtractStatistic(options.statistic, base_result,
                                          domain, pair.canary);
          outcome.canary = ExtractStatistic(options.statistic, canary_result,
                                            domain, pair.canary);
        } catch (const std::exception& e) {
          outcome.failed = true;
          outcome.message = e.what();
        }
        const double wall = clock.Lap();
        if (metered) {
          MetricsRegistry& registry = MetricsRegistry::Global();
          static Counter& pairs_counter = registry.counter("audit.pairs");
          static Counter& failures_counter =
              registry.counter("audit.pair_failures");
          static Histogram& pair_hist =
              registry.histogram("audit.pair_seconds");
          pairs_counter.Add(1);
          if (outcome.failed) failures_counter.Add(1);
          pair_hist.Observe(wall);
        }
        if (traced) {
          TraceEvent event("audit_pair");
          event.Set("mechanism", mechanism.name())
              .Set("pair", t)
              .Set("failed", outcome.failed);
          if (outcome.failed) {
            event.Set("error_message", outcome.message);
          } else {
            event.Set("base_stat", outcome.base)
                .Set("canary_stat", outcome.canary);
          }
          event.Set("seconds", wall);
          EmitTrace(event);
        }
        return outcome;
      });

  if (options.cancel != nullptr && options.cancel->cancelled()) {
    int64_t skipped = 0;
    for (const PairOutcome& outcome : outcomes) {
      if (outcome.skipped) ++skipped;
    }
    return CancelledError("audit interrupted; " + std::to_string(skipped) +
                          " of " + std::to_string(outcomes.size()) +
                          " pairs skipped, no bound computed");
  }

  audit.base_stats.reserve(static_cast<size_t>(options.pairs));
  audit.canary_stats.reserve(static_cast<size_t>(options.pairs));
  for (int t = 0; t < options.pairs; ++t) {
    const PairOutcome& outcome = outcomes[static_cast<size_t>(t)];
    if (outcome.failed) {
      audit.failures.push_back({t, outcome.message});
      continue;
    }
    audit.base_stats.push_back(outcome.base);
    audit.canary_stats.push_back(outcome.canary);
  }
  const int64_t successes = static_cast<int64_t>(audit.base_stats.size());
  if (successes == 0) {
    return InternalError("audit: every pair failed (first failure: " +
                         audit.failures.front().message + ")");
  }

  audit.threshold = PooledMedian(audit.base_stats, audit.canary_stats);
  int64_t true_positives = 0, false_positives = 0;
  for (double s : audit.canary_stats) {
    if (s > audit.threshold) ++true_positives;
  }
  for (double s : audit.base_stats) {
    if (s > audit.threshold) ++false_positives;
  }
  audit.estimate = EstimateEpsilon(true_positives, false_positives,
                                   successes, options.delta,
                                   options.confidence);
  audit.refuted = audit.estimate.eps_lower > options.epsilon;
  audit.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_time)
                      .count();

  if (metered) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    // Looked up per publish (not static) so a ScopedMetricLabel splits the
    // verdict gauges per job — two concurrent audits in one process must
    // not overwrite each other's epsilon bounds.
    registry.gauge(ScopedMetricName("audit.eps_claimed"))
        .Set(options.epsilon);
    registry.gauge(ScopedMetricName("audit.eps_lower"))
        .Set(audit.estimate.eps_lower);
    registry.gauge(ScopedMetricName("audit.eps_upper"))
        .Set(audit.estimate.eps_upper);
    static Counter& audits_counter = registry.counter("audit.audits");
    static Counter& refuted_counter = registry.counter("audit.refutations");
    audits_counter.Add(1);
    if (audit.refuted) refuted_counter.Add(1);
  }
  if (traced) {
    TraceEvent event("audit");
    event.Set("mechanism", audit.mechanism)
        .Set("statistic", ToString(audit.statistic))
        .Set("eps_claimed", audit.claimed_epsilon)
        .Set("delta", audit.delta)
        .Set("rho", audit.rho)
        .Set("pairs", static_cast<int64_t>(options.pairs))
        .Set("failed_pairs", static_cast<int64_t>(audit.failures.size()))
        .Set("threshold", audit.threshold)
        .Set("tpr", audit.estimate.tpr)
        .Set("fpr", audit.estimate.fpr)
        .Set("eps_point", audit.estimate.eps_point)
        .Set("eps_lower", audit.estimate.eps_lower)
        .Set("eps_upper", audit.estimate.eps_upper)
        .Set("refuted", audit.refuted)
        .Set("seconds", audit.seconds);
    EmitTrace(event);
  }
  return audit;
}

}  // namespace aim
