// The empirical privacy auditing harness: paired mechanism runs on a
// worst-case neighboring pair, a thresholded distinguishing attack, and
// Clopper-Pearson epsilon bounds compared against the accountant's claim.
//
// Threat model and statistic definitions: DESIGN.md "Privacy auditing".

#ifndef AIM_AUDIT_AUDIT_H_
#define AIM_AUDIT_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "audit/attack.h"
#include "audit/canary.h"
#include "audit/estimator.h"
#include "marginal/workload.h"
#include "mechanisms/mechanism.h"
#include "util/cancel.h"

namespace aim {

struct AuditOptions {
  // The claimed (epsilon, delta) guarantee under audit. The mechanism runs
  // at rho = CdpRho(epsilon, delta), exactly as the eval harness would.
  double epsilon = 1.0;
  double delta = 1e-9;

  // Paired trials. Each pair runs the mechanism once on D and once on
  // D ∪ {canary} with IDENTICAL per-trial Rng streams (TrialRng(seed, t)),
  // so the only difference between the two runs is the canary itself.
  int pairs = 100;

  // Records in the base dataset D.
  int64_t num_records = 500;

  AttackStatistic statistic = AttackStatistic::kMeasurementCanaryMass;

  // Two-sided coverage of the Clopper-Pearson intervals (0.95 = the usual
  // "95% CI" whose edges bound the empirical epsilon).
  double confidence = 0.95;

  uint64_t seed = 0;

  // Cooperative cancellation (SIGINT/SIGTERM): pairs not yet started when
  // the token trips are skipped and RunAudit returns CancelledError — a
  // partial pair set would silently widen the confidence interval, so an
  // interrupted audit reports no bound at all. Not owned; may be null.
  CancelToken* cancel = nullptr;
};

struct AuditResult {
  std::string mechanism;
  double claimed_epsilon = 0.0;
  double delta = 0.0;
  double rho = 0.0;  // the zCDP budget each run received
  AttackStatistic statistic = AttackStatistic::kMeasurementCanaryMass;

  // Attack statistics of the successful pairs, in trial order.
  std::vector<double> base_stats;    // runs on D
  std::vector<double> canary_stats;  // runs on D'

  // The decision threshold (median of the pooled statistics; a trial is
  // flagged "canary present" when its statistic exceeds it).
  double threshold = 0.0;

  EpsEstimate estimate;

  // True when the sound lower bound exceeds the claim — empirical evidence
  // (at the configured confidence) that the mechanism is NOT
  // (claimed_epsilon, delta)-DP.
  bool refuted = false;

  // Pairs excluded from the bound because either side failed (fault
  // injection at "trial_run", estimation errors). Failed pairs are never
  // silently counted; the estimate uses only base_stats/canary_stats.
  struct PairFailure {
    int pair = 0;
    std::string message;
  };
  std::vector<PairFailure> failures;

  double seconds = 0.0;
};

// Runs the full audit of `mechanism` on the worst-case canary pair over
// `domain` (every attribute size >= 2). Deterministic given (options.seed,
// thread count independent); fault point "trial_run" (keyed by the pair
// index) fails individual pairs. Returns an error when every pair failed
// or the options are inconsistent.
StatusOr<AuditResult> RunAudit(const Mechanism& mechanism,
                               const Domain& domain,
                               const Workload& workload,
                               const AuditOptions& options);

}  // namespace aim

#endif  // AIM_AUDIT_AUDIT_H_
