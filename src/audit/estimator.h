// From membership guesses to empirical epsilon bounds.
//
// An (eps, delta)-DP mechanism constrains every distinguishing attack on a
// neighboring pair by
//     TPR <= e^eps * FPR + delta   and   TNR <= e^eps * FNR + delta,
// so observed rates imply eps >= max(log((TPR-delta)/FPR),
// log((TNR-delta)/FNR)). Replacing the rates with exact Clopper-Pearson
// confidence limits gives high-confidence lower (conservative limits) and
// upper (optimistic limits) edges for the empirical epsilon.

#ifndef AIM_AUDIT_ESTIMATOR_H_
#define AIM_AUDIT_ESTIMATOR_H_

#include <cstdint>

namespace aim {

// Regularized incomplete beta function I_x(a, b), for the Clopper-Pearson
// limits. Exposed for tests; a, b > 0, x in [0, 1].
double RegularizedIncompleteBeta(double x, double a, double b);

struct BinomialCi {
  double lo = 0.0;
  double hi = 1.0;
};

// Exact (Clopper-Pearson) two-sided confidence interval for a binomial
// proportion: `successes` out of `trials` at the given two-sided coverage
// (e.g. 0.95). lo = 0 when successes = 0 and hi = 1 when successes =
// trials, as usual.
BinomialCi ClopperPearsonCi(int64_t successes, int64_t trials,
                            double confidence);

// The empirical epsilon implied by a (TPR, FPR) operating point under the
// given delta: max over the two DP directions, clamped at 0. Returns +inf
// when a denominator rate is exactly 0 while the numerator clears delta
// (a perfect distinguisher is inconsistent with every finite epsilon).
double EpsFromRates(double tpr, double fpr, double delta);

struct EpsEstimate {
  int64_t pairs = 0;  // classified trials per side
  int64_t true_positives = 0;   // canary runs flagged "canary present"
  int64_t false_positives = 0;  // base runs flagged "canary present"
  double tpr = 0.0;
  double fpr = 0.0;
  BinomialCi tpr_ci;
  BinomialCi fpr_ci;
  // Point estimate at the raw rates; conservative edge (tpr lower limit,
  // fpr upper limit) — a sound high-confidence LOWER bound on epsilon; and
  // optimistic edge (tpr upper limit, fpr lower limit) — the largest
  // epsilon the confidence region still allows. eps_upper may be +inf when
  // the fpr lower limit is 0.
  double eps_point = 0.0;
  double eps_lower = 0.0;
  double eps_upper = 0.0;
};

// Computes rates, Clopper-Pearson intervals, and the three epsilon figures
// from the attack's confusion counts. `pairs` >= 1; counts within [0,
// pairs]; confidence in (0, 1).
EpsEstimate EstimateEpsilon(int64_t true_positives, int64_t false_positives,
                            int64_t pairs, double delta, double confidence);

}  // namespace aim

#endif  // AIM_AUDIT_ESTIMATOR_H_
