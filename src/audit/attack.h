// Per-trial distinguishing statistics for the privacy audit.
//
// Each statistic maps one MechanismResult to a scalar that should be
// stochastically larger when the canary was in the input. The audit
// thresholds the statistic to turn each trial into a binary membership
// guess (see estimator.h for how guesses become epsilon bounds).

#ifndef AIM_AUDIT_ATTACK_H_
#define AIM_AUDIT_ATTACK_H_

#include <string>
#include <vector>

#include "data/domain.h"
#include "mechanisms/mechanism.h"
#include "util/status.h"

namespace aim {

enum class AttackStatistic {
  // Σ_m ỹ_m[canary cell] / σ_m² over the noisy measurements in the log —
  // the sufficient statistic of the Gaussian likelihood-ratio test between
  // "canary counted once" and "canary counted never" when the base dataset
  // contributes zero mass to the cell (which the worst-case pair
  // guarantees). The strongest attack: it reads the measurements the
  // mechanism actually released through its DP channel, with effect size
  // sqrt(2 · rho_measured) standard deviations.
  kMeasurementCanaryMass,

  // Smoothed log-likelihood of the canary record under the synthetic
  // data's marginals on each measured projection (add-one smoothing, one
  // term per distinct measured attribute set). Attacks the released
  // synthetic records only — what a real adversary holding just the
  // product sees. 0 when the mechanism produced no synthetic data.
  kSyntheticCanaryLikelihood,

  // Σ_t estimated_error_on_selected / σ_t over the selection rounds: the
  // canary inflates the model-vs-data gap on marginals it touches, nudging
  // AIM's adaptive selection. Degenerates to 0 for mechanisms that do not
  // record per-round estimated errors (MST).
  kSelectionTrace,
};

const char* ToString(AttackStatistic statistic);

// Parses "measurement" / "synthetic" / "selection" (full enum-ish names
// accepted too); InvalidArgumentError otherwise.
StatusOr<AttackStatistic> ParseAttackStatistic(const std::string& name);

// Extracts the statistic from one run's result. `canary` is the full
// d-tuple of the audited record.
double ExtractStatistic(AttackStatistic statistic,
                        const MechanismResult& result, const Domain& domain,
                        const std::vector<int>& canary);

}  // namespace aim

#endif  // AIM_AUDIT_ATTACK_H_
