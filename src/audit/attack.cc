#include "audit/attack.h"

#include <cmath>
#include <set>

#include "audit/canary.h"
#include "marginal/marginal.h"
#include "util/logging.h"

namespace aim {
namespace {

double MeasurementCanaryMass(const MechanismResult& result,
                             const Domain& domain,
                             const std::vector<int>& canary) {
  double mass = 0.0;
  for (const Measurement& m : result.log.measurements) {
    if (m.attrs.empty() || m.sigma <= 0.0) continue;
    const int64_t cell = CanaryCell(domain, m.attrs, canary);
    AIM_CHECK_LT(cell, static_cast<int64_t>(m.values.size()));
    mass += m.values[static_cast<size_t>(cell)] / (m.sigma * m.sigma);
  }
  return mass;
}

double SyntheticCanaryLikelihood(const MechanismResult& result,
                                 const Domain& domain,
                                 const std::vector<int>& canary) {
  if (!result.has_synthetic || result.synthetic.num_records() == 0) {
    return 0.0;
  }
  // One term per DISTINCT measured projection: repeated measurements of the
  // same marginal (AIM re-selects under annealing) carry no extra
  // information about the synthetic data.
  std::set<AttrSet> projections;
  for (const Measurement& m : result.log.measurements) {
    if (!m.attrs.empty()) projections.insert(m.attrs);
  }
  const double n = static_cast<double>(result.synthetic.num_records());
  double log_lik = 0.0;
  for (const AttrSet& attrs : projections) {
    const std::vector<double> marginal =
        ComputeMarginal(result.synthetic, attrs);
    const int64_t cell = CanaryCell(domain, attrs, canary);
    AIM_CHECK_LT(cell, static_cast<int64_t>(marginal.size()));
    const double cells = static_cast<double>(marginal.size());
    // Add-one smoothing keeps the term finite when the synthetic data never
    // generated the canary's cell (the overwhelmingly common case under D).
    log_lik += std::log((marginal[static_cast<size_t>(cell)] + 1.0) /
                        (n + cells));
  }
  return log_lik;
}

double SelectionTrace(const MechanismResult& result) {
  double trace = 0.0;
  for (const RoundInfo& round : result.log.rounds) {
    const double scale = round.sigma > 0.0 ? round.sigma : 1.0;
    trace += round.estimated_error_on_selected / scale;
  }
  return trace;
}

}  // namespace

const char* ToString(AttackStatistic statistic) {
  switch (statistic) {
    case AttackStatistic::kMeasurementCanaryMass:
      return "measurement";
    case AttackStatistic::kSyntheticCanaryLikelihood:
      return "synthetic";
    case AttackStatistic::kSelectionTrace:
      return "selection";
  }
  return "unknown";
}

StatusOr<AttackStatistic> ParseAttackStatistic(const std::string& name) {
  if (name == "measurement" || name == "measurement-canary-mass") {
    return AttackStatistic::kMeasurementCanaryMass;
  }
  if (name == "synthetic" || name == "synthetic-canary-likelihood") {
    return AttackStatistic::kSyntheticCanaryLikelihood;
  }
  if (name == "selection" || name == "selection-trace") {
    return AttackStatistic::kSelectionTrace;
  }
  return InvalidArgumentError("unknown attack statistic '" + name +
                              "' (want measurement|synthetic|selection)");
}

double ExtractStatistic(AttackStatistic statistic,
                        const MechanismResult& result, const Domain& domain,
                        const std::vector<int>& canary) {
  switch (statistic) {
    case AttackStatistic::kMeasurementCanaryMass:
      return MeasurementCanaryMass(result, domain, canary);
    case AttackStatistic::kSyntheticCanaryLikelihood:
      return SyntheticCanaryLikelihood(result, domain, canary);
    case AttackStatistic::kSelectionTrace:
      return SelectionTrace(result);
  }
  AIM_CHECK(false) << "unreachable attack statistic";
  return 0.0;
}

}  // namespace aim
