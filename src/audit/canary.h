// Worst-case neighboring dataset pairs for empirical privacy auditing.
//
// The auditor plays the membership-inference game of "Tight Auditing of
// Differential Privacy" style attacks: run the mechanism on D and on
// D' = D ∪ {canary} and try to tell the two apart from the output. The
// distinguishing power is maximized when the canary is as far from the rest
// of the data as the domain allows, so the pair here is crafted such that
// the canary's cell has mass exactly 0 under D and exactly 1 under D' on
// EVERY marginal projection of the domain.

#ifndef AIM_AUDIT_CANARY_H_
#define AIM_AUDIT_CANARY_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/domain.h"
#include "marginal/attr_set.h"

namespace aim {

// A neighboring pair (D, D ∪ {canary}) under the add/remove adjacency the
// zCDP accounting assumes.
struct CanaryPair {
  Dataset base;         // D: num_records records
  Dataset with_canary;  // D': the same records plus the canary, appended last
  std::vector<int> canary;  // the distinguished record
};

// Builds the worst-case pair: base record r takes value (r + a) % (n_a - 1)
// on attribute a, so no base record ever touches coordinate n_a - 1, and the
// canary sits at (n_1 - 1, ..., n_d - 1). Hence every marginal projection
// has zero mass at the canary's cell under D and mass 1 under D'. Requires
// num_records >= 1 and every attribute size >= 2 (CHECK-enforced).
CanaryPair MakeWorstCaseCanaryPair(const Domain& domain, int64_t num_records);

// Cell index of the canary record in the marginal on `attrs`, under the
// library's row-major marginal convention.
int64_t CanaryCell(const Domain& domain, const AttrSet& attrs,
                   const std::vector<int>& canary);

}  // namespace aim

#endif  // AIM_AUDIT_CANARY_H_
