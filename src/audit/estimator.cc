#include "audit/estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace aim {
namespace {

// Continued-fraction evaluation of the incomplete beta function (Lentz's
// method, the standard Numerical-Recipes-style formulation). Converges in a
// few dozen iterations for the x < (a+1)/(a+b+2) regime the caller ensures.
double BetaContinuedFraction(double x, double a, double b) {
  constexpr int kMaxIters = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIters; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

// Smallest p in [0, 1] with I_p(a, b) >= target (I is increasing in p).
double InverseRegularizedBeta(double target, double a, double b) {
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (RegularizedIncompleteBeta(mid, a, b) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace

double RegularizedIncompleteBeta(double x, double a, double b) {
  AIM_CHECK_GT(a, 0.0);
  AIM_CHECK_GT(b, 0.0);
  AIM_CHECK(x >= 0.0 && x <= 1.0) << "x=" << x;
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the continued fraction on whichever side converges fast and reflect
  // via I_x(a, b) = 1 - I_{1-x}(b, a) for the other.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(x, a, b) / a;
  }
  return 1.0 - front * BetaContinuedFraction(1.0 - x, b, a) / b;
}

BinomialCi ClopperPearsonCi(int64_t successes, int64_t trials,
                            double confidence) {
  AIM_CHECK_GE(trials, 1);
  AIM_CHECK(successes >= 0 && successes <= trials)
      << successes << "/" << trials;
  AIM_CHECK(confidence > 0.0 && confidence < 1.0);
  const double alpha = 1.0 - confidence;
  const double k = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  BinomialCi ci;
  // Beta quantile form of the exact binomial tail inversion: lo is the
  // alpha/2 quantile of Beta(k, n - k + 1), i.e. I_lo(k, n - k + 1) =
  // alpha/2, and hi is the 1 - alpha/2 quantile of Beta(k + 1, n - k).
  if (successes > 0) {
    ci.lo = InverseRegularizedBeta(alpha / 2.0, k, n - k + 1.0);
  }
  if (successes < trials) {
    ci.hi = InverseRegularizedBeta(1.0 - alpha / 2.0, k + 1.0, n - k);
  }
  return ci;
}

double EpsFromRates(double tpr, double fpr, double delta) {
  const double inf = std::numeric_limits<double>::infinity();
  auto direction = [&](double hit, double miss) {
    // eps >= log((hit - delta) / miss); no constraint when the numerator
    // does not clear delta.
    if (hit - delta <= 0.0) return 0.0;
    if (miss <= 0.0) return inf;
    return std::log((hit - delta) / miss);
  };
  const double forward = direction(tpr, fpr);
  const double reverse = direction(1.0 - fpr, 1.0 - tpr);
  return std::max({0.0, forward, reverse});
}

EpsEstimate EstimateEpsilon(int64_t true_positives, int64_t false_positives,
                            int64_t pairs, double delta, double confidence) {
  AIM_CHECK_GE(pairs, 1);
  EpsEstimate estimate;
  estimate.pairs = pairs;
  estimate.true_positives = true_positives;
  estimate.false_positives = false_positives;
  const double n = static_cast<double>(pairs);
  estimate.tpr = static_cast<double>(true_positives) / n;
  estimate.fpr = static_cast<double>(false_positives) / n;
  estimate.tpr_ci = ClopperPearsonCi(true_positives, pairs, confidence);
  estimate.fpr_ci = ClopperPearsonCi(false_positives, pairs, confidence);
  estimate.eps_point = EpsFromRates(estimate.tpr, estimate.fpr, delta);
  estimate.eps_lower =
      EpsFromRates(estimate.tpr_ci.lo, estimate.fpr_ci.hi, delta);
  estimate.eps_upper =
      EpsFromRates(estimate.tpr_ci.hi, estimate.fpr_ci.lo, delta);
  return estimate;
}

}  // namespace aim
