#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace aim {
namespace {

constexpr int kMaxJsonDepth = 64;

// Recursive-descent JSON parser over a bounded buffer. No surprises: UTF-8
// passes through untouched, \uXXXX escapes decode to UTF-8, numbers go
// through strtod.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("json: trailing garbage at offset " +
                                  std::to_string(pos_));
    }
    return value;
  }

 private:
  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) {
      return InvalidArgumentError("json: nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("json: unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status status = ParseString(&s);
        if (!status.ok()) return status;
        *out = JsonValue::MakeString(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue::MakeBool(true);
          return Status::Ok();
        }
        break;
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue::MakeBool(false);
          return Status::Ok();
        }
        break;
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue();
          return Status::Ok();
        }
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        break;
    }
    return InvalidArgumentError("json: unexpected character at offset " +
                                std::to_string(pos_));
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return InvalidArgumentError("json: expected object key");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return InvalidArgumentError("json: expected ':' after key");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->object()[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("json: unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::Ok();
      }
      return InvalidArgumentError("json: expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->array().push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("json: unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::Ok();
      }
      return InvalidArgumentError("json: expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return InvalidArgumentError("json: truncated \\u escape");
            }
            unsigned int code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return InvalidArgumentError("json: bad \\u escape");
            }
            pos_ += 4;
            // Encode the BMP code point as UTF-8 (surrogate pairs are not
            // recombined — lone surrogates encode as-is, which round-trips).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return InvalidArgumentError("json: bad escape character");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return InvalidArgumentError("json: raw control character in string");
      }
      out->push_back(c);
      ++pos_;
    }
    return InvalidArgumentError("json: unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(begin, &end);
    if (end == begin || errno == ERANGE || !std::isfinite(v)) {
      return InvalidArgumentError("json: bad number at offset " +
                                  std::to_string(pos_));
    }
    pos_ += static_cast<size_t>(end - begin);
    *out = JsonValue::MakeNumber(v);
    return Status::Ok();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  // Integers render without a decimal point (job counters, ports, round
  // numbers); everything else gets shortest-round-trip %.17g.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    out->append(std::to_string(static_cast<int64_t>(v)));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind() == Kind::kString) ? v->AsString()
                                                      : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind() == Kind::kNumber) ? v->AsNumber()
                                                      : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind() == Kind::kBool) ? v->AsBool() : fallback;
}

std::string JsonValue::ToJson() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendNumber(&out, number_);
      break;
    case Kind::kString:
      out = JsonQuote(string_);
      break;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        out.append(v.ToJson());
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out.push_back(',');
        first = false;
        out.append(JsonQuote(key));
        out.push_back(':');
        out.append(v.ToJson());
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

StatusOr<HttpRequest> ParseHttpRequest(const std::string& raw) {
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return InvalidArgumentError("http: missing header terminator");
  }
  HttpRequest request;
  request.body = raw.substr(header_end + 4);

  size_t line_start = 0;
  size_t line_end = raw.find("\r\n");
  const std::string start_line = raw.substr(0, line_end);
  const size_t sp1 = start_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return InvalidArgumentError("http: malformed request line");
  }
  request.method = start_line.substr(0, sp1);
  std::string target = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = start_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return InvalidArgumentError("http: unsupported version '" + version + "'");
  }
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    request.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  if (target.empty() || target[0] != '/') {
    return InvalidArgumentError("http: request target must be a path");
  }
  request.path = std::move(target);

  line_start = line_end + 2;
  while (line_start < header_end) {
    line_end = raw.find("\r\n", line_start);
    if (line_end == std::string::npos || line_end > header_end) {
      line_end = header_end;
    }
    const std::string line = raw.substr(line_start, line_end - line_start);
    line_start = line_end + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;  // tolerate junk header lines
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    request.headers[name] = line.substr(value_start);
  }
  return request;
}

StatusOr<HttpRequest> ReadHttpRequest(int fd) {
  std::string buffer;
  size_t header_end = std::string::npos;
  char chunk[4096];
  // Phase 1: read until the blank line that ends the headers.
  while (header_end == std::string::npos) {
    if (buffer.size() > kMaxRequestBytes) {
      return InvalidArgumentError("http: request headers too large");
    }
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return UnavailableError("http: peer closed before a full request");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(std::string("http: recv failed: ") +
                              std::strerror(errno));
    }
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = buffer.find("\r\n\r\n");
  }
  // Phase 2: Content-Length framing for the body.
  size_t content_length = 0;
  {
    // Cheap scan of the raw header block; ParseHttpRequest re-parses below.
    const std::string headers = buffer.substr(0, header_end);
    std::string lowered = headers;
    for (char& c : lowered) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    const size_t at = lowered.find("content-length:");
    if (at != std::string::npos) {
      size_t p = at + std::strlen("content-length:");
      while (p < headers.size() && headers[p] == ' ') ++p;
      uint64_t parsed = 0;
      const char* begin = headers.c_str() + p;
      const char* end = headers.c_str() + headers.size();
      auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc() || ptr == begin) {
        return InvalidArgumentError("http: bad Content-Length");
      }
      content_length = static_cast<size_t>(parsed);
    }
  }
  const size_t total = header_end + 4 + content_length;
  if (total > kMaxRequestBytes) {
    return InvalidArgumentError("http: request body too large");
  }
  while (buffer.size() < total) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return UnavailableError("http: peer closed mid-body");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(std::string("http: recv failed: ") +
                              std::strerror(errno));
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  buffer.resize(total);  // ignore pipelined bytes past the first request
  return ParseHttpRequest(buffer);
}

void WriteHttpResponse(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer gone; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpResponse JsonErrorResponse(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":" + JsonQuote(message) + "}\n";
  return response;
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments;
  size_t start = 0;
  while (start < path.size()) {
    while (start < path.size() && path[start] == '/') ++start;
    size_t end = start;
    while (end < path.size() && path[end] != '/') ++end;
    if (end > start) segments.push_back(path.substr(start, end - start));
    start = end;
  }
  return segments;
}

}  // namespace aim
