#include "serve/rate_limiter.h"

namespace aim {

RateLimiter::Bucket& RateLimiter::BucketFor(
    const std::string& tenant, std::chrono::steady_clock::time_point now) {
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    Bucket fresh;
    fresh.tokens = burst_;
    fresh.last_refill = now;
    it = buckets_.emplace(tenant, fresh).first;
  }
  Bucket& bucket = it->second;
  if (per_second_ > 0.0) {
    const double elapsed =
        std::chrono::duration<double>(now - bucket.last_refill).count();
    bucket.tokens += elapsed * per_second_;
    if (bucket.tokens > burst_) bucket.tokens = burst_;
  }
  bucket.last_refill = now;
  return bucket;
}

bool RateLimiter::Admit(const std::string& tenant) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = BucketFor(tenant, now);
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

double RateLimiter::Available(const std::string& tenant) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  return BucketFor(tenant, now).tokens;
}

}  // namespace aim
