// Job lifecycle for the aimd daemon: a bounded worker pool executing
// synthesis jobs built through the mechanism registry, with per-job
// cancellation, per-job trace capture (the progress stream), checkpoint
// generations as the crash-recovery store, and post-hoc marginal queries
// against completed models.
//
// Concurrency model: JobManager owns N worker threads; each runs one job
// at a time, wrapped in a ScopedThreadTraceSink (round records go to the
// job's own buffer, not a global sink) and a ScopedMetricLabel (gauges
// like dp.filter.spent publish as "name{job=<id>}", so concurrent jobs
// never clobber each other's readings). A job's AIM run polls its
// CancelToken at round boundaries; Cancel() and Shutdown() both trip it,
// after which the mechanism forces a final checkpoint and synthesizes
// from the measurements in hand — the job lands in state "cancelled" with
// a resumable checkpoint ladder in its directory.

#ifndef AIM_SERVE_JOB_MANAGER_H_
#define AIM_SERVE_JOB_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "mechanisms/mechanism.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/tenant.h"
#include "store/reader.h"
#include "util/cancel.h"
#include "util/status.h"

namespace aim {

// A validated submission. Field names mirror the aim_cli flags so the
// daemon-vs-CLI byte-identity contract is visible in the schema itself.
struct JobSpec {
  std::string tenant = "default";
  std::string dataset;               // CSV / .aim store / shard manifest path
  std::string mechanism = "AIM";
  double epsilon = 1.0;
  double delta = 1e-9;
  std::string workload = "all3way";  // all3way | all2way | target:<attr>
  uint64_t seed = 0;
  int64_t records = -1;              // synthetic records; <= 0 = estimated
  int bins = 32;                     // CSV numeric discretization
  double max_size_mb = 80.0;
  std::string resume_from;  // checkpoint base to resume from (optional)
};

// Parses and range-validates a POST /jobs body.
StatusOr<JobSpec> ParseJobSpec(const JsonValue& json);

// In-memory JSONL sink for one job: every trace event the job's thread
// emits, serialized and appended under a lock, plus a completed-round
// counter read by the status endpoint. Thread-safe (queries tail the
// buffer while the job is still appending).
class JobTraceSink : public TraceSink {
 public:
  void Emit(const TraceEvent& event) override;

  // Lines [from, size), for GET /jobs/<id>/events?from=N.
  std::vector<std::string> LinesFrom(size_t from) const;
  size_t size() const;
  int64_t rounds_completed() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
  int64_t rounds_ = 0;
};

class Job {
 public:
  enum class State { kQueued, kRunning, kDone, kFailed, kCancelled };

  std::string id;
  JobSpec spec;
  double rho = 0.0;  // CdpRho(epsilon, delta), reserved at admission
  std::string dir;   // <work_dir>/jobs/<id>
  std::string checkpoint_path;  // dir + "/checkpoint" (generation base)
  std::string output_path;      // dir + "/synthetic.csv"

  CancelToken cancel;
  JobTraceSink trace;

  // ---- Guarded by mu. ----
  mutable std::mutex mu;
  State state = State::kQueued;
  std::string error;             // set for kFailed
  uint64_t fingerprint = 0;      // AIM run fingerprint (0 for non-AIM)
  int rounds = 0;
  double seconds = 0.0;
  double rho_used = 0.0;
  int64_t synthetic_records = 0;
  Domain domain;                             // set once loaded
  std::optional<MarkovRandomField> model;    // final model, for /query

  // Status snapshot as a JSON object (takes mu).
  JsonValue ToJson() const;

  static const char* StateName(State state);
};

struct JobManagerOptions {
  std::string work_dir = ".";
  int workers = 2;
  // Checkpoint ladder depth per job (robust/generations.h); every job
  // checkpoints every round so cancellation/crash always leaves the last
  // completed round recoverable.
  int checkpoint_generations = 3;
};

class JobManager {
 public:
  // `ledger` is not owned and must outlive the manager.
  JobManager(const JobManagerOptions& options, TenantLedger* ledger);
  ~JobManager();

  // Validates `spec` (cheap structural checks + dataset existence), charges
  // the tenant's ledger with the job's full rho, creates the job directory,
  // and enqueues. The ledger charge happens only after validation passes,
  // and admission is refused outright during shutdown.
  StatusOr<std::shared_ptr<Job>> Submit(const JobSpec& spec);

  std::shared_ptr<Job> Find(const std::string& id);
  std::vector<std::shared_ptr<Job>> Jobs();

  // Trips the job's CancelToken. Queued jobs go straight to kCancelled;
  // running jobs wind down at the next AIM round boundary.
  Status Cancel(const std::string& id);

  // Answers a post-hoc marginal query against a completed job's model —
  // measurement-log post-processing, zero additional privacy cost.
  StatusOr<std::vector<double>> QueryMarginal(
      const std::string& id, const std::vector<std::string>& attr_names,
      std::vector<int>* sizes);

  // Graceful drain: refuse new submissions, cancel every queued/running
  // job, join the workers. Running jobs finish their degradation path
  // (final checkpoint + synthesis from measurements in hand) first.
  void Shutdown();

  // Test hook: blocks until no job is queued or running, or the timeout
  // expires. Returns true when idle.
  bool WaitIdle(double timeout_seconds);

 private:
  void WorkerLoop();
  void RunJob(const std::shared_ptr<Job>& job);
  // The shared .aim mapping cache: one StoreSource per path, shared
  // read-only by every job and post-hoc reader that touches it.
  StatusOr<std::shared_ptr<StoreSource>> OpenStoreShared(
      const std::string& path);

  const JobManagerOptions options_;
  TenantLedger* const ledger_;

  // Serializes Shutdown callers (the accept loop's drain and an explicit
  // Shutdown can race); never held while workers run jobs.
  std::mutex shutdown_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  bool shutdown_ = false;
  int64_t next_id_ = 1;
  int running_ = 0;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::map<std::string, std::shared_ptr<StoreSource>> store_cache_;

  std::vector<std::thread> workers_;
};

}  // namespace aim

#endif  // AIM_SERVE_JOB_MANAGER_H_
