#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace aim {
namespace {

// Receive timeout on accepted connections: a client that stalls mid-request
// can hold the (serial) accept loop for at most this long.
constexpr int kClientTimeoutMs = 2000;

size_t ParseFromParam(const std::string& query) {
  // "from=N" is the only query parameter the daemon understands.
  const size_t at = query.find("from=");
  if (at == std::string::npos) return 0;
  const char* begin = query.c_str() + at + 5;
  const char* end = query.c_str() + query.size();
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc()) return 0;
  return static_cast<size_t>(value);
}

}  // namespace

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    // A budget refusal is an authorization decision, not a malformed
    // request: the tenant asked for more rho than it has left.
    case StatusCode::kFailedPrecondition: return 403;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kDeadlineExceeded: return 503;
    case StatusCode::kCancelled: return 409;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

Server::Server(const ServerOptions& options)
    : options_(options),
      tenants_(options.default_tenant_rho),
      rate_limiter_(options.rate_burst, options.rate_per_second),
      jobs_(std::make_unique<JobManager>(options.jobs, &tenants_)) {}

Server::~Server() {
  Shutdown();
  if (listen_fd_ >= 0) close(listen_fd_);
}

Status Server::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return UnavailableError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("cannot parse host '" + options_.host + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return UnavailableError("bind " + options_.host + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(errno));
  }
  if (listen(listen_fd_, 64) != 0) {
    return UnavailableError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::Ok();
}

void Server::ServeForever(CancelToken* cancel) {
  AIM_CHECK(listen_fd_ >= 0) << "ServeForever before Start";
  while (!stop_.load(std::memory_order_acquire)) {
    if (cancel != nullptr && cancel->cancelled()) break;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal; loop re-checks the token
      break;
    }
    if (ready == 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    timeval timeout{};
    timeout.tv_sec = kClientTimeoutMs / 1000;
    timeout.tv_usec = (kClientTimeoutMs % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    HandleConnection(fd);
    close(fd);
  }
  // Out of the accept loop (shutdown or signal): drain the jobs.
  jobs_->Shutdown();
}

void Server::Shutdown() {
  stop_.store(true, std::memory_order_release);
  jobs_->Shutdown();
}

void Server::HandleConnection(int fd) {
  StatusOr<HttpRequest> request = ReadHttpRequest(fd);
  if (!request.ok()) {
    // EOF/timeout before a full request: nothing useful to answer.
    if (request.status().code() != StatusCode::kUnavailable) {
      WriteHttpResponse(fd,
                        JsonErrorResponse(400, request.status().message()));
    }
    return;
  }
  WriteHttpResponse(fd, Handle(*request));
}

HttpResponse Server::Handle(const HttpRequest& request) {
  const std::vector<std::string> path = SplitPath(request.path);
  if (path.empty()) {
    return JsonErrorResponse(404, "no route for '" + request.path + "'");
  }
  if (path[0] == "healthz" && path.size() == 1) {
    HttpResponse ok;
    ok.body = "{\"ok\":true}\n";
    return ok;
  }
  if (path[0] == "tenants" && path.size() == 2 && request.method == "GET") {
    return HandleTenant(path[1]);
  }
  if (path[0] == "jobs") {
    if (path.size() == 1) {
      if (request.method == "POST") return HandleSubmit(request);
      if (request.method == "GET") {
        JsonValue list = JsonValue::MakeArray();
        for (const std::shared_ptr<Job>& job : jobs_->Jobs()) {
          list.array().push_back(job->ToJson());
        }
        HttpResponse response;
        response.body = list.ToJson() + "\n";
        return response;
      }
      return JsonErrorResponse(405, "method not allowed on /jobs");
    }
    const std::string& id = path[1];
    if (path.size() == 2 && request.method == "GET") return HandleJobGet(id);
    if (path.size() == 3 && request.method == "GET" && path[2] == "events") {
      return HandleEvents(id, request.query);
    }
    if (path.size() == 3 && request.method == "GET" && path[2] == "result") {
      return HandleResult(id);
    }
    if (path.size() == 3 && request.method == "POST" &&
        path[2] == "cancel") {
      return HandleCancel(id);
    }
    if (path.size() == 3 && request.method == "POST" && path[2] == "query") {
      return HandleQuery(id, request);
    }
  }
  return JsonErrorResponse(404, "no route for '" + request.path + "'");
}

HttpResponse Server::HandleSubmit(const HttpRequest& request) {
  StatusOr<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) {
    return JsonErrorResponse(400, body.status().message());
  }
  StatusOr<JobSpec> spec = ParseJobSpec(*body);
  if (!spec.ok()) {
    return JsonErrorResponse(400, spec.status().message());
  }
  // Rate limit BEFORE the ledger: a submit flood must not reach budget
  // accounting (or the filesystem) at all.
  if (!rate_limiter_.Admit(spec->tenant)) {
    return JsonErrorResponse(
        429, "tenant '" + spec->tenant + "' is over its submission rate");
  }
  StatusOr<std::shared_ptr<Job>> job = jobs_->Submit(*spec);
  if (!job.ok()) {
    return JsonErrorResponse(HttpStatusForStatus(job.status()),
                             job.status().message());
  }
  HttpResponse response;
  response.status = 202;
  response.body = (*job)->ToJson().ToJson() + "\n";
  return response;
}

HttpResponse Server::HandleJobGet(const std::string& id) {
  std::shared_ptr<Job> job = jobs_->Find(id);
  if (job == nullptr) return JsonErrorResponse(404, "no job '" + id + "'");
  HttpResponse response;
  response.body = job->ToJson().ToJson() + "\n";
  return response;
}

HttpResponse Server::HandleEvents(const std::string& id,
                                  const std::string& query) {
  std::shared_ptr<Job> job = jobs_->Find(id);
  if (job == nullptr) return JsonErrorResponse(404, "no job '" + id + "'");
  const size_t from = ParseFromParam(query);
  HttpResponse response;
  response.content_type = "application/x-ndjson";
  std::string body;
  for (const std::string& line : job->trace.LinesFrom(from)) {
    body += line;
    body += '\n';
  }
  response.body = std::move(body);
  return response;
}

HttpResponse Server::HandleResult(const std::string& id) {
  std::shared_ptr<Job> job = jobs_->Find(id);
  if (job == nullptr) return JsonErrorResponse(404, "no job '" + id + "'");
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->state != Job::State::kDone &&
        job->state != Job::State::kCancelled) {
      return JsonErrorResponse(
          409, "job '" + id + "' is " + Job::StateName(job->state) +
                   "; the result exists once it is done");
    }
  }
  std::ifstream in(job->output_path, std::ios::binary);
  if (!in) {
    return JsonErrorResponse(404,
                             "job '" + id + "' produced no synthetic CSV");
  }
  std::ostringstream content;
  content << in.rdbuf();
  HttpResponse response;
  response.content_type = "text/csv";
  response.body = content.str();
  return response;
}

HttpResponse Server::HandleCancel(const std::string& id) {
  Status status = jobs_->Cancel(id);
  if (!status.ok()) {
    return JsonErrorResponse(HttpStatusForStatus(status), status.message());
  }
  HttpResponse response;
  response.status = 202;
  response.body = "{\"cancelling\":" + JsonQuote(id) + "}\n";
  return response;
}

HttpResponse Server::HandleQuery(const std::string& id,
                                 const HttpRequest& request) {
  StatusOr<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) {
    return JsonErrorResponse(400, body.status().message());
  }
  const JsonValue* attrs = body->Find("attrs");
  if (attrs == nullptr || attrs->kind() != JsonValue::Kind::kArray) {
    return JsonErrorResponse(400, "query body needs an 'attrs' array");
  }
  std::vector<std::string> names;
  for (const JsonValue& v : attrs->array()) {
    if (v.kind() != JsonValue::Kind::kString) {
      return JsonErrorResponse(400, "'attrs' must hold attribute names");
    }
    names.push_back(v.AsString());
  }
  std::vector<int> sizes;
  StatusOr<std::vector<double>> marginal =
      jobs_->QueryMarginal(id, names, &sizes);
  if (!marginal.ok()) {
    return JsonErrorResponse(HttpStatusForStatus(marginal.status()),
                             marginal.status().message());
  }
  JsonValue out = JsonValue::MakeObject();
  JsonValue cells = JsonValue::MakeArray();
  for (double v : *marginal) cells.array().push_back(JsonValue::MakeNumber(v));
  JsonValue shape = JsonValue::MakeArray();
  for (int s : sizes) {
    shape.array().push_back(JsonValue::MakeNumber(static_cast<double>(s)));
  }
  out.object()["cells"] = std::move(cells);
  out.object()["shape"] = std::move(shape);
  HttpResponse response;
  response.body = out.ToJson() + "\n";
  return response;
}

HttpResponse Server::HandleTenant(const std::string& name) {
  StatusOr<TenantLedger::TenantStatus> status = tenants_.GetStatus(name);
  if (!status.ok()) {
    return JsonErrorResponse(HttpStatusForStatus(status.status()),
                             status.status().message());
  }
  JsonValue out = JsonValue::MakeObject();
  out.object()["tenant"] = JsonValue::MakeString(name);
  out.object()["rho_budget"] = JsonValue::MakeNumber(status->budget);
  out.object()["rho_spent"] = JsonValue::MakeNumber(status->spent);
  out.object()["jobs_admitted"] = JsonValue::MakeNumber(
      static_cast<double>(status->jobs_admitted));
  out.object()["rate_tokens"] =
      JsonValue::MakeNumber(rate_limiter_.Available(name));
  HttpResponse response;
  response.body = out.ToJson() + "\n";
  return response;
}

}  // namespace aim
