// Per-tenant token-bucket rate limiting for job submissions.
//
// Each tenant gets an independent bucket: `burst` tokens of capacity,
// refilled continuously at `per_second` tokens/s. A submission costs one
// token; an empty bucket means HTTP 429. The bucket is intentionally
// simple — admission control so one tenant cannot monopolize the worker
// pool with a submit loop, not a fairness scheduler.

#ifndef AIM_SERVE_RATE_LIMITER_H_
#define AIM_SERVE_RATE_LIMITER_H_

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace aim {

class RateLimiter {
 public:
  // `burst` >= 1 tokens of capacity per tenant, refilled at `per_second`
  // tokens per second. per_second <= 0 disables refill (the bucket is a
  // hard per-process cap — used by tests for determinism).
  RateLimiter(double burst, double per_second)
      : burst_(burst < 1.0 ? 1.0 : burst), per_second_(per_second) {}

  // Consumes one token from `tenant`'s bucket; false when empty. Buckets
  // are created full on first sight of a tenant.
  bool Admit(const std::string& tenant);

  // Remaining tokens (after refill accrual), for /tenants introspection.
  double Available(const std::string& tenant);

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
  };

  Bucket& BucketFor(const std::string& tenant,
                    std::chrono::steady_clock::time_point now);

  const double burst_;
  const double per_second_;
  std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace aim

#endif  // AIM_SERVE_RATE_LIMITER_H_
