#include "serve/tenant.h"

namespace aim {

Status TenantLedger::Provision(const std::string& tenant, double rho_budget) {
  if (!(rho_budget > 0.0)) {
    return InvalidArgumentError("tenant '" + tenant +
                                "': rho budget must be positive");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (accounts_.count(tenant) != 0) {
    return InvalidArgumentError("tenant '" + tenant +
                                "' is already provisioned");
  }
  Account account;
  account.filter = std::make_unique<PrivacyFilter>(rho_budget);
  accounts_.emplace(tenant, std::move(account));
  return Status::Ok();
}

Status TenantLedger::TryReserve(const std::string& tenant, double rho) {
  if (!(rho > 0.0)) {
    return InvalidArgumentError("reservation rho must be positive");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    if (!(default_rho_ > 0.0)) {
      return NotFoundError("tenant '" + tenant +
                           "' is not provisioned and no default budget is "
                           "configured");
    }
    Account account;
    account.filter = std::make_unique<PrivacyFilter>(default_rho_);
    it = accounts_.emplace(tenant, std::move(account)).first;
  }
  PrivacyFilter& filter = *it->second.filter;
  if (!filter.CanSpend(rho)) {
    return FailedPreconditionError(
        "tenant '" + tenant + "': insufficient budget (requested rho=" +
        std::to_string(rho) + ", remaining=" +
        std::to_string(filter.remaining()) + " of " +
        std::to_string(filter.budget()) + ")");
  }
  // Spend under the same lock that checked CanSpend, so two concurrent
  // submissions can never both pass the check and jointly overspend;
  // PrivacyFilter's clamp keeps spent() <= budget() exactly.
  filter.Spend(rho);
  ++it->second.jobs_admitted;
  return Status::Ok();
}

StatusOr<TenantLedger::TenantStatus> TenantLedger::GetStatus(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    return NotFoundError("tenant '" + tenant + "' has no account");
  }
  TenantStatus status;
  status.budget = it->second.filter->budget();
  status.spent = it->second.filter->spent();
  status.jobs_admitted = it->second.jobs_admitted;
  return status;
}

std::vector<std::string> TenantLedger::TenantNames() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(accounts_.size());
  for (const auto& [name, account] : accounts_) names.push_back(name);
  return names;
}

}  // namespace aim
