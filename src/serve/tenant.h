// Per-tenant zCDP budget ledgers for the aimd daemon.
//
// Every tenant is provisioned a lifetime rho budget at daemon startup
// (--tenant=name:rho, or --default-tenant-rho for tenants first seen at
// submission time). Each accepted job reserves its full rho = CdpRho(eps,
// delta) from the tenant's PrivacyFilter BEFORE the job launches — the
// reservation model, not pay-as-you-go: a job that is admitted can always
// run to completion, and a tenant can never have more budget in flight
// than the ledger holds. Cancelled or failed jobs do NOT refund: noisy
// measurements may already have been released (written to checkpoints the
// tenant can resume from), so the conservative ledger position is "spent
// the moment it was promised". Resubmitting with resume_from replays the
// already-paid measurement log, which is why resume costs full price only
// once — the daemon charges the job's whole rho at admission either way,
// keeping the ledger a simple monotone sum that inherits PrivacyFilter's
// spent() <= budget() invariant.

#ifndef AIM_SERVE_TENANT_H_
#define AIM_SERVE_TENANT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dp/accountant.h"
#include "util/status.h"

namespace aim {

class TenantLedger {
 public:
  // `default_rho` is the lifetime budget provisioned to tenants not
  // explicitly configured; <= 0 means unknown tenants are refused.
  explicit TenantLedger(double default_rho) : default_rho_(default_rho) {}

  // Provisions `tenant` with a lifetime budget (startup configuration).
  // Re-provisioning an existing tenant is an error — the ledger is
  // append-only by design.
  Status Provision(const std::string& tenant, double rho_budget);

  // Atomically reserves `rho` from the tenant's filter. Fails with
  // FailedPreconditionError when the remaining budget is insufficient and
  // NotFoundError when the tenant is unknown and no default is provisioned.
  Status TryReserve(const std::string& tenant, double rho);

  struct TenantStatus {
    double budget = 0.0;
    double spent = 0.0;
    int64_t jobs_admitted = 0;
  };

  // Snapshot for /tenants/<name>; NotFoundError when never seen.
  StatusOr<TenantStatus> GetStatus(const std::string& tenant);

  std::vector<std::string> TenantNames();

 private:
  struct Account {
    std::unique_ptr<PrivacyFilter> filter;
    int64_t jobs_admitted = 0;
  };

  const double default_rho_;
  std::mutex mu_;
  std::map<std::string, Account> accounts_;
};

}  // namespace aim

#endif  // AIM_SERVE_TENANT_H_
