// Wire protocol for the aimd daemon: a minimal HTTP/1.1 subset plus a
// dependency-free JSON value type (DESIGN.md "Service layer").
//
// The daemon speaks plain HTTP so `curl` is the whole client story:
// requests carry JSON bodies, responses are JSON objects, and the
// per-job event stream is JSONL (one trace event per line — the same
// records a --trace-out file holds). Parsing is deliberately strict and
// small: one request per connection, Content-Length framing only (no
// chunked encoding, no keep-alive), bounded sizes everywhere so a hostile
// peer cannot balloon memory.

#ifndef AIM_SERVE_PROTOCOL_H_
#define AIM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace aim {

// ---- JSON. ----

// A parsed JSON value. Objects preserve no duplicate keys (last wins);
// numbers are always doubles (the protocol's integer fields are small
// enough for exact double representation).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  std::vector<JsonValue>& array() { return array_; }
  const std::vector<JsonValue>& array() const { return array_; }
  std::map<std::string, JsonValue>& object() { return object_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Typed object-member accessors with defaults, for protocol fields.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  // Serializes to compact JSON (stable key order for objects; non-finite
  // numbers render as null, matching the trace sink convention).
  std::string ToJson() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses one JSON document (trailing whitespace allowed, nothing else).
// Depth- and size-bounded: nesting beyond 64 levels is an error.
StatusOr<JsonValue> ParseJson(const std::string& text);

// Escapes and quotes `s` as a JSON string literal.
std::string JsonQuote(const std::string& s);

// ---- HTTP. ----

struct HttpRequest {
  std::string method;  // "GET", "POST"
  std::string path;    // path only, query string split off
  std::string query;   // raw query string without '?', "" when absent
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// Parses one HTTP request from `raw` (start line + headers + body). The
// caller has already framed the message (ReadHttpRequest does the
// Content-Length handling); this validates and splits it.
StatusOr<HttpRequest> ParseHttpRequest(const std::string& raw);

// Reads one request from a connected socket fd: headers until CRLFCRLF,
// then exactly Content-Length body bytes. Enforces kMaxRequestBytes and
// the socket's receive timeout. Returns UnavailableError on EOF/timeout.
StatusOr<HttpRequest> ReadHttpRequest(int fd);

// Serializes `response` (Content-Length framed, Connection: close) and
// writes it fully to `fd`. Best-effort: a peer that hung up mid-write is
// the peer's problem, not the daemon's.
void WriteHttpResponse(int fd, const HttpResponse& response);

// Reason phrase for the handful of status codes the daemon emits.
const char* HttpReasonPhrase(int status);

// Hard cap on a request's total size (start line + headers + body).
inline constexpr size_t kMaxRequestBytes = 1 << 20;

// Convenience: a JSON error body {"error": message} with the given status.
HttpResponse JsonErrorResponse(int status, const std::string& message);

// Splits a URL path into segments ("/jobs/j-1/events" -> {"jobs", "j-1",
// "events"}); empty segments are dropped.
std::vector<std::string> SplitPath(const std::string& path);

}  // namespace aim

#endif  // AIM_SERVE_PROTOCOL_H_
