// The aimd HTTP front end: a blocking-socket accept loop over the job
// manager, tenant ledger, and rate limiter.
//
// Routes (all responses JSON unless noted):
//   GET  /healthz                 liveness probe
//   POST /jobs                    submit a synthesis job (JobSpec JSON);
//                                 400 bad spec, 403 budget exhausted,
//                                 404 unknown dataset/tenant, 429 rate limit
//   GET  /jobs                    list job status snapshots
//   GET  /jobs/<id>               one job's status snapshot
//   GET  /jobs/<id>/events?from=N the job's trace stream from line N
//                                 (JSONL; tail by polling with the returned
//                                 line count)
//   GET  /jobs/<id>/result        the synthetic CSV (409 until done)
//   POST /jobs/<id>/cancel        trip the job's CancelToken
//   POST /jobs/<id>/query         {"attrs": [names]} -> post-hoc marginal
//                                 from the fitted model (no privacy cost)
//   GET  /tenants/<name>          ledger position + rate-limit tokens
//
// Requests are handled serially on the accept thread: every handler is a
// quick in-memory operation (submission enqueues; the heavy lifting runs
// on the job manager's workers), so a second listener thread would buy
// nothing but locking subtlety. Graceful shutdown: Shutdown() (or the
// process CancelToken, polled in ServeForever) stops accepting, then
// drains the job manager — running jobs wind down at their next round
// boundary with a final checkpoint before the daemon exits.

#ifndef AIM_SERVE_SERVER_H_
#define AIM_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <string>

#include "serve/job_manager.h"
#include "serve/protocol.h"
#include "serve/rate_limiter.h"
#include "serve/tenant.h"
#include "util/cancel.h"
#include "util/status.h"

namespace aim {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral (tests); port() reports the bound port
  JobManagerOptions jobs;
  double default_tenant_rho = 0.0;  // <= 0: unknown tenants are refused
  double rate_burst = 8.0;          // token-bucket capacity per tenant
  double rate_per_second = 1.0;     // refill rate; <= 0 disables refill
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  // Binds and listens. Must be called (successfully) before Serve*.
  Status Start();

  // The bound port (after Start), for ephemeral-port tests.
  int port() const { return port_; }

  TenantLedger& tenants() { return tenants_; }
  JobManager& jobs() { return *jobs_; }

  // Accept loop; returns after Shutdown() is called or `cancel` (may be
  // null) trips. Polls at ~5 Hz between connections so shutdown is prompt
  // even on an idle listener.
  void ServeForever(CancelToken* cancel);

  // Stops the accept loop and drains the job manager (graceful).
  void Shutdown();

  // Test hook: handles one already-parsed request (no sockets involved).
  HttpResponse Handle(const HttpRequest& request);

 private:
  void HandleConnection(int fd);
  HttpResponse HandleSubmit(const HttpRequest& request);
  HttpResponse HandleJobGet(const std::string& id);
  HttpResponse HandleEvents(const std::string& id, const std::string& query);
  HttpResponse HandleResult(const std::string& id);
  HttpResponse HandleCancel(const std::string& id);
  HttpResponse HandleQuery(const std::string& id, const HttpRequest& request);
  HttpResponse HandleTenant(const std::string& name);

  const ServerOptions options_;
  TenantLedger tenants_;
  RateLimiter rate_limiter_;
  std::unique_ptr<JobManager> jobs_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
};

// Maps a Status from the serve layer to the HTTP status it should produce
// (FailedPrecondition -> 403 for budget refusals, NotFound -> 404, ...).
int HttpStatusForStatus(const Status& status);

}  // namespace aim

#endif  // AIM_SERVE_SERVER_H_
