#include "serve/job_manager.h"

#include <sys/stat.h>

#include <cmath>
#include <exception>
#include <utility>

#include "data/csv.h"
#include "data/data_source.h"
#include "data/preprocess.h"
#include "dp/accountant.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "mechanisms/registry.h"
#include "obs/metrics.h"
#include "robust/generations.h"
#include "util/logging.h"

namespace aim {
namespace {

// mkdir -p for the job directory tree; EEXIST is success.
Status MakeDirs(const std::string& path) {
  std::string partial;
  size_t start = 0;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    partial = path.substr(0, end);
    start = end + 1;
    if (partial.empty()) continue;
    if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return InternalError("cannot create directory '" + partial + "'");
    }
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

// The same workload vocabulary as aim_cli --workload.
StatusOr<Workload> BuildWorkload(const Domain& domain,
                                 const std::string& name) {
  if (name == "all3way") {
    return AllKWayWorkload(domain, std::min(3, domain.num_attributes()));
  }
  if (name == "all2way") {
    return AllKWayWorkload(domain, std::min(2, domain.num_attributes()));
  }
  if (name.rfind("target:", 0) == 0) {
    const std::string attr = name.substr(7);
    const int target = domain.IndexOf(attr);
    if (target < 0) {
      return InvalidArgumentError("no attribute named '" + attr + "'");
    }
    return TargetWorkload(domain, std::min(3, domain.num_attributes()),
                          target);
  }
  return InvalidArgumentError("unknown workload '" + name +
                              "' (expected all3way, all2way, or "
                              "target:<attribute>)");
}

bool IsValidWorkloadName(const std::string& name) {
  return name == "all3way" || name == "all2way" ||
         (name.rfind("target:", 0) == 0 && name.size() > 7);
}

std::string HexFingerprint(uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

}  // namespace

StatusOr<JobSpec> ParseJobSpec(const JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return InvalidArgumentError("job spec must be a JSON object");
  }
  JobSpec spec;
  spec.tenant = json.GetString("tenant", spec.tenant);
  spec.dataset = json.GetString("dataset", "");
  spec.mechanism = json.GetString("mechanism", spec.mechanism);
  spec.workload = json.GetString("workload", spec.workload);
  spec.resume_from = json.GetString("resume_from", "");
  spec.epsilon = json.GetNumber("epsilon", spec.epsilon);
  spec.delta = json.GetNumber("delta", spec.delta);
  spec.max_size_mb = json.GetNumber("max_size_mb", spec.max_size_mb);
  const double seed = json.GetNumber("seed", 0.0);
  const double records = json.GetNumber("records", -1.0);
  const double bins = json.GetNumber("bins", 32.0);

  if (spec.tenant.empty()) {
    return InvalidArgumentError("tenant must be non-empty");
  }
  if (spec.dataset.empty()) {
    return InvalidArgumentError("job spec needs a 'dataset' path");
  }
  if (!(spec.epsilon > 0.0)) {
    return InvalidArgumentError("epsilon must be positive");
  }
  if (!(spec.delta > 0.0 && spec.delta < 1.0)) {
    return InvalidArgumentError("delta must be in (0, 1)");
  }
  if (!(spec.max_size_mb > 0.0)) {
    return InvalidArgumentError("max_size_mb must be positive");
  }
  if (!IsValidWorkloadName(spec.workload)) {
    return InvalidArgumentError("unknown workload '" + spec.workload + "'");
  }
  if (!(seed >= 0.0 && seed <= 9.0e15 && seed == std::floor(seed))) {
    return InvalidArgumentError("seed must be a non-negative integer");
  }
  spec.seed = static_cast<uint64_t>(seed);
  if (!(records == std::floor(records) && records <= 9.0e15)) {
    return InvalidArgumentError("records must be an integer");
  }
  spec.records = static_cast<int64_t>(records);
  if (!(bins >= 1.0 && bins <= 1.0e6 && bins == std::floor(bins))) {
    return InvalidArgumentError("bins must be an integer in [1, 1e6]");
  }
  spec.bins = static_cast<int>(bins);
  return spec;
}

void JobTraceSink::Emit(const TraceEvent& event) {
  std::string line = event.ToJson();
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(std::move(line));
  if (event.type() == "aim_round") ++rounds_;
}

std::vector<std::string> JobTraceSink::LinesFrom(size_t from) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= lines_.size()) return {};
  return std::vector<std::string>(lines_.begin() +
                                      static_cast<ptrdiff_t>(from),
                                  lines_.end());
}

size_t JobTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

int64_t JobTraceSink::rounds_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rounds_;
}

const char* Job::StateName(State state) {
  switch (state) {
    case State::kQueued: return "queued";
    case State::kRunning: return "running";
    case State::kDone: return "done";
    case State::kFailed: return "failed";
    case State::kCancelled: return "cancelled";
  }
  return "unknown";
}

JsonValue Job::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.object()["id"] = JsonValue::MakeString(id);
  out.object()["tenant"] = JsonValue::MakeString(spec.tenant);
  out.object()["mechanism"] = JsonValue::MakeString(spec.mechanism);
  out.object()["dataset"] = JsonValue::MakeString(spec.dataset);
  out.object()["workload"] = JsonValue::MakeString(spec.workload);
  out.object()["epsilon"] = JsonValue::MakeNumber(spec.epsilon);
  out.object()["delta"] = JsonValue::MakeNumber(spec.delta);
  out.object()["rho"] = JsonValue::MakeNumber(rho);
  out.object()["events"] =
      JsonValue::MakeNumber(static_cast<double>(trace.size()));
  const int64_t live_rounds = trace.rounds_completed();
  std::lock_guard<std::mutex> lock(mu);
  out.object()["state"] = JsonValue::MakeString(StateName(state));
  out.object()["rounds"] = JsonValue::MakeNumber(static_cast<double>(
      rounds > live_rounds ? rounds : live_rounds));
  out.object()["rho_used"] = JsonValue::MakeNumber(rho_used);
  out.object()["seconds"] = JsonValue::MakeNumber(seconds);
  out.object()["synthetic_records"] =
      JsonValue::MakeNumber(static_cast<double>(synthetic_records));
  out.object()["checkpoint"] = JsonValue::MakeString(checkpoint_path);
  if (fingerprint != 0) {
    out.object()["fingerprint"] =
        JsonValue::MakeString(HexFingerprint(fingerprint));
  }
  if (!error.empty()) out.object()["error"] = JsonValue::MakeString(error);
  return out;
}

JobManager::JobManager(const JobManagerOptions& options, TenantLedger* ledger)
    : options_(options), ledger_(ledger) {
  const int workers = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

JobManager::~JobManager() { Shutdown(); }

StatusOr<std::shared_ptr<Job>> JobManager::Submit(const JobSpec& spec) {
  // Validate everything cheap BEFORE charging the tenant's ledger: a spec
  // that can never run must not cost budget. (A job that fails later —
  // corrupt CSV, mid-run fault — keeps its charge; see serve/tenant.h.)
  if (!FileExists(spec.dataset)) {
    return NotFoundError("dataset '" + spec.dataset + "' does not exist");
  }
  {
    std::unique_ptr<Mechanism> probe = MechanismByName(spec.mechanism);
    if (probe == nullptr) {
      return InvalidArgumentError("unknown mechanism '" + spec.mechanism +
                                  "'");
    }
  }
  if (!spec.resume_from.empty() && spec.mechanism != "AIM") {
    return InvalidArgumentError("resume_from requires mechanism AIM");
  }
  const double rho = CdpRho(spec.epsilon, spec.delta);
  if (!(rho > 0.0)) {
    return InvalidArgumentError("privacy budget converts to rho <= 0");
  }

  std::shared_ptr<Job> job = std::make_shared<Job>();
  job->spec = spec;
  job->rho = rho;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return UnavailableError("daemon is shutting down");
    }
    job->id = "j-" + std::to_string(next_id_++);
  }
  job->dir = options_.work_dir + "/jobs/" + job->id;
  job->checkpoint_path = job->dir + "/checkpoint";
  job->output_path = job->dir + "/synthetic.csv";
  Status made = MakeDirs(job->dir);
  if (!made.ok()) return made;

  // The admission charge: the job's whole rho, atomically, under the
  // ledger's own lock. This is the multi-tenant invariant — no interleaving
  // of submissions can push a tenant's spent() past its budget().
  Status reserved = ledger_->TryReserve(spec.tenant, rho);
  if (!reserved.ok()) return reserved;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return UnavailableError("daemon is shutting down");
    }
    jobs_[job->id] = job;
    queue_.push_back(job);
  }
  work_cv_.notify_one();
  return job;
}

std::shared_ptr<Job> JobManager::Find(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Job>> JobManager::Jobs() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Job>> jobs;
  jobs.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) jobs.push_back(job);
  return jobs;
}

Status JobManager::Cancel(const std::string& id) {
  std::shared_ptr<Job> job = Find(id);
  if (job == nullptr) return NotFoundError("no job '" + id + "'");
  job->cancel.Cancel();
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->state == Job::State::kQueued) {
      job->state = Job::State::kCancelled;
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<double>> JobManager::QueryMarginal(
    const std::string& id, const std::vector<std::string>& attr_names,
    std::vector<int>* sizes) {
  std::shared_ptr<Job> job = Find(id);
  if (job == nullptr) return NotFoundError("no job '" + id + "'");
  std::lock_guard<std::mutex> lock(job->mu);
  if (!job->model.has_value()) {
    return FailedPreconditionError("job '" + id +
                                   "' has no fitted model to query (state " +
                                   Job::StateName(job->state) + ")");
  }
  std::vector<int> attrs;
  attrs.reserve(attr_names.size());
  for (const std::string& name : attr_names) {
    const int attr = job->domain.IndexOf(name);
    if (attr < 0) {
      return InvalidArgumentError("no attribute named '" + name + "'");
    }
    attrs.push_back(attr);
  }
  if (attrs.empty()) {
    return InvalidArgumentError("query needs at least one attribute");
  }
  const AttrSet attr_set{std::vector<int>(attrs)};
  if (sizes != nullptr) {
    sizes->clear();
    for (int attr : attr_set) sizes->push_back(job->domain.size(attr));
  }
  // Post-processing of the fitted model: answering any number of marginal
  // queries here is privacy-free (the DP cost was paid by the
  // measurements; the model is a deterministic function of them).
  return job->model->MarginalVector(attr_set);
}

void JobManager::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::vector<std::shared_ptr<Job>> to_cancel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
    // Queued jobs never start; running jobs get their token tripped and
    // wind down at the next round boundary with a final checkpoint.
    for (const std::shared_ptr<Job>& job : queue_) {
      std::lock_guard<std::mutex> job_lock(job->mu);
      if (job->state == Job::State::kQueued) {
        job->state = Job::State::kCancelled;
      }
    }
    queue_.clear();
    for (const auto& [id, job] : jobs_) to_cancel.push_back(job);
  }
  for (const std::shared_ptr<Job>& job : to_cancel) job->cancel.Cancel();
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

bool JobManager::WaitIdle(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), [this] {
        return queue_.empty() && running_ == 0;
      });
}

void JobManager::WorkerLoop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      ++running_;
    }
    {
      bool skip = false;
      {
        std::lock_guard<std::mutex> lock(job->mu);
        if (job->state != Job::State::kQueued) {
          skip = true;  // cancelled while queued
        } else {
          job->state = Job::State::kRunning;
        }
      }
      if (!skip) RunJob(job);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    idle_cv_.notify_all();
  }
}

StatusOr<std::shared_ptr<StoreSource>> JobManager::OpenStoreShared(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = store_cache_.find(path);
    if (it != store_cache_.end()) return it->second;
  }
  StatusOr<std::unique_ptr<StoreSource>> opened = StoreSource::Open(path);
  if (!opened.ok()) return opened.status();
  std::shared_ptr<StoreSource> shared = std::move(*opened);
  std::lock_guard<std::mutex> lock(mu_);
  // Two jobs racing to open the same store: keep the first mapping, drop
  // ours — the cache guarantees one shared mapping per path at rest.
  auto [it, inserted] = store_cache_.emplace(path, shared);
  return it->second;
}

void JobManager::RunJob(const std::shared_ptr<Job>& job) {
  // Route this thread's trace events to the job's buffer and label its
  // gauge publishes, so concurrent jobs never interleave or clobber.
  ScopedThreadTraceSink trace_scope(&job->trace);
  ScopedMetricLabel metric_scope(job->id);

  auto fail = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = Job::State::kFailed;
    job->error = status.ToString();
  };

  try {
    // ---- Load the dataset: shared mmap for stores, parse+preprocess for
    // raw CSV (same auto-detection as aim_cli).
    std::shared_ptr<StoreSource> store;
    std::optional<PreprocessResult> prep;
    std::optional<DatasetSource> csv_source;
    const DataSource* source = nullptr;
    if (IsStoreFile(job->spec.dataset)) {
      StatusOr<std::shared_ptr<StoreSource>> opened =
          OpenStoreShared(job->spec.dataset);
      if (!opened.ok()) return fail(opened.status());
      store = *opened;
      source = store.get();
    } else {
      StatusOr<RawTable> table = ReadCsv(job->spec.dataset);
      if (!table.ok()) return fail(table.status());
      PreprocessOptions prep_options;
      prep_options.num_bins = job->spec.bins;
      StatusOr<PreprocessResult> preprocessed =
          Preprocess(*table, prep_options);
      if (!preprocessed.ok()) return fail(preprocessed.status());
      prep.emplace(*std::move(preprocessed));
      csv_source.emplace(prep->dataset);
      source = &*csv_source;
    }
    const Domain& domain = source->domain();
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->domain = domain;
    }

    StatusOr<Workload> workload = BuildWorkload(domain, job->spec.workload);
    if (!workload.ok()) return fail(workload.status());

    // ---- Build the mechanism through the registry, with the job-scoped
    // fault-tolerance and cancellation options.
    RegistryOptions reg;
    reg.max_size_mb = job->spec.max_size_mb;
    reg.checkpoint_path = job->checkpoint_path;
    reg.checkpoint_every_rounds = 1;
    reg.checkpoint_generations = options_.checkpoint_generations;
    reg.resume_path = job->spec.resume_from;
    reg.synthetic_records = job->spec.records;
    // aim_cli's default (no --report): keeps the fingerprint aligned with
    // the CLI so checkpoints are portable between the daemon and the CLI.
    reg.record_candidates = false;
    reg.cancel = &job->cancel;
    std::unique_ptr<Mechanism> mechanism =
        MechanismByName(job->spec.mechanism, reg);
    if (mechanism == nullptr) {
      return fail(InvalidArgumentError("unknown mechanism '" +
                                       job->spec.mechanism + "'"));
    }

    if (auto* an_aim = dynamic_cast<AimMechanism*>(mechanism.get())) {
      const uint64_t fingerprint = AimRunFingerprint(
          domain, *workload, an_aim->options(), job->rho);
      {
        std::lock_guard<std::mutex> lock(job->mu);
        job->fingerprint = fingerprint;
      }
      // Pre-validate a resume ladder so a stale or foreign snapshot is a
      // typed job failure, not a CHECK abort that takes the daemon down.
      if (!job->spec.resume_from.empty()) {
        StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
            job->spec.resume_from, fingerprint, job->rho);
        if (!loaded.ok()) {
          return fail(Status(loaded.status().code(),
                             "cannot resume from '" + job->spec.resume_from +
                                 "': " + loaded.status().message()));
        }
      }
    }

    // ---- Run. Same seed derivation as aim_cli, so a daemon job and the
    // equivalent CLI invocation are byte-identical.
    Rng rng(job->spec.seed + 0x41494D);
    MechanismResult result =
        mechanism->Run(*source, *workload, job->rho, rng);

    Status written = Status::Ok();
    if (result.has_synthetic) {
      written = WriteCsv(result.synthetic, job->output_path);
    }
    std::lock_guard<std::mutex> lock(job->mu);
    job->rounds = result.rounds;
    job->seconds = result.seconds;
    job->rho_used = result.rho_used;
    job->synthetic_records = result.synthetic.num_records();
    job->model = std::move(result.final_model);
    if (!written.ok()) {
      job->state = Job::State::kFailed;
      job->error = written.ToString();
    } else if (result.cancelled) {
      // Wound down at a round boundary: the output in hand is still a
      // valid DP synthesis of the measurements so far, and the checkpoint
      // ladder in the job directory resumes the rest.
      job->state = Job::State::kCancelled;
    } else {
      job->state = Job::State::kDone;
    }
  } catch (const std::exception& e) {
    fail(InternalError(e.what()));
  }
}

}  // namespace aim
