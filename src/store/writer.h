// Streaming writer for `.aim` columnar stores and sharded store sets.

#ifndef AIM_STORE_WRITER_H_
#define AIM_STORE_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/domain.h"
#include "util/status.h"

namespace aim {

struct StoreWriterOptions {
  // Rows per shard. <= 0 writes a single `.aim` file at the target path.
  // Positive: the target path becomes a shard manifest and the shards land
  // next to it as `<stem>.00000.aim`, `<stem>.00001.aim`, ... — the writer
  // buffers at most one shard (shard_rows x sum of column widths bytes), so
  // converting a dataset far beyond RAM needs only the shard working set.
  int64_t shard_rows = 0;
};

// Single-pass streaming writer. Records append one at a time; every flush
// (full shard, or Finish) is an atomic tmp+fsync+rename write, so a crash
// mid-conversion never leaves a torn store — at worst a missing manifest.
//
//   StoreWriter writer(domain, "data.aim", {.shard_rows = 1 << 20});
//   for (...) AIM_CHECK(writer.Append(record).ok());
//   Status s = writer.Finish();
class StoreWriter {
 public:
  StoreWriter(Domain domain, std::string path,
              StoreWriterOptions options = {});

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  // Appends one record (one in-domain value per attribute). Fails on
  // out-of-domain values and on shard-flush I/O errors; after a failure the
  // writer is dead (every later call reports the first error).
  Status Append(const std::vector<int>& record);

  // Flushes the trailing shard (and the manifest, in sharded mode). Must be
  // called exactly once; no Append may follow.
  Status Finish();

  // Best-effort removal of every file this writer has created (flushed
  // shards and the manifest), so a failed conversion leaves the output
  // location empty instead of a truncated store or a manifest naming
  // missing shards. Only paths this writer wrote are touched. csv2aim
  // calls this on every failure path.
  void RemovePartialOutputs();

  int64_t rows_written() const { return total_rows_; }
  int shards_written() const { return shards_flushed_; }

  // Absolute/relative paths of every file written so far (shards, then the
  // manifest once Finish succeeds), for cleanup and tests.
  const std::vector<std::string>& written_paths() const {
    return written_paths_;
  }

 private:
  Status FlushShard();

  Domain domain_;
  std::string path_;
  StoreWriterOptions options_;
  std::vector<int> widths_;            // per-attribute encoding width
  std::vector<std::string> columns_;   // buffered encoded column bytes
  int64_t shard_rows_buffered_ = 0;
  int64_t total_rows_ = 0;
  int shards_flushed_ = 0;
  bool finished_ = false;
  std::vector<std::pair<std::string, int64_t>> shard_files_;  // name, rows
  std::vector<std::string> written_paths_;  // full paths, for cleanup
  Status status_;  // first error, sticky
};

// Serializes one shard to the in-memory `.aim` byte layout (exposed for
// tests that corrupt specific bytes).
std::string SerializeStoreShard(const Domain& domain,
                                const std::vector<std::string>& column_bytes,
                                int64_t num_records);

// Convenience: writes an in-memory dataset as a store (sharded per
// `options`).
Status WriteStore(const Dataset& data, const std::string& path,
                  const StoreWriterOptions& options = {});

}  // namespace aim

#endif  // AIM_STORE_WRITER_H_
