#include "store/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "robust/fault.h"
#include "robust/retry.h"
#include "store/format.h"
#include "util/atomic_file.h"
#include "util/logging.h"

namespace aim {

using namespace store_format;

namespace {

const FaultPointRegistration kStoreReadFault{"store_read"};
const FaultPointRegistration kManifestOpenFault{"manifest_open"};

// Shard and manifest opens sit behind a retry: a transient open/map failure
// (kInternal/kUnavailable, including injected "store_read" faults) gets
// re-attempted with deterministic backoff, while corruption
// (kInvalidArgument) and missing files (kNotFound) fail immediately.
const RetryPolicy& StoreRetryPolicy() {
  static const RetryPolicy policy{};
  return policy;
}

constexpr size_t kPageSize = 4096;

Status CorruptError(const std::string& path, const std::string& detail) {
  return InvalidArgumentError("store: " + path + ": " + detail);
}

}  // namespace

StoreReader::StoreReader(StoreReader&& other) noexcept
    : domain_(std::move(other.domain_)),
      num_records_(other.num_records_),
      base_(other.base_),
      size_(other.size_),
      columns_(std::move(other.columns_)) {
  other.base_ = nullptr;
  other.size_ = 0;
}

StoreReader& StoreReader::operator=(StoreReader&& other) noexcept {
  if (this != &other) {
    Unmap();
    domain_ = std::move(other.domain_);
    num_records_ = other.num_records_;
    base_ = other.base_;
    size_ = other.size_;
    columns_ = std::move(other.columns_);
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

StoreReader::~StoreReader() { Unmap(); }

void StoreReader::Unmap() {
  if (base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), size_);
    base_ = nullptr;
    size_ = 0;
  }
}

StatusOr<StoreReader> StoreReader::Open(const std::string& path,
                                        const StoreOpenOptions& options) {
  Status fault = FaultStatus("store_read");
  if (!fault.ok()) return fault;

  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return errno == ENOENT
               ? NotFoundError("store: cannot open " + path)
               : InternalError("store: cannot open " + path + ": " +
                               std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return InternalError("store: fstat of " + path + " failed: " +
                         std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kFixedHeaderBytes + 8) {
    ::close(fd);
    return CorruptError(path, "file too small to hold a store header (" +
                                  std::to_string(size) + " bytes)");
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) {
    return InternalError("store: mmap of " + path + " failed: " +
                         std::strerror(errno));
  }

  StoreReader reader;
  reader.base_ = static_cast<const uint8_t*>(mapping);
  reader.size_ = size;
  const uint8_t* p = reader.base_;

  // ---- Fixed header.
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return CorruptError(path, "bad magic (not an .aim store)");
  }
  const uint32_t version = LoadLe32(p + 8);
  if (version != kFormatVersion) {
    return CorruptError(path, "unsupported format version " +
                                  std::to_string(version) + " (expected " +
                                  std::to_string(kFormatVersion) + ")");
  }
  const uint32_t header_bytes = LoadLe32(p + 12);
  if (header_bytes < kFixedHeaderBytes + 8 || header_bytes > size) {
    return CorruptError(path, "implausible header size " +
                                  std::to_string(header_bytes));
  }
  const uint64_t num_records = LoadLe64(p + 16);
  const uint32_t num_attributes = LoadLe32(p + 24);
  if (num_records > (uint64_t{1} << 48)) {
    return CorruptError(path, "implausible record count");
  }
  if (num_attributes == 0 || num_attributes > 1000000) {
    return CorruptError(path, "implausible attribute count " +
                                  std::to_string(num_attributes));
  }

  // ---- Header checksum (before parsing the variable section, so a torn
  // or bit-flipped header is rejected wholesale).
  const uint64_t stored_header_checksum = LoadLe64(p + header_bytes - 8);
  const uint64_t actual_header_checksum = Fnv1a(p, header_bytes - 8);
  if (stored_header_checksum != actual_header_checksum) {
    return CorruptError(path, "header checksum mismatch (file corrupt)");
  }

  // ---- Per-attribute entries.
  std::vector<std::string> names;
  std::vector<int> sizes;
  names.reserve(num_attributes);
  sizes.reserve(num_attributes);
  reader.columns_.reserve(num_attributes);
  size_t offset = kFixedHeaderBytes;
  const size_t header_end = header_bytes - 8;
  for (uint32_t a = 0; a < num_attributes; ++a) {
    auto need = [&](size_t n) { return offset + n <= header_end; };
    if (!need(4)) return CorruptError(path, "truncated attribute table");
    const uint32_t name_bytes = LoadLe32(p + offset);
    offset += 4;
    if (name_bytes > 65536 || !need(name_bytes + 4 + 4 + 8 + 8 + 8)) {
      return CorruptError(path, "truncated attribute table");
    }
    names.emplace_back(reinterpret_cast<const char*>(p + offset), name_bytes);
    offset += name_bytes;
    const uint32_t domain_size = LoadLe32(p + offset);
    offset += 4;
    const uint32_t width = LoadLe32(p + offset);
    offset += 4;
    const uint64_t column_offset = LoadLe64(p + offset);
    offset += 8;
    const uint64_t column_bytes = LoadLe64(p + offset);
    offset += 8;
    const uint64_t column_checksum = LoadLe64(p + offset);
    offset += 8;

    if (domain_size == 0 || domain_size > (uint32_t{1} << 30)) {
      return CorruptError(path, "attribute " + std::to_string(a) +
                                    ": implausible domain size");
    }
    if (width != static_cast<uint32_t>(
                     EncodingWidth(static_cast<int>(domain_size)))) {
      return CorruptError(path, "attribute " + std::to_string(a) +
                                    ": width " + std::to_string(width) +
                                    " is not the minimal encoding for " +
                                    std::to_string(domain_size) + " values");
    }
    if (column_bytes != num_records * width) {
      return CorruptError(path, "attribute " + std::to_string(a) +
                                    ": column byte count disagrees with the "
                                    "record count");
    }
    if (column_offset % kColumnAlignment != 0 ||
        column_offset < header_bytes || column_offset > size ||
        column_bytes > size - column_offset) {
      return CorruptError(path, "attribute " + std::to_string(a) +
                                    ": column block out of file bounds");
    }
    Column column;
    column.data = p + column_offset;
    column.width = static_cast<int>(width);
    column.bytes = column_bytes;
    reader.columns_.push_back(column);

    if (options.verify) {
      if (Fnv1a(column.data, column.bytes) != column_checksum) {
        return CorruptError(path, "attribute " + std::to_string(a) + " ('" +
                                      names.back() +
                                      "'): column checksum mismatch");
      }
      ColumnView view{column.data, column.width};
      for (uint64_t row = 0; row < num_records; ++row) {
        const int32_t v = view.at(static_cast<int64_t>(row));
        if (static_cast<uint32_t>(v) >= domain_size) {
          return CorruptError(
              path, "attribute " + std::to_string(a) + " ('" + names.back() +
                        "'): value " + std::to_string(v) + " at row " +
                        std::to_string(row) + " is out of domain [0, " +
                        std::to_string(domain_size) + ")");
        }
      }
    }
    sizes.push_back(static_cast<int>(domain_size));
  }
  if (offset != header_end) {
    return CorruptError(path, "attribute table size disagrees with header");
  }

  reader.domain_ = Domain(std::move(names), std::move(sizes));
  reader.num_records_ = static_cast<int64_t>(num_records);

  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter& opens = registry.counter("store.opens");
    static Counter& bytes_mapped = registry.counter("store.bytes_mapped");
    opens.Add(1);
    bytes_mapped.Add(static_cast<int64_t>(size));
  }
  return reader;
}

void StoreReader::ReleaseRows(int64_t row_begin, int64_t row_end) const {
  if (base_ == nullptr || row_begin >= row_end) return;
  int64_t dropped = 0;
  for (const Column& column : columns_) {
    // Page-align inward: a page shared with rows outside the range stays.
    const uintptr_t lo_addr =
        reinterpret_cast<uintptr_t>(column.data) + row_begin * column.width;
    const uintptr_t hi_addr =
        reinterpret_cast<uintptr_t>(column.data) + row_end * column.width;
    const uintptr_t lo = (lo_addr + kPageSize - 1) / kPageSize * kPageSize;
    const uintptr_t hi = hi_addr / kPageSize * kPageSize;
    if (lo >= hi) continue;
    ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_DONTNEED);
    dropped += static_cast<int64_t>(hi - lo);
  }
  if (dropped > 0 && MetricsEnabled()) {
    static Counter& pages_dropped =
        MetricsRegistry::Global().counter("store.pages_dropped");
    pages_dropped.Add(dropped / static_cast<int64_t>(kPageSize));
  }
}

int64_t StoreReader::ResidentBytes() const {
#ifdef __linux__
  if (base_ == nullptr) return 0;
  std::ifstream smaps("/proc/self/smaps");
  if (!smaps) return -1;
  char start_hex[32];
  std::snprintf(start_hex, sizeof(start_hex), "%" PRIxPTR,
                reinterpret_cast<uintptr_t>(base_));
  std::string line;
  bool in_mapping = false;
  while (std::getline(smaps, line)) {
    if (line.compare(0, std::strlen(start_hex), start_hex) == 0 &&
        line.find('-') == std::strlen(start_hex)) {
      in_mapping = true;
      continue;
    }
    if (in_mapping && line.compare(0, 4, "Rss:") == 0) {
      int64_t kb = 0;
      std::istringstream fields(line.substr(4));
      fields >> kb;
      return kb * 1024;
    }
  }
  return -1;
#else
  return -1;
#endif
}

// ---------------------------------------------------------- StoreSource ----

namespace {

// Manifest grammar:
//   AIM_MANIFEST v1
//   shards <k>
//   s <filename> <rows>        (k lines; filename relative to the manifest)
//   checksum <fnv1a-64 hex of everything above>
StatusOr<std::vector<std::pair<std::string, int64_t>>> ParseManifest(
    const std::string& content, const std::string& path) {
  const size_t pos = content.rfind("checksum ");
  if (pos == std::string::npos || (pos != 0 && content[pos - 1] != '\n')) {
    return CorruptError(path, "manifest: missing checksum line");
  }
  {
    std::istringstream tail(content.substr(pos));
    std::string label, hex;
    tail >> label >> hex;
    uint64_t stored = 0;
    char* end = nullptr;
    errno = 0;
    stored = std::strtoull(hex.c_str(), &end, 16);
    if (errno != 0 || end == hex.c_str() || *end != '\0') {
      return CorruptError(path, "manifest: bad checksum value");
    }
    if (stored != Fnv1a(content.data(), pos)) {
      return CorruptError(path,
                          "manifest: checksum mismatch (file corrupt)");
    }
  }
  std::istringstream in(content.substr(0, pos));
  std::string magic, version, label;
  in >> magic >> version;
  if (magic != kManifestMagic) {
    return CorruptError(path, "manifest: bad magic");
  }
  if (version != "v1") {
    return CorruptError(path, "manifest: unsupported version '" + version +
                                  "'");
  }
  int64_t num_shards = 0;
  in >> label >> num_shards;
  if (label != "shards" || num_shards < 0 || num_shards > 1000000) {
    return CorruptError(path, "manifest: implausible shard count");
  }
  std::vector<std::pair<std::string, int64_t>> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  for (int64_t i = 0; i < num_shards; ++i) {
    std::string tag, name;
    int64_t rows = -1;
    in >> tag >> name >> rows;
    if (tag != "s" || name.empty() || rows < 0) {
      return CorruptError(path, "manifest: malformed shard entry " +
                                    std::to_string(i));
    }
    if (name.find('/') != std::string::npos) {
      return CorruptError(path, "manifest: shard name '" + name +
                                    "' must be relative to the manifest");
    }
    shards.emplace_back(std::move(name), rows);
  }
  return shards;
}

}  // namespace

StatusOr<std::unique_ptr<StoreSource>> StoreSource::Open(
    const std::string& path, const StoreOpenOptions& options) {
  // Sniff the leading bytes to pick single-shard vs manifest.
  std::ifstream sniff(path, std::ios::binary);
  if (!sniff) return NotFoundError("store: cannot open " + path);
  char lead[sizeof(kMagic)] = {};
  sniff.read(lead, sizeof(lead));
  sniff.close();

  std::unique_ptr<StoreSource> source(new StoreSource());
  if (std::memcmp(lead, kMagic, sizeof(kMagic)) == 0) {
    StatusOr<StoreReader> reader = StoreRetryPolicy().RunOr(
        "store_read", [&] { return StoreReader::Open(path, options); });
    if (!reader.ok()) return reader.status();
    source->domain_ = reader->domain();
    source->total_records_ = reader->num_records();
    source->shards_.push_back(std::move(*reader));
    return source;
  }

  StatusOr<std::string> content = StoreRetryPolicy().RunOr(
      "manifest_open", [&]() -> StatusOr<std::string> {
        Status fault = FaultStatus("manifest_open");
        if (!fault.ok()) return fault;
        return ReadFileToString(path, "store manifest");
      });
  if (!content.ok()) return content.status();
  if (content->compare(0, std::strlen(kManifestMagic), kManifestMagic) !=
      0) {
    return CorruptError(path, "neither an .aim store nor a shard manifest");
  }
  auto shards = ParseManifest(*content, path);
  if (!shards.ok()) return shards.status();
  if (shards->empty()) {
    return CorruptError(path, "manifest lists no shards");
  }

  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
  for (size_t i = 0; i < shards->size(); ++i) {
    const auto& [name, rows] = (*shards)[i];
    StatusOr<StoreReader> reader = StoreRetryPolicy().RunOr(
        "store_read", [&] { return StoreReader::Open(dir + name, options); });
    if (!reader.ok()) return reader.status();
    if (reader->num_records() != rows) {
      return CorruptError(dir + name,
                          "shard row count disagrees with the manifest");
    }
    if (i == 0) {
      source->domain_ = reader->domain();
    } else if (!(reader->domain() == source->domain_)) {
      return CorruptError(dir + name,
                          "shard domain disagrees with shard 0");
    }
    source->total_records_ += reader->num_records();
    source->shards_.push_back(std::move(*reader));
  }
  if (MetricsEnabled()) {
    static Counter& shards_opened =
        MetricsRegistry::Global().counter("store.shards_opened");
    shards_opened.Add(static_cast<int64_t>(source->shards_.size()));
  }
  return source;
}

int64_t StoreSource::ShardRecords(int shard) const {
  return shards_[static_cast<size_t>(shard)].num_records();
}

bool StoreSource::TryColumnView(int shard, int attr, int64_t row_begin,
                                int64_t row_end, ColumnView* view) const {
  (void)row_end;
  AIM_DCHECK(row_begin >= 0 && row_begin <= row_end &&
             row_end <= ShardRecords(shard));
  *view = shards_[static_cast<size_t>(shard)].column(attr, row_begin);
  return true;
}

void StoreSource::ReadColumn(int shard, int attr, int64_t row_begin,
                             int64_t row_end, int32_t* out) const {
  AIM_CHECK(row_begin >= 0 && row_begin <= row_end &&
            row_end <= ShardRecords(shard));
  const ColumnView view =
      shards_[static_cast<size_t>(shard)].column(attr, row_begin);
  for (int64_t i = 0; i < row_end - row_begin; ++i) out[i] = view.at(i);
}

void StoreSource::ReleaseRows(int shard, int64_t row_begin,
                              int64_t row_end) const {
  shards_[static_cast<size_t>(shard)].ReleaseRows(row_begin, row_end);
}

int64_t StoreSource::mapped_bytes() const {
  int64_t total = 0;
  for (const StoreReader& shard : shards_) total += shard.mapped_bytes();
  return total;
}

int64_t StoreSource::ResidentBytes() const {
  int64_t total = 0;
  for (const StoreReader& shard : shards_) {
    const int64_t resident = shard.ResidentBytes();
    if (resident < 0) return -1;
    total += resident;
  }
  return total;
}

bool IsStoreFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  char lead[sizeof(kMagic)] = {};
  file.read(lead, sizeof(lead));
  if (std::memcmp(lead, kMagic, sizeof(kMagic)) == 0) return true;
  return std::memcmp(lead, kManifestMagic,
                     std::min(sizeof(lead), std::strlen(kManifestMagic))) ==
         0;
}

}  // namespace aim
