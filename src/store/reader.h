// Read-only memory-mapped access to `.aim` stores and sharded store sets.

#ifndef AIM_STORE_READER_H_
#define AIM_STORE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/data_source.h"
#include "data/domain.h"
#include "util/status.h"

namespace aim {

struct StoreOpenOptions {
  // Verify every column checksum and that every value is in-domain (one
  // streaming pass over the mapped file). On by default: the counting
  // paths index histograms with stored values, so an out-of-domain value
  // in a corrupt file must be rejected at open, not discovered as heap
  // corruption. Disable only for very large files of trusted provenance.
  bool verify = true;
};

// One mmap'd `.aim` shard. Movable, not copyable; unmaps on destruction.
// All reads are zero-copy against the mapping, so any number of readers
// (and processes) share one page-cache copy of the data.
class StoreReader {
 public:
  // Validates magic, version, header checksum, and structural bounds;
  // with options.verify also column checksums and value ranges. Fault
  // point "store_read" fires here (robust/fault.h).
  static StatusOr<StoreReader> Open(const std::string& path,
                                    const StoreOpenOptions& options = {});

  StoreReader(StoreReader&& other) noexcept;
  StoreReader& operator=(StoreReader&& other) noexcept;
  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;
  ~StoreReader();

  const Domain& domain() const { return domain_; }
  int64_t num_records() const { return num_records_; }
  int64_t mapped_bytes() const { return static_cast<int64_t>(size_); }

  // Encoding width (bytes) of attribute `attr`: 1, 2, or 4.
  int width(int attr) const { return columns_[attr].width; }

  // Zero-copy view of attribute `attr` over rows [row_begin, ...).
  ColumnView column(int attr, int64_t row_begin = 0) const {
    const Column& c = columns_[attr];
    return ColumnView{c.data + row_begin * c.width, c.width};
  }

  int32_t value(int64_t row, int attr) const {
    return column(attr).at(row);
  }

  // Drops the mapped pages backing rows [row_begin, row_end) of every
  // column (madvise MADV_DONTNEED on the page-aligned interior), so a
  // streaming pass over a file larger than RAM keeps only its chunk
  // working set resident. Re-reading later re-faults from the file.
  void ReleaseRows(int64_t row_begin, int64_t row_end) const;

  // Resident bytes of this mapping per /proc/self/smaps (Linux; -1 when
  // unavailable). Used by tests and benches to demonstrate the bounded
  // working set of streamed counting.
  int64_t ResidentBytes() const;

 private:
  struct Column {
    const uint8_t* data = nullptr;
    int width = 4;
    uint64_t bytes = 0;
  };

  StoreReader() = default;
  void Unmap();

  Domain domain_;
  int64_t num_records_ = 0;
  const uint8_t* base_ = nullptr;
  size_t size_ = 0;
  std::vector<Column> columns_;
};

// DataSource over one `.aim` store or a sharded store set: each shard is
// one mmap'd StoreReader, every column access is zero-copy, and ReleaseRows
// forwards to the shard's page-drop hint.
class StoreSource final : public DataSource {
 public:
  // `path` is either a single `.aim` file or an AIM_MANIFEST shard set
  // (auto-detected from the file content). Shard domains must all match.
  static StatusOr<std::unique_ptr<StoreSource>> Open(
      const std::string& path, const StoreOpenOptions& options = {});

  const Domain& domain() const override { return domain_; }
  int64_t num_records() const override { return total_records_; }
  int num_shards() const override { return static_cast<int>(shards_.size()); }
  int64_t ShardRecords(int shard) const override;
  bool TryColumnView(int shard, int attr, int64_t row_begin, int64_t row_end,
                     ColumnView* view) const override;
  void ReadColumn(int shard, int attr, int64_t row_begin, int64_t row_end,
                  int32_t* out) const override;
  void ReleaseRows(int shard, int64_t row_begin,
                   int64_t row_end) const override;

  const StoreReader& shard(int i) const { return shards_[i]; }
  int64_t mapped_bytes() const;
  int64_t ResidentBytes() const;

 private:
  StoreSource() = default;

  Domain domain_;
  int64_t total_records_ = 0;
  std::vector<StoreReader> shards_;
};

// True when the file at `path` begins with the `.aim` store magic or the
// shard-manifest magic (used by aim_cli's --data format auto-detection).
bool IsStoreFile(const std::string& path);

}  // namespace aim

#endif  // AIM_STORE_READER_H_
