#include "store/writer.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "robust/fault.h"
#include "store/format.h"
#include "util/atomic_file.h"
#include "util/logging.h"

namespace aim {

using namespace store_format;

namespace {

// Fires before each shard/manifest write, so an injected failure models a
// full disk or torn write during conversion (csv2aim's cleanup regression
// test arms it).
const FaultPointRegistration kStoreWriteFault{"store_write"};

// "data.aim" -> "data", "data" -> "data" (shard names derive from the stem
// so `csv2aim --output=foo.aim --shard-rows=N` produces foo.00000.aim ...).
std::string PathStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.rfind(".aim");
  if (dot != std::string::npos && dot == path.size() - 4 &&
      (slash == std::string::npos || dot > slash)) {
    return path.substr(0, dot);
  }
  return path;
}

std::string ShardFileName(const std::string& stem, int index) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), ".%05d.aim", index);
  return stem + buffer;
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::string SerializeStoreShard(const Domain& domain,
                                const std::vector<std::string>& column_bytes,
                                int64_t num_records) {
  const int d = domain.num_attributes();
  AIM_CHECK_EQ(static_cast<int>(column_bytes.size()), d);

  // Header size: fixed prefix + per-attribute entries + trailing checksum.
  size_t header_bytes = kFixedHeaderBytes;
  for (int a = 0; a < d; ++a) {
    header_bytes += 4 + domain.name(a).size() + 4 + 4 + 8 + 8 + 8;
  }
  header_bytes += 8;  // header checksum

  // Column offsets: 64-byte aligned, in attribute order after the header.
  std::vector<uint64_t> offsets(d);
  size_t offset = AlignUp(header_bytes, kColumnAlignment);
  for (int a = 0; a < d; ++a) {
    offsets[a] = offset;
    offset = AlignUp(offset + column_bytes[a].size(), kColumnAlignment);
  }

  std::string out;
  out.reserve(offset);
  out.append(kMagic, sizeof(kMagic));
  AppendLe32(out, kFormatVersion);
  AppendLe32(out, static_cast<uint32_t>(header_bytes));
  AppendLe64(out, static_cast<uint64_t>(num_records));
  AppendLe32(out, static_cast<uint32_t>(d));
  AppendLe32(out, 0);  // flags
  for (int a = 0; a < d; ++a) {
    const std::string& name = domain.name(a);
    const int width = EncodingWidth(domain.size(a));
    AppendLe32(out, static_cast<uint32_t>(name.size()));
    out += name;
    AppendLe32(out, static_cast<uint32_t>(domain.size(a)));
    AppendLe32(out, static_cast<uint32_t>(width));
    AppendLe64(out, offsets[a]);
    AppendLe64(out, static_cast<uint64_t>(column_bytes[a].size()));
    AppendLe64(out, Fnv1a(column_bytes[a].data(), column_bytes[a].size()));
  }
  AIM_CHECK_EQ(out.size(), header_bytes - 8);
  AppendLe64(out, Fnv1a(out.data(), out.size()));

  for (int a = 0; a < d; ++a) {
    out.resize(offsets[a], '\0');  // alignment padding
    out += column_bytes[a];
  }
  return out;
}

StoreWriter::StoreWriter(Domain domain, std::string path,
                         StoreWriterOptions options)
    : domain_(std::move(domain)),
      path_(std::move(path)),
      options_(options) {
  const int d = domain_.num_attributes();
  widths_.reserve(d);
  columns_.resize(d);
  for (int a = 0; a < d; ++a) {
    widths_.push_back(EncodingWidth(domain_.size(a)));
    if (options_.shard_rows > 0) {
      columns_[a].reserve(static_cast<size_t>(options_.shard_rows) *
                          static_cast<size_t>(widths_[a]));
    }
  }
}

Status StoreWriter::Append(const std::vector<int>& record) {
  if (!status_.ok()) return status_;
  AIM_CHECK(!finished_) << "Append after Finish";
  const int d = domain_.num_attributes();
  if (static_cast<int>(record.size()) != d) {
    return status_ = InvalidArgumentError(
               "store: record has " + std::to_string(record.size()) +
               " values, domain has " + std::to_string(d) + " attributes");
  }
  for (int a = 0; a < d; ++a) {
    if (record[a] < 0 || record[a] >= domain_.size(a)) {
      return status_ = InvalidArgumentError(
                 "store: value " + std::to_string(record[a]) +
                 " out of domain [0, " + std::to_string(domain_.size(a)) +
                 ") for attribute '" + domain_.name(a) + "'");
    }
    const uint32_t v = static_cast<uint32_t>(record[a]);
    std::string& column = columns_[a];
    column.push_back(static_cast<char>(v & 0xff));
    if (widths_[a] >= 2) column.push_back(static_cast<char>((v >> 8) & 0xff));
    if (widths_[a] == 4) {
      column.push_back(static_cast<char>((v >> 16) & 0xff));
      column.push_back(static_cast<char>((v >> 24) & 0xff));
    }
  }
  ++shard_rows_buffered_;
  ++total_rows_;
  if (options_.shard_rows > 0 && shard_rows_buffered_ >= options_.shard_rows) {
    return status_ = FlushShard();
  }
  return Status::Ok();
}

Status StoreWriter::FlushShard() {
  const bool sharded = options_.shard_rows > 0;
  const std::string shard_path =
      sharded ? ShardFileName(PathStem(path_), shards_flushed_) : path_;
  const std::string payload =
      SerializeStoreShard(domain_, columns_, shard_rows_buffered_);
  Status s = FaultStatus("store_write");
  if (s.ok()) s = AtomicWriteFile(shard_path, payload, "store");
  if (!s.ok()) return s;
  shard_files_.emplace_back(BaseName(shard_path), shard_rows_buffered_);
  written_paths_.push_back(shard_path);
  ++shards_flushed_;
  shard_rows_buffered_ = 0;
  for (std::string& column : columns_) column.clear();
  return Status::Ok();
}

Status StoreWriter::Finish() {
  AIM_CHECK(!finished_) << "Finish called twice";
  finished_ = true;
  if (!status_.ok()) return status_;
  // Flush the trailing partial shard; an empty dataset still writes one
  // (empty) shard so the domain schema is preserved on disk.
  if (shard_rows_buffered_ > 0 || shards_flushed_ == 0) {
    status_ = FlushShard();
    if (!status_.ok()) return status_;
  }
  if (options_.shard_rows <= 0) return Status::Ok();

  // Manifest: line-oriented text closed by an FNV-1a checksum (the same
  // convention as AimSnapshot). Shard paths are stored relative to the
  // manifest's directory.
  std::string manifest;
  manifest += kManifestMagic;
  manifest += " v1\n";
  manifest += "shards " + std::to_string(shard_files_.size()) + '\n';
  for (const auto& [name, rows] : shard_files_) {
    manifest += "s " + name + ' ' + std::to_string(rows) + '\n';
  }
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016" PRIx64,
                Fnv1a(manifest.data(), manifest.size()));
  manifest += "checksum ";
  manifest += checksum;
  manifest += '\n';
  status_ = FaultStatus("store_write");
  if (status_.ok()) status_ = AtomicWriteFile(path_, manifest, "store manifest");
  if (status_.ok()) written_paths_.push_back(path_);
  return status_;
}

void StoreWriter::RemovePartialOutputs() {
  for (const std::string& path : written_paths_) {
    std::remove(path.c_str());
  }
  written_paths_.clear();
}

Status WriteStore(const Dataset& data, const std::string& path,
                  const StoreWriterOptions& options) {
  StoreWriter writer(data.domain(), path, options);
  std::vector<int> record(data.domain().num_attributes());
  for (int64_t row = 0; row < data.num_records(); ++row) {
    for (int a = 0; a < data.domain().num_attributes(); ++a) {
      record[a] = data.value(row, a);
    }
    Status s = writer.Append(record);
    if (!s.ok()) return s;
  }
  return writer.Finish();
}

}  // namespace aim
