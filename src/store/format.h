// The `.aim` binary columnar file format (DESIGN.md "Data layer").
//
// A store file holds one shard of a discretized dataset in column-major
// blocks, sized for width-minimal unsigned little-endian integer encoding
// (1 byte when the attribute's domain fits in 256 values, 2 bytes up to
// 65536, 4 bytes otherwise). All multi-byte integers in the header are
// little-endian regardless of host. Layout (byte offsets):
//
//   [0,  8)   magic "AIMSTORE"
//   [8, 12)   u32 format version (kFormatVersion)
//   [12,16)   u32 header_bytes   (total header size incl. trailing checksum)
//   [16,24)   u64 num_records
//   [24,28)   u32 num_attributes
//   [28,32)   u32 flags (reserved, 0)
//   then, per attribute, in attribute order:
//     u32 name_bytes, <name>        attribute name (raw bytes)
//     u32 domain_size               n_i >= 1
//     u32 width                     1, 2, or 4 (must fit domain_size - 1)
//     u64 column_offset             absolute file offset, 64-byte aligned
//     u64 column_bytes              num_records * width
//     u64 column_checksum           FNV-1a 64 over the column bytes
//   [header_bytes-8, header_bytes)  u64 header checksum: FNV-1a 64 over
//                                   bytes [0, header_bytes - 8)
//
// Column blocks follow the header at their recorded 64-byte-aligned
// offsets, in attribute order. Versioning rule: readers reject any version
// other than kFormatVersion — additions bump the version, never reinterpret
// fields.
//
// A sharded dataset is a text manifest (magic line "AIM_MANIFEST v1")
// listing shard file names and row counts, closed by an FNV-1a checksum
// line — see src/store/writer.cc for the grammar.

#ifndef AIM_STORE_FORMAT_H_
#define AIM_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace aim {
namespace store_format {

inline constexpr char kMagic[8] = {'A', 'I', 'M', 'S', 'T', 'O', 'R', 'E'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kFixedHeaderBytes = 32;
inline constexpr size_t kColumnAlignment = 64;
inline constexpr char kManifestMagic[] = "AIM_MANIFEST";

// Width-minimal encoding for an attribute with `domain_size` values.
inline int EncodingWidth(int domain_size) {
  if (domain_size <= 256) return 1;
  if (domain_size <= 65536) return 2;
  return 4;
}

// Order-sensitive FNV-1a 64 over a byte range (the same hash the snapshot
// subsystem uses; seeded fresh per range here).
inline uint64_t Fnv1a(const void* bytes, size_t n,
                      uint64_t seed = 0xcbf29ce484222325ULL) {
  const uint8_t* p = static_cast<const uint8_t*>(bytes);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Little-endian append/load helpers (explicit shifts so the format is
// host-endianness independent).
inline void AppendLe32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

inline void AppendLe64(std::string& out, uint64_t v) {
  AppendLe32(out, static_cast<uint32_t>(v & 0xffffffffULL));
  AppendLe32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t LoadLe64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLe32(p)) |
         (static_cast<uint64_t>(LoadLe32(p + 4)) << 32);
}

inline size_t AlignUp(size_t offset, size_t alignment) {
  return (offset + alignment - 1) / alignment * alignment;
}

}  // namespace store_format
}  // namespace aim

#endif  // AIM_STORE_FORMAT_H_
