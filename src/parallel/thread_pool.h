// Fixed-size worker thread pool behind the ParallelFor/ParallelMap
// primitives (parallel/parallel.h).
//
// Design constraints (see DESIGN.md "Threading model"):
//  - One lazily created global pool shared by the whole process, sized from
//    SetParallelThreads (--threads) or the AIM_THREADS environment variable,
//    defaulting to std::thread::hardware_concurrency().
//  - Dispatch() runs a job body on the calling thread plus every worker;
//    work distribution between participants is the caller's responsibility
//    (parallel.h uses a chunk queue with work stealing, so any subset of
//    participants can drain the whole job).
//  - A pool of size 1 owns no threads: Dispatch() degenerates to a plain
//    call of body(0) on the caller, so threads=1 bypasses all machinery.

#ifndef AIM_PARALLEL_THREAD_POOL_H_
#define AIM_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aim {

// std::thread::hardware_concurrency() with a floor of 1.
int HardwareThreads();

// Sets the global pool size used by ParallelFor/ParallelMap. n >= 1 forces
// that many participants; n == 0 restores the automatic default
// (AIM_THREADS environment variable if set, else HardwareThreads()). Must
// not be called while a parallel region is executing; the existing pool is
// torn down and rebuilt lazily at the next parallel call.
void SetParallelThreads(int n);

// The currently effective participant count (>= 1).
int ParallelThreads();

class ThreadPool {
 public:
  // Starts num_threads - 1 worker threads (the caller of Dispatch is the
  // remaining participant). num_threads >= 1.
  explicit ThreadPool(int num_threads);

  // Joins all workers. No Dispatch may be in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs body(p) for every participant p in [0, num_threads): p == 0 on the
  // calling thread, p >= 1 on the workers. Returns once every participant's
  // body has returned. Reentrant calls (from a worker, or from a second
  // thread while a dispatch is in flight) degrade to body(0) on the caller
  // alone; body must therefore be written so a lone participant completes
  // the job.
  void Dispatch(const std::function<void(int)>& body);

 private:
  void WorkerLoop(int participant);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex dispatch_mu_;  // serializes whole Dispatch calls

  std::mutex mu_;  // guards the fields below
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

// The process-wide pool at the currently configured size, created on first
// use. Never destroyed (workers park on a condition variable at exit).
ThreadPool& GlobalThreadPool();

}  // namespace aim

#endif  // AIM_PARALLEL_THREAD_POOL_H_
