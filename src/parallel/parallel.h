// Deterministic data-parallel primitives over the global thread pool.
//
// Determinism contract: every loop is split into a fixed chunk plan that
// depends only on (begin, end, grain) — never on the thread count — and all
// reductions combine per-chunk results in chunk order. A chunk is the unit
// of scheduling (workers steal whole chunks), so as long as the body of
// chunk c is a pure function of c and read-only shared state, results are
// bitwise identical for every thread count, including threads=1, which
// bypasses the pool entirely and runs the same chunks inline in order.
//
// Nested calls are safe: a ParallelFor issued from inside another parallel
// region runs its chunks serially (in order) on the calling worker.
//
// Error propagation: exceptions thrown by a body are caught per chunk and
// the one from the lowest-numbered chunk is rethrown on the calling thread
// after every chunk has run; ParallelForStatus does the same for Status
// returns without unwinding.

#ifndef AIM_PARALLEL_PARALLEL_H_
#define AIM_PARALLEL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"
#include "util/rng.h"
#include "util/status.h"

namespace aim {

namespace parallel_internal {

// Chunk plan for [begin, end): chunk c covers
//   [begin + c * grain, min(begin + (c + 1) * grain, end)).
// grain <= 0 selects an automatic grain targeting kAutoChunks chunks. The
// plan is a function of (begin, end, grain) only (see determinism contract).
inline constexpr int64_t kAutoChunks = 64;

struct ChunkPlan {
  int64_t begin = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
};

ChunkPlan PlanChunks(int64_t begin, int64_t end, int64_t grain);

// Runs chunk_fn(c) for every c in [0, num_chunks) — work-stealing over the
// global pool when profitable, serially in chunk order otherwise (threads=1,
// nested region, or a single chunk). Runs every chunk even after a failure;
// rethrows the captured exception of the lowest-numbered failing chunk.
void RunChunks(int64_t num_chunks,
               const std::function<void(int64_t)>& chunk_fn);

// True while the calling thread is executing inside a parallel region.
bool InParallelRegion();

}  // namespace parallel_internal

// Calls fn(chunk_begin, chunk_end, chunk_index) for every chunk of
// [begin, end) under the fixed plan.
template <typename Fn>
void ParallelForChunks(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  const parallel_internal::ChunkPlan plan =
      parallel_internal::PlanChunks(begin, end, grain);
  parallel_internal::RunChunks(plan.num_chunks, [&](int64_t c) {
    const int64_t lo = plan.begin + c * plan.grain;
    const int64_t hi = std::min(lo + plan.grain, end);
    fn(lo, hi, c);
  });
}

// Calls fn(i) for every i in [begin, end).
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  ParallelForChunks(begin, end, grain,
                    [&](int64_t lo, int64_t hi, int64_t /*chunk*/) {
                      for (int64_t i = lo; i < hi; ++i) fn(i);
                    });
}

// Returns {fn(0), ..., fn(n - 1)} in index order. The element type must be
// default-constructible.
template <typename Fn>
auto ParallelMap(int64_t n, Fn&& fn, int64_t grain = 1)
    -> std::vector<decltype(fn(int64_t{}))> {
  std::vector<decltype(fn(int64_t{}))> out(n);
  ParallelFor(0, n, grain, [&](int64_t i) { out[i] = fn(i); });
  return out;
}

// Returns the per-chunk results {fn(chunk_begin_0, chunk_end_0), ...} in
// chunk order — the building block for ordered reductions over scratch
// buffers (e.g. per-chunk histograms).
template <typename Fn>
auto ParallelMapChunks(int64_t begin, int64_t end, int64_t grain, Fn&& fn)
    -> std::vector<decltype(fn(int64_t{}, int64_t{}))> {
  const parallel_internal::ChunkPlan plan =
      parallel_internal::PlanChunks(begin, end, grain);
  std::vector<decltype(fn(int64_t{}, int64_t{}))> out(plan.num_chunks);
  ParallelForChunks(begin, end, grain,
                    [&](int64_t lo, int64_t hi, int64_t c) {
                      out[c] = fn(lo, hi);
                    });
  return out;
}

// Ordered parallel reduction: out = combine(...combine(combine(identity,
// map(chunk_0)), map(chunk_1))...) with chunks in order, so floating-point
// results do not depend on the thread count.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity,
                 MapFn&& map, CombineFn&& combine) {
  auto partial = ParallelMapChunks(begin, end, grain,
                                   std::forward<MapFn>(map));
  T out = std::move(identity);
  for (auto& p : partial) out = combine(std::move(out), std::move(p));
  return out;
}

// fn(i) -> Status for i in [begin, end). Runs all chunks; within a chunk,
// stops at that chunk's first failure. Returns the failure from the
// lowest-numbered failing chunk, else OK — independent of thread count.
template <typename Fn>
Status ParallelForStatus(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  const parallel_internal::ChunkPlan plan =
      parallel_internal::PlanChunks(begin, end, grain);
  std::vector<Status> statuses(plan.num_chunks);
  ParallelForChunks(begin, end, grain,
                    [&](int64_t lo, int64_t hi, int64_t c) {
                      for (int64_t i = lo; i < hi; ++i) {
                        Status s = fn(i);
                        if (!s.ok()) {
                          statuses[c] = std::move(s);
                          break;
                        }
                      }
                    });
  for (Status& s : statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::Ok();
}

// Derives n independent child generators from `parent` by sequential
// Fork() on the calling thread: stream i is a pure function of the parent
// state and i, so handing stream i to chunk i keeps randomized parallel
// loops deterministic for any thread count. Advances `parent` n times.
std::vector<Rng> ForkRngStreams(Rng& parent, int64_t n);

}  // namespace aim

#endif  // AIM_PARALLEL_PARALLEL_H_
