#include "parallel/thread_pool.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/strings.h"

namespace aim {
namespace {

std::mutex g_config_mu;
int g_requested_threads = 0;  // 0 = automatic
ThreadPool* g_pool = nullptr;  // intentionally leaked (workers park at exit)

// AIM_THREADS environment override, else the hardware thread count.
int AutoThreads() {
  const char* env = std::getenv("AIM_THREADS");
  if (env != nullptr) {
    int64_t n = 0;
    if (ParseInt64(env, &n) && n >= 1) return static_cast<int>(n);
  }
  return HardwareThreads();
}

int ResolveThreads() {
  return g_requested_threads >= 1 ? g_requested_threads : AutoThreads();
}

}  // namespace

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void SetParallelThreads(int n) {
  AIM_CHECK_GE(n, 0);
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_requested_threads = n;
  if (g_pool != nullptr && g_pool->num_threads() != ResolveThreads()) {
    delete g_pool;
    g_pool = nullptr;
  }
}

int ParallelThreads() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  return ResolveThreads();
}

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  if (g_pool == nullptr) g_pool = new ThreadPool(ResolveThreads());
  return *g_pool;
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  AIM_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads_ - 1);
  for (int p = 1; p < num_threads_; ++p) {
    workers_.emplace_back([this, p] { WorkerLoop(p); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Dispatch(const std::function<void(int)>& body) {
  if (workers_.empty()) {
    body(0);
    return;
  }
  std::unique_lock<std::mutex> dispatch_lock(dispatch_mu_, std::try_to_lock);
  if (!dispatch_lock.owns_lock()) {
    // Another thread is mid-dispatch; run the job alone rather than block.
    if (MetricsEnabled()) {
      static Counter& solo =
          MetricsRegistry::Global().counter("pool.contended_solo_runs");
      solo.Add(1);
    }
    body(0);
    return;
  }
  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter& dispatches = registry.counter("pool.dispatches");
    static Counter& tasks = registry.counter("pool.participant_tasks");
    dispatches.Add(1);
    tasks.Add(num_threads_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &body;
    ++generation_;
    pending_ = num_threads_ - 1;
  }
  job_cv_.notify_all();
  body(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(int participant) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock,
                   [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(participant);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace aim
