#include "parallel/parallel.h"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>

#include "obs/metrics.h"
#include "util/logging.h"

namespace aim {
namespace parallel_internal {
namespace {

// Set while a thread executes inside a parallel region; nested calls on
// such a thread run serially.
thread_local bool tl_in_region = false;

// A shard is a half-open range of chunk indices packed into one atomic
// word: owner pops from the front, thieves pop from the back. 32 bits per
// endpoint bounds chunk counts at 2^31 (far above any loop here).
uint64_t Pack(int64_t lo, int64_t hi) {
  return (static_cast<uint64_t>(lo) << 32) | static_cast<uint64_t>(hi);
}
int64_t Lo(uint64_t r) { return static_cast<int64_t>(r >> 32); }
int64_t Hi(uint64_t r) { return static_cast<int64_t>(r & 0xFFFFFFFFULL); }

struct alignas(64) Shard {
  std::atomic<uint64_t> range{0};
};

// Captures the exception of the lowest-numbered failing chunk.
class FirstFailure {
 public:
  void Record(int64_t chunk, std::exception_ptr exception) {
    std::lock_guard<std::mutex> lock(mu_);
    if (chunk < chunk_) {
      chunk_ = chunk;
      exception_ = std::move(exception);
    }
  }

  void RethrowIfSet() {
    if (exception_ != nullptr) std::rethrow_exception(exception_);
  }

 private:
  std::mutex mu_;
  int64_t chunk_ = std::numeric_limits<int64_t>::max();
  std::exception_ptr exception_;
};

void RunChunksSerial(int64_t num_chunks,
                     const std::function<void(int64_t)>& chunk_fn) {
  // Matches the parallel path's semantics: every chunk runs even after a
  // failure, and the lowest failing chunk's exception surfaces.
  FirstFailure failure;
  for (int64_t c = 0; c < num_chunks; ++c) {
    try {
      chunk_fn(c);
    } catch (...) {
      failure.Record(c, std::current_exception());
    }
  }
  failure.RethrowIfSet();
}

}  // namespace

bool InParallelRegion() { return tl_in_region; }

ChunkPlan PlanChunks(int64_t begin, int64_t end, int64_t grain) {
  ChunkPlan plan;
  plan.begin = begin;
  const int64_t n = end > begin ? end - begin : 0;
  if (grain <= 0) grain = std::max<int64_t>(1, n / kAutoChunks);
  plan.grain = grain;
  plan.num_chunks = (n + grain - 1) / grain;
  AIM_CHECK_LT(plan.num_chunks, int64_t{1} << 31);
  return plan;
}

void RunChunks(int64_t num_chunks,
               const std::function<void(int64_t)>& chunk_fn) {
  if (num_chunks <= 0) return;
  // Sampled once per loop so one loop's accounting is consistent even if
  // the flag flips mid-run; costs one relaxed load when disabled.
  const bool metered = MetricsEnabled();
  const int threads = ParallelThreads();
  if (threads <= 1 || num_chunks == 1 || tl_in_region) {
    if (metered) {
      static Counter& serial_runs =
          MetricsRegistry::Global().counter("parallel.serial_runs");
      serial_runs.Add(1);
    }
    RunChunksSerial(num_chunks, chunk_fn);
    return;
  }

  ThreadPool& pool = GlobalThreadPool();
  const int participants = pool.num_threads();
  // Static partition of the chunk plan across participants; idle
  // participants steal from the back of the richest shard. Which thread
  // runs a chunk never affects the result, so scheduling stays free while
  // the output is deterministic.
  std::vector<Shard> shards(participants);
  for (int p = 0; p < participants; ++p) {
    const int64_t lo = num_chunks * p / participants;
    const int64_t hi = num_chunks * (p + 1) / participants;
    shards[p].range.store(Pack(lo, hi), std::memory_order_relaxed);
  }

  FirstFailure failure;
  auto run_one = [&](int64_t chunk) {
    try {
      chunk_fn(chunk);
    } catch (...) {
      failure.Record(chunk, std::current_exception());
    }
  };

  std::atomic<int64_t> stolen_chunks{0};
  auto body = [&](int participant) {
    tl_in_region = true;
    int64_t my_steals = 0;
    // Drain the participant's own shard front-to-back.
    for (;;) {
      uint64_t r = shards[participant].range.load(std::memory_order_acquire);
      const int64_t lo = Lo(r), hi = Hi(r);
      if (lo >= hi) break;
      if (shards[participant].range.compare_exchange_weak(
              r, Pack(lo + 1, hi), std::memory_order_acq_rel)) {
        run_one(lo);
      }
    }
    // Steal single chunks from the back of the richest remaining shard
    // until every shard is empty (so even a lone participant finishes the
    // whole job — Dispatch may fall back to running body(0) alone).
    for (;;) {
      int victim = -1;
      int64_t victim_remaining = 0;
      for (int p = 0; p < participants; ++p) {
        if (p == participant) continue;
        uint64_t r = shards[p].range.load(std::memory_order_acquire);
        const int64_t remaining = Hi(r) - Lo(r);
        if (remaining > victim_remaining) {
          victim = p;
          victim_remaining = remaining;
        }
      }
      if (victim < 0) break;
      uint64_t r = shards[victim].range.load(std::memory_order_acquire);
      const int64_t lo = Lo(r), hi = Hi(r);
      if (lo >= hi) continue;  // lost the race; rescan
      if (shards[victim].range.compare_exchange_weak(
              r, Pack(lo, hi - 1), std::memory_order_acq_rel)) {
        run_one(hi - 1);
        if (metered) ++my_steals;
      }
    }
    if (metered && my_steals > 0) {
      stolen_chunks.fetch_add(my_steals, std::memory_order_relaxed);
    }
    tl_in_region = false;
  };
  pool.Dispatch(body);
  if (metered) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter& dispatches = registry.counter("parallel.dispatches");
    static Counter& chunks = registry.counter("parallel.chunks");
    static Counter& steals = registry.counter("parallel.steals");
    dispatches.Add(1);
    chunks.Add(num_chunks);
    steals.Add(stolen_chunks.load(std::memory_order_relaxed));
  }
  failure.RethrowIfSet();
}

}  // namespace parallel_internal

std::vector<Rng> ForkRngStreams(Rng& parent, int64_t n) {
  AIM_CHECK_GE(n, 0);
  std::vector<Rng> streams;
  streams.reserve(n);
  for (int64_t i = 0; i < n; ++i) streams.push_back(parent.Fork());
  return streams;
}

}  // namespace aim
