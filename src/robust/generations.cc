#include "robust/generations.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>

namespace aim {
namespace {

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string GenerationPath(const std::string& base, int generation) {
  if (generation <= 0) return base;
  return base + ".gen" + std::to_string(generation);
}

Status WriteSnapshotGeneration(const AimSnapshot& snapshot,
                               const std::string& base, int max_generations,
                               const RetryPolicy* retry) {
  if (max_generations > 1 && PathExists(base)) {
    // GC the slot that would fall off the ladder, then shift everything
    // down by one rename each. Renames are atomic, so a crash mid-chain
    // leaves complete snapshots (perhaps with a vacant slot); rename
    // failures are non-fatal because the new write below is still atomic
    // against the current <base>.
    std::string oldest = GenerationPath(base, max_generations - 1);
    if (PathExists(oldest) && ::remove(oldest.c_str()) != 0) {
      return InternalError("failed to remove old checkpoint generation '" +
                           oldest + "': " + std::strerror(errno));
    }
    for (int k = max_generations - 2; k >= 0; --k) {
      std::string from = GenerationPath(base, k);
      if (!PathExists(from)) continue;
      std::string to = GenerationPath(base, k + 1);
      if (::rename(from.c_str(), to.c_str()) != 0) {
        return InternalError("failed to rotate checkpoint generation '" +
                             from + "' -> '" + to +
                             "': " + std::strerror(errno));
      }
    }
  }
  auto write = [&] { return WriteSnapshot(snapshot, base); };
  if (retry != nullptr) return retry->Run("snapshot_write", write);
  return write();
}

StatusOr<LoadedGeneration> LoadLatestValidGeneration(
    const std::string& base, uint64_t expected_fingerprint, double rho_budget) {
  std::vector<std::string> rejected;
  bool any_file = false;
  for (int k = 0; k <= kGenerationScanLimit; ++k) {
    std::string path = GenerationPath(base, k);
    StatusOr<AimSnapshot> snap = ReadSnapshot(path);
    if (!snap.ok()) {
      if (snap.status().code() == StatusCode::kNotFound) continue;  // vacant
      any_file = true;
      rejected.push_back(path + ": " + snap.status().ToString());
      continue;
    }
    any_file = true;
    Status valid =
        ValidateSnapshot(*snap, expected_fingerprint, rho_budget);
    if (!valid.ok()) {
      rejected.push_back(path + ": " + valid.ToString());
      continue;
    }
    LoadedGeneration loaded;
    loaded.snapshot = *std::move(snap);
    loaded.generation = k;
    loaded.path = path;
    loaded.rejected = std::move(rejected);
    return loaded;
  }
  if (!any_file) {
    return NotFoundError("no checkpoint found at '" + base +
                         "' or any generation");
  }
  std::string detail;
  for (const std::string& r : rejected) {
    if (!detail.empty()) detail += "; ";
    detail += r;
  }
  return InvalidArgumentError("no valid checkpoint generation at '" + base +
                              "': " + detail);
}

}  // namespace aim
