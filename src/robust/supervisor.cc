#include "robust/supervisor.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace aim {

std::function<int64_t()> AimRoundProgressProbe() {
  Counter& rounds = MetricsRegistry::Global().counter("aim.rounds");
  return [&rounds] { return rounds.value(); };
}

RunSupervisor::RunSupervisor(CancelToken* token,
                             std::function<int64_t()> progress,
                             SupervisorOptions options)
    : token_(token), progress_(std::move(progress)), options_(options) {
  options_.stall_window_seconds = std::max(options_.stall_window_seconds, 1e-3);
  options_.poll_interval_seconds =
      std::clamp(options_.poll_interval_seconds, 1e-3,
                 options_.stall_window_seconds);
  thread_ = std::thread([this] { WatchLoop(); });
}

RunSupervisor::~RunSupervisor() { Stop(); }

void RunSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool RunSupervisor::stall_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stalled_;
}

Status RunSupervisor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void RunSupervisor::WatchLoop() {
  using Clock = std::chrono::steady_clock;
  int64_t last_value = progress_();
  Clock::time_point last_change = Clock::now();
  const auto poll = std::chrono::duration<double>(options_.poll_interval_seconds);
  const auto window = std::chrono::duration<double>(options_.stall_window_seconds);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, poll, [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    int64_t value = progress_();
    Clock::time_point now = Clock::now();
    bool trip = false;
    if (value != last_value) {
      last_value = value;
      last_change = now;
    } else if (now - last_change >= window) {
      trip = true;
    }
    lock.lock();
    if (trip) {
      stalled_ = true;
      status_ = DeadlineExceededError(
          "watchdog: no round progress within " +
          std::to_string(options_.stall_window_seconds) + "s stall window");
      MetricsRegistry::Global().counter("robust.supervisor.stalls").Add();
      token_->Cancel();
      return;  // fired once; the run winds down cooperatively
    }
  }
}

}  // namespace aim
