// RunSupervisor: a wall-clock stall watchdog for long-running jobs.
//
// A background thread polls a progress probe (by default the obs round
// counter "aim.rounds"). If the probe makes no progress within the
// configured stall window, the supervisor trips: it cancels the supplied
// CancelToken so the run winds down cooperatively at the next round
// boundary — forcing a final checkpoint on the way out — and records a
// kDeadlineExceeded status instead of letting the job hang forever. This
// is the per-request SLO seam the aimd daemon (ROADMAP) will sit on.
//
// The supervisor never touches mechanism state or randomness; a run that
// makes progress is bitwise-unaffected by having a watchdog attached.

#ifndef AIM_ROBUST_SUPERVISOR_H_
#define AIM_ROBUST_SUPERVISOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "util/cancel.h"
#include "util/status.h"

namespace aim {

struct SupervisorOptions {
  // Trip when the progress probe is unchanged for this long.
  double stall_window_seconds = 60.0;
  // Probe cadence; clamped to [1ms, stall window].
  double poll_interval_seconds = 0.05;
};

// Progress probe reading the process-wide "aim.rounds" counter (requires
// metrics to be enabled — callers wiring a watchdog turn them on).
std::function<int64_t()> AimRoundProgressProbe();

class RunSupervisor {
 public:
  // Starts watching immediately. `token` must outlive the supervisor.
  RunSupervisor(CancelToken* token, std::function<int64_t()> progress,
                SupervisorOptions options);
  ~RunSupervisor();  // joins the watchdog thread

  RunSupervisor(const RunSupervisor&) = delete;
  RunSupervisor& operator=(const RunSupervisor&) = delete;

  // Stops the watchdog without tripping it (normal end of run).
  void Stop();

  // True once the watchdog has tripped.
  bool stall_detected() const;

  // DeadlineExceededError after a trip, OK otherwise.
  Status status() const;

 private:
  void WatchLoop();

  CancelToken* token_;
  std::function<int64_t()> progress_;
  SupervisorOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stalled_ = false;
  Status status_;
  std::thread thread_;
};

}  // namespace aim

#endif  // AIM_ROBUST_SUPERVISOR_H_
