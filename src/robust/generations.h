// Checkpoint generations: a rotated ladder of validated snapshots.
//
// A single checkpoint file has a single point of failure — one bad byte in
// the newest snapshot (torn disk, bit rot, an operator's stray edit) and
// every measurement the run paid privacy budget for is unreachable. The
// generation scheme keeps the last N snapshots on disk:
//
//   <base>        newest
//   <base>.gen1   one checkpoint older
//   <base>.genK   K checkpoints older (K < N; older files are GC'd)
//
// Writes rotate by atomic rename oldest-first (genK-1 -> genK, ...,
// base -> gen1) and then atomically write the new snapshot at <base>; a
// crash anywhere in the chain leaves only complete, individually valid
// snapshot files (possibly with a vacant slot, which readers tolerate).
// Resume scans newest-first and falls back to the first generation that
// passes checksum + fingerprint + budget validation, reporting the rejected
// newer files so the caller can emit `aim_warning kind=checkpoint_fallback`.
// Because every generation is a complete run description, resuming from ANY
// surviving generation replays to output bitwise-identical to an
// uninterrupted run (tested at threads=1 and threads=8).

#ifndef AIM_ROBUST_GENERATIONS_H_
#define AIM_ROBUST_GENERATIONS_H_

#include <string>
#include <vector>

#include "robust/retry.h"
#include "robust/snapshot.h"
#include "util/status.h"

namespace aim {

// Path of generation `k` for checkpoint base path `base` (k=0 -> base,
// k=1 -> base.gen1, ...).
std::string GenerationPath(const std::string& base, int generation);

// Resume scans this many slots past the configured generation count so a
// run restarted with a smaller --checkpoint-generations still finds older
// survivors.
inline constexpr int kGenerationScanLimit = 16;

// Rotates the existing ladder down one slot (GC'ing generation
// max_generations-1) and writes `snapshot` at <base>. With
// max_generations <= 1 this is exactly WriteSnapshot (no renames), which
// preserves the single-checkpoint behavior and its fault-injection
// semantics. The write (not the renames) is wrapped in `retry` when given;
// rotation failures are reported but never block the write attempt.
Status WriteSnapshotGeneration(const AimSnapshot& snapshot,
                               const std::string& base, int max_generations,
                               const RetryPolicy* retry = nullptr);

struct LoadedGeneration {
  AimSnapshot snapshot;
  int generation = 0;    // 0 = <base> itself, k = <base>.genk
  std::string path;
  // "path: CODE: reason" for each newer generation that existed but failed
  // validation — non-empty means the caller resumed via fallback.
  std::vector<std::string> rejected;
};

// Scans generations newest-first (up to kGenerationScanLimit slots,
// tolerating vacant ones) and returns the first snapshot passing
// ParseSnapshot + ValidateSnapshot against the expected fingerprint and
// budget. NotFoundError when no generation file exists at all;
// InvalidArgumentError (listing every rejection) when files exist but none
// validates.
StatusOr<LoadedGeneration> LoadLatestValidGeneration(
    const std::string& base, uint64_t expected_fingerprint, double rho_budget);

}  // namespace aim

#endif  // AIM_ROBUST_GENERATIONS_H_
