#include "robust/fault.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "util/strings.h"

namespace aim {
namespace {

// Single process-wide gate: every disarmed site pays exactly this load.
std::atomic<bool> g_faults_armed{false};

enum class FaultMode { kNthHit, kAfterHit, kProbability };

struct FaultRule {
  FaultMode mode = FaultMode::kNthHit;
  int64_t k = 1;       // n= / after= threshold
  double p = 0.0;      // p= probability
  uint64_t seed = 0;   // p= hash seed
  std::atomic<int64_t> hits{0};
};

struct FaultState {
  std::mutex mu;
  // Rules are heap-allocated so armed sites can hold a stable pointer while
  // other threads look up different points.
  std::map<std::string, std::unique_ptr<FaultRule>, std::less<>> rules;
  std::set<std::string, std::less<>> registered;
};

FaultState& State() {
  static FaultState* state = new FaultState;
  return *state;
}

uint64_t FnvHash(std::string_view s, uint64_t h = 0xcbf29ce484222325ULL) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// The rule armed for `point`, or nullptr. Caller must be on the armed path.
FaultRule* FindRule(std::string_view point) {
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.rules.find(point);
  return it == state.rules.end() ? nullptr : it->second.get();
}

// Decides whether 1-based hit `hit` of `point` fires under `rule`.
bool HitFires(const FaultRule& rule, std::string_view point, int64_t hit) {
  switch (rule.mode) {
    case FaultMode::kNthHit:
      return hit == rule.k;
    case FaultMode::kAfterHit:
      return hit > rule.k;
    case FaultMode::kProbability: {
      // Pure function of (seed, point, hit): the same spec fires the same
      // hits in every run and at every thread count.
      uint64_t h = Mix64(rule.seed ^ FnvHash(point) ^
                         static_cast<uint64_t>(hit));
      double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      return u < rule.p;
    }
  }
  return false;
}

}  // namespace

bool FaultsArmed() {
  return g_faults_armed.load(std::memory_order_relaxed);
}

bool ShouldInjectFault(std::string_view point) {
  if (!g_faults_armed.load(std::memory_order_relaxed)) return false;
  FaultRule* rule = FindRule(point);
  if (rule == nullptr) return false;
  int64_t hit = rule->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  return HitFires(*rule, point, hit);
}

bool ShouldInjectFault(std::string_view point, uint64_t key) {
  if (!g_faults_armed.load(std::memory_order_relaxed)) return false;
  FaultRule* rule = FindRule(point);
  if (rule == nullptr) return false;
  rule->hits.fetch_add(1, std::memory_order_relaxed);
  return HitFires(*rule, point, static_cast<int64_t>(key) + 1);
}

Status FaultStatus(std::string_view point) {
  if (ShouldInjectFault(point)) {
    return InternalError("fault injected: " + std::string(point));
  }
  return Status::Ok();
}

void MaybeThrowFault(std::string_view point) {
  if (ShouldInjectFault(point)) {
    throw FaultInjectedError(std::string(point));
  }
}

Status ArmFaults(std::string_view spec) {
  std::map<std::string, std::unique_ptr<FaultRule>, std::less<>> rules;
  for (const std::string& part :
       SplitString(StripWhitespace(spec), ';')) {
    std::string rule_text = StripWhitespace(part);
    if (rule_text.empty()) continue;
    size_t colon = rule_text.find(':');
    if (colon == std::string::npos || colon == 0) {
      return InvalidArgumentError("fault spec rule '" + rule_text +
                                  "' is not of the form point:args");
    }
    std::string point = StripWhitespace(rule_text.substr(0, colon));
    auto rule = std::make_unique<FaultRule>();
    bool have_mode = false;
    for (const std::string& raw_arg :
         SplitString(rule_text.substr(colon + 1), ',')) {
      std::string arg = StripWhitespace(raw_arg);
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        return InvalidArgumentError("fault spec arg '" + arg +
                                    "' is not of the form key=value");
      }
      std::string key = arg.substr(0, eq);
      std::string value = arg.substr(eq + 1);
      int64_t int_value = 0;
      double double_value = 0.0;
      if (key == "n" || key == "after") {
        if (!ParseInt64(value, &int_value) || int_value < 0) {
          return InvalidArgumentError("fault spec: bad count in '" + arg +
                                      "'");
        }
        rule->mode = key == "n" ? FaultMode::kNthHit : FaultMode::kAfterHit;
        rule->k = int_value;
        have_mode = true;
      } else if (key == "p") {
        if (!ParseDouble(value, &double_value) || double_value < 0.0 ||
            double_value > 1.0) {
          return InvalidArgumentError("fault spec: bad probability in '" +
                                      arg + "'");
        }
        rule->mode = FaultMode::kProbability;
        rule->p = double_value;
        have_mode = true;
      } else if (key == "seed") {
        if (!ParseInt64(value, &int_value)) {
          return InvalidArgumentError("fault spec: bad seed in '" + arg +
                                      "'");
        }
        rule->seed = static_cast<uint64_t>(int_value);
      } else {
        return InvalidArgumentError("fault spec: unknown arg '" + arg + "'");
      }
    }
    if (!have_mode) {
      return InvalidArgumentError("fault spec rule for '" + point +
                                  "' needs n=, after=, or p=");
    }
    rules[point] = std::move(rule);
  }

  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (const auto& [point, rule] : rules) {
    (void)rule;
    if (!state.registered.empty() &&
        state.registered.find(point) == state.registered.end()) {
      std::cerr << "[robust] AIM_FAULTS: warning: no registered fault point "
                << "named '" << point << "'\n";
    }
  }
  state.rules = std::move(rules);
  g_faults_armed.store(!state.rules.empty(), std::memory_order_relaxed);
  return Status::Ok();
}

void DisarmFaults() {
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.rules.clear();
  g_faults_armed.store(false, std::memory_order_relaxed);
}

void InitFaultsFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("AIM_FAULTS");
    if (env == nullptr || env[0] == '\0') return;
    Status s = ArmFaults(env);
    if (!s.ok()) {
      std::cerr << "[robust] AIM_FAULTS ignored: " << s.ToString() << "\n";
    }
  });
}

int64_t FaultHitCount(std::string_view point) {
  FaultRule* rule = FindRule(point);
  return rule == nullptr ? 0 : rule->hits.load(std::memory_order_relaxed);
}

void RegisterFaultPoint(std::string_view point) {
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.registered.emplace(point);
}

std::vector<std::string> RegisteredFaultPoints() {
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return std::vector<std::string>(state.registered.begin(),
                                  state.registered.end());
}

}  // namespace aim
