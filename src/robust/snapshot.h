// Crash-safe AIM run snapshots.
//
// Private-PGM's core property makes checkpointing cheap: the MRF is a pure
// function of the measurement log, so (measurement log, rho ledger, RNG
// state, annealing state) is a complete, resumable description of a run.
// AimMechanism::Run serializes an AimSnapshot at round boundaries; resuming
// refits the model by replaying the deterministic estimation sequence over
// the persisted measurements and then continues the main loop — producing
// bitwise-identical output to an uninterrupted run (tested).
//
// File format (DESIGN.md "Fault tolerance"): versioned line-oriented text.
// Doubles are serialized as C99 hexfloats ("%a") so every value round-trips
// bit-exactly; the payload carries an options fingerprint (so a snapshot
// cannot be resumed under a different configuration, workload, or budget)
// and ends with an FNV-1a checksum line. Writes are atomic: tmp file +
// fsync + rename (+ directory fsync), so a crash mid-write leaves the
// previous snapshot intact.

#ifndef AIM_ROBUST_SNAPSHOT_H_
#define AIM_ROBUST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mechanisms/mechanism.h"
#include "pgm/estimation.h"
#include "util/rng.h"
#include "util/status.h"

namespace aim {

struct AimSnapshot {
  // Bumped whenever the serialized layout changes; readers reject other
  // versions rather than guessing.
  static constexpr int kVersion = 1;

  // Hash of everything that must match for a resume to be valid: domain,
  // workload, rho budget, and every AimOptions field that influences the
  // run (see AimRunFingerprint).
  uint64_t fingerprint = 0;

  double rho_budget = 0.0;
  double rho_spent = 0.0;   // accountant ledger at the checkpoint
  int64_t round = 0;        // completed main-loop rounds
  // The first `init_measurements` entries of `measurements` are the
  // Algorithm-2 one-way initialization; each later entry is one main-loop
  // round, in round order (the replay relies on this).
  int64_t init_measurements = 0;
  double sigma = 0.0;       // annealing state for the next round
  double epsilon = 0.0;
  RngState rng;
  std::vector<Measurement> measurements;
  std::vector<RoundInfo> rounds;  // per-round selection log
};

// Serializes / parses the snapshot payload (without touching the
// filesystem). ParseSnapshot validates the magic, version, field syntax,
// and trailing checksum.
std::string SerializeSnapshot(const AimSnapshot& snapshot);
StatusOr<AimSnapshot> ParseSnapshot(const std::string& content);

// Atomic durable write: <path>.tmp + fsync + rename + directory fsync.
// Fault point "snapshot_write" fires before any filesystem work, so an
// injected failure never corrupts an existing snapshot.
Status WriteSnapshot(const AimSnapshot& snapshot, const std::string& path);

// Reads and parses; NotFoundError when the file does not exist.
StatusOr<AimSnapshot> ReadSnapshot(const std::string& path);

// Safety gate for resume (the "accountant safety" checks): rejects a
// snapshot whose fingerprint mismatches the current run's, whose budget
// differs, whose spent rho exceeds the budget (beyond the PrivacyFilter
// tolerance), or whose log shape is internally inconsistent.
Status ValidateSnapshot(const AimSnapshot& snapshot,
                        uint64_t expected_fingerprint, double rho_budget);

// Order-sensitive FNV-1a fingerprint accumulator for run configurations.
class FingerprintHasher {
 public:
  FingerprintHasher& Add(const void* bytes, size_t n);
  FingerprintHasher& Add(uint64_t v);
  FingerprintHasher& Add(int64_t v) { return Add(static_cast<uint64_t>(v)); }
  FingerprintHasher& Add(int v) { return Add(static_cast<uint64_t>(v)); }
  FingerprintHasher& Add(bool v) { return Add(static_cast<uint64_t>(v)); }
  FingerprintHasher& Add(double v);  // hashes the bit pattern
  FingerprintHasher& Add(const std::string& s);

  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace aim

#endif  // AIM_ROBUST_SNAPSHOT_H_
