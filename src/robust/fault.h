// Deterministic fault injection for robustness testing.
//
// Call sites register named fault points ("csv_read", "snapshot_write",
// "estimation_step", "trial_run", "aim_round", ...) and consult
// ShouldInjectFault at the moment the simulated failure would occur. Tests
// (ScopedFaults) and the AIM_FAULTS environment spec arm points; everything
// is disarmed by default.
//
// Contract (mirrors src/obs/):
//  - A disarmed site costs exactly one relaxed atomic load and a predictable
//    branch — the same pricing as the observability gates, so fault points
//    may sit on hot paths (the obs microbench prices it; target < 2%
//    overhead on the estimation path).
//  - Armed decisions are deterministic: given the same spec, seed, and hit
//    sequence (or caller-supplied keys), the same hits fire. Sites inside
//    parallel regions should pass an explicit key (e.g. the trial index) so
//    the decision does not depend on thread interleaving.
//  - Nothing here touches an Rng or mechanism state: arming faults cannot
//    change the output of operations that do not fire.
//
// Spec grammar (AIM_FAULTS or ArmFaults):
//   spec   := rule (';' rule)*
//   rule   := point ':' arg (',' arg)*
//   arg    := 'n=' K       fire on exactly the Kth hit (1-based)
//           | 'after=' K   fire on every hit strictly after the Kth
//           | 'p=' F       fire each hit with probability F
//           | 'seed=' S    seed for the p= hash (default 0)
// Example: AIM_FAULTS="snapshot_write:n=3;csv_read:p=0.25,seed=7"

#ifndef AIM_ROBUST_FAULT_H_
#define AIM_ROBUST_FAULT_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace aim {

// Thrown by MaybeThrowFault at sites whose APIs have no Status channel
// (estimation, mechanism round loops). The only exception type the library
// ever throws, and only under an armed fault point; per-trial isolation in
// RunTrials catches it.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(std::string point)
      : std::runtime_error("fault injected: " + point),
        point_(std::move(point)) {}

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

// True when any fault rule is armed (one relaxed load).
bool FaultsArmed();

// Records a hit at `point` and returns true when the armed rule says this
// hit fires. Disarmed: one relaxed load, no hit recorded, returns false.
// The unkeyed form uses the point's own monotonically increasing hit
// counter (deterministic for serially-executed sites); the keyed form
// decides from `key` alone (key K is treated as hit K+1), which stays
// deterministic under parallel execution.
bool ShouldInjectFault(std::string_view point);
bool ShouldInjectFault(std::string_view point, uint64_t key);

// Status-channel convenience: InternalError("fault injected: <point>") when
// the hit fires, OK otherwise.
Status FaultStatus(std::string_view point);

// Exception-channel convenience for sites that return values.
void MaybeThrowFault(std::string_view point);

// Parses and arms `spec` (see grammar above), replacing any armed rules.
// Unknown point names are accepted (the site may live in a TU that has not
// registered yet) but reported on stderr when they match no registered
// point. Empty spec disarms everything.
Status ArmFaults(std::string_view spec);
void DisarmFaults();

// Arms from the AIM_FAULTS environment variable once per process (CLI and
// bench entry points call this; idempotent, no-op when unset).
void InitFaultsFromEnv();

// Hits recorded at `point` since it was last armed (0 when disarmed —
// disarmed sites do not count).
int64_t FaultHitCount(std::string_view point);

// Registration: sites announce their point names for discoverability
// (RegisteredFaultPoints, spec validation warnings). Registration is
// optional — arming and hitting work for any name.
void RegisterFaultPoint(std::string_view point);
std::vector<std::string> RegisteredFaultPoints();

// Static registrar for call-site TUs:
//   namespace { const FaultPointRegistration kFault{"csv_read"}; }
struct FaultPointRegistration {
  explicit FaultPointRegistration(std::string_view point) {
    RegisterFaultPoint(point);
  }
};

// Arms `spec` for the current scope and disarms on destruction (tests).
class ScopedFaults {
 public:
  explicit ScopedFaults(std::string_view spec) {
    Status s = ArmFaults(spec);
    AIM_CHECK(s.ok()) << s.ToString();
  }
  ~ScopedFaults() { DisarmFaults(); }

  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace aim

#endif  // AIM_ROBUST_FAULT_H_
