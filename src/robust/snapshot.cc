#include "robust/snapshot.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "robust/fault.h"
#include "util/atomic_file.h"
#include "util/logging.h"

namespace aim {
namespace {

const FaultPointRegistration kSnapshotWriteFault{"snapshot_write"};

constexpr char kMagic[] = "AIM_SNAPSHOT";

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---- Serialization helpers. Doubles use C99 hexfloats so every bit
// pattern round-trips exactly through text (the resume identity guarantee
// depends on it).

void AppendDouble(std::string& out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  out += buffer;
}

void AppendHex64(std::string& out, uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, v);
  out += buffer;
}

void AppendAttrSet(std::string& out, const AttrSet& attrs) {
  out += std::to_string(attrs.size());
  for (int a : attrs) {
    out += ' ';
    out += std::to_string(a);
  }
}

// ---- Token-stream parser with a sticky error.

class TokenReader {
 public:
  explicit TokenReader(const std::string& content) : in_(content) {}

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  std::string Word() {
    std::string token;
    if (ok() && !(in_ >> token)) Fail("unexpected end of snapshot");
    return token;
  }

  // Consumes a token and checks it equals `expected` (a field label).
  void Expect(const char* expected) {
    std::string token = Word();
    if (ok() && token != expected) {
      Fail(std::string("expected '") + expected + "', got '" + token + "'");
    }
  }

  int64_t Int(const char* what) {
    std::string token = Word();
    if (!ok()) return 0;
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno != 0 || end == token.c_str() || *end != '\0') {
      Fail(std::string("bad integer for ") + what + ": '" + token + "'");
      return 0;
    }
    return static_cast<int64_t>(v);
  }

  uint64_t Hex64(const char* what) {
    std::string token = Word();
    if (!ok()) return 0;
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(token.c_str(), &end, 16);
    if (errno != 0 || end == token.c_str() || *end != '\0') {
      Fail(std::string("bad hex value for ") + what + ": '" + token + "'");
      return 0;
    }
    return static_cast<uint64_t>(v);
  }

  double Double(const char* what) {
    std::string token = Word();
    if (!ok()) return 0.0;
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      Fail(std::string("bad double for ") + what + ": '" + token + "'");
      return 0.0;
    }
    return v;
  }

  AttrSet Attrs(const char* what) {
    int64_t k = Int(what);
    if (!ok() || k < 0 || k > 100000) {
      Fail(std::string("bad attribute count for ") + what);
      return AttrSet();
    }
    std::vector<int> attrs;
    attrs.reserve(static_cast<size_t>(k));
    for (int64_t i = 0; i < k && ok(); ++i) {
      attrs.push_back(static_cast<int>(Int(what)));
    }
    return AttrSet(std::move(attrs));
  }

  void Fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

 private:
  std::istringstream in_;
  std::string error_;
};

}  // namespace

FingerprintHasher& FingerprintHasher::Add(const void* bytes, size_t n) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    hash_ ^= p[i];
    hash_ *= 0x100000001b3ULL;
  }
  return *this;
}

FingerprintHasher& FingerprintHasher::Add(uint64_t v) {
  return Add(&v, sizeof(v));
}

FingerprintHasher& FingerprintHasher::Add(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return Add(bits);
}

FingerprintHasher& FingerprintHasher::Add(const std::string& s) {
  Add(static_cast<uint64_t>(s.size()));
  return Add(s.data(), s.size());
}

std::string SerializeSnapshot(const AimSnapshot& snapshot) {
  std::string out;
  out += kMagic;
  out += " v";
  out += std::to_string(AimSnapshot::kVersion);
  out += '\n';
  out += "fingerprint ";
  AppendHex64(out, snapshot.fingerprint);
  out += '\n';
  out += "rho_budget ";
  AppendDouble(out, snapshot.rho_budget);
  out += '\n';
  out += "rho_spent ";
  AppendDouble(out, snapshot.rho_spent);
  out += '\n';
  out += "round " + std::to_string(snapshot.round) + '\n';
  out += "init_measurements " + std::to_string(snapshot.init_measurements) +
         '\n';
  out += "sigma ";
  AppendDouble(out, snapshot.sigma);
  out += '\n';
  out += "epsilon ";
  AppendDouble(out, snapshot.epsilon);
  out += '\n';
  out += "rng ";
  for (uint64_t s : snapshot.rng.state) {
    AppendHex64(out, s);
    out += ' ';
  }
  out += snapshot.rng.have_spare ? '1' : '0';
  out += ' ';
  AppendDouble(out, snapshot.rng.spare);
  out += '\n';

  out += "measurements " + std::to_string(snapshot.measurements.size()) +
         '\n';
  for (const Measurement& m : snapshot.measurements) {
    out += "m ";
    AppendAttrSet(out, m.attrs);
    out += ' ';
    AppendDouble(out, m.sigma);
    out += ' ';
    out += std::to_string(m.values.size());
    for (double v : m.values) {
      out += ' ';
      AppendDouble(out, v);
    }
    out += '\n';
  }

  out += "rounds " + std::to_string(snapshot.rounds.size()) + '\n';
  for (const RoundInfo& r : snapshot.rounds) {
    out += "r ";
    AppendAttrSet(out, r.selected);
    out += ' ';
    AppendDouble(out, r.sigma);
    out += ' ';
    AppendDouble(out, r.epsilon);
    out += ' ';
    AppendDouble(out, r.estimated_error_on_selected);
    out += ' ';
    AppendDouble(out, r.sensitivity);
    out += ' ';
    out += std::to_string(r.selected_candidate);
    out += ' ';
    out += std::to_string(r.candidates.size());
    out += '\n';
    for (const CandidateInfo& c : r.candidates) {
      out += "c ";
      AppendAttrSet(out, c.attrs);
      out += ' ';
      AppendDouble(out, c.weight);
      out += ' ';
      out += std::to_string(c.cells);
      out += '\n';
    }
  }

  const uint64_t checksum = Fnv1a(out);  // over the payload, label excluded
  out += "checksum ";
  AppendHex64(out, checksum);
  out += '\n';
  return out;
}

StatusOr<AimSnapshot> ParseSnapshot(const std::string& content) {
  // Split off and verify the trailing checksum line before parsing fields:
  // a torn or bit-flipped file must be rejected wholesale.
  size_t pos = content.rfind("checksum ");
  if (pos == std::string::npos || (pos != 0 && content[pos - 1] != '\n')) {
    return InvalidArgumentError("snapshot: missing checksum line");
  }
  const std::string payload = content.substr(0, pos);
  {
    TokenReader checksum_reader(content.substr(pos));
    checksum_reader.Expect("checksum");
    uint64_t stored = checksum_reader.Hex64("checksum");
    if (!checksum_reader.ok()) {
      return InvalidArgumentError("snapshot: " + checksum_reader.error());
    }
    uint64_t actual = Fnv1a(payload);
    if (stored != actual) {
      return InvalidArgumentError(
          "snapshot: checksum mismatch (file corrupt or truncated)");
    }
  }

  TokenReader in(payload);
  in.Expect(kMagic);
  std::string version = in.Word();
  if (in.ok() && version != "v" + std::to_string(AimSnapshot::kVersion)) {
    return InvalidArgumentError("snapshot: unsupported version '" + version +
                                "' (expected v" +
                                std::to_string(AimSnapshot::kVersion) + ")");
  }

  AimSnapshot snapshot;
  in.Expect("fingerprint");
  snapshot.fingerprint = in.Hex64("fingerprint");
  in.Expect("rho_budget");
  snapshot.rho_budget = in.Double("rho_budget");
  in.Expect("rho_spent");
  snapshot.rho_spent = in.Double("rho_spent");
  in.Expect("round");
  snapshot.round = in.Int("round");
  in.Expect("init_measurements");
  snapshot.init_measurements = in.Int("init_measurements");
  in.Expect("sigma");
  snapshot.sigma = in.Double("sigma");
  in.Expect("epsilon");
  snapshot.epsilon = in.Double("epsilon");
  in.Expect("rng");
  for (uint64_t& s : snapshot.rng.state) s = in.Hex64("rng state");
  snapshot.rng.have_spare = in.Int("rng have_spare") != 0;
  snapshot.rng.spare = in.Double("rng spare");

  in.Expect("measurements");
  int64_t num_measurements = in.Int("measurement count");
  if (in.ok() && (num_measurements < 0 || num_measurements > 10000000)) {
    return InvalidArgumentError("snapshot: implausible measurement count");
  }
  for (int64_t i = 0; i < num_measurements && in.ok(); ++i) {
    in.Expect("m");
    Measurement m;
    m.attrs = in.Attrs("measurement attrs");
    m.sigma = in.Double("measurement sigma");
    int64_t n = in.Int("measurement size");
    if (!in.ok()) break;
    if (n < 0 || n > (int64_t{1} << 32)) {
      return InvalidArgumentError("snapshot: implausible marginal size");
    }
    m.values.reserve(static_cast<size_t>(n));
    for (int64_t j = 0; j < n && in.ok(); ++j) {
      m.values.push_back(in.Double("measurement value"));
    }
    snapshot.measurements.push_back(std::move(m));
  }

  in.Expect("rounds");
  int64_t num_rounds = in.Int("round count");
  if (in.ok() && (num_rounds < 0 || num_rounds > 10000000)) {
    return InvalidArgumentError("snapshot: implausible round count");
  }
  for (int64_t i = 0; i < num_rounds && in.ok(); ++i) {
    in.Expect("r");
    RoundInfo r;
    r.selected = in.Attrs("round selected");
    r.sigma = in.Double("round sigma");
    r.epsilon = in.Double("round epsilon");
    r.estimated_error_on_selected = in.Double("round estimated_error");
    r.sensitivity = in.Double("round sensitivity");
    r.selected_candidate = static_cast<int>(in.Int("round candidate"));
    int64_t num_candidates = in.Int("candidate count");
    if (!in.ok()) break;
    if (num_candidates < 0 || num_candidates > 10000000) {
      return InvalidArgumentError("snapshot: implausible candidate count");
    }
    r.candidates.reserve(static_cast<size_t>(num_candidates));
    for (int64_t j = 0; j < num_candidates && in.ok(); ++j) {
      in.Expect("c");
      CandidateInfo c;
      c.attrs = in.Attrs("candidate attrs");
      c.weight = in.Double("candidate weight");
      c.cells = in.Int("candidate cells");
      r.candidates.push_back(std::move(c));
    }
    snapshot.rounds.push_back(std::move(r));
  }

  if (!in.ok()) {
    return InvalidArgumentError("snapshot: " + in.error());
  }
  return snapshot;
}

Status WriteSnapshot(const AimSnapshot& snapshot, const std::string& path) {
  // The injection point sits before any filesystem work so a simulated
  // write failure can never damage the previous snapshot — matching the
  // real guarantee below (rename is the only mutation of `path`).
  Status fault = FaultStatus("snapshot_write");
  if (!fault.ok()) return fault;

  // tmp + fsync + rename + directory fsync, shared with the store writer
  // (util/atomic_file.h).
  return AtomicWriteFile(path, SerializeSnapshot(snapshot), "snapshot");
}

StatusOr<AimSnapshot> ReadSnapshot(const std::string& path) {
  StatusOr<std::string> content = ReadFileToString(path, "snapshot");
  if (!content.ok()) return content.status();
  StatusOr<AimSnapshot> parsed = ParseSnapshot(*content);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  parsed.status().message() + " (file: " + path + ")");
  }
  return parsed;
}

Status ValidateSnapshot(const AimSnapshot& snapshot,
                        uint64_t expected_fingerprint, double rho_budget) {
  if (snapshot.fingerprint != expected_fingerprint) {
    return FailedPreconditionError(
        "snapshot: options fingerprint mismatch — the snapshot was taken "
        "under a different configuration, workload, dataset shape, or "
        "budget");
  }
  if (snapshot.rho_budget != rho_budget) {
    return FailedPreconditionError(
        "snapshot: rho budget mismatch (snapshot " +
        std::to_string(snapshot.rho_budget) + ", run " +
        std::to_string(rho_budget) + ")");
  }
  // Accountant safety: never resume a ledger that already overspends the
  // budget (same tolerance as PrivacyFilter).
  if (!(snapshot.rho_spent >= 0.0) ||
      snapshot.rho_spent > rho_budget * (1.0 + 1e-9) + 1e-12) {
    return FailedPreconditionError(
        "snapshot: spent rho " + std::to_string(snapshot.rho_spent) +
        " exceeds the run budget " + std::to_string(rho_budget));
  }
  if (snapshot.round < 0 || snapshot.init_measurements < 0 ||
      snapshot.init_measurements >
          static_cast<int64_t>(snapshot.measurements.size())) {
    return FailedPreconditionError("snapshot: inconsistent log shape");
  }
  if (static_cast<int64_t>(snapshot.measurements.size()) !=
      snapshot.init_measurements +
          static_cast<int64_t>(snapshot.rounds.size())) {
    return FailedPreconditionError(
        "snapshot: measurement log does not match the round log (" +
        std::to_string(snapshot.measurements.size()) + " measurements, " +
        std::to_string(snapshot.init_measurements) + " init + " +
        std::to_string(snapshot.rounds.size()) + " rounds)");
  }
  if (!(snapshot.sigma > 0.0) || !(snapshot.epsilon > 0.0)) {
    return FailedPreconditionError(
        "snapshot: non-positive annealing state");
  }
  return Status::Ok();
}

}  // namespace aim
