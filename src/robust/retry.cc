#include "robust/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace aim {
namespace {

Counter& RetryAttemptsCounter() {
  static Counter& c = MetricsRegistry::Global().counter("robust.retry.attempts");
  return c;
}
Counter& RetrySuccessesCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("robust.retry.successes");
  return c;
}
Counter& RetryExhaustedCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("robust.retry.exhausted");
  return c;
}

// SplitMix64 finalizer: full-avalanche mix for the jitter hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kUnavailable;
}

double RetryPolicy::BackoffMs(std::string_view what, int attempt) const {
  if (attempt < 1) attempt = 1;
  double backoff = options_.initial_backoff_ms;
  for (int i = 1; i < attempt && backoff < options_.max_backoff_ms; ++i) {
    backoff *= options_.multiplier;
  }
  backoff = std::min(backoff, options_.max_backoff_ms);
  if (options_.jitter > 0.0) {
    uint64_t h = Mix64(options_.seed ^ 0x72657472ULL);  // "retr"
    for (char c : what) h = Mix64(h ^ static_cast<uint8_t>(c));
    h = Mix64(h ^ static_cast<uint64_t>(attempt));
    // Map the top 53 bits to [0, 1): the same unit-uniform construction the
    // library's Rng uses, but fed from the hash so it is position-pure.
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    backoff *= 1.0 + options_.jitter * u;
  }
  return backoff;
}

Status RetryPolicy::Run(std::string_view what,
                        const std::function<Status()>& op) const {
  int attempt = 1;
  for (;; ++attempt) {
    Status status = op();
    if (status.ok() || !IsRetryableStatus(status)) {
      if (attempt > 1 && status.ok()) NoteSuccessAfterRetry();
      return status;
    }
    if (attempt >= MaxAttempts()) {
      NoteExhausted();
      return AnnotateExhausted(status, attempt);
    }
    NoteRetry(what, attempt);
  }
}

int RetryPolicy::MaxAttempts() const {
  return std::max(1, options_.max_attempts);
}

void RetryPolicy::NoteRetry(std::string_view what, int attempt) const {
  RetryAttemptsCounter().Add();
  double ms = BackoffMs(what, attempt);
  if (options_.sleep) {
    options_.sleep(ms);
  } else if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

void RetryPolicy::NoteSuccessAfterRetry() const {
  RetrySuccessesCounter().Add();
}

void RetryPolicy::NoteExhausted() const { RetryExhaustedCounter().Add(); }

Status RetryPolicy::AnnotateExhausted(const Status& status, int attempts) {
  return Status(status.code(), status.message() + " (retries exhausted after " +
                                   std::to_string(attempts) + " attempts)");
}

}  // namespace aim
