// Deterministic retry with capped exponential backoff.
//
// Transient failures (a torn read under memory pressure, a full-then-freed
// disk, an injected "store_read" fault) deserve another attempt; corruption
// and caller bugs do not — retrying a checksum mismatch can only waste time
// or, worse, mask a real defect. The classifier below draws that line by
// StatusCode: kInternal and kUnavailable are retryable, everything else is
// fatal on first sight.
//
// Determinism contract (mirrors src/robust/fault.h): backoff jitter is
// derived by hashing (seed, site name, attempt index), never from a global
// RNG or the clock, so a retried run consumes exactly the same mechanism
// randomness as an untroubled one and replays bit-identically. Tests swap
// the sleep function out entirely.
//
// Observability: the policy bumps process-wide counters
//   robust.retry.attempts   every re-attempt after a retryable failure
//   robust.retry.successes  recoveries (an op that failed, then succeeded)
//   robust.retry.exhausted  ops that stayed retryable through max_attempts
// unconditionally (cold path; same policy as the obs sink failure counters).

#ifndef AIM_ROBUST_RETRY_H_
#define AIM_ROBUST_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace aim {

// True for status codes worth another attempt (kInternal, kUnavailable).
// Corruption surfaces as kInvalidArgument and missing inputs as kNotFound;
// both are fatal by design — see DESIGN.md "Failure model & recovery".
bool IsRetryableStatus(const Status& status);

struct RetryOptions {
  int max_attempts = 3;           // total attempts, including the first
  double initial_backoff_ms = 1.0;
  double max_backoff_ms = 100.0;  // cap applied before jitter
  double multiplier = 2.0;
  double jitter = 0.25;           // adds up to this fraction, deterministically
  uint64_t seed = 0;              // jitter hash seed

  // Test seam: replaces the real sleep. Called with the backoff in ms
  // before every re-attempt.
  std::function<void(double)> sleep;
};

class RetryPolicy {
 public:
  RetryPolicy() = default;
  explicit RetryPolicy(RetryOptions options) : options_(std::move(options)) {}

  const RetryOptions& options() const { return options_; }

  // Deterministic backoff before re-attempt `attempt` (1-based: the delay
  // taken after the attempt-th failure). Exponential with cap, plus jitter
  // hashed from (seed, what, attempt).
  double BackoffMs(std::string_view what, int attempt) const;

  // Runs `op` up to max_attempts times, sleeping BackoffMs between
  // attempts, while the result is a retryable failure. Returns the first
  // non-retryable result (success or fatal error), or the last retryable
  // error annotated with the attempt count once attempts are exhausted.
  Status Run(std::string_view what, const std::function<Status()>& op) const;

  // StatusOr flavor: same policy for value-returning ops.
  template <typename Op>
  auto RunOr(std::string_view what, Op&& op) const -> decltype(op()) {
    int attempt = 1;
    for (;; ++attempt) {
      auto result = op();
      if (result.ok() || !IsRetryableStatus(result.status())) {
        if (attempt > 1 && result.ok()) NoteSuccessAfterRetry();
        return result;
      }
      if (attempt >= MaxAttempts()) {
        NoteExhausted();
        return AnnotateExhausted(result.status(), attempt);
      }
      NoteRetry(what, attempt);
    }
  }

 private:
  int MaxAttempts() const;
  void NoteRetry(std::string_view what, int attempt) const;  // counts + sleeps
  void NoteSuccessAfterRetry() const;
  void NoteExhausted() const;
  static Status AnnotateExhausted(const Status& status, int attempts);

  RetryOptions options_;
};

}  // namespace aim

#endif  // AIM_ROBUST_RETRY_H_
