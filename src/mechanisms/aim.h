// AIM: the paper's Adaptive and Iterative Mechanism (Algorithm 4), with
// intelligent initialization (Algorithm 2), budget annealing (Algorithm 3),
// workload-weighted quality scores (Equation 1), JT-SIZE-filtered candidates
// from the downward closure, a privacy filter, and optional structural-zero
// constraints (Appendix D).

#ifndef AIM_MECHANISMS_AIM_H_
#define AIM_MECHANISMS_AIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mechanisms/mechanism.h"
#include "pgm/estimation.h"
#include "util/cancel.h"

namespace aim {

// How the Line-13 JT-SIZE candidate filter resolved (trace field
// "cap_fallback" of the per-round record).
enum class SizeCapFallback {
  kNone,              // at least one candidate fit the growing allowance
  kRelaxedToMaxSize,  // allowance admitted nothing; fell back to the full
                      // MAX-SIZE budget (paper Section 6, JT-SIZE <= MAX-SIZE)
  kViolatesMaxSize,   // every candidate exceeds even MAX-SIZE; the smallest
                      // one was admitted so the round can proceed
};

const char* ToString(SizeCapFallback fallback);

// Line 13 of Algorithm 4: indices of the candidates whose resulting model
// stays within `size_cap` (the round's growing JT-SIZE allowance). When the
// allowance admits nothing, the filter clamps against the full `max_size_mb`
// budget instead of admitting an arbitrarily large model, and only if even
// that is empty does it admit the globally smallest candidate (reported via
// `fallback`). Exposed for tests.
std::vector<int> FilterCandidatesByJtSize(
    const std::vector<double>& candidate_sizes, double size_cap,
    double max_size_mb, SizeCapFallback* fallback);

// Defensive ceiling on the main-loop round count: 10*T + 10, computed in
// 64-bit and clamped to 1e9 so extreme T (tiny alpha, huge rho, many
// attributes) can neither overflow int nor spin forever. Exposed for tests.
int64_t AimMaxRounds(double T);

struct AimOptions {
  // Model-capacity limit in MB (paper default: 80 MB; Section 6.5 sweeps
  // this to trade accuracy for runtime).
  double max_size_mb = 80.0;

  // Fraction of each round's budget devoted to the measure step (paper
  // default 0.9: "10% of the budget for the select steps").
  double alpha = 0.9;

  // T = rounds_per_attribute * d is the conservative round-count upper
  // bound used to size sigma_0 (paper default 16).
  int rounds_per_attribute = 16;

  // Estimation effort: intermediate rounds warm-start and run fewer
  // iterations; the final fit runs longer.
  EstimationOptions round_estimation{.max_iters = 100};
  EstimationOptions final_estimation{.max_iters = 1000};

  // Known-impossible attribute combinations to enforce (Appendix D). These
  // cliques count toward JT-SIZE and are pinned to zero in the model.
  std::vector<ZeroConstraint> structural_zeros;

  // Record per-round candidate sets in the log (needed by the Section-5
  // uncertainty quantification; costs memory on large workloads).
  bool record_candidates = true;

  // Number of synthetic records to emit; <= 0 means "the estimated total".
  int64_t synthetic_records = -1;

  // Use the generalized exponential mechanism [39] for selection, handling
  // the per-candidate sensitivities w_r directly instead of the global
  // Delta_t = max_r w_r (the paper mentions both; default matches the
  // pseudo-code).
  bool use_generalized_em = false;

  // Optional public dataset (Section 7, "Utilizing Public Data"):
  // low-order marginals of this dataset are folded into the estimation as
  // weak prior pseudo-measurements at zero privacy cost. Must share the
  // private data's domain. Experimental extension; not part of Algorithm 4.
  const Dataset* public_data = nullptr;
  // Pseudo-measurement noise scale multiplier relative to sigma_0 (larger =
  // weaker prior).
  double public_prior_weight = 1.0;

  // Measure-step noise distribution. The paper (Section 3.2) argues for
  // Gaussian over Laplace; kLaplace enables that comparison (same zCDP cost
  // per measurement).
  enum class Noise { kGaussian, kLaplace };
  Noise noise = Noise::kGaussian;

  // --- Ablation switches (all true = the paper's AIM). ---
  // Use the downward closure W+ as the candidate pool (false: workload
  // queries only, as in MWEM+PGM).
  bool use_downward_closure = true;
  // Weight quality scores by workload relevance w_r (false: w_r = 1).
  bool use_workload_weights = true;
  // Subtract the expected-noise penalty sqrt(2/pi)*sigma*n_r (false: the
  // MWEM-style "- n_r" penalty).
  bool use_noise_penalty = true;
  // Anneal epsilon_t / sigma_t via Algorithm 3 (false: fixed schedule with
  // exactly T rounds).
  bool use_annealing = true;
  // Spend a first slice of budget measuring all 1-way marginals
  // (Algorithm 2); false starts from the uniform model.
  bool use_initialization = true;

  // --- Fault tolerance (DESIGN.md "Failure model & recovery"). ---
  // When non-empty, an AimSnapshot is written here atomically after the
  // initial fit and then after every `checkpoint_every_rounds` completed
  // rounds; a failed write retries with deterministic backoff, then warns
  // (aim_warning kind=checkpoint_failed) and the run continues.
  std::string checkpoint_path;
  int checkpoint_every_rounds = 1;
  // Snapshot generations kept at checkpoint_path: 1 keeps the single file,
  // N > 1 rotates checkpoint_path.gen1 .. .genN-1 behind it (atomic rename
  // chain + GC; robust/generations.h). Resume scans newest-first and falls
  // back past corrupt generations.
  int checkpoint_generations = 1;
  // When non-empty, the run resumes from this snapshot instead of starting
  // fresh: the model is refit by replaying the persisted measurement log,
  // and the round loop continues with the restored accountant, annealing,
  // and RNG state — producing output bitwise-identical to an uninterrupted
  // run. The snapshot's fingerprint must match this run (CHECK-enforced;
  // callers wanting a recoverable error validate with ValidateSnapshot
  // first, as aim_cli does).
  std::string resume_path;
  // Wall-clock budget for this process, checked at round boundaries; on
  // expiry the mechanism stops selecting and goes straight to final
  // estimation + generation from the measurements it has (under-spending
  // rho is always DP-safe). <= 0 disables the deadline.
  double deadline_seconds = 0.0;
  // Cooperative cancellation (stall watchdog / daemon SLO): when set and
  // cancelled, the round loop stops at the next round boundary, forces a
  // final checkpoint (if checkpointing), and synthesizes from the
  // measurements in hand — exactly the deadline degradation path, but
  // triggered externally. Not owned.
  CancelToken* cancel = nullptr;
};

// Hash of everything a snapshot must agree on to be resumable under this
// run: the domain, the workload, the rho budget, and every AimOptions field
// that influences the output. Checkpoint paths, the deadline, and the
// checkpoint cadence are deliberately excluded — resuming under a different
// deadline or checkpoint schedule is legitimate.
uint64_t AimRunFingerprint(const Domain& domain, const Workload& workload,
                           const AimOptions& options, double rho);

class AimMechanism : public Mechanism {
 public:
  AimMechanism() = default;
  explicit AimMechanism(AimOptions options) : options_(std::move(options)) {}

  std::string name() const override { return "AIM"; }
  MechanismTraits traits() const override {
    return {.workload_aware = true,
            .data_aware = true,
            .budget_aware = true,
            .efficiency_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;

  // AIM touches the data only through domain(), num_records(), and marginal
  // counting, so it streams directly from any DataSource (mmap-backed
  // stores included) without ever materializing the records. Produces
  // bitwise-identical output to the Dataset overload on the same records.
  MechanismResult Run(const DataSource& source, const Workload& workload,
                      double rho, Rng& rng) const override;
  bool SupportsStreaming() const override { return true; }

  const AimOptions& options() const { return options_; }

 private:
  AimOptions options_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_AIM_H_
