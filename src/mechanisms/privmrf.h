// PrivMRF analog (Cai, Lei, Wei, Xiao [8]): workload-AGNOSTIC but data-,
// budget-, and efficiency-aware iterative Markov-random-field construction.
// The reference implementation is GPU-only; this CPU analog shares our
// Private-PGM engine and reproduces PrivMRF's taxonomy row (Table 1):
// candidates are all low-order marginals of the domain (not the workload),
// the candidate pool is filtered by a model-capacity limit, selection is
// data-driven (noisy L1 improvement with the expected-noise penalty, so
// candidate size adapts to the budget), and the number of rounds grows with
// the available budget. See DESIGN.md §3 for the substitution rationale.

#ifndef AIM_MECHANISMS_PRIVMRF_H_
#define AIM_MECHANISMS_PRIVMRF_H_

#include "mechanisms/mechanism.h"
#include "pgm/estimation.h"

namespace aim {

struct PrivMrfOptions {
  // Maximum order of candidate marginals.
  int max_order = 3;
  // Model capacity limit (same convention as AIM's MAX-SIZE).
  double max_size_mb = 80.0;
  // Fraction of the budget spent on the 1-way initialization.
  double init_fraction = 0.1;
  // Measure/select split within each round.
  double alpha = 0.9;

  EstimationOptions round_estimation{.max_iters = 100};
  EstimationOptions final_estimation{.max_iters = 1000};
  int64_t synthetic_records = -1;
};

class PrivMrfMechanism : public Mechanism {
 public:
  PrivMrfMechanism() = default;
  explicit PrivMrfMechanism(PrivMrfOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "PrivMRF"; }
  MechanismTraits traits() const override {
    return {.data_aware = true, .budget_aware = true,
            .efficiency_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;

 private:
  PrivMrfOptions options_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_PRIVMRF_H_
