#include "mechanisms/mwem_pgm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "pgm/junction_tree.h"
#include "pgm/synthetic.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {

MechanismResult MwemPgmMechanism::Run(const Dataset& data,
                                      const Workload& workload, double rho,
                                      Rng& rng) const {
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  AIM_CHECK_GT(workload.num_queries(), 0);
  const Domain& domain = data.domain();
  const int d = domain.num_attributes();
  const int T = options_.rounds > 0 ? options_.rounds : 2 * d;

  MechanismResult result;
  result.rho_budget = rho;
  PrivacyFilter filter(rho);

  // Algorithm 1: epsilon = 2 sqrt(rho/T), sigma = sqrt(T/rho); each round
  // costs eps^2/8 + 1/(2 sigma^2) = rho/T.
  const double epsilon = 2.0 * std::sqrt(rho / T);
  const double sigma = std::sqrt(T / rho);

  // Candidates: exactly the workload queries (deduplicated).
  std::vector<AttrSet> pool;
  {
    std::set<AttrSet> distinct;
    for (const auto& q : workload.queries()) distinct.insert(q.attrs);
    pool.assign(distinct.begin(), distinct.end());
  }

  std::unordered_map<AttrSet, std::vector<double>, AttrSetHash> cache;
  auto true_marginal =
      [&](const AttrSet& r) -> const std::vector<double>& {
    auto it = cache.find(r);
    if (it == cache.end()) {
      it = cache.emplace(r, ComputeMarginal(data, r)).first;
    }
    return it->second;
  };

  // Initialize p̂_0 = Uniform[X]. The uniform model needs a scale; MWEM
  // assumes the dataset size is public, so use N directly (the original
  // MWEM takes n as input).
  double total = static_cast<double>(std::max<int64_t>(1, data.num_records()));
  MarkovRandomField model(domain, {});
  model.set_total(total);
  model.Calibrate();

  std::vector<Measurement> measurements;
  std::vector<AttrSet> model_cliques;
  for (int t = 0; t < T; ++t) {
    double round_rho = ExponentialRho(epsilon) + GaussianRho(sigma);
    if (!filter.CanSpend(round_rho)) break;
    filter.Spend(round_rho);

    // Select via the exponential mechanism with the MWEM score.
    std::vector<double> scores(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      const AttrSet& r = pool[i];
      // Efficiency guard (see MwemPgmOptions::max_size_mb).
      model_cliques.push_back(r);
      double size_mb = JtSizeMb(domain, model_cliques);
      model_cliques.pop_back();
      if (size_mb > options_.max_size_mb) {
        scores[i] = -std::numeric_limits<double>::infinity();
        continue;
      }
      double n_r = static_cast<double>(MarginalSize(domain, r));
      scores[i] =
          L1Distance(true_marginal(r), model.MarginalVector(r)) - n_r;
    }
    int pick = ExponentialMechanism(scores, epsilon, 1.0, rng);
    const AttrSet r_t = pool[pick];

    Measurement m{r_t, AddGaussianNoise(true_marginal(r_t), sigma, rng),
                  sigma};
    double estimated_error =
        L1Distance(model.MarginalVector(r_t), m.values);
    measurements.push_back(std::move(m));
    model_cliques.push_back(r_t);

    model = EstimateMrf(domain, measurements, total,
                        options_.round_estimation,
                        measurements.size() > 1 ? &model : nullptr);

    RoundInfo info;
    info.selected = r_t;
    info.sigma = sigma;
    info.epsilon = epsilon;
    info.estimated_error_on_selected = estimated_error;
    info.sensitivity = 1.0;
    result.log.rounds.push_back(std::move(info));
  }

  model = EstimateMrf(domain, measurements, total, options_.final_estimation,
                      &model);
  int64_t synth_records = options_.synthetic_records > 0
                              ? options_.synthetic_records
                              : static_cast<int64_t>(std::llround(total));
  result.synthetic = GenerateSyntheticData(model, synth_records, rng);
  result.log.measurements = std::move(measurements);
  result.rho_used = filter.spent();
  result.rounds = static_cast<int>(result.log.rounds.size());
  result.total_estimate = total;
  result.final_model = std::move(model);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace aim
