#include "mechanisms/rap.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {

MechanismResult RapMechanism::Run(const Dataset& data,
                                  const Workload& workload, double rho,
                                  Rng& rng) const {
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  AIM_CHECK_GT(workload.num_queries(), 0);
  const Domain& domain = data.domain();
  const double total =
      static_cast<double>(std::max<int64_t>(1, data.num_records()));

  MechanismResult result;
  result.rho_budget = rho;
  PrivacyFilter filter(rho);

  std::vector<AttrSet> pool;
  {
    std::set<AttrSet> distinct;
    for (const auto& q : workload.queries()) distinct.insert(q.attrs);
    pool.assign(distinct.begin(), distinct.end());
  }
  {
    // Efficiency guard: drop queries whose marginal exceeds the cell cap.
    std::vector<AttrSet> kept;
    for (const AttrSet& r : pool) {
      if (MarginalSize(domain, r) <= options_.max_query_cells) {
        kept.push_back(r);
      }
    }
    if (!kept.empty()) pool = std::move(kept);
  }
  std::unordered_map<AttrSet, std::vector<double>, AttrSetHash> cache;
  auto true_marginal =
      [&](const AttrSet& r) -> const std::vector<double>& {
    auto it = cache.find(r);
    if (it == cache.end()) {
      it = cache.emplace(r, ComputeMarginal(data, r)).first;
    }
    return it->second;
  };

  const int T = options_.rounds;
  const int K =
      std::min<int>(options_.queries_per_round, static_cast<int>(pool.size()));
  // Per round: K exponential-mechanism draws at eps_sel (rho/(2T) total) and
  // K Gaussian measurements at sigma (rho/(2T) total).
  const double eps_sel = std::sqrt(4.0 * rho / (T * K));
  const double sigma = std::sqrt(static_cast<double>(T) * K / rho);

  RelaxedDataset relaxed(domain, options_.projection, rng);
  std::vector<Measurement> measurements;
  std::set<AttrSet> measured_set;
  for (int t = 0; t < T; ++t) {
    std::vector<double> scores(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      scores[i] = L1Distance(true_marginal(pool[i]),
                             relaxed.Marginal(pool[i], total));
    }
    std::vector<int> picked;
    for (int k = 0; k < K; ++k) {
      filter.Spend(ExponentialRho(eps_sel));
      int pick = ExponentialMechanism(scores, eps_sel, 1.0, rng);
      scores[pick] = -std::numeric_limits<double>::infinity();
      picked.push_back(pick);
    }
    for (int pick : picked) {
      const AttrSet& r = pool[pick];
      filter.Spend(GaussianRho(sigma));
      if (measured_set.insert(r).second) {
        measurements.push_back(
            {r, AddGaussianNoise(true_marginal(r), sigma, rng), sigma});
      } else {
        // Re-measured marginal: average into the existing measurement with
        // reduced effective sigma.
        for (Measurement& m : measurements) {
          if (m.attrs == r) {
            std::vector<double> fresh =
                AddGaussianNoise(true_marginal(r), sigma, rng);
            for (size_t c = 0; c < m.values.size(); ++c) {
              m.values[c] = 0.5 * (m.values[c] + fresh[c]);
            }
            m.sigma /= std::sqrt(2.0);
            break;
          }
        }
      }
      RoundInfo info;
      info.selected = r;
      info.sigma = sigma;
      info.epsilon = eps_sel;
      info.sensitivity = 1.0;
      result.log.rounds.push_back(std::move(info));
    }
    relaxed.FitTo(measurements, total);
  }

  int64_t synth_records = options_.synthetic_records > 0
                              ? options_.synthetic_records
                              : static_cast<int64_t>(total);
  result.synthetic = relaxed.Round(synth_records, rng);
  result.log.measurements = std::move(measurements);
  result.rho_used = filter.spent();
  result.rounds = T;
  result.total_estimate = total;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace aim
