// MWEM+PGM (Algorithm 1): the iterative workload-aware baseline AIM builds
// on. Selects a workload marginal by the exponential mechanism with the
// MWEM quality score q_r = ||M_r(D) - M_r(p̂)||_1 - n_r, measures it with
// Gaussian noise, and re-estimates with Private-PGM; equal select/measure
// budget split, fixed number of rounds T.

#ifndef AIM_MECHANISMS_MWEM_PGM_H_
#define AIM_MECHANISMS_MWEM_PGM_H_

#include "mechanisms/mechanism.h"
#include "pgm/estimation.h"

namespace aim {

struct MwemPgmOptions {
  // Number of rounds; <= 0 means the 2d default. The paper (Section 3.4)
  // notes this hyper-parameter must be tuned per dataset/epsilon; Figure 7
  // sweeps it.
  int rounds = 0;

  EstimationOptions round_estimation{.max_iters = 100};
  EstimationOptions final_estimation{.max_iters = 1000};

  // Safety valve absent from the published algorithm (the paper calls
  // MWEM+PGM efficiency-unaware): refuse selections that would push the
  // junction tree beyond this size, so benches cannot exhaust memory. Set
  // very large to reproduce the unguarded algorithm.
  double max_size_mb = 512.0;

  int64_t synthetic_records = -1;
};

class MwemPgmMechanism : public Mechanism {
 public:
  MwemPgmMechanism() = default;
  explicit MwemPgmMechanism(MwemPgmOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "MWEM+PGM"; }
  MechanismTraits traits() const override {
    return {.workload_aware = true, .data_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;

 private:
  MwemPgmOptions options_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_MWEM_PGM_H_
