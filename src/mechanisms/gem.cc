#include "mechanisms/gem.h"

#include <chrono>
#include <cmath>
#include <set>
#include <unordered_map>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {

MechanismResult GemMechanism::Run(const Dataset& data,
                                  const Workload& workload, double rho,
                                  Rng& rng) const {
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  AIM_CHECK_GT(workload.num_queries(), 0);
  const Domain& domain = data.domain();
  const int d = domain.num_attributes();
  const int T = options_.rounds > 0 ? options_.rounds : 2 * d;
  const double total =
      static_cast<double>(std::max<int64_t>(1, data.num_records()));

  MechanismResult result;
  result.rho_budget = rho;
  PrivacyFilter filter(rho);

  // GEM uses the MWEM-style equal select/measure split per round.
  const double epsilon = 2.0 * std::sqrt(rho / T);
  const double sigma = std::sqrt(T / rho);

  std::vector<AttrSet> pool;
  {
    std::set<AttrSet> distinct;
    for (const auto& q : workload.queries()) distinct.insert(q.attrs);
    pool.assign(distinct.begin(), distinct.end());
  }
  {
    // Efficiency guard: drop queries whose marginal exceeds the cell cap.
    std::vector<AttrSet> kept;
    for (const AttrSet& r : pool) {
      if (MarginalSize(domain, r) <= options_.max_query_cells) {
        kept.push_back(r);
      }
    }
    if (!kept.empty()) pool = std::move(kept);
  }
  std::unordered_map<AttrSet, std::vector<double>, AttrSetHash> cache;
  auto true_marginal =
      [&](const AttrSet& r) -> const std::vector<double>& {
    auto it = cache.find(r);
    if (it == cache.end()) {
      it = cache.emplace(r, ComputeMarginal(data, r)).first;
    }
    return it->second;
  };

  RelaxedDataset generator(domain, options_.generator, rng);
  std::vector<Measurement> measurements;
  for (int t = 0; t < T; ++t) {
    double round_rho = ExponentialRho(epsilon) + GaussianRho(sigma);
    if (!filter.CanSpend(round_rho)) break;
    filter.Spend(round_rho);

    // GEM scores candidates by the current generator's error (no size
    // penalty: it selects among same-size workload marginals).
    std::vector<double> scores(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      scores[i] = L1Distance(true_marginal(pool[i]),
                             generator.Marginal(pool[i], total));
    }
    int pick = ExponentialMechanism(scores, epsilon, 1.0, rng);
    const AttrSet r_t = pool[pick];
    measurements.push_back(
        {r_t, AddGaussianNoise(true_marginal(r_t), sigma, rng), sigma});
    generator.FitTo(measurements, total);

    RoundInfo info;
    info.selected = r_t;
    info.sigma = sigma;
    info.epsilon = epsilon;
    info.sensitivity = 1.0;
    result.log.rounds.push_back(std::move(info));
  }

  int64_t synth_records = options_.synthetic_records > 0
                              ? options_.synthetic_records
                              : static_cast<int64_t>(total);
  result.synthetic = generator.Round(synth_records, rng);
  result.log.measurements = std::move(measurements);
  result.rho_used = filter.spent();
  result.rounds = static_cast<int>(result.log.rounds.size());
  result.total_estimate = total;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace aim
