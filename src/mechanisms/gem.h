// GEM analog (Liu, Vietri, Wu [32]): iterative workload-aware mechanism
// whose generate step uses a parametric generator instead of Private-PGM.
// The original trains a neural generator network; this CPU analog uses a
// mixture of product distributions (the relaxed-projection substrate with a
// small number of mixture components) fit by gradient descent — the same
// "generator fit to noisy measurements" role with a tractable family.
// Selection follows the full-marginal GEM variant the paper evaluates
// (footnote 8). See DESIGN.md §3 for the substitution rationale.

#ifndef AIM_MECHANISMS_GEM_H_
#define AIM_MECHANISMS_GEM_H_

#include "mechanisms/mechanism.h"
#include "mechanisms/relaxed_projection.h"

namespace aim {

struct GemOptions {
  // Rounds; <= 0 means the 2d default.
  int rounds = 0;
  // Mixture components of the generator.
  RelaxedProjectionOptions generator{.rows = 64, .iters = 150};
  // Queries with more cells than this are never scored or selected (the
  // CPU port's efficiency guard; the originals rely on GPU batching).
  int64_t max_query_cells = 100000;
  int64_t synthetic_records = -1;
};

class GemMechanism : public Mechanism {
 public:
  GemMechanism() = default;
  explicit GemMechanism(GemOptions options) : options_(std::move(options)) {}

  std::string name() const override { return "GEM"; }
  MechanismTraits traits() const override {
    return {.workload_aware = true, .data_aware = true,
            .efficiency_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;

 private:
  GemOptions options_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_GEM_H_
