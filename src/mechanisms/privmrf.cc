#include "mechanisms/privmrf.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "pgm/junction_tree.h"
#include "pgm/synthetic.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

constexpr double kSqrt2OverPi = 0.7978845608028654;

// All attribute subsets of size in [1, max_order].
std::vector<AttrSet> LowOrderSets(int d, int max_order) {
  std::vector<AttrSet> out;
  std::vector<int> current;
  std::function<void(int)> recurse = [&](int start) {
    if (!current.empty()) out.push_back(AttrSet(current));
    if (static_cast<int>(current.size()) >= max_order) return;
    for (int i = start; i < d; ++i) {
      current.push_back(i);
      recurse(i + 1);
      current.pop_back();
    }
  };
  recurse(0);
  return out;
}

}  // namespace

MechanismResult PrivMrfMechanism::Run(const Dataset& data,
                                      const Workload& workload, double rho,
                                      Rng& rng) const {
  (void)workload;  // workload-agnostic
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  const Domain& domain = data.domain();
  const int d = domain.num_attributes();

  MechanismResult result;
  result.rho_budget = rho;
  PrivacyFilter filter(rho);

  std::unordered_map<AttrSet, std::vector<double>, AttrSetHash> cache;
  auto true_marginal =
      [&](const AttrSet& r) -> const std::vector<double>& {
    auto it = cache.find(r);
    if (it == cache.end()) {
      it = cache.emplace(r, ComputeMarginal(data, r)).first;
    }
    return it->second;
  };

  // ---- Initialization: all 1-way marginals on init_fraction of the budget.
  const double init_rho = options_.init_fraction * rho;
  const double sigma0 = std::sqrt(d / (2.0 * init_rho));
  std::vector<Measurement> measurements;
  std::vector<AttrSet> model_cliques;
  for (int a = 0; a < d; ++a) {
    filter.Spend(GaussianRho(sigma0));
    AttrSet r({a});
    measurements.push_back(
        {r, AddGaussianNoise(true_marginal(r), sigma0, rng), sigma0});
    model_cliques.push_back(r);
  }
  double total = EstimateTotal(measurements);
  MarkovRandomField model = EstimateMrf(domain, measurements, total,
                                        options_.round_estimation);

  // ---- Budget-aware round count: more budget, more (and larger) marginals.
  const double remaining_budget = filter.remaining();
  int T = static_cast<int>(std::lround(
      std::clamp(std::sqrt(rho) * 2.0, 1.0, 3.0) * d));
  const double per_round = remaining_budget / T;
  const double sigma =
      std::sqrt(1.0 / (2.0 * options_.alpha * per_round));
  const double epsilon =
      std::sqrt(8.0 * (1.0 - options_.alpha) * per_round);

  std::vector<AttrSet> pool = LowOrderSets(d, options_.max_order);
  for (int t = 0; t < T; ++t) {
    double round_rho = ExponentialRho(epsilon) + GaussianRho(sigma);
    if (!filter.CanSpend(round_rho)) break;
    filter.Spend(round_rho);

    // Candidates filtered by model capacity.
    std::vector<int> candidate_ids;
    for (size_t i = 0; i < pool.size(); ++i) {
      model_cliques.push_back(pool[i]);
      double size_mb = JtSizeMb(domain, model_cliques);
      model_cliques.pop_back();
      if (size_mb <= options_.max_size_mb) {
        candidate_ids.push_back(static_cast<int>(i));
      }
    }
    if (candidate_ids.empty()) break;

    std::vector<double> scores(candidate_ids.size());
    for (size_t j = 0; j < candidate_ids.size(); ++j) {
      const AttrSet& r = pool[candidate_ids[j]];
      double n_r = static_cast<double>(MarginalSize(domain, r));
      scores[j] = L1Distance(true_marginal(r), model.MarginalVector(r)) -
                  kSqrt2OverPi * sigma * n_r;
    }
    int pick = ExponentialMechanism(scores, epsilon, 1.0, rng);
    const AttrSet r_t = pool[candidate_ids[pick]];

    Measurement m{r_t, AddGaussianNoise(true_marginal(r_t), sigma, rng),
                  sigma};
    double estimated_error =
        L1Distance(model.MarginalVector(r_t), m.values);
    measurements.push_back(std::move(m));
    model_cliques.push_back(r_t);
    model = EstimateMrf(domain, measurements, total,
                        options_.round_estimation, &model);

    RoundInfo info;
    info.selected = r_t;
    info.sigma = sigma;
    info.epsilon = epsilon;
    info.estimated_error_on_selected = estimated_error;
    info.sensitivity = 1.0;
    result.log.rounds.push_back(std::move(info));
  }

  model = EstimateMrf(domain, measurements, total, options_.final_estimation,
                      &model);
  int64_t synth_records = options_.synthetic_records > 0
                              ? options_.synthetic_records
                              : static_cast<int64_t>(std::llround(total));
  result.synthetic = GenerateSyntheticData(model, synth_records, rng);
  result.log.measurements = std::move(measurements);
  result.rho_used = filter.spent();
  result.rounds = static_cast<int>(result.log.rounds.size());
  result.total_estimate = total;
  result.final_model = std::move(model);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace aim
