#include "mechanisms/registry.h"

#include "mechanisms/aim.h"
#include "mechanisms/gaussian_baseline.h"
#include "mechanisms/gem.h"
#include "mechanisms/independent.h"
#include "mechanisms/mst.h"
#include "mechanisms/mwem_pgm.h"
#include "mechanisms/mwem_rp.h"
#include "mechanisms/privbayes_pgm.h"
#include "mechanisms/privmrf.h"
#include "mechanisms/rap.h"

namespace aim {
namespace {

EstimationOptions RoundEstimation(const RegistryOptions& o) {
  EstimationOptions e;
  e.max_iters = o.round_iters;
  return e;
}

EstimationOptions FinalEstimation(const RegistryOptions& o) {
  EstimationOptions e;
  e.max_iters = o.final_iters;
  return e;
}

RelaxedProjectionOptions Projection(const RegistryOptions& o) {
  RelaxedProjectionOptions p;
  p.rows = o.rp_rows;
  p.iters = o.rp_iters;
  return p;
}

}  // namespace

std::unique_ptr<Mechanism> MechanismByName(const std::string& name,
                                           const RegistryOptions& options) {
  if (name == "Independent") {
    IndependentOptions o;
    o.estimation = FinalEstimation(options);
    return std::make_unique<IndependentMechanism>(o);
  }
  if (name == "Gaussian") {
    return std::make_unique<GaussianBaselineMechanism>();
  }
  if (name == "MST") {
    MstOptions o;
    o.estimation = FinalEstimation(options);
    return std::make_unique<MstMechanism>(o);
  }
  if (name == "PrivBayes+PGM") {
    PrivBayesOptions o;
    o.estimation = FinalEstimation(options);
    return std::make_unique<PrivBayesPgmMechanism>(o);
  }
  if (name == "PrivMRF") {
    PrivMrfOptions o;
    o.max_size_mb = options.max_size_mb;
    o.round_estimation = RoundEstimation(options);
    o.final_estimation = FinalEstimation(options);
    return std::make_unique<PrivMrfMechanism>(o);
  }
  if (name == "MWEM+PGM") {
    MwemPgmOptions o;
    o.rounds = options.mwem_rounds;
    o.round_estimation = RoundEstimation(options);
    o.final_estimation = FinalEstimation(options);
    // MWEM+PGM has no efficiency-awareness in the paper; give the safety
    // valve 4x AIM's capacity so it keeps its disadvantage without
    // exhausting bench machines.
    o.max_size_mb = options.max_size_mb * 4.0;
    return std::make_unique<MwemPgmMechanism>(o);
  }
  if (name == "MWEM+RP") {
    MwemRpOptions o;
    o.rounds = options.mwem_rounds;
    o.projection = Projection(options);
    o.max_query_cells = options.rp_max_cells;
    return std::make_unique<MwemRpMechanism>(o);
  }
  if (name == "RAP") {
    RapOptions o;
    o.projection = Projection(options);
    o.max_query_cells = options.rp_max_cells;
    return std::make_unique<RapMechanism>(o);
  }
  if (name == "GEM") {
    GemOptions o;
    o.rounds = options.mwem_rounds;
    o.generator = Projection(options);
    o.generator.rows = std::min(64, options.rp_rows);
    o.max_query_cells = options.rp_max_cells;
    return std::make_unique<GemMechanism>(o);
  }
  if (name == "AIM") {
    AimOptions o;
    o.max_size_mb = options.max_size_mb;
    o.round_estimation = RoundEstimation(options);
    o.final_estimation = FinalEstimation(options);
    o.checkpoint_path = options.checkpoint_path;
    o.checkpoint_every_rounds = options.checkpoint_every_rounds;
    o.checkpoint_generations = options.checkpoint_generations;
    o.resume_path = options.resume_path;
    o.deadline_seconds = options.deadline_seconds;
    o.synthetic_records = options.synthetic_records;
    o.record_candidates = options.record_candidates;
    o.cancel = options.cancel;
    return std::make_unique<AimMechanism>(o);
  }
  return nullptr;
}

std::vector<std::string> StandardMechanismNames() {
  return {"Independent", "Gaussian",  "MST", "PrivBayes+PGM", "PrivMRF",
          "MWEM+PGM",    "RAP",       "GEM", "AIM"};
}

std::vector<std::unique_ptr<Mechanism>> StandardMechanisms(
    const RegistryOptions& options) {
  std::vector<std::unique_ptr<Mechanism>> mechanisms;
  for (const std::string& name : StandardMechanismNames()) {
    mechanisms.push_back(MechanismByName(name, options));
  }
  return mechanisms;
}

}  // namespace aim
