#include "mechanisms/independent.h"

#include <chrono>
#include <cmath>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "pgm/synthetic.h"
#include "util/logging.h"

namespace aim {

MechanismResult IndependentMechanism::Run(const Dataset& data,
                                          const Workload& workload,
                                          double rho, Rng& rng) const {
  (void)workload;  // workload-agnostic
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  const Domain& domain = data.domain();
  const int d = domain.num_attributes();

  MechanismResult result;
  result.rho_budget = rho;
  PrivacyFilter filter(rho);

  // Split the budget equally over the d one-way marginals.
  const double sigma = std::sqrt(d / (2.0 * rho));
  std::vector<Measurement> measurements;
  for (int a = 0; a < d; ++a) {
    filter.Spend(GaussianRho(sigma));
    AttrSet r({a});
    measurements.push_back(
        {r, AddGaussianNoise(ComputeMarginal(data, r), sigma, rng), sigma});
  }
  double total = EstimateTotal(measurements);
  MarkovRandomField model =
      EstimateMrf(domain, measurements, total, options_.estimation);

  int64_t synth_records = options_.synthetic_records > 0
                              ? options_.synthetic_records
                              : static_cast<int64_t>(std::llround(total));
  result.synthetic = GenerateSyntheticData(model, synth_records, rng);
  result.log.measurements = std::move(measurements);
  result.rho_used = filter.spent();
  result.rounds = 1;
  result.total_estimate = total;
  result.final_model = std::move(model);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace aim
