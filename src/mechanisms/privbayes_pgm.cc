#include "mechanisms/privbayes_pgm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "pgm/synthetic.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

constexpr double kSqrt2OverPi = 0.7978845608028654;

// Empirical mutual information I(X; P) in nats, computed from the joint
// counts over {X} ∪ P.
double MutualInformation(const Dataset& data, int child, const AttrSet& parents,
                         std::unordered_map<AttrSet, std::vector<double>,
                                            AttrSetHash>* cache) {
  AttrSet joint_set = parents.Union(AttrSet({child}));
  auto it = cache->find(joint_set);
  if (it == cache->end()) {
    it = cache->emplace(joint_set, ComputeMarginal(data, joint_set)).first;
  }
  const std::vector<double>& joint = it->second;
  const Domain& domain = data.domain();
  MarginalIndexer indexer(domain, joint_set);

  // Project to child and parent marginals.
  int child_axis = 0;
  {
    const auto& attrs = joint_set.attrs();
    for (size_t j = 0; j < attrs.size(); ++j) {
      if (attrs[j] == child) child_axis = static_cast<int>(j);
    }
  }
  std::vector<double> child_marginal(domain.size(child), 0.0);
  int64_t parent_cells = MarginalSize(domain, parents);
  std::vector<double> parent_marginal(parent_cells, 0.0);
  MarginalIndexer parent_indexer(domain, parents);
  double n = 0.0;
  std::vector<int> parent_tuple(parents.size());
  std::vector<int64_t> parent_index_of_cell(joint.size());
  std::vector<int> child_value_of_cell(joint.size());
  for (int64_t cell = 0; cell < static_cast<int64_t>(joint.size()); ++cell) {
    std::vector<int> tuple = indexer.TupleOfIndex(cell);
    int pi = 0;
    for (size_t j = 0; j < tuple.size(); ++j) {
      if (static_cast<int>(j) == child_axis) continue;
      parent_tuple[pi++] = tuple[j];
    }
    int64_t p_idx = parents.empty() ? 0 : parent_indexer.IndexOfTuple(parent_tuple);
    parent_index_of_cell[cell] = p_idx;
    child_value_of_cell[cell] = tuple[child_axis];
    child_marginal[tuple[child_axis]] += joint[cell];
    parent_marginal[p_idx] += joint[cell];
    n += joint[cell];
  }
  if (n <= 0.0) return 0.0;
  double mi = 0.0;
  for (int64_t cell = 0; cell < static_cast<int64_t>(joint.size()); ++cell) {
    double c = joint[cell];
    if (c <= 0.0) continue;
    double px = child_marginal[child_value_of_cell[cell]] / n;
    double pp = parent_marginal[parent_index_of_cell[cell]] / n;
    mi += (c / n) * std::log((c / n) / (px * pp));
  }
  return std::max(0.0, mi);
}

// Enumerates subsets of `chosen` with size in [0, max_size], skipping those
// whose joint-with-child cell count exceeds max_cells; invokes fn(subset).
void ForEachParentSet(const Domain& domain, const std::vector<int>& chosen,
                      int child, int max_size, int64_t max_cells,
                      const std::function<void(const AttrSet&)>& fn) {
  const int m = static_cast<int>(chosen.size());
  std::vector<int> current;
  std::function<void(int)> recurse = [&](int start) {
    AttrSet parents(current);
    int64_t cells = domain.size(child);
    for (int attr : parents) cells *= domain.size(attr);
    if (cells <= max_cells) fn(parents);
    if (static_cast<int>(current.size()) >= max_size) return;
    for (int i = start; i < m; ++i) {
      current.push_back(chosen[i]);
      recurse(i + 1);
      current.pop_back();
    }
  };
  recurse(0);
}

}  // namespace

MechanismResult PrivBayesPgmMechanism::Run(const Dataset& data,
                                           const Workload& workload,
                                           double rho, Rng& rng) const {
  (void)workload;  // workload-agnostic
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  const Domain& domain = data.domain();
  const int d = domain.num_attributes();
  const double n_records =
      static_cast<double>(std::max<int64_t>(1, data.num_records()));

  MechanismResult result;
  result.rho_budget = rho;
  PrivacyFilter filter(rho);

  std::unordered_map<AttrSet, std::vector<double>, AttrSetHash> cache;

  // Budget split: half structure learning, half measurement.
  const double sigma = std::sqrt(d / rho);  // d marginals at rho/2 total
  const double eps_struct =
      d > 1 ? std::sqrt(8.0 * (rho / 2.0) / (d - 1)) : 0.0;
  // PrivBayes MI sensitivity surrogate (bounded-DP analysis): O(log N / N).
  const double mi_sensitivity = (std::log(n_records) + 2.0) / n_records;

  // Budget-aware usefulness filter: parent sets whose marginal would be
  // dominated by noise are pruned.
  auto useful = [&](int64_t cells) {
    return kSqrt2OverPi * sigma * static_cast<double>(cells) <=
           options_.usefulness_fraction * n_records;
  };

  // Network construction. First node: uniformly at random (PrivBayes).
  std::vector<int> order(d);
  std::vector<char> used(d, 0);
  std::vector<AttrSet> node_cliques;
  int first = static_cast<int>(rng.UniformInt(d));
  order[0] = first;
  used[first] = 1;
  node_cliques.push_back(AttrSet({first}));

  std::vector<int> chosen = {first};
  for (int step = 1; step < d; ++step) {
    // Candidates: (child, parent set) with MI quality.
    std::vector<AttrSet> cand_cliques;
    std::vector<double> scores;
    for (int child = 0; child < d; ++child) {
      if (used[child]) continue;
      ForEachParentSet(
          domain, chosen, child, options_.max_parents, options_.max_cells,
          [&](const AttrSet& parents) {
            int64_t cells = domain.size(child);
            for (int attr : parents) cells *= domain.size(attr);
            if (!parents.empty() && !useful(cells)) return;
            cand_cliques.push_back(parents.Union(AttrSet({child})));
            scores.push_back(
                MutualInformation(data, child, parents, &cache));
          });
    }
    AIM_CHECK(!cand_cliques.empty());
    filter.Spend(ExponentialRho(eps_struct));
    int pick = ExponentialMechanism(scores, eps_struct, mi_sensitivity, rng);
    AttrSet clique = cand_cliques[pick];
    // The child is the one attribute not yet used.
    int child = -1;
    for (int attr : clique) {
      if (!used[attr]) child = attr;
    }
    AIM_CHECK_GE(child, 0);
    used[child] = 1;
    order[step] = child;
    chosen.push_back(child);
    node_cliques.push_back(clique);

    RoundInfo info;
    info.selected = clique;
    info.epsilon = eps_struct;
    info.sensitivity = mi_sensitivity;
    result.log.rounds.push_back(std::move(info));
  }

  // Measure each node's clique marginal.
  std::vector<Measurement> measurements;
  for (const AttrSet& clique : node_cliques) {
    filter.Spend(GaussianRho(sigma));
    auto it = cache.find(clique);
    if (it == cache.end()) {
      it = cache.emplace(clique, ComputeMarginal(data, clique)).first;
    }
    measurements.push_back(
        {clique, AddGaussianNoise(it->second, sigma, rng), sigma});
  }
  double total = EstimateTotal(measurements);
  MarkovRandomField model =
      EstimateMrf(domain, measurements, total, options_.estimation);

  int64_t synth_records = options_.synthetic_records > 0
                              ? options_.synthetic_records
                              : static_cast<int64_t>(std::llround(total));
  result.synthetic = GenerateSyntheticData(model, synth_records, rng);
  result.log.measurements = std::move(measurements);
  result.rho_used = filter.spent();
  result.rounds = d;
  result.total_estimate = total;
  result.final_model = std::move(model);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace aim
