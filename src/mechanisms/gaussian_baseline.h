// Gaussian baseline: answers every workload query directly with Gaussian
// noise, using the optimal budget allocation across marginals of different
// sizes from PrivSyn [55] (sigma_i^2 ∝ n_i^{-2/3}, minimizing total expected
// L1 error subject to the zCDP budget). Produces query answers only — no
// synthetic records (Section 6.1).

#ifndef AIM_MECHANISMS_GAUSSIAN_BASELINE_H_
#define AIM_MECHANISMS_GAUSSIAN_BASELINE_H_

#include "mechanisms/mechanism.h"

namespace aim {

class GaussianBaselineMechanism : public Mechanism {
 public:
  std::string name() const override { return "Gaussian"; }
  MechanismTraits traits() const override {
    return {.workload_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_GAUSSIAN_BASELINE_H_
