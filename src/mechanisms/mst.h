// MST (McKenna, Miklau, Sheldon 2021): the NIST-winning workload-agnostic
// mechanism. Budget is split in thirds: (1) measure all 1-way marginals,
// (2) privately select a maximum spanning tree over attribute pairs scored
// by the L1 gap between the true pairwise marginal and the independent
// model's estimate (Kruskal with one exponential-mechanism draw per edge),
// (3) measure the selected 2-way marginals; Private-PGM estimates and
// generates.

#ifndef AIM_MECHANISMS_MST_H_
#define AIM_MECHANISMS_MST_H_

#include "mechanisms/mechanism.h"
#include "pgm/estimation.h"

namespace aim {

struct MstOptions {
  EstimationOptions estimation{.max_iters = 1000};
  int64_t synthetic_records = -1;
};

class MstMechanism : public Mechanism {
 public:
  MstMechanism() = default;
  explicit MstMechanism(MstOptions options) : options_(std::move(options)) {}

  std::string name() const override { return "MST"; }
  MechanismTraits traits() const override {
    return {.data_aware = true, .efficiency_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;

 private:
  MstOptions options_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_MST_H_
