#include "mechanisms/aim.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <cmath>
#include <set>
#include <unordered_map>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "parallel/parallel.h"
#include "pgm/junction_tree.h"
#include "pgm/synthetic.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

constexpr double kSqrt2OverPi = 0.7978845608028654;  // sqrt(2/pi)

}  // namespace

MechanismResult AimMechanism::Run(const Dataset& data,
                                  const Workload& workload, double rho,
                                  Rng& rng) const {
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  AIM_CHECK_GT(workload.num_queries(), 0);
  const Domain& domain = data.domain();
  const int d = domain.num_attributes();
  const double T =
      static_cast<double>(options_.rounds_per_attribute) * d;  // Line 3
  const double alpha = options_.alpha;
  AIM_CHECK(alpha > 0.0 && alpha < 1.0);

  MechanismResult result;
  result.rho_budget = rho;
  PrivacyFilter filter(rho);

  // Candidate pool: downward closure W+ (or the raw workload queries for the
  // ablation), with workload weights w_r (Line 8).
  std::vector<AttrSet> pool;
  if (options_.use_downward_closure) {
    pool = DownwardClosure(workload);
  } else {
    std::set<AttrSet> distinct;
    for (const auto& q : workload.queries()) distinct.insert(q.attrs);
    pool.assign(distinct.begin(), distinct.end());
  }
  std::unordered_map<AttrSet, double, AttrSetHash> weights;
  for (const AttrSet& r : pool) {
    weights[r] = options_.use_workload_weights ? WorkloadWeight(workload, r)
                                               : 1.0;
  }

  // Cache of true data marginals (reused across rounds; no privacy cost —
  // only noisy / selected quantities are released).
  std::unordered_map<AttrSet, std::vector<double>, AttrSetHash> data_marginals;
  auto true_marginal =
      [&](const AttrSet& r) -> const std::vector<double>& {
    auto it = data_marginals.find(r);
    if (it == data_marginals.end()) {
      it = data_marginals.emplace(r, ComputeMarginal(data, r)).first;
    }
    return it->second;
  };

  const std::vector<ZeroConstraint>* zeros =
      options_.structural_zeros.empty() ? nullptr
                                        : &options_.structural_zeros;
  // Cliques that count toward JT-SIZE: measured sets plus zero constraints.
  std::vector<AttrSet> model_cliques;
  for (const auto& z : options_.structural_zeros) {
    model_cliques.push_back(z.attrs);
  }

  std::vector<Measurement> measurements;
  const double sigma0 = std::sqrt(T / (2.0 * alpha * rho));  // Line 4

  // Measure-step noise: Gaussian by default; Laplace has the identical
  // per-measurement zCDP cost 1/(2 scale^2), so the accounting is shared.
  auto measure_noise = [&](const std::vector<double>& values, double scale) {
    return options_.noise == AimOptions::Noise::kGaussian
               ? AddGaussianNoise(values, scale, rng)
               : AddLaplaceNoise(values, scale, rng);
  };

  // ---- Initialization (Algorithm 2): measure the 1-way marginals of W+.
  // Computed from the workload directly (not the candidate pool) so the
  // no-downward-closure ablation still initializes per Algorithm 2.
  if (options_.use_initialization) {
    std::set<int> workload_attrs;
    for (const auto& q : workload.queries()) {
      for (int attr : q.attrs) workload_attrs.insert(attr);
    }
    for (int attr : workload_attrs) {
      AttrSet r({attr});
      filter.Spend(GaussianRho(sigma0));
      Measurement m{r, measure_noise(true_marginal(r), sigma0), sigma0};
      measurements.push_back(std::move(m));
      model_cliques.push_back(r);
    }
  }
  double total = measurements.empty() ? 1.0 : EstimateTotal(measurements);

  // Optional public-data prior (Section 7): low-order public marginals,
  // rescaled to the estimated total, enter estimation as weak
  // pseudo-measurements. Zero privacy cost — the public data is public —
  // and excluded from the measurement log (they are not unbiased
  // observations of D, so the Section-5 estimators must not use them).
  std::vector<Measurement> priors;
  if (options_.public_data != nullptr) {
    const Dataset& pub = *options_.public_data;
    AIM_CHECK(pub.domain() == domain)
        << "public data must share the private data's domain";
    AIM_CHECK_GT(pub.num_records(), 0);
    const double rescale =
        total / static_cast<double>(pub.num_records());
    const double prior_sigma =
        sigma0 * std::max(1e-3, options_.public_prior_weight);
    for (const AttrSet& r : pool) {
      if (r.size() > 2) continue;
      priors.push_back(
          {r, ComputeMarginal(pub, r, rescale), prior_sigma});
      model_cliques.push_back(r);
    }
  }
  auto with_priors = [&]() {
    std::vector<Measurement> combined = measurements;
    combined.insert(combined.end(), priors.begin(), priors.end());
    return combined;
  };

  MarkovRandomField model =
      measurements.empty() && priors.empty()
          ? MarkovRandomField(domain, model_cliques)
          : EstimateMrf(domain, with_priors(), total,
                        options_.round_estimation, nullptr, zeros);
  if (measurements.empty() && priors.empty()) {
    model.Calibrate();
  }

  // Line 9: initial per-round parameters.
  double sigma = sigma0;
  double epsilon = std::sqrt(8.0 * (1.0 - alpha) * rho / T);
  if (!options_.use_annealing) {
    // Ablation: fixed schedule with exactly T equal-budget rounds.
    double per_round = filter.remaining() / T;
    sigma = std::sqrt(1.0 / (2.0 * alpha * per_round));
    epsilon = std::sqrt(8.0 * (1.0 - alpha) * per_round);
  }

  std::optional<MarkovRandomField> penultimate;
  const double budget_floor = 1e-9 * rho;
  int round = 0;
  const int max_rounds = 10 * static_cast<int>(T) + 10;
  double time_filter = 0.0, time_score = 0.0, time_estimate = 0.0;
  auto now = [] { return std::chrono::steady_clock::now(); };

  // ---- Main loop (Lines 10-18).
  while (filter.remaining() > budget_floor && round < max_rounds) {
    ++round;
    double round_rho = ExponentialRho(epsilon) + GaussianRho(sigma);
    if (!filter.CanSpend(round_rho)) {
      // Numerical guard: consume exactly what is left.
      double remaining = filter.remaining();
      epsilon = std::sqrt(8.0 * (1.0 - alpha) * remaining);
      sigma = std::sqrt(1.0 / (2.0 * alpha * remaining));
      round_rho = ExponentialRho(epsilon) + GaussianRho(sigma);
    }
    filter.Spend(round_rho);  // Line 12

    // Line 13: candidates filtered by the growing JT-SIZE allowance. The
    // triangulation oracle is pure, so all candidate sizes evaluate in
    // parallel (each chunk works on its own copy of the clique list).
    auto t_filter = now();
    const double size_cap =
        (filter.spent() / rho) * options_.max_size_mb;
    std::vector<double> candidate_sizes = ParallelMap(
        static_cast<int64_t>(pool.size()), [&](int64_t i) {
          std::vector<AttrSet> cliques = model_cliques;
          cliques.push_back(pool[i]);
          return JtSizeMb(domain, cliques);
        });
    std::vector<int> candidate_ids;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (candidate_sizes[i] <= size_cap) {
        candidate_ids.push_back(static_cast<int>(i));
      }
    }
    if (candidate_ids.empty()) {
      // Degenerate cap: admit the candidate with the smallest model.
      int best = 0;
      for (size_t i = 1; i < pool.size(); ++i) {
        if (candidate_sizes[i] < candidate_sizes[best]) {
          best = static_cast<int>(i);
        }
      }
      candidate_ids.push_back(best);
    }

    // Line 14: exponential mechanism with the Equation-(1) quality score.
    auto t_score = now();
    time_filter += std::chrono::duration<double>(t_score - t_filter).count();
    // Fill the data-marginal cache for any new candidates first (parallel
    // over candidates; the map itself is only mutated here, serially), so
    // the scoring pass below reads shared state that is strictly
    // read-only.
    std::vector<const AttrSet*> uncached;
    for (int id : candidate_ids) {
      const AttrSet& r = pool[id];
      if (data_marginals.find(r) == data_marginals.end()) {
        uncached.push_back(&r);
      }
    }
    std::vector<std::vector<double>> fresh = ParallelMap(
        static_cast<int64_t>(uncached.size()),
        [&](int64_t k) { return ComputeMarginal(data, *uncached[k]); });
    for (size_t k = 0; k < uncached.size(); ++k) {
      data_marginals.emplace(*uncached[k], std::move(fresh[k]));
    }
    std::vector<double> scores(candidate_ids.size());
    std::vector<double> sensitivities(candidate_ids.size());
    ParallelFor(0, static_cast<int64_t>(candidate_ids.size()), 1,
                [&](int64_t j) {
                  const AttrSet& r = pool[candidate_ids[j]];
                  double n_r = static_cast<double>(MarginalSize(domain, r));
                  double penalty = options_.use_noise_penalty
                                       ? kSqrt2OverPi * sigma * n_r
                                       : n_r;
                  double model_error = L1Distance(data_marginals.at(r),
                                                  model.MarginalVector(r));
                  const double w = weights.at(r);
                  scores[j] = w * (model_error - penalty);
                  sensitivities[j] = std::max(w, 1e-12);
                });
    double sensitivity = 0.0;
    for (int id : candidate_ids) {
      sensitivity = std::max(sensitivity, weights.at(pool[id]));
    }
    if (sensitivity <= 0.0) sensitivity = 1.0;
    time_score += std::chrono::duration<double>(now() - t_score).count();
    int pick =
        options_.use_generalized_em
            ? GeneralizedExponentialMechanism(scores, sensitivities, epsilon,
                                              rng)
            : ExponentialMechanism(scores, epsilon, sensitivity, rng);
    const AttrSet r_t = pool[candidate_ids[pick]];
    const double n_rt = static_cast<double>(MarginalSize(domain, r_t));

    // Line 15: measure.
    Measurement m{r_t, measure_noise(true_marginal(r_t), sigma), sigma};
    std::vector<double> prev_model_marginal = model.MarginalVector(r_t);
    double estimated_error = L1Distance(prev_model_marginal, m.values);
    measurements.push_back(std::move(m));
    model_cliques.push_back(r_t);
    if (!options_.use_initialization) total = EstimateTotal(measurements);

    // Line 16: re-estimate with warm start.
    auto t_estimate = now();
    penultimate = model;
    model = EstimateMrf(domain, with_priors(), total,
                        options_.round_estimation, &model, zeros);
    time_estimate +=
        std::chrono::duration<double>(now() - t_estimate).count();

    // Log the round.
    RoundInfo info;
    info.selected = r_t;
    info.sigma = sigma;
    info.epsilon = epsilon;
    info.estimated_error_on_selected = estimated_error;
    info.sensitivity = sensitivity;
    info.selected_candidate = pick;
    if (options_.record_candidates) {
      info.candidates.reserve(candidate_ids.size());
      for (int id : candidate_ids) {
        const AttrSet& r = pool[id];
        info.candidates.push_back(
            {r, weights[r], MarginalSize(domain, r)});
      }
    }
    result.log.rounds.push_back(std::move(info));

    if (std::getenv("AIM_TRACE") != nullptr) {
      std::cerr << "[aim] round=" << round << " selected=" << r_t.ToString()
                << " n_rt=" << n_rt << " sigma=" << sigma
                << " eps=" << epsilon << " score=" << scores[pick]
                << " est_err=" << estimated_error << " model_change="
                << L1Distance(model.MarginalVector(r_t), prev_model_marginal)
                << " threshold=" << kSqrt2OverPi * sigma * n_rt
                << " spent=" << filter.spent() << "\n";
    }

    // Line 17 (Algorithm 3): budget annealing.
    if (options_.use_annealing) {
      std::vector<double> new_model_marginal = model.MarginalVector(r_t);
      if (L1Distance(new_model_marginal, prev_model_marginal) <=
          kSqrt2OverPi * sigma * n_rt) {
        epsilon *= 2.0;
        sigma /= 2.0;
      }
      double next_round_rho = GaussianRho(sigma) + ExponentialRho(epsilon);
      double remaining = filter.remaining();
      if (remaining <= 2.0 * next_round_rho && remaining > budget_floor) {
        epsilon = std::sqrt(8.0 * (1.0 - alpha) * remaining);
        sigma = std::sqrt(1.0 / (2.0 * alpha * remaining));
      }
    }
  }

  if (std::getenv("AIM_TRACE") != nullptr) {
    std::cerr << "[aim] timings: filter=" << time_filter
              << "s score=" << time_score << "s estimate=" << time_estimate
              << "s rounds=" << round << "\n";
  }

  // ---- Final estimation and generation (Line 19).
  model = EstimateMrf(domain, with_priors(), total,
                      options_.final_estimation, &model, zeros);
  int64_t synth_records = options_.synthetic_records > 0
                              ? options_.synthetic_records
                              : static_cast<int64_t>(std::llround(total));
  result.synthetic = GenerateSyntheticData(model, synth_records, rng);
  result.log.measurements = std::move(measurements);
  result.rho_used = filter.spent();
  result.rounds = round;
  result.total_estimate = total;
  result.final_model = std::move(model);
  result.penultimate_model = std::move(penultimate);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace aim
