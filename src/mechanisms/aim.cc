#include "mechanisms/aim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <unordered_map>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "parallel/parallel.h"
#include "pgm/junction_tree.h"
#include "pgm/synthetic.h"
#include "robust/fault.h"
#include "robust/generations.h"
#include "robust/retry.h"
#include "robust/snapshot.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

constexpr double kSqrt2OverPi = 0.7978845608028654;  // sqrt(2/pi)

// Simulated crash at the top of a main-loop round (robust_test and the
// kill-and-resume smoke use it to interrupt a run at a known point).
const FaultPointRegistration kAimRoundFault{"aim_round"};

}  // namespace

const char* ToString(SizeCapFallback fallback) {
  switch (fallback) {
    case SizeCapFallback::kNone:
      return "none";
    case SizeCapFallback::kRelaxedToMaxSize:
      return "relaxed_to_max_size";
    case SizeCapFallback::kViolatesMaxSize:
      return "violates_max_size";
  }
  return "unknown";
}

std::vector<int> FilterCandidatesByJtSize(
    const std::vector<double>& candidate_sizes, double size_cap,
    double max_size_mb, SizeCapFallback* fallback) {
  AIM_CHECK(!candidate_sizes.empty());
  *fallback = SizeCapFallback::kNone;
  std::vector<int> ids;
  for (size_t i = 0; i < candidate_sizes.size(); ++i) {
    if (candidate_sizes[i] <= size_cap) ids.push_back(static_cast<int>(i));
  }
  if (!ids.empty()) return ids;

  // Degenerate allowance (early rounds with a tight cap): rather than
  // admitting an unboundedly large model, clamp against the full MAX-SIZE
  // budget — every candidate admitted here will be admissible under the
  // growing allowance eventually anyway.
  *fallback = SizeCapFallback::kRelaxedToMaxSize;
  for (size_t i = 0; i < candidate_sizes.size(); ++i) {
    if (candidate_sizes[i] <= max_size_mb) {
      ids.push_back(static_cast<int>(i));
    }
  }
  if (!ids.empty()) return ids;

  // Even MAX-SIZE admits nothing (the mandatory cliques alone blow the
  // budget). The round must still select something, so take the candidate
  // with the smallest resulting model; the caller reports the violation.
  *fallback = SizeCapFallback::kViolatesMaxSize;
  int best = 0;
  for (size_t i = 1; i < candidate_sizes.size(); ++i) {
    if (candidate_sizes[i] < candidate_sizes[best]) {
      best = static_cast<int>(i);
    }
  }
  ids.push_back(best);
  return ids;
}

int64_t AimMaxRounds(double T) {
  constexpr int64_t kCeiling = 1000000000;  // 1e9 rounds is already absurd
  if (!(T > 0.0)) return 10;
  const double rounds = 10.0 * T + 10.0;
  if (rounds >= static_cast<double>(kCeiling)) return kCeiling;
  return static_cast<int64_t>(rounds);
}

uint64_t AimRunFingerprint(const Domain& domain, const Workload& workload,
                           const AimOptions& options, double rho) {
  FingerprintHasher h;
  h.Add(static_cast<uint64_t>(AimSnapshot::kVersion));
  h.Add(rho);
  h.Add(domain.num_attributes());
  for (int i = 0; i < domain.num_attributes(); ++i) {
    h.Add(domain.size(i));
    h.Add(domain.name(i));
  }
  h.Add(static_cast<int64_t>(workload.num_queries()));
  for (const WorkloadQuery& q : workload.queries()) {
    h.Add(q.attrs.size());
    for (int a : q.attrs) h.Add(a);
    h.Add(q.weight);
  }
  h.Add(options.max_size_mb);
  h.Add(options.alpha);
  h.Add(options.rounds_per_attribute);
  for (const EstimationOptions* e :
       {&options.round_estimation, &options.final_estimation}) {
    h.Add(e->max_iters);
    h.Add(e->initial_step);
    h.Add(e->tolerance);
    h.Add(e->patience);
  }
  h.Add(static_cast<int64_t>(options.structural_zeros.size()));
  for (const ZeroConstraint& z : options.structural_zeros) {
    h.Add(z.attrs.size());
    for (int a : z.attrs) h.Add(a);
    h.Add(static_cast<int64_t>(z.zero_cells.size()));
    for (int64_t c : z.zero_cells) h.Add(c);
  }
  h.Add(options.record_candidates);
  h.Add(options.synthetic_records);
  h.Add(options.use_generalized_em);
  h.Add(options.public_data != nullptr);
  if (options.public_data != nullptr) {
    // Cheap content proxy: hashing the full public dataset would be exact
    // but slow; size plus the shared-domain requirement catches the
    // realistic mismatches.
    h.Add(options.public_data->num_records());
    h.Add(options.public_prior_weight);
  }
  h.Add(static_cast<int>(options.noise));
  h.Add(options.use_downward_closure);
  h.Add(options.use_workload_weights);
  h.Add(options.use_noise_penalty);
  h.Add(options.use_annealing);
  h.Add(options.use_initialization);
  return h.digest();
}

MechanismResult AimMechanism::Run(const Dataset& data,
                                  const Workload& workload, double rho,
                                  Rng& rng) const {
  return Run(DatasetSource(data), workload, rho, rng);
}

MechanismResult AimMechanism::Run(const DataSource& source,
                                  const Workload& workload, double rho,
                                  Rng& rng) const {
  InitTraceSinkFromEnv();
  InitFaultsFromEnv();
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  AIM_CHECK_GT(workload.num_queries(), 0);
  const Domain& domain = source.domain();
  const int d = domain.num_attributes();
  const double T =
      static_cast<double>(options_.rounds_per_attribute) * d;  // Line 3
  const double alpha = options_.alpha;
  AIM_CHECK(alpha > 0.0 && alpha < 1.0);

  // Observability plumbing. Both flags are sampled once per run; event
  // emission and clock reads happen only when the respective flag is on, so
  // the disabled path costs two relaxed loads per run (determinism and
  // throughput are unaffected — see obs_test.cc).
  const bool traced = TraceEnabled();
  const bool metered = MetricsEnabled();
  const bool timed = traced || metered;
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter& runs_counter = registry.counter("aim.runs");
  static Counter& rounds_counter = registry.counter("aim.rounds");
  static Counter& fallback_counter = registry.counter("aim.cap_fallbacks");
  static Counter& checkpoint_fail_counter =
      registry.counter("aim.checkpoint_failures");
  static Counter& deadline_counter =
      registry.counter("aim.deadline_expirations");
  static Counter& resume_counter = registry.counter("aim.resumes");
  static Counter& fallback_resume_counter =
      registry.counter("aim.checkpoint_fallbacks");
  static Counter& cancel_counter = registry.counter("aim.cancellations");
  static Histogram& filter_hist =
      registry.histogram("aim.phase.filter_seconds");
  static Histogram& score_hist = registry.histogram("aim.phase.score_seconds");
  static Histogram& measure_hist =
      registry.histogram("aim.phase.measure_seconds");
  static Histogram& estimate_hist =
      registry.histogram("aim.phase.estimate_seconds");
  static Histogram& run_hist = registry.histogram("aim.run_seconds");
  if (metered) runs_counter.Add(1);

  MechanismResult result;
  result.rho_budget = rho;
  PrivacyFilter filter(rho);

  // Candidate pool: downward closure W+ (or the raw workload queries for the
  // ablation), with workload weights w_r (Line 8).
  std::vector<AttrSet> pool;
  if (options_.use_downward_closure) {
    pool = DownwardClosure(workload);
  } else {
    std::set<AttrSet> distinct;
    for (const auto& q : workload.queries()) distinct.insert(q.attrs);
    pool.assign(distinct.begin(), distinct.end());
  }
  std::unordered_map<AttrSet, double, AttrSetHash> weights;
  for (const AttrSet& r : pool) {
    weights[r] = options_.use_workload_weights ? WorkloadWeight(workload, r)
                                               : 1.0;
  }

  // Cache of true data marginals (reused across rounds; no privacy cost —
  // only noisy / selected quantities are released).
  std::unordered_map<AttrSet, std::vector<double>, AttrSetHash> data_marginals;
  auto true_marginal =
      [&](const AttrSet& r) -> const std::vector<double>& {
    auto it = data_marginals.find(r);
    if (it == data_marginals.end()) {
      it = data_marginals.emplace(r, ComputeMarginal(source, r)).first;
    }
    return it->second;
  };

  const std::vector<ZeroConstraint>* zeros =
      options_.structural_zeros.empty() ? nullptr
                                        : &options_.structural_zeros;
  // Cliques that count toward JT-SIZE: measured sets plus zero constraints.
  std::vector<AttrSet> model_cliques;
  for (const auto& z : options_.structural_zeros) {
    model_cliques.push_back(z.attrs);
  }

  std::vector<Measurement> measurements;
  const double sigma0 = std::sqrt(T / (2.0 * alpha * rho));  // Line 4

  // ---- Resume (DESIGN.md "Fault tolerance"): load and validate the
  // snapshot up front. Its init prefix takes the place of Algorithm-2
  // initialization below; the per-round tail replays through the same
  // warm-started estimation sequence the original process ran.
  const uint64_t fingerprint =
      AimRunFingerprint(domain, workload, options_, rho);
  std::optional<AimSnapshot> resume;
  if (!options_.resume_path.empty()) {
    // Generation-aware load: scan <resume_path>, .gen1, ... newest-first
    // and take the first snapshot passing checksum + fingerprint + budget
    // validation. A rejected newer generation is survivable (every
    // generation is a complete run description), but worth shouting about.
    StatusOr<LoadedGeneration> loaded =
        LoadLatestValidGeneration(options_.resume_path, fingerprint, rho);
    AIM_CHECK(loaded.ok()) << loaded.status().ToString();
    if (!loaded->rejected.empty()) {
      if (metered) fallback_resume_counter.Add(1);
      if (traced) {
        std::string rejected;
        for (const std::string& r : loaded->rejected) {
          if (!rejected.empty()) rejected += "; ";
          rejected += r;
        }
        EmitTrace(TraceEvent("aim_warning")
                      .Set("kind", "checkpoint_fallback")
                      .Set("path", loaded->path)
                      .Set("generation", loaded->generation)
                      .Set("round", loaded->snapshot.round)
                      .Set("rejected", rejected));
      }
    }
    resume = std::move(loaded->snapshot);
    Status restored = filter.RestoreSpent(resume->rho_spent);
    AIM_CHECK(restored.ok()) << restored.ToString();
    result.resumed_from_round = resume->round;
    if (metered) resume_counter.Add(1);
  }

  if (traced) {
    EmitTrace(TraceEvent("aim_start")
                  .Set("rho_budget", rho)
                  .Set("attributes", d)
                  .Set("records", source.num_records())
                  .Set("workload_queries",
                       static_cast<int64_t>(workload.num_queries()))
                  .Set("pool_size", static_cast<int64_t>(pool.size()))
                  .Set("T", T)
                  .Set("alpha", alpha)
                  .Set("sigma0", sigma0)
                  .Set("max_size_mb", options_.max_size_mb)
                  .Set("resumed_from", result.resumed_from_round));
  }

  // Measure-step noise: Gaussian by default; Laplace has the identical
  // per-measurement zCDP cost 1/(2 scale^2), so the accounting is shared.
  auto measure_noise = [&](const std::vector<double>& values, double scale) {
    return options_.noise == AimOptions::Noise::kGaussian
               ? AddGaussianNoise(values, scale, rng)
               : AddLaplaceNoise(values, scale, rng);
  };

  // ---- Initialization (Algorithm 2): measure the 1-way marginals of W+.
  // Computed from the workload directly (not the candidate pool) so the
  // no-downward-closure ablation still initializes per Algorithm 2.
  if (resume.has_value()) {
    // The original process already drew this noise and spent this budget;
    // reuse its measurements verbatim (filter was restored above).
    for (int64_t i = 0; i < resume->init_measurements; ++i) {
      measurements.push_back(resume->measurements[static_cast<size_t>(i)]);
      model_cliques.push_back(measurements.back().attrs);
    }
  } else if (options_.use_initialization) {
    std::set<int> workload_attrs;
    for (const auto& q : workload.queries()) {
      for (int attr : q.attrs) workload_attrs.insert(attr);
    }
    double rho_init = 0.0;
    for (int attr : workload_attrs) {
      AttrSet r({attr});
      filter.Spend(GaussianRho(sigma0));
      rho_init += GaussianRho(sigma0);
      Measurement m{r, measure_noise(true_marginal(r), sigma0), sigma0};
      measurements.push_back(std::move(m));
      model_cliques.push_back(r);
    }
    if (traced) {
      EmitTrace(TraceEvent("aim_init")
                    .Set("one_way_count",
                         static_cast<int64_t>(workload_attrs.size()))
                    .Set("sigma", sigma0)
                    .Set("rho_round", rho_init)
                    .Set("rho_spent", filter.spent()));
    }
  }
  const int64_t init_count = static_cast<int64_t>(measurements.size());
  double total = measurements.empty() ? 1.0 : EstimateTotal(measurements);

  // Optional public-data prior (Section 7): low-order public marginals,
  // rescaled to the estimated total, enter estimation as weak
  // pseudo-measurements. Zero privacy cost — the public data is public —
  // and excluded from the measurement log (they are not unbiased
  // observations of D, so the Section-5 estimators must not use them).
  std::vector<Measurement> priors;
  if (options_.public_data != nullptr) {
    const Dataset& pub = *options_.public_data;
    AIM_CHECK(pub.domain() == domain)
        << "public data must share the private data's domain";
    AIM_CHECK_GT(pub.num_records(), 0);
    const double rescale =
        total / static_cast<double>(pub.num_records());
    const double prior_sigma =
        sigma0 * std::max(1e-3, options_.public_prior_weight);
    for (const AttrSet& r : pool) {
      if (r.size() > 2) continue;
      priors.push_back(
          {r, ComputeMarginal(pub, r, rescale), prior_sigma});
      model_cliques.push_back(r);
    }
  }
  auto with_priors = [&]() {
    std::vector<Measurement> combined = measurements;
    combined.insert(combined.end(), priors.begin(), priors.end());
    return combined;
  };

  MarkovRandomField model =
      measurements.empty() && priors.empty()
          ? MarkovRandomField(domain, model_cliques)
          : EstimateMrf(domain, with_priors(), total,
                        options_.round_estimation, nullptr, zeros);
  if (measurements.empty() && priors.empty()) {
    model.Calibrate();
  }

  std::optional<MarkovRandomField> penultimate;

  // ---- Resume replay: refit round by round exactly as the original
  // process did (append, refresh the total, warm-start re-estimate).
  // Estimation draws no randomness, so the refit is exact and the restored
  // noise stream below is untouched.
  if (resume.has_value()) {
    for (size_t i = static_cast<size_t>(resume->init_measurements);
         i < resume->measurements.size(); ++i) {
      measurements.push_back(resume->measurements[i]);
      model_cliques.push_back(measurements.back().attrs);
      total = EstimateTotal(measurements);
      penultimate = model;
      model = EstimateMrf(domain, with_priors(), total,
                          options_.round_estimation, &model, zeros);
    }
    result.log.rounds = resume->rounds;
  }

  // Line 9: initial per-round parameters.
  double sigma = sigma0;
  double epsilon = std::sqrt(8.0 * (1.0 - alpha) * rho / T);
  if (!options_.use_annealing) {
    // Ablation: fixed schedule with exactly T equal-budget rounds.
    double per_round = filter.remaining() / T;
    sigma = std::sqrt(1.0 / (2.0 * alpha * per_round));
    epsilon = std::sqrt(8.0 * (1.0 - alpha) * per_round);
  }
  if (resume.has_value()) {
    // The snapshot stores the post-annealing parameters for the round that
    // never ran, and the generator state after every draw the original
    // process made.
    sigma = resume->sigma;
    epsilon = resume->epsilon;
    rng.RestoreState(resume->rng);
  }

  const double budget_floor = 1e-9 * rho;
  int64_t round = resume.has_value() ? resume->round : 0;
  // Defensive ceiling computed in 64-bit: T = rounds_per_attribute * d can
  // make the old `10 * int(T) + 10` expression truncate or overflow int.
  const int64_t max_rounds = AimMaxRounds(T);
  double time_filter = 0.0, time_score = 0.0, time_measure = 0.0,
         time_estimate = 0.0;

  // ---- Checkpointing: one atomic snapshot after the initial fit and then
  // every checkpoint_every_rounds completed rounds, rotated through
  // checkpoint_generations slots. A transient write failure retries with
  // deterministic backoff; a persistent one is a warning, never an abort —
  // losing a checkpoint must not lose the run.
  const bool checkpointing = !options_.checkpoint_path.empty();
  const RetryPolicy checkpoint_retry{};
  auto write_checkpoint = [&]() {
    AimSnapshot snap;
    snap.fingerprint = fingerprint;
    snap.rho_budget = rho;
    snap.rho_spent = filter.spent();
    snap.round = round;
    snap.init_measurements = init_count;
    snap.sigma = sigma;
    snap.epsilon = epsilon;
    snap.rng = rng.SaveState();
    snap.measurements = measurements;
    snap.rounds = result.log.rounds;
    Status s = WriteSnapshotGeneration(snap, options_.checkpoint_path,
                                       options_.checkpoint_generations,
                                       &checkpoint_retry);
    if (!s.ok()) {
      if (metered) checkpoint_fail_counter.Add(1);
      if (traced) {
        EmitTrace(TraceEvent("aim_warning")
                      .Set("kind", "checkpoint_failed")
                      .Set("round", round)
                      .Set("path", options_.checkpoint_path)
                      .Set("error", s.ToString()));
      }
    }
  };
  if (checkpointing) {
    AIM_CHECK_GT(options_.checkpoint_every_rounds, 0);
    write_checkpoint();  // baseline: initialization is already paid for
  }

  // ---- Main loop (Lines 10-18).
  while (filter.remaining() > budget_floor && round < max_rounds) {
    MaybeThrowFault("aim_round");
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      // Watchdog / SLO wind-down: same graceful degradation as a deadline,
      // but externally triggered. The forced checkpoint below preserves
      // every paid-for measurement for a later resume.
      result.cancelled = true;
      if (metered) cancel_counter.Add(1);
      if (traced) {
        EmitTrace(TraceEvent("aim_warning")
                      .Set("kind", "cancelled")
                      .Set("round", round)
                      .Set("rho_spent", filter.spent())
                      .Set("rho_remaining", filter.remaining()));
      }
      break;
    }
    if (options_.deadline_seconds > 0.0) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start_time)
                                 .count();
      if (elapsed >= options_.deadline_seconds) {
        // Graceful degradation: stop selecting and synthesize from what we
        // have. Under-spending rho is always DP-safe.
        result.deadline_expired = true;
        if (metered) deadline_counter.Add(1);
        if (traced) {
          EmitTrace(TraceEvent("aim_warning")
                        .Set("kind", "deadline_expired")
                        .Set("round", round)
                        .Set("elapsed_s", elapsed)
                        .Set("deadline_s", options_.deadline_seconds)
                        .Set("rho_spent", filter.spent())
                        .Set("rho_remaining", filter.remaining()));
        }
        break;
      }
    }
    ++round;
    LapClock phase_clock(timed);
    double round_rho = ExponentialRho(epsilon) + GaussianRho(sigma);
    bool budget_clamped = false;
    if (!filter.CanSpend(round_rho)) {
      // Numerical guard: consume exactly what is left.
      double remaining = filter.remaining();
      epsilon = std::sqrt(8.0 * (1.0 - alpha) * remaining);
      sigma = std::sqrt(1.0 / (2.0 * alpha * remaining));
      round_rho = ExponentialRho(epsilon) + GaussianRho(sigma);
      budget_clamped = true;
    }
    filter.Spend(round_rho);  // Line 12

    // Line 13: candidates filtered by the growing JT-SIZE allowance. The
    // triangulation oracle is pure, so all candidate sizes evaluate in
    // parallel (each chunk works on its own copy of the clique list).
    const double size_cap =
        (filter.spent() / rho) * options_.max_size_mb;
    std::vector<double> candidate_sizes = ParallelMap(
        static_cast<int64_t>(pool.size()), [&](int64_t i) {
          std::vector<AttrSet> cliques = model_cliques;
          cliques.push_back(pool[i]);
          return JtSizeMb(domain, cliques);
        });
    SizeCapFallback cap_fallback = SizeCapFallback::kNone;
    std::vector<int> candidate_ids = FilterCandidatesByJtSize(
        candidate_sizes, size_cap, options_.max_size_mb, &cap_fallback);
    if (cap_fallback != SizeCapFallback::kNone) {
      if (metered) fallback_counter.Add(1);
      if (traced) {
        EmitTrace(TraceEvent("aim_warning")
                      .Set("kind", "size_cap_fallback")
                      .Set("round", round)
                      .Set("cap_fallback", ToString(cap_fallback))
                      .Set("size_cap_mb", size_cap)
                      .Set("max_size_mb", options_.max_size_mb)
                      .Set("admitted",
                           static_cast<int64_t>(candidate_ids.size())));
      }
    }
    const double t_filter = phase_clock.Lap();
    time_filter += t_filter;

    // Line 14: exponential mechanism with the Equation-(1) quality score.
    // Fill the data-marginal cache for any new candidates first (parallel
    // over candidates; the map itself is only mutated here, serially), so
    // the scoring pass below reads shared state that is strictly
    // read-only.
    std::vector<const AttrSet*> uncached;
    for (int id : candidate_ids) {
      const AttrSet& r = pool[id];
      if (data_marginals.find(r) == data_marginals.end()) {
        uncached.push_back(&r);
      }
    }
    std::vector<std::vector<double>> fresh = ParallelMap(
        static_cast<int64_t>(uncached.size()),
        [&](int64_t k) { return ComputeMarginal(source, *uncached[k]); });
    for (size_t k = 0; k < uncached.size(); ++k) {
      data_marginals.emplace(*uncached[k], std::move(fresh[k]));
    }
    // One batched inference pass answers every candidate's model marginal
    // (shared calibration state, memoized VE orders, ParallelMap inside);
    // scoring then reduces each answer in parallel.
    std::vector<AttrSet> candidate_attrs;
    candidate_attrs.reserve(candidate_ids.size());
    for (int id : candidate_ids) candidate_attrs.push_back(pool[id]);
    std::vector<std::vector<double>> model_marginals =
        model.AnswerMarginalVectors(candidate_attrs);
    std::vector<double> scores(candidate_ids.size());
    std::vector<double> sensitivities(candidate_ids.size());
    ParallelFor(0, static_cast<int64_t>(candidate_ids.size()), 1,
                [&](int64_t j) {
                  const AttrSet& r = pool[candidate_ids[j]];
                  double n_r = static_cast<double>(MarginalSize(domain, r));
                  double penalty = options_.use_noise_penalty
                                       ? kSqrt2OverPi * sigma * n_r
                                       : n_r;
                  double model_error = L1Distance(data_marginals.at(r),
                                                  model_marginals[j]);
                  const double w = weights.at(r);
                  scores[j] = w * (model_error - penalty);
                  sensitivities[j] = std::max(w, 1e-12);
                });
    double sensitivity = 0.0;
    for (int id : candidate_ids) {
      sensitivity = std::max(sensitivity, weights.at(pool[id]));
    }
    if (sensitivity <= 0.0) sensitivity = 1.0;
    int pick =
        options_.use_generalized_em
            ? GeneralizedExponentialMechanism(scores, sensitivities, epsilon,
                                              rng)
            : ExponentialMechanism(scores, epsilon, sensitivity, rng);
    const AttrSet r_t = pool[candidate_ids[pick]];
    const double n_rt = static_cast<double>(MarginalSize(domain, r_t));
    const double t_score = phase_clock.Lap();
    time_score += t_score;

    // Line 15: measure.
    Measurement m{r_t, measure_noise(true_marginal(r_t), sigma), sigma};
    std::vector<double> prev_model_marginal = model.MarginalVector(r_t);
    double estimated_error = L1Distance(prev_model_marginal, m.values);
    measurements.push_back(std::move(m));
    model_cliques.push_back(r_t);
    // Algorithm 1 works with the noisy total estimated from the released
    // measurements; the reference implementation refreshes that estimate
    // from *all* measurements on every refit (inverse-variance weighting in
    // EstimateTotal). The previous condition froze the estimate at its
    // initialization-time value whenever use_initialization was set, so the
    // default path ignored every subsequent (often lower-noise) measurement.
    total = EstimateTotal(measurements);
    const double t_measure = phase_clock.Lap();
    time_measure += t_measure;

    // Line 16: re-estimate with warm start.
    penultimate = model;
    EstimationStats est_stats;
    model = EstimateMrf(domain, with_priors(), total,
                        options_.round_estimation, &model, zeros,
                        &est_stats);
    const double t_estimate = phase_clock.Lap();
    time_estimate += t_estimate;

    // Log the round.
    RoundInfo info;
    info.selected = r_t;
    info.sigma = sigma;
    info.epsilon = epsilon;
    info.estimated_error_on_selected = estimated_error;
    info.sensitivity = sensitivity;
    info.selected_candidate = pick;
    if (options_.record_candidates) {
      info.candidates.reserve(candidate_ids.size());
      for (int id : candidate_ids) {
        const AttrSet& r = pool[id];
        info.candidates.push_back(
            {r, weights[r], MarginalSize(domain, r)});
      }
    }
    result.log.rounds.push_back(std::move(info));

    // Line 17 (Algorithm 3): budget annealing.
    const double round_sigma = sigma;
    const double round_epsilon = epsilon;
    bool annealed = false;
    bool final_round_clamp = false;
    if (options_.use_annealing) {
      std::vector<double> new_model_marginal = model.MarginalVector(r_t);
      if (L1Distance(new_model_marginal, prev_model_marginal) <=
          kSqrt2OverPi * sigma * n_rt) {
        epsilon *= 2.0;
        sigma /= 2.0;
        annealed = true;
      }
      double next_round_rho = GaussianRho(sigma) + ExponentialRho(epsilon);
      double remaining = filter.remaining();
      if (remaining <= 2.0 * next_round_rho && remaining > budget_floor) {
        epsilon = std::sqrt(8.0 * (1.0 - alpha) * remaining);
        sigma = std::sqrt(1.0 / (2.0 * alpha * remaining));
        final_round_clamp = true;
      }
    }

    if (metered) {
      rounds_counter.Add(1);
      filter_hist.Observe(t_filter);
      score_hist.Observe(t_score);
      measure_hist.Observe(t_measure);
      estimate_hist.Observe(t_estimate);
    }
    if (traced) {
      // One record per round — the schema DP auditing and the bench
      // trajectory consume (DESIGN.md "Observability").
      EmitTrace(TraceEvent("aim_round")
                    .Set("round", round)
                    .Set("selected", r_t.ToString())
                    .Set("cells", static_cast<int64_t>(n_rt))
                    .Set("sigma", round_sigma)
                    .Set("epsilon", round_epsilon)
                    .Set("rho_round", round_rho)
                    .Set("rho_spent", filter.spent())
                    .Set("rho_remaining", filter.remaining())
                    .Set("budget_clamped", budget_clamped)
                    .Set("size_cap_mb", size_cap)
                    .Set("cap_fallback", ToString(cap_fallback))
                    .Set("pool_size", static_cast<int64_t>(pool.size()))
                    .Set("candidates",
                         static_cast<int64_t>(candidate_ids.size()))
                    .Set("score", scores[pick])
                    .Set("sensitivity", sensitivity)
                    .Set("estimated_error", estimated_error)
                    .Set("total_estimate", total)
                    .Set("est_iterations", est_stats.iterations)
                    .Set("est_backtracks", est_stats.backtracking_steps)
                    .Set("est_objective", est_stats.final_objective)
                    .Set("est_converged", est_stats.converged)
                    .Set("annealed", annealed)
                    .Set("final_round_clamp", final_round_clamp)
                    .Set("t_filter_s", t_filter)
                    .Set("t_score_s", t_score)
                    .Set("t_measure_s", t_measure)
                    .Set("t_estimate_s", t_estimate));
    }
    if (checkpointing && round % options_.checkpoint_every_rounds == 0) {
      write_checkpoint();
    }
  }
  if (checkpointing && result.cancelled) {
    // Forced final checkpoint: the cancelled run must be resumable from
    // exactly where it stopped.
    write_checkpoint();
  }

  // ---- Final estimation and generation (Line 19). A deadline can expire
  // before anything was measured (use_initialization=false); the uniform
  // calibrated model from above is then the only valid fit.
  EstimationStats final_stats;
  if (!measurements.empty() || !priors.empty()) {
    model = EstimateMrf(domain, with_priors(), total,
                        options_.final_estimation, &model, zeros,
                        &final_stats);
  }
  int64_t synth_records = options_.synthetic_records > 0
                              ? options_.synthetic_records
                              : static_cast<int64_t>(std::llround(total));
  result.synthetic = GenerateSyntheticData(model, synth_records, rng);
  result.log.measurements = std::move(measurements);
  result.rho_used = filter.Finish();
  result.rho_ledger = filter.ledger();
  result.rounds = static_cast<int>(round);
  result.total_estimate = total;
  result.final_model = std::move(model);
  result.penultimate_model = std::move(penultimate);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  if (metered) run_hist.Observe(result.seconds);
  if (traced) {
    EmitTrace(TraceEvent("aim_finish")
                  .Set("rounds", round)
                  .Set("measurements",
                       static_cast<int64_t>(result.log.measurements.size()))
                  .Set("rho_budget", rho)
                  .Set("rho_used", result.rho_used)
                  .Set("total_estimate", total)
                  .Set("deadline_expired", result.deadline_expired)
                  .Set("cancelled", result.cancelled)
                  .Set("resumed_from", result.resumed_from_round)
                  .Set("final_est_iterations", final_stats.iterations)
                  .Set("final_est_objective", final_stats.final_objective)
                  .Set("t_filter_s", time_filter)
                  .Set("t_score_s", time_score)
                  .Set("t_measure_s", time_measure)
                  .Set("t_estimate_s", time_estimate)
                  .Set("seconds", result.seconds));
  }
  return result;
}

}  // namespace aim
