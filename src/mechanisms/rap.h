// RAP (Aydore et al. [3]), simplified CPU port: per adaptivity round,
// report-noisy-max selects the K worst-approximated workload marginals, the
// Gaussian mechanism measures them, and relaxed projection re-fits the
// continuous pseudo-dataset to all measurements so far. The original selects
// individual counting queries and runs on JAX/GPU; this port selects entire
// marginals (the stronger variant per the paper's footnote 8) and uses the
// analytic-gradient relaxed projection in relaxed_projection.h. As in the
// original (bounded DP), N is treated as public.

#ifndef AIM_MECHANISMS_RAP_H_
#define AIM_MECHANISMS_RAP_H_

#include "mechanisms/mechanism.h"
#include "mechanisms/relaxed_projection.h"

namespace aim {

struct RapOptions {
  int rounds = 8;
  int queries_per_round = 4;
  RelaxedProjectionOptions projection{.rows = 200, .iters = 100};
  // Queries with more cells than this are never scored or selected (the
  // CPU port's efficiency guard; the originals rely on GPU batching).
  int64_t max_query_cells = 100000;
  int64_t synthetic_records = -1;
};

class RapMechanism : public Mechanism {
 public:
  RapMechanism() = default;
  explicit RapMechanism(RapOptions options) : options_(std::move(options)) {}

  std::string name() const override { return "RAP"; }
  MechanismTraits traits() const override {
    return {.workload_aware = true, .data_aware = true,
            .efficiency_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;

 private:
  RapOptions options_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_RAP_H_
