// Factory for the mechanisms evaluated in Section 6, with a single knob set
// to scale the computational effort (estimation iterations, relaxed-
// projection size, model capacity) for bench environments.

#ifndef AIM_MECHANISMS_REGISTRY_H_
#define AIM_MECHANISMS_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mechanisms/mechanism.h"
#include "util/cancel.h"

namespace aim {

struct RegistryOptions {
  // Model capacity for the PGM-based mechanisms (paper default 80 MB).
  double max_size_mb = 80.0;
  // Mirror-descent iterations for per-round / final estimation.
  int round_iters = 100;
  int final_iters = 1000;
  // Relaxed-projection / generator fitting effort.
  int rp_rows = 200;
  int rp_iters = 100;
  // Efficiency guard for the RP-based mechanisms (cells per query).
  int64_t rp_max_cells = 100000;
  // Rounds for the fixed-round mechanisms; 0 = their 2d default.
  int mwem_rounds = 0;
  // Fault tolerance, honored by AIM only (see AimOptions): crash-safe
  // checkpointing, resume, and the wall-clock deadline.
  std::string checkpoint_path;
  int checkpoint_every_rounds = 1;
  int checkpoint_generations = 1;
  std::string resume_path;
  double deadline_seconds = 0.0;

  // --- Job-scoped options (the aimd daemon builds one mechanism per
  // submitted job through this registry; these mirror the aim_cli knobs so
  // a daemon job can be byte-identical to the equivalent CLI run). ---
  // Synthetic records to emit; <= 0 means "the estimated total" (AIM).
  int64_t synthetic_records = -1;
  // Record per-round candidate sets in the measurement log (AIM). Part of
  // the run fingerprint, so resumes must use the submitting value.
  bool record_candidates = true;
  // Cooperative cancellation polled at round boundaries (AIM): job
  // cancellation and graceful daemon shutdown. Not owned; may be null.
  CancelToken* cancel = nullptr;
};

// The evaluation roster of Section 6, in the paper's plotting order:
// Independent, Gaussian, MST, PrivBayes+PGM, PrivMRF (workload-agnostic);
// MWEM+PGM, RAP, GEM, AIM (workload-aware).
std::vector<std::unique_ptr<Mechanism>> StandardMechanisms(
    const RegistryOptions& options = {});

// Builds one mechanism by name (as returned by Mechanism::name()); returns
// nullptr for unknown names.
std::unique_ptr<Mechanism> MechanismByName(const std::string& name,
                                           const RegistryOptions& options = {});

// Names accepted by MechanismByName.
std::vector<std::string> StandardMechanismNames();

}  // namespace aim

#endif  // AIM_MECHANISMS_REGISTRY_H_
