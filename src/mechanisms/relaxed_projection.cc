#include "mechanisms/relaxed_projection.h"

#include <algorithm>
#include <cmath>

#include "marginal/marginal.h"
#include "util/logging.h"

namespace aim {

RelaxedDataset::RelaxedDataset(const Domain& domain,
                               const RelaxedProjectionOptions& options,
                               Rng& rng)
    : domain_(domain), options_(options), rng_(rng.Fork()) {
  AIM_CHECK_GT(options_.rows, 0);
  offsets_.resize(domain_.num_attributes());
  total_values_ = 0;
  for (int a = 0; a < domain_.num_attributes(); ++a) {
    offsets_[a] = total_values_;
    total_values_ += domain_.size(a);
  }
  logits_.resize(static_cast<size_t>(options_.rows) * total_values_);
  for (double& l : logits_) l = 0.1 * rng_.Gaussian();
  m_.assign(logits_.size(), 0.0);
  v_.assign(logits_.size(), 0.0);
  probs_.resize(logits_.size());
  ComputeProbs();
}

void RelaxedDataset::ComputeProbs() {
  for (int row = 0; row < options_.rows; ++row) {
    const size_t base = static_cast<size_t>(row) * total_values_;
    for (int a = 0; a < domain_.num_attributes(); ++a) {
      const size_t off = base + offsets_[a];
      const int n = domain_.size(a);
      double max_logit = logits_[off];
      for (int v = 1; v < n; ++v) {
        max_logit = std::max(max_logit, logits_[off + v]);
      }
      double z = 0.0;
      for (int v = 0; v < n; ++v) {
        probs_[off + v] = std::exp(logits_[off + v] - max_logit);
        z += probs_[off + v];
      }
      for (int v = 0; v < n; ++v) probs_[off + v] /= z;
    }
  }
}

namespace {

// Per-measurement cell decoding: values[cell * width + j] is the value of
// the j-th attribute of r in that cell.
std::vector<int> DecodeCells(const Domain& domain, const AttrSet& r) {
  MarginalIndexer indexer(domain, r);
  const int width = r.size();
  std::vector<int> values(indexer.size() * width);
  for (int64_t cell = 0; cell < indexer.size(); ++cell) {
    std::vector<int> tuple = indexer.TupleOfIndex(cell);
    for (int j = 0; j < width; ++j) values[cell * width + j] = tuple[j];
  }
  return values;
}

}  // namespace

std::vector<double> RelaxedDataset::Marginal(const AttrSet& r,
                                             double total) const {
  MarginalIndexer indexer(domain_, r);
  std::vector<int> cells = DecodeCells(domain_, r);
  const int width = r.size();
  const std::vector<int>& attrs = r.attrs();
  std::vector<double> out(indexer.size(), 0.0);
  const double row_mass = total / options_.rows;
  for (int row = 0; row < options_.rows; ++row) {
    const size_t base = static_cast<size_t>(row) * total_values_;
    for (int64_t cell = 0; cell < indexer.size(); ++cell) {
      double product = row_mass;
      for (int j = 0; j < width; ++j) {
        product *=
            probs_[base + offsets_[attrs[j]] + cells[cell * width + j]];
      }
      out[cell] += product;
    }
  }
  return out;
}

void RelaxedDataset::FitTo(const std::vector<Measurement>& measurements,
                           double total) {
  AIM_CHECK(!measurements.empty());
  const double row_mass = total / options_.rows;
  // Precompute cell decodings.
  std::vector<std::vector<int>> cell_values;
  cell_values.reserve(measurements.size());
  for (const Measurement& m : measurements) {
    cell_values.push_back(DecodeCells(domain_, m.attrs));
  }

  std::vector<double> grad_probs(probs_.size());
  std::vector<double> grad_logits(logits_.size());
  std::vector<double> residual;
  for (int iter = 0; iter < options_.iters; ++iter) {
    std::fill(grad_probs.begin(), grad_probs.end(), 0.0);
    for (size_t mi = 0; mi < measurements.size(); ++mi) {
      const Measurement& m = measurements[mi];
      const std::vector<int>& attrs = m.attrs.attrs();
      const int width = m.attrs.size();
      const std::vector<int>& cells = cell_values[mi];
      const int64_t num_cells = static_cast<int64_t>(m.values.size());
      // Residual: dL/dmu = (2/sigma) (mu - y), with mu computed inline from
      // the cached cell decoding (avoids re-decoding every iteration).
      std::vector<double> mu(num_cells, 0.0);
      for (int row = 0; row < options_.rows; ++row) {
        const size_t base = static_cast<size_t>(row) * total_values_;
        for (int64_t t = 0; t < num_cells; ++t) {
          double product = row_mass;
          for (int j = 0; j < width; ++j) {
            product *=
                probs_[base + offsets_[attrs[j]] + cells[t * width + j]];
          }
          mu[t] += product;
        }
      }
      residual.resize(num_cells);
      const double scale = 2.0 / m.sigma;
      for (int64_t t = 0; t < num_cells; ++t) {
        residual[t] = scale * (mu[t] - m.values[t]);
      }
      // Accumulate gradient w.r.t. probs.
      for (int row = 0; row < options_.rows; ++row) {
        const size_t base = static_cast<size_t>(row) * total_values_;
        for (int64_t t = 0; t < num_cells; ++t) {
          double rt = residual[t];
          if (rt == 0.0) continue;
          // Leave-one-out products (width <= 3 in practice, general loop).
          double full = row_mass;
          for (int j = 0; j < width; ++j) {
            full *= probs_[base + offsets_[attrs[j]] + cells[t * width + j]];
          }
          for (int j = 0; j < width; ++j) {
            const size_t pj =
                base + offsets_[attrs[j]] + cells[t * width + j];
            double pval = probs_[pj];
            double partial;
            if (pval > 1e-12) {
              partial = full / pval;
            } else {
              partial = row_mass;
              for (int j2 = 0; j2 < width; ++j2) {
                if (j2 == j) continue;
                partial *=
                    probs_[base + offsets_[attrs[j2]] + cells[t * width + j2]];
              }
            }
            grad_probs[pj] += rt * partial;
          }
        }
      }
    }
    // Chain rule through the softmax and Adam update.
    ++adam_step_;
    const double bc1 = 1.0 - std::pow(options_.beta1, adam_step_);
    const double bc2 = 1.0 - std::pow(options_.beta2, adam_step_);
    for (int row = 0; row < options_.rows; ++row) {
      const size_t base = static_cast<size_t>(row) * total_values_;
      for (int a = 0; a < domain_.num_attributes(); ++a) {
        const size_t off = base + offsets_[a];
        const int n = domain_.size(a);
        double dot = 0.0;
        for (int v = 0; v < n; ++v) {
          dot += probs_[off + v] * grad_probs[off + v];
        }
        for (int v = 0; v < n; ++v) {
          grad_logits[off + v] =
              probs_[off + v] * (grad_probs[off + v] - dot);
        }
      }
    }
    for (size_t i = 0; i < logits_.size(); ++i) {
      m_[i] = options_.beta1 * m_[i] + (1.0 - options_.beta1) * grad_logits[i];
      v_[i] = options_.beta2 * v_[i] +
              (1.0 - options_.beta2) * grad_logits[i] * grad_logits[i];
      double mhat = m_[i] / bc1;
      double vhat = v_[i] / bc2;
      logits_[i] -= options_.learning_rate * mhat / (std::sqrt(vhat) + 1e-8);
    }
    ComputeProbs();
  }
}

Dataset RelaxedDataset::Round(int64_t num_records, Rng& rng) const {
  AIM_CHECK_GE(num_records, 0);
  Dataset out(domain_);
  out.Reserve(num_records);
  std::vector<int> record(domain_.num_attributes());
  std::vector<double> weights;
  for (int64_t i = 0; i < num_records; ++i) {
    int row = static_cast<int>(i % options_.rows);
    const size_t base = static_cast<size_t>(row) * total_values_;
    for (int a = 0; a < domain_.num_attributes(); ++a) {
      const int n = domain_.size(a);
      weights.assign(probs_.begin() + base + offsets_[a],
                     probs_.begin() + base + offsets_[a] + n);
      record[a] = rng.SampleDiscrete(weights);
    }
    out.AppendRecord(record);
  }
  return out;
}

}  // namespace aim
