#include "mechanisms/gaussian_baseline.h"

#include <chrono>
#include <cmath>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "util/logging.h"

namespace aim {

MechanismResult GaussianBaselineMechanism::Run(const Dataset& data,
                                               const Workload& workload,
                                               double rho, Rng& rng) const {
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  AIM_CHECK_GT(workload.num_queries(), 0);
  const Domain& domain = data.domain();

  MechanismResult result;
  result.rho_budget = rho;
  result.has_synthetic = false;
  PrivacyFilter filter(rho);

  // PrivSyn allocation: minimize sum_i n_i sigma_i subject to
  // sum_i 1/(2 sigma_i^2) = rho  =>  sigma_i^2 = (sum_j n_j^{2/3}) /
  // (2 rho n_i^{2/3}).
  const int k = workload.num_queries();
  std::vector<double> n(k);
  double denom = 0.0;
  for (int i = 0; i < k; ++i) {
    n[i] = static_cast<double>(MarginalSize(domain, workload.query(i).attrs));
    denom += std::pow(n[i], 2.0 / 3.0);
  }
  result.query_answers.resize(k);
  for (int i = 0; i < k; ++i) {
    double sigma_sq = denom / (2.0 * rho * std::pow(n[i], 2.0 / 3.0));
    double sigma = std::sqrt(sigma_sq);
    filter.Spend(GaussianRho(sigma));
    const AttrSet& r = workload.query(i).attrs;
    std::vector<double> answer =
        AddGaussianNoise(ComputeMarginal(data, r), sigma, rng);
    result.log.measurements.push_back({r, answer, sigma});
    result.query_answers[i] = std::move(answer);
  }

  result.rho_used = filter.spent();
  result.rounds = 1;
  result.total_estimate = static_cast<double>(data.num_records());
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace aim
