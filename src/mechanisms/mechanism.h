// Common interface for differentially private synthetic-data mechanisms in
// the select-measure-generate paradigm (Section 3.1).
//
// Every mechanism consumes a dataset, a workload of weighted marginal
// queries, and a total zCDP budget rho, and produces synthetic data plus a
// log of everything it measured (the log powers the Section-5 uncertainty
// quantification without any additional privacy cost).

#ifndef AIM_MECHANISMS_MECHANISM_H_
#define AIM_MECHANISMS_MECHANISM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/data_source.h"
#include "data/dataset.h"
#include "marginal/workload.h"
#include "pgm/estimation.h"
#include "pgm/markov_random_field.h"
#include "util/rng.h"

namespace aim {

// One candidate considered by an iterative selection round.
struct CandidateInfo {
  AttrSet attrs;
  double weight = 1.0;  // w_r
  int64_t cells = 0;    // n_r
};

// One select/measure round of an iterative mechanism (AIM, MWEM+PGM, ...).
struct RoundInfo {
  AttrSet selected;
  double sigma = 0.0;    // measure-step noise scale
  double epsilon = 0.0;  // select-step exponential-mechanism parameter
  // ||M_{r_t}(p̂_{t-1}) - ỹ_t||_1 — the estimated error on the selected
  // marginal (term 1 of B_r in Theorem 4).
  double estimated_error_on_selected = 0.0;
  double sensitivity = 1.0;  // Δ_t = max_{r in C_t} w_r
  std::vector<CandidateInfo> candidates;  // C_t
  int selected_candidate = -1;            // index into candidates
};

// Every noisy measurement taken plus per-round selection metadata.
struct MeasurementLog {
  std::vector<Measurement> measurements;
  std::vector<RoundInfo> rounds;
};

struct MechanismResult {
  // The synthetic dataset (empty, with has_synthetic=false, for mechanisms
  // like the Gaussian baseline that only produce query answers).
  Dataset synthetic;
  bool has_synthetic = true;

  // Noisy workload-query answers, aligned with workload.queries(); filled
  // only by answer-only mechanisms.
  std::vector<std::vector<double>> query_answers;

  MeasurementLog log;

  double rho_budget = 0.0;
  double rho_used = 0.0;
  // Cumulative privacy-filter ledger: spent rho after each Spend call, in
  // spend order (AIM and MST fill this; see PrivacyFilter::ledger()). The
  // audit harness reads it to report how much of the claimed budget the
  // distinguishing statistics could actually draw on.
  std::vector<double> rho_ledger;
  int rounds = 0;
  double total_estimate = 0.0;
  double seconds = 0.0;

  // Fault-tolerance diagnostics (AIM): the round loop stopped because the
  // wall-clock deadline expired, and the completed-round count the run was
  // resumed from (-1 for a fresh start).
  bool deadline_expired = false;
  int64_t resumed_from_round = -1;
  // The round loop was wound down by a CancelToken (stall watchdog or a
  // daemon SLO); a final checkpoint was forced first, so the run is
  // resumable from where it stopped.
  bool cancelled = false;

  // Final fitted model and (for AIM) the model one estimation step before
  // the end — p̂_{T-1} — used by the Corollary-2 confidence bounds.
  std::optional<MarkovRandomField> final_model;
  std::optional<MarkovRandomField> penultimate_model;
};

// Taxonomy flags (Table 1).
struct MechanismTraits {
  bool workload_aware = false;
  bool data_aware = false;
  bool budget_aware = false;
  bool efficiency_aware = false;
};

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  virtual std::string name() const = 0;
  virtual MechanismTraits traits() const = 0;

  // Runs the mechanism under a total budget of `rho`-zCDP. Implementations
  // must not exceed the budget (they use a PrivacyFilter internally).
  virtual MechanismResult Run(const Dataset& data, const Workload& workload,
                              double rho, Rng& rng) const = 0;

  // Runs against a (possibly out-of-core) DataSource. Mechanisms that touch
  // data only through marginal counting override this to stream directly
  // (and return true from SupportsStreaming); the default materializes the
  // source and runs the in-memory path. Callers holding a large store
  // should check SupportsStreaming() first and materialize once themselves
  // if it is false (see RunTrials).
  virtual MechanismResult Run(const DataSource& source,
                              const Workload& workload, double rho,
                              Rng& rng) const {
    Dataset data = source.Materialize();
    return Run(data, workload, rho, rng);
  }

  // True when Run(DataSource) streams — i.e. never materializes the full
  // record set in memory.
  virtual bool SupportsStreaming() const { return false; }
};

}  // namespace aim

#endif  // AIM_MECHANISMS_MECHANISM_H_
