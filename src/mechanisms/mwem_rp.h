// MWEM+RelaxedProjection (Appendix F): identical to MWEM+PGM in every way —
// same selection rule, budget split, and round structure — except the
// Private-PGM estimation step is replaced by the relaxed-projection
// optimizer. Used by the Figure-7 comparison to isolate the effect of the
// generate step.

#ifndef AIM_MECHANISMS_MWEM_RP_H_
#define AIM_MECHANISMS_MWEM_RP_H_

#include "mechanisms/mechanism.h"
#include "mechanisms/relaxed_projection.h"

namespace aim {

struct MwemRpOptions {
  // Number of rounds; <= 0 means the 2d default (Figure 7 sweeps this).
  int rounds = 0;
  RelaxedProjectionOptions projection{.rows = 200, .iters = 100};
  // Queries with more cells than this are never scored or selected (the
  // CPU port's efficiency guard; the originals rely on GPU batching).
  int64_t max_query_cells = 100000;
  int64_t synthetic_records = -1;
};

class MwemRpMechanism : public Mechanism {
 public:
  MwemRpMechanism() = default;
  explicit MwemRpMechanism(MwemRpOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "MWEM+RP"; }
  MechanismTraits traits() const override {
    return {.workload_aware = true, .data_aware = true,
            .efficiency_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;

 private:
  MwemRpOptions options_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_MWEM_RP_H_
