// Relaxed projection (Aydore et al. [3]): the continuous alternative to
// Private-PGM for the generate step. A pseudo-dataset of `rows` relaxed
// records is maintained, each attribute a probability vector parameterized
// by softmax logits; the marginal of the relaxed dataset is the sum over
// rows of outer products of the per-attribute probabilities. Logits are
// fit to the noisy measurements by Adam on the squared-error loss with
// analytic gradients. Used by the RAP mechanism and by MWEM+RP (Appendix F).

#ifndef AIM_MECHANISMS_RELAXED_PROJECTION_H_
#define AIM_MECHANISMS_RELAXED_PROJECTION_H_

#include <vector>

#include "data/dataset.h"
#include "pgm/estimation.h"
#include "util/rng.h"

namespace aim {

struct RelaxedProjectionOptions {
  // Number of relaxed records. The original uses ~1000; smaller values
  // trade fidelity for speed.
  int rows = 300;
  int iters = 300;
  double learning_rate = 0.1;
  // Adam moments.
  double beta1 = 0.9;
  double beta2 = 0.999;
};

// The relaxed pseudo-dataset.
class RelaxedDataset {
 public:
  RelaxedDataset(const Domain& domain, const RelaxedProjectionOptions& options,
                 Rng& rng);

  const Domain& domain() const { return domain_; }
  int rows() const { return options_.rows; }

  // Scaled marginal of the relaxed dataset on `r` (sums to `total`): each
  // relaxed row contributes total/rows times the product of its
  // per-attribute probabilities.
  std::vector<double> Marginal(const AttrSet& r, double total) const;

  // Fits the logits to the measurements: minimizes
  //   sum_i (1/sigma_i) || M_{r_i}(Z) - y_i ||_2^2
  // with M scaled to `total`. Runs options.iters Adam steps.
  void FitTo(const std::vector<Measurement>& measurements, double total);

  // Rounds the relaxed dataset to `num_records` concrete records: each
  // output record picks a relaxed row (cycling) and samples every attribute
  // from that row's probability vector.
  Dataset Round(int64_t num_records, Rng& rng) const;

 private:
  void ComputeProbs();

  Domain domain_;
  RelaxedProjectionOptions options_;
  // logits_[row][attr][value], flattened: offsets_[attr] indexes into a
  // per-row contiguous block of size total_values_.
  std::vector<double> logits_;
  std::vector<double> probs_;  // softmax of logits, same layout
  std::vector<int> offsets_;
  int total_values_ = 0;
  // Adam state.
  std::vector<double> m_, v_;
  int adam_step_ = 0;
  Rng rng_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_RELAXED_PROJECTION_H_
