// Independent baseline: measures every 1-way marginal with the Gaussian
// mechanism and samples synthetic data under an independence assumption.
// Workload-, data- and budget-oblivious; only efficiency-aware (Table 1).

#ifndef AIM_MECHANISMS_INDEPENDENT_H_
#define AIM_MECHANISMS_INDEPENDENT_H_

#include "mechanisms/mechanism.h"
#include "pgm/estimation.h"

namespace aim {

struct IndependentOptions {
  EstimationOptions estimation{.max_iters = 500};
  int64_t synthetic_records = -1;
};

class IndependentMechanism : public Mechanism {
 public:
  IndependentMechanism() = default;
  explicit IndependentMechanism(IndependentOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "Independent"; }
  MechanismTraits traits() const override {
    return {.efficiency_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;

 private:
  IndependentOptions options_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_INDEPENDENT_H_
