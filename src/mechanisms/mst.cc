#include "mechanisms/mst.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "marginal/marginal.h"
#include "pgm/synthetic.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {

MechanismResult MstMechanism::Run(const Dataset& data,
                                  const Workload& workload, double rho,
                                  Rng& rng) const {
  (void)workload;  // workload-agnostic
  const auto start_time = std::chrono::steady_clock::now();
  AIM_CHECK_GT(rho, 0.0);
  const Domain& domain = data.domain();
  const int d = domain.num_attributes();

  MechanismResult result;
  result.rho_budget = rho;
  PrivacyFilter filter(rho);

  // ---- Phase 1 (rho/3): all 1-way marginals.
  const double sigma1 = std::sqrt(3.0 * d / (2.0 * rho));
  std::vector<Measurement> measurements;
  for (int a = 0; a < d; ++a) {
    filter.Spend(GaussianRho(sigma1));
    AttrSet r({a});
    measurements.push_back(
        {r, AddGaussianNoise(ComputeMarginal(data, r), sigma1, rng), sigma1});
  }
  double total = EstimateTotal(measurements);
  MarkovRandomField independent =
      EstimateMrf(domain, measurements, total, options_.estimation);

  if (d >= 2) {
    // ---- Phase 2 (rho/3): select a spanning tree by Kruskal, one
    // exponential-mechanism draw per accepted edge. Edge quality: L1 gap
    // between the true pairwise marginal and the independent estimate
    // (sensitivity 1).
    std::vector<std::pair<int, int>> pairs;
    std::vector<double> quality;
    for (int a = 0; a < d; ++a) {
      for (int b = a + 1; b < d; ++b) {
        AttrSet r({a, b});
        pairs.push_back({a, b});
        quality.push_back(L1Distance(ComputeMarginal(data, r),
                                     independent.MarginalVector(r)));
      }
    }
    const double eps_edge = std::sqrt(8.0 * (rho / 3.0) / (d - 1));
    std::vector<int> component(d);
    std::iota(component.begin(), component.end(), 0);
    std::vector<AttrSet> selected_pairs;
    for (int edge = 0; edge < d - 1; ++edge) {
      filter.Spend(ExponentialRho(eps_edge));
      std::vector<double> scores(pairs.size(),
                                 -std::numeric_limits<double>::infinity());
      for (size_t i = 0; i < pairs.size(); ++i) {
        if (component[pairs[i].first] != component[pairs[i].second]) {
          scores[i] = quality[i];
        }
      }
      int pick = ExponentialMechanism(scores, eps_edge, 1.0, rng);
      auto [a, b] = pairs[pick];
      AIM_CHECK_NE(component[a], component[b]);
      int from = component[b], to = component[a];
      for (int v = 0; v < d; ++v) {
        if (component[v] == from) component[v] = to;
      }
      selected_pairs.push_back(AttrSet({a, b}));

      RoundInfo info;
      info.selected = selected_pairs.back();
      info.epsilon = eps_edge;
      info.sensitivity = 1.0;
      result.log.rounds.push_back(std::move(info));
    }

    // ---- Phase 3 (rho/3): measure the selected pairs.
    const double sigma2 = std::sqrt(3.0 * (d - 1) / (2.0 * rho));
    for (const AttrSet& r : selected_pairs) {
      filter.Spend(GaussianRho(sigma2));
      measurements.push_back(
          {r, AddGaussianNoise(ComputeMarginal(data, r), sigma2, rng),
           sigma2});
    }
  }

  MarkovRandomField model = EstimateMrf(domain, measurements, total,
                                        options_.estimation, &independent);
  int64_t synth_records = options_.synthetic_records > 0
                              ? options_.synthetic_records
                              : static_cast<int64_t>(std::llround(total));
  result.synthetic = GenerateSyntheticData(model, synth_records, rng);
  result.log.measurements = std::move(measurements);
  result.rho_used = filter.Finish();
  result.rho_ledger = filter.ledger();
  result.rounds = d;
  result.total_estimate = total;
  result.final_model = std::move(model);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace aim
