// PrivBayes+PGM: PrivBayes-style Bayesian-network structure learning
// (exponential mechanism over (child, parent-set) pairs scored by empirical
// mutual information), with the selected (child ∪ parents) marginals
// measured under Gaussian noise and post-processed by Private-PGM instead
// of direct sampling — the "+PGM" variant of McKenna et al. [37].
//
// Budget-awareness: the maximum parent-set size shrinks when the budget is
// small, mirroring PrivBayes' theta-usefulness criterion: a parent set is
// only admitted if the implied marginal's expected Gaussian noise stays
// below a fraction of the dataset size. As in the original PrivBayes
// (bounded DP), the record count N is treated as public.

#ifndef AIM_MECHANISMS_PRIVBAYES_PGM_H_
#define AIM_MECHANISMS_PRIVBAYES_PGM_H_

#include "mechanisms/mechanism.h"
#include "pgm/estimation.h"

namespace aim {

struct PrivBayesOptions {
  // Hard cap on parent-set size.
  int max_parents = 3;
  // Hard cap on the cells of any measured marginal.
  int64_t max_cells = 100000;
  // A candidate parent set is admissible when sqrt(2/pi) * sigma * cells
  // <= usefulness_fraction * N (budget-aware pruning).
  double usefulness_fraction = 0.5;

  EstimationOptions estimation{.max_iters = 1000};
  int64_t synthetic_records = -1;
};

class PrivBayesPgmMechanism : public Mechanism {
 public:
  PrivBayesPgmMechanism() = default;
  explicit PrivBayesPgmMechanism(PrivBayesOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "PrivBayes+PGM"; }
  MechanismTraits traits() const override {
    return {.data_aware = true, .budget_aware = true,
            .efficiency_aware = true};
  }

  MechanismResult Run(const Dataset& data, const Workload& workload,
                      double rho, Rng& rng) const override;

 private:
  PrivBayesOptions options_;
};

}  // namespace aim

#endif  // AIM_MECHANISMS_PRIVBAYES_PGM_H_
