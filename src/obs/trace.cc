#include "obs/trace.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "obs/metrics.h"
#include "robust/fault.h"
#include "util/logging.h"

namespace aim {
namespace {

std::atomic<TraceSink*> g_trace_sink{nullptr};

// Per-thread override (ScopedThreadTraceSink). Plain thread_local: only
// the owning thread reads or writes it.
thread_local TraceSink* t_trace_sink = nullptr;

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendJsonDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
}

}  // namespace

const TraceEvent::Value* TraceEvent::Find(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double TraceEvent::GetDouble(std::string_view key) const {
  const Value* v = Find(key);
  AIM_CHECK(v != nullptr) << "missing trace field" << key;
  AIM_CHECK(std::holds_alternative<double>(*v))
      << "trace field" << key << "is not a double";
  return std::get<double>(*v);
}

int64_t TraceEvent::GetInt(std::string_view key) const {
  const Value* v = Find(key);
  AIM_CHECK(v != nullptr) << "missing trace field" << key;
  AIM_CHECK(std::holds_alternative<int64_t>(*v))
      << "trace field" << key << "is not an int";
  return std::get<int64_t>(*v);
}

const std::string& TraceEvent::GetString(std::string_view key) const {
  const Value* v = Find(key);
  AIM_CHECK(v != nullptr) << "missing trace field" << key;
  AIM_CHECK(std::holds_alternative<std::string>(*v))
      << "trace field" << key << "is not a string";
  return std::get<std::string>(*v);
}

bool TraceEvent::GetBool(std::string_view key) const {
  const Value* v = Find(key);
  AIM_CHECK(v != nullptr) << "missing trace field" << key;
  AIM_CHECK(std::holds_alternative<bool>(*v))
      << "trace field" << key << "is not a bool";
  return std::get<bool>(*v);
}

std::string TraceEvent::ToJson() const {
  std::string out = "{\"type\":";
  AppendJsonString(out, type_);
  for (const auto& [key, value] : fields_) {
    out += ',';
    AppendJsonString(out, key);
    out += ':';
    if (std::holds_alternative<std::string>(value)) {
      AppendJsonString(out, std::get<std::string>(value));
    } else if (std::holds_alternative<double>(value)) {
      AppendJsonDouble(out, std::get<double>(value));
    } else if (std::holds_alternative<int64_t>(value)) {
      out += std::to_string(std::get<int64_t>(value));
    } else {
      out += std::get<bool>(value) ? "true" : "false";
    }
  }
  out += '}';
  return out;
}

namespace {

// Failure counters increment unconditionally (no MetricsEnabled gate): a
// lost trace event is an error worth counting even when nobody asked for
// metrics, and these paths are never hot.
Counter& OpenFailureCounter() {
  static Counter& counter =
      MetricsRegistry::Global().counter("obs_sink_open_failures");
  return counter;
}

Counter& WriteFailureCounter() {
  static Counter& counter =
      MetricsRegistry::Global().counter("obs_sink_write_failures");
  return counter;
}

// The sink retries failed writes inline rather than through RetryPolicy:
// aim_retry links aim_obs for its counters, so depending on it here would
// be a cycle. The loop keeps the same bounded-attempt semantics and bumps
// the same robust.retry.* counters by name.
constexpr int kTraceWriteAttempts = 3;

const FaultPointRegistration kTraceWriteFault{"trace_write"};

Counter& TraceRetryAttemptsCounter() {
  static Counter& counter =
      MetricsRegistry::Global().counter("robust.retry.attempts");
  return counter;
}
Counter& TraceRetrySuccessesCounter() {
  static Counter& counter =
      MetricsRegistry::Global().counter("robust.retry.successes");
  return counter;
}
Counter& TraceRetryExhaustedCounter() {
  static Counter& counter =
      MetricsRegistry::Global().counter("robust.retry.exhausted");
  return counter;
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path) : path_(path) {
  if (path == "-" || path == "stderr") {
    out_ = &std::cerr;
    return;
  }
  auto file = std::make_unique<std::ofstream>(path);
  if (file->is_open()) {
    file_ = std::move(file);
    out_ = file_.get();
    return;
  }
  open_error_ = "trace sink: cannot open '" + path + "' for writing";
  OpenFailureCounter().Add(1);
  std::cerr << "[obs] " << open_error_ << "; events will be dropped\n";
}

bool JsonlTraceSink::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return out_ != nullptr && write_failures_ == 0;
}

Status JsonlTraceSink::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return InternalError(open_error_);
  if (write_failures_ > 0) {
    return InternalError("trace sink: " + std::to_string(write_failures_) +
                         " event(s) lost to write errors" +
                         (path_.empty() ? "" : " ('" + path_ + "')"));
  }
  return Status::Ok();
}

void JsonlTraceSink::RecordWriteFailure() {
  WriteFailureCounter().Add(1);
  if (write_failures_++ == 0) {
    std::cerr << "[obs] trace sink: write failed"
              << (path_.empty() ? "" : " ('" + path_ + "')")
              << "; further losses counted in obs_sink_write_failures\n";
  }
}

void JsonlTraceSink::Emit(const TraceEvent& event) {
  if (out_ == nullptr) return;
  std::string line = event.ToJson();
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  // A full line either lands or is retried whole: stream failures leave the
  // buffered ostream unflushed, so clearing the error state and rewriting
  // never duplicates committed bytes. The "trace_write" fault point models
  // a failed attempt (the write is skipped entirely for that attempt).
  for (int attempt = 1;; ++attempt) {
    bool injected = ShouldInjectFault("trace_write");
    if (!injected) {
      *out_ << line;
      if (!out_->fail()) {
        if (attempt > 1) TraceRetrySuccessesCounter().Add();
        return;
      }
      out_->clear();
    }
    if (attempt >= kTraceWriteAttempts) {
      TraceRetryExhaustedCounter().Add();
      RecordWriteFailure();
      return;
    }
    TraceRetryAttemptsCounter().Add();
  }
}

void JsonlTraceSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;
  out_->flush();
  if (out_->fail()) RecordWriteFailure();
}

void MemoryTraceSink::Emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<TraceEvent> MemoryTraceSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TraceEvent> MemoryTraceSink::events_of_type(
    std::string_view type) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.type() == type) out.push_back(e);
  }
  return out;
}

bool TraceEnabled() {
  return t_trace_sink != nullptr ||
         g_trace_sink.load(std::memory_order_relaxed) != nullptr;
}

TraceSink* ThreadTraceSink() { return t_trace_sink; }

ScopedThreadTraceSink::ScopedThreadTraceSink(TraceSink* sink)
    : previous_(t_trace_sink) {
  t_trace_sink = sink;
}

ScopedThreadTraceSink::~ScopedThreadTraceSink() { t_trace_sink = previous_; }

TraceSink* GlobalTraceSink() {
  return g_trace_sink.load(std::memory_order_acquire);
}

void SetGlobalTraceSink(TraceSink* sink) {
  g_trace_sink.store(sink, std::memory_order_release);
}

void EmitTrace(const TraceEvent& event) {
  TraceSink* sink = t_trace_sink;
  if (sink == nullptr) sink = GlobalTraceSink();
  if (sink != nullptr) sink->Emit(event);
}

ScopedTraceSink::ScopedTraceSink(TraceSink* sink)
    : previous_(GlobalTraceSink()) {
  SetGlobalTraceSink(sink);
}

ScopedTraceSink::~ScopedTraceSink() { SetGlobalTraceSink(previous_); }

void InitTraceSinkFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (GlobalTraceSink() != nullptr) return;  // explicit sink wins
    const char* env = std::getenv("AIM_TRACE");
    if (env == nullptr || env[0] == '\0') return;
    std::string value(env);
    if (value == "1") value = "stderr";
    // Leaked by design: the sink must outlive every traced call site.
    auto* sink = new JsonlTraceSink(value);
    if (sink->ok()) {
      SetGlobalTraceSink(sink);
    } else {
      // The constructor already warned and counted the open failure.
      std::cerr << "[obs] AIM_TRACE: tracing disabled\n";
      delete sink;
    }
  });
}

}  // namespace aim
