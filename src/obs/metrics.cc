#include "obs/metrics.h"

#include <cmath>
#include <limits>

namespace aim {
namespace {

std::atomic<bool> g_metrics_enabled{false};

// Relaxed-atomic add for doubles (no fetch_add for atomic<double> until
// C++23); contention here is rare because recording is opt-in.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

int BucketFor(double v) {
  // Bucket b holds [2^(b-31), 2^(b-30)); b=0 is the underflow bucket.
  if (!(v > 0.0)) return 0;
  int exponent = 0;
  std::frexp(v, &exponent);  // v = m * 2^exponent, m in [0.5, 1)
  int b = exponent + 30;
  if (b < 0) return 0;
  if (b >= Histogram::kNumBuckets) return Histogram::kNumBuckets - 1;
  return b;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {
// Only the owning thread touches its label; a function-local static keeps
// the thread_local's dynamic initialization lazy and ASan-clean.
std::string& ThreadMetricLabel() {
  thread_local std::string label;
  return label;
}
}  // namespace

const std::string& CurrentMetricLabel() { return ThreadMetricLabel(); }

std::string ScopedMetricName(std::string_view base) {
  const std::string& label = ThreadMetricLabel();
  if (label.empty()) return std::string(base);
  std::string name(base);
  name += "{job=";
  name += label;
  name += '}';
  return name;
}

ScopedMetricLabel::ScopedMetricLabel(std::string label)
    : previous_(ThreadMetricLabel()) {
  ThreadMetricLabel() = std::move(label);
}

ScopedMetricLabel::~ScopedMetricLabel() {
  ThreadMetricLabel() = std::move(previous_);
}

void Histogram::Observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  if (!has_samples_.load(std::memory_order_relaxed)) {
    // First sample seeds min/max; racing initializers converge because the
    // min/max updates below run unconditionally afterwards.
    bool expected = false;
    if (has_samples_.compare_exchange_strong(expected, true,
                                             std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
      max_.store(v, std::memory_order_relaxed);
    }
  }
  AtomicMin(min_, v);
  AtomicMax(max_, v);
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return has_samples_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : std::numeric_limits<double>::infinity();
}

double Histogram::max() const {
  return has_samples_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : -std::numeric_limits<double>::infinity();
}

double Histogram::mean() const {
  int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  has_samples_.store(false, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto write_double = [&out](double v) {
    if (std::isfinite(v)) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", v);
      out << buffer;
    } else {
      out << "null";  // JSON has no inf/nan
    }
  };
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":";
    write_double(g->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":{\"count\":" << h->count() << ",\"sum\":";
    write_double(h->sum());
    out << ",\"min\":";
    write_double(h->min());
    out << ",\"max\":";
    write_double(h->max());
    out << ",\"mean\":";
    write_double(h->mean());
    out << '}';
  }
  out << "}}\n";
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace aim
