// Wall-clock helpers for profiling scopes.
//
// ScopedTimer records its scope's duration into a Histogram (and optionally
// a double accumulator) on destruction; LapClock hands out split times for
// multi-phase loops. Both skip the clock entirely when given enabled=false,
// so dormant instrumentation costs a branch, not a syscall.

#ifndef AIM_OBS_SCOPED_TIMER_H_
#define AIM_OBS_SCOPED_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace aim {

// Split-time clock for phase loops: Lap() returns the seconds since
// construction or the previous Lap. Disabled instances never read the
// clock and return 0.
class LapClock {
 public:
  explicit LapClock(bool enabled) : enabled_(enabled) {
    if (enabled_) last_ = std::chrono::steady_clock::now();
  }

  double Lap() {
    if (!enabled_) return 0.0;
    auto now = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(now - last_).count();
    last_ = now;
    return seconds;
  }

  bool enabled() const { return enabled_; }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point last_;
};

// RAII scope timer. When MetricsEnabled() is false at construction (and no
// accumulator is given) it is a no-op. Usage:
//   static Histogram& h = MetricsRegistry::Global().histogram("x.seconds");
//   ScopedTimer timer(&h);
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, double* accumulator = nullptr)
      : histogram_(MetricsEnabled() ? histogram : nullptr),
        accumulator_(accumulator),
        enabled_(histogram_ != nullptr || accumulator_ != nullptr) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Records once and disarms; returns the elapsed seconds (0 if disabled).
  double Stop() {
    if (!enabled_) return 0.0;
    enabled_ = false;
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    if (histogram_ != nullptr) histogram_->Observe(seconds);
    if (accumulator_ != nullptr) *accumulator_ += seconds;
    return seconds;
  }

 private:
  Histogram* histogram_;
  double* accumulator_;
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aim

#endif  // AIM_OBS_SCOPED_TIMER_H_
