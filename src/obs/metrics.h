// Process-wide metrics registry: named counters, gauges, and histograms
// with lock-free updates, safe to hammer from ParallelFor workers.
//
// Contract (see DESIGN.md "Observability"):
//  - Recording is gated on a single process-wide enable flag. A disabled
//    recording site costs one relaxed atomic load and a predictable branch,
//    so instrumented hot paths keep their throughput and determinism.
//  - Instrument handles returned by the registry are stable for the process
//    lifetime (the registry never deletes instruments; ResetForTesting only
//    zeroes values), so call sites may cache them in function-local statics.
//  - Nothing here touches an Rng or any mechanism state: enabling metrics
//    can never change mechanism output.

#ifndef AIM_OBS_METRICS_H_
#define AIM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace aim {

// Global metrics switch. Off by default; flipped by --metrics-out style
// flags or SetMetricsEnabled(true) in tests.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

// ---- Per-job metric label scoping. ----
//
// Gauges are last-writer-wins, so two jobs publishing e.g. dp.filter.spent
// in one process would clobber each other — a correctness problem for the
// aimd daemon, where per-tenant accounting is read off these values. A
// thread-local label scope splits such instruments per job: while a
// ScopedMetricLabel("j-000001") is active on a thread, ScopedMetricName
// turns "dp.filter.spent" into "dp.filter.spent{job=j-000001}", giving
// each job its own gauge. Counters stay unlabeled (process-wide totals are
// their meaning). Call sites that publish per-run gauges must look the
// gauge up via ScopedMetricName at publish time instead of caching a
// static handle.

// "base" with no active label, "base{job=<label>}" otherwise.
std::string ScopedMetricName(std::string_view base);

// The current thread's metric label ("" when none).
const std::string& CurrentMetricLabel();

// Installs `label` as this thread's metric label for the current scope and
// restores the previous label on destruction.
class ScopedMetricLabel {
 public:
  explicit ScopedMetricLabel(std::string label);
  ~ScopedMetricLabel();

  ScopedMetricLabel(const ScopedMetricLabel&) = delete;
  ScopedMetricLabel& operator=(const ScopedMetricLabel&) = delete;

 private:
  std::string previous_;
};

// Monotonic event count.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-written value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Distribution of non-negative samples: count / sum / min / max plus
// power-of-two buckets (bucket b counts samples in [2^(b-31), 2^(b-30)),
// with underflow in bucket 0 and overflow in the last bucket). All updates
// are relaxed atomics so concurrent Observe calls never serialize.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty
  double mean() const;
  int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_samples_{false};
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
};

// Name -> instrument map. Lookup takes a mutex (do it once and cache the
// reference); the returned instruments update lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {count, sum, min, max, mean}}}.
  void WriteJson(std::ostream& out) const;

  // Zeroes every instrument without invalidating cached handles.
  void ResetForTesting();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace aim

#endif  // AIM_OBS_METRICS_H_
