// Structured trace events and JSONL sinks.
//
// A TraceEvent is a flat, ordered set of typed key/value fields plus a type
// tag; sinks serialize one event per line as a JSON object ("JSONL"). The
// per-round AIM records that drive DP auditing and the bench trajectory are
// emitted through this interface (schema in DESIGN.md "Observability").
//
// Contract:
//  - Tracing is off unless a global sink is installed; TraceEnabled() is a
//    single relaxed atomic load, so dormant call sites are near-free.
//  - Sinks must be thread-safe: events arrive concurrently from ParallelFor
//    workers (e.g. per-trial events from the bench fan-out). Event order is
//    deterministic within one thread; cross-thread interleaving is not.
//  - Emitting never mutates mechanism state or any Rng, so enabling tracing
//    cannot change mechanism output (tested: AIM is bitwise identical with
//    tracing on vs. off).

#ifndef AIM_OBS_TRACE_H_
#define AIM_OBS_TRACE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.h"

namespace aim {

class TraceEvent {
 public:
  using Value = std::variant<std::string, double, int64_t, bool>;

  explicit TraceEvent(std::string type) : type_(std::move(type)) {}

  const std::string& type() const { return type_; }

  TraceEvent& Set(std::string_view key, std::string_view value) {
    fields_.emplace_back(std::string(key), std::string(value));
    return *this;
  }
  TraceEvent& Set(std::string_view key, const char* value) {
    return Set(key, std::string_view(value));
  }
  TraceEvent& Set(std::string_view key, double value) {
    fields_.emplace_back(std::string(key), value);
    return *this;
  }
  TraceEvent& Set(std::string_view key, int64_t value) {
    fields_.emplace_back(std::string(key), value);
    return *this;
  }
  TraceEvent& Set(std::string_view key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }
  TraceEvent& Set(std::string_view key, bool value) {
    fields_.emplace_back(std::string(key), value);
    return *this;
  }

  const std::vector<std::pair<std::string, Value>>& fields() const {
    return fields_;
  }

  // nullptr when the key is absent.
  const Value* Find(std::string_view key) const;

  // Typed lookups for tests/consumers; CHECK-fail on a missing key or a
  // type mismatch.
  double GetDouble(std::string_view key) const;
  int64_t GetInt(std::string_view key) const;
  const std::string& GetString(std::string_view key) const;
  bool GetBool(std::string_view key) const;

  // One-line JSON object: {"type":"...", <fields in insertion order>}.
  std::string ToJson() const;

 private:
  std::string type_;
  std::vector<std::pair<std::string, Value>> fields_;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceEvent& event) = 0;
  virtual void Flush() {}
};

// Writes one JSON line per event to an ostream (not owned) or a file path
// (owned). Thread-safe.
//
// Failure policy: an open failure warns on stderr and bumps the
// obs_sink_open_failures counter (the sink then drops every event); a
// write/flush failure bumps obs_sink_write_failures per lost event and
// warns once. Both are visible through status(), which callers should
// check at teardown (aim_cli does) — a trace that silently lost records
// would poison any DP audit built on it.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out);  // caller keeps `out` alive
  // Opens `path` for writing ("-" or "stderr" mean stderr). ok() is false
  // if the file could not be opened.
  explicit JsonlTraceSink(const std::string& path);

  // True when the sink opened and no write has failed since.
  bool ok() const;
  // OK, or a description of the open/write failure (with the lost-event
  // count for write failures).
  Status status() const;

  void Emit(const TraceEvent& event) override;
  void Flush() override;

 private:
  void RecordWriteFailure();  // callers hold mu_

  mutable std::mutex mu_;
  std::unique_ptr<std::ofstream> file_;  // set when we own the stream
  std::ostream* out_ = nullptr;
  std::string path_;            // diagnostic only; empty for ostream sinks
  std::string open_error_;      // set when construction failed
  int64_t write_failures_ = 0;  // events lost to stream errors
};

// Buffers events in memory for tests. Thread-safe.
class MemoryTraceSink : public TraceSink {
 public:
  void Emit(const TraceEvent& event) override;
  std::vector<TraceEvent> events() const;
  // Events of one type, in emission order.
  std::vector<TraceEvent> events_of_type(std::string_view type) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// ---- Global sink registration. ----

// True when a sink is installed for the current thread (thread-local
// override or the global sink).
bool TraceEnabled();

// The installed sink, or nullptr. The pointer is unowned; the installer
// keeps the sink alive until it uninstalls it.
TraceSink* GlobalTraceSink();
void SetGlobalTraceSink(TraceSink* sink);

// Emits to the global sink if one is installed.
void EmitTrace(const TraceEvent& event);

// ---- Per-thread sink routing (the aimd daemon's per-job traces). ----
//
// A thread-local sink override: while installed on a thread, EmitTrace
// calls from that thread route to it INSTEAD of the global sink, so two
// jobs running concurrently in one process each get their own trace stream
// with no interleaving. Events emitted from ParallelFor workers inside a
// parallel region still go to the global sink (the AIM round/warning/
// start/finish records and the estimation records are all emitted from the
// job's own thread, which is what per-job progress tailing needs).

// The current thread's override sink, or nullptr.
TraceSink* ThreadTraceSink();

// Installs `sink` as this thread's override for the current scope and
// restores the previous override on destruction. The job runner wraps each
// job body in one of these.
class ScopedThreadTraceSink {
 public:
  explicit ScopedThreadTraceSink(TraceSink* sink);
  ~ScopedThreadTraceSink();

  ScopedThreadTraceSink(const ScopedThreadTraceSink&) = delete;
  ScopedThreadTraceSink& operator=(const ScopedThreadTraceSink&) = delete;

 private:
  TraceSink* previous_;
};

// Installs a sink for the current scope and restores the previous one on
// destruction (tests, CLI main).
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink* sink);
  ~ScopedTraceSink();

  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* previous_;
};

// AIM_TRACE environment override: if AIM_TRACE is set, no sink is installed
// yet, and this is the first call, installs a process-lifetime JSONL sink —
// AIM_TRACE=1 or AIM_TRACE=stderr write to stderr, anything else is a file
// path. Called from mechanism entry points and CLI main; idempotent.
void InitTraceSinkFromEnv();

}  // namespace aim

#endif  // AIM_OBS_TRACE_H_
