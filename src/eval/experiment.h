// Experiment harness shared by the bench binaries: the paper's epsilon
// grid, multi-trial runner, and aligned-table / CSV printing.

#ifndef AIM_EVAL_EXPERIMENT_H_
#define AIM_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/data_source.h"
#include "data/dataset.h"
#include "marginal/workload.h"
#include "mechanisms/mechanism.h"
#include "util/rng.h"

namespace aim {

// The nine log-spaced privacy parameters of Section 6:
// {0.01, 0.0316, 0.1, 0.316, 1, 3.16, 10, 31.6, 100}.
std::vector<double> PaperEpsilonGrid();

// A reduced grid for quick runs: {0.1, 1, 10}.
std::vector<double> SmallEpsilonGrid();

// The paper's delta.
constexpr double kPaperDelta = 1e-9;

// Aggregate of repeated trials (the paper reports mean with min/max bars).
// Trials are isolated: a trial that throws (a fault-injected crash, an
// estimation failure) is recorded in `failures` and excluded from the
// statistics; the remaining trials are unaffected. When every trial fails,
// mean/min/max are 0 and `values` is empty.
struct TrialStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean_seconds = 0.0;
  std::vector<double> values;  // successful trials, in trial order

  struct TrialFailure {
    int trial = 0;
    std::string message;
  };
  std::vector<TrialFailure> failures;
};

// The Rng driving trial `trial` of a sweep seeded with `seed`. Exposed so
// other fan-outs that must replay the exact per-trial streams (the privacy
// audit's paired runs in src/audit/) derive them from one place.
Rng TrialRng(uint64_t seed, int64_t trial);

// Runs `trials` independent executions of the mechanism at (eps, delta)
// (converted to the zCDP budget via CdpRho) and reports workload-error
// statistics. Trial t uses TrialRng(seed, t).
// Fault point "trial_run" (keyed by t) injects a per-trial failure.
TrialStats RunTrials(const Mechanism& mechanism, const Dataset& data,
                     const Workload& workload, double epsilon, double delta,
                     int trials, uint64_t seed);

// As above over a (possibly out-of-core) DataSource. All trials share the
// one source — a single mmap of a store — instead of each materializing
// their own copy. Streaming mechanisms run against the source directly;
// for the rest the records are materialized once up front (not once per
// trial, which is what the default Run(DataSource) would do).
TrialStats RunTrials(const Mechanism& mechanism, const DataSource& source,
                     const Workload& workload, double epsilon, double delta,
                     int trials, uint64_t seed);

// Fixed-width text table, printed with aligned columns; optional CSV mode
// for machine consumption.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Pretty-prints with aligned columns (csv=false) or comma-separated rows.
  void Print(std::ostream& out, bool csv = false) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double compactly ("0.0316", "12.3", "1.2e-05").
std::string FormatG(double value, int precision = 4);

}  // namespace aim

#endif  // AIM_EVAL_EXPERIMENT_H_
