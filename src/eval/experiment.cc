#include "eval/experiment.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <optional>
#include <ostream>
#include <sstream>

#include "dp/accountant.h"
#include "eval/error.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "parallel/parallel.h"
#include "robust/fault.h"
#include "util/logging.h"

namespace aim {
namespace {

// Keyed by the trial index so the injected trial is the same regardless of
// thread count or scheduling.
const FaultPointRegistration kTrialRunFault{"trial_run"};

}  // namespace

std::vector<double> PaperEpsilonGrid() {
  // Half-decade grid from 0.01 to 100.
  return {0.01, 0.0316, 0.1, 0.316, 1.0, 3.16, 10.0, 31.6, 100.0};
}

std::vector<double> SmallEpsilonGrid() { return {0.1, 1.0, 10.0}; }

Rng TrialRng(uint64_t seed, int64_t trial) {
  // Knuth multiplicative spread of the sweep seed plus the trial index, so
  // adjacent seeds do not produce overlapping trial streams. The audit's
  // paired runs (src/audit/) replay this exact derivation on both sides of
  // a neighboring-dataset pair.
  return Rng(seed * 2654435761ULL + static_cast<uint64_t>(trial) + 1);
}

TrialStats RunTrials(const Mechanism& mechanism, const Dataset& data,
                     const Workload& workload, double epsilon, double delta,
                     int trials, uint64_t seed) {
  return RunTrials(mechanism, DatasetSource(data), workload, epsilon, delta,
                   trials, seed);
}

TrialStats RunTrials(const Mechanism& mechanism, const DataSource& source,
                     const Workload& workload, double epsilon, double delta,
                     int trials, uint64_t seed) {
  AIM_CHECK_GT(trials, 0);
  const double rho = CdpRho(epsilon, delta);
  TrialStats stats;
  // The true-data marginals are shared by every trial (and every mechanism
  // in a sweep); compute them once up front instead of once per trial.
  // Cached evaluations are bitwise identical to the recompute path.
  const WorkloadMarginalCache data_cache(source, workload);
  // Non-streaming mechanisms need in-memory records. Materialize once here
  // and share across trials (the default Run(DataSource) would materialize
  // inside every trial); a DatasetSource already wraps an in-memory dataset,
  // so borrow it instead of copying.
  std::optional<Dataset> materialized;
  const Dataset* in_memory = nullptr;
  if (!mechanism.SupportsStreaming()) {
    if (const auto* wrapped = dynamic_cast<const DatasetSource*>(&source)) {
      in_memory = &wrapped->dataset();
    } else {
      materialized.emplace(source.Materialize());
      in_memory = &*materialized;
    }
  }
  // Trial fan-out: every trial has an Rng derived from (seed, t) alone and
  // mechanisms only read the shared data/workload, so trials run
  // concurrently on the pool and aggregate in trial order — identical
  // output to the serial loop. Parallel loops inside a mechanism detect
  // the nesting and run inline.
  struct TrialOutcome {
    double error = 0.0;
    double seconds = 0.0;
    int rounds = 0;
    double rho_used = 0.0;
    bool failed = false;
    std::string message;
  };
  const bool traced = TraceEnabled();
  const bool metered = MetricsEnabled();
  std::vector<TrialOutcome> outcomes =
      ParallelMap(trials, [&](int64_t t) {
        LapClock clock(traced || metered);
        TrialOutcome outcome;
        // Per-trial isolation: exceptions (fault-injected crashes or real
        // estimation failures) must be caught here, inside the parallel
        // chunk body — if they escaped, ParallelMap would rethrow and take
        // the whole sweep down with the one bad trial.
        try {
          if (ShouldInjectFault("trial_run", static_cast<uint64_t>(t))) {
            throw FaultInjectedError("trial_run");
          }
          Rng rng = TrialRng(seed, t);
          MechanismResult result =
              in_memory != nullptr
                  ? mechanism.Run(*in_memory, workload, rho, rng)
                  : mechanism.Run(source, workload, rho, rng);
          outcome.error =
              WorkloadError(source, result, workload, &data_cache);
          outcome.seconds = result.seconds;
          outcome.rounds = result.rounds;
          outcome.rho_used = result.rho_used;
        } catch (const std::exception& e) {
          outcome.failed = true;
          outcome.message = e.what();
        }
        const double wall = clock.Lap();
        if (metered) {
          MetricsRegistry& registry = MetricsRegistry::Global();
          static Counter& trials_counter = registry.counter("eval.trials");
          static Counter& failures_counter =
              registry.counter("eval.trial_failures");
          static Histogram& trial_hist =
              registry.histogram("eval.trial_seconds");
          trials_counter.Add(1);
          if (outcome.failed) failures_counter.Add(1);
          trial_hist.Observe(wall);
        }
        if (traced) {
          TraceEvent event("trial");
          event.Set("mechanism", mechanism.name())
              .Set("trial", t)
              .Set("epsilon", epsilon)
              .Set("rho", rho)
              .Set("failed", outcome.failed);
          if (outcome.failed) {
            event.Set("error_message", outcome.message);
          } else {
            event.Set("rounds", outcome.rounds)
                .Set("rho_used", outcome.rho_used)
                .Set("error", outcome.error)
                .Set("mechanism_seconds", outcome.seconds);
          }
          event.Set("seconds", wall);
          EmitTrace(event);
        }
        return outcome;
      });
  stats.values.reserve(trials);
  double seconds = 0.0;
  for (int t = 0; t < trials; ++t) {
    const TrialOutcome& outcome = outcomes[static_cast<size_t>(t)];
    if (outcome.failed) {
      stats.failures.push_back({t, outcome.message});
      continue;
    }
    stats.values.push_back(outcome.error);
    seconds += outcome.seconds;
  }
  const int64_t successes = static_cast<int64_t>(stats.values.size());
  if (successes > 0) {
    stats.min = *std::min_element(stats.values.begin(), stats.values.end());
    stats.max = *std::max_element(stats.values.begin(), stats.values.end());
    double sum = 0.0;
    for (double v : stats.values) sum += v;
    stats.mean = sum / static_cast<double>(successes);
    stats.mean_seconds = seconds / static_cast<double>(successes);
  }
  return stats;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  AIM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& out, bool csv) const {
  if (csv) {
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out << ',';
        out << row[i];
      }
      out << '\n';
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
    return;
  }
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << std::left << std::setw(static_cast<int>(widths[i]) + 2)
          << row[i];
    }
    out << '\n';
  };
  print_row(header_);
  std::string rule;
  for (size_t i = 0; i < header_.size(); ++i) {
    rule += std::string(widths[i], '-') + "  ";
  }
  out << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string FormatG(double value, int precision) {
  std::ostringstream out;
  out << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace aim
