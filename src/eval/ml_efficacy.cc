#include "eval/ml_efficacy.h"

#include <cmath>

#include "util/logging.h"

namespace aim {

NaiveBayesClassifier::NaiveBayesClassifier(const Dataset& train,
                                           int label_attr, double smoothing)
    : label_attr_(label_attr) {
  const Domain& domain = train.domain();
  AIM_CHECK_GE(label_attr, 0);
  AIM_CHECK_LT(label_attr, domain.num_attributes());
  AIM_CHECK_GT(train.num_records(), 0);
  AIM_CHECK_GT(smoothing, 0.0);
  num_labels_ = domain.size(label_attr);
  attr_sizes_ = domain.sizes();

  // Class counts. Values index the count tables, so validate each one
  // against the domain before use — a hand-built dataset whose values
  // disagree with its declared domain must fail loudly, not corrupt memory.
  std::vector<double> class_count(num_labels_, smoothing);
  for (int64_t row = 0; row < train.num_records(); ++row) {
    const int y = train.value(row, label_attr_);
    AIM_CHECK(y >= 0 && y < num_labels_)
        << "label value" << y << "outside domain of size" << num_labels_;
    class_count[y] += 1.0;
  }
  double total = 0.0;
  for (double c : class_count) total += c;
  log_prior_.resize(num_labels_);
  for (int y = 0; y < num_labels_; ++y) {
    log_prior_[y] = std::log(class_count[y] / total);
  }

  // Per-attribute conditionals.
  log_conditional_.resize(domain.num_attributes());
  for (int a = 0; a < domain.num_attributes(); ++a) {
    if (a == label_attr_) continue;
    const int n = domain.size(a);
    std::vector<double> counts(static_cast<size_t>(num_labels_) * n,
                               smoothing);
    for (int64_t row = 0; row < train.num_records(); ++row) {
      const int y = train.value(row, label_attr_);
      const int v = train.value(row, a);
      AIM_CHECK(v >= 0 && v < n) << "attribute" << a << "value" << v
                                 << "outside domain of size" << n;
      counts[static_cast<size_t>(y) * n + v] += 1.0;
    }
    log_conditional_[a].resize(counts.size());
    for (int y = 0; y < num_labels_; ++y) {
      double row_total = 0.0;
      for (int v = 0; v < n; ++v) row_total += counts[y * n + v];
      for (int v = 0; v < n; ++v) {
        log_conditional_[a][y * n + v] =
            std::log(counts[y * n + v] / row_total);
      }
    }
  }
}

int NaiveBayesClassifier::Predict(const Dataset& data, int64_t row) const {
  // Score with the training domain's sizes, never the query dataset's: a
  // dataset over a wider domain must be rejected here, not silently read
  // past the conditional tables.
  const int d = static_cast<int>(attr_sizes_.size());
  AIM_CHECK_EQ(data.domain().num_attributes(), d)
      << "dataset schema differs from the training domain";
  for (int a = 0; a < d; ++a) {
    if (a == label_attr_) continue;
    const int v = data.value(row, a);
    AIM_CHECK(v >= 0 && v < attr_sizes_[a])
        << "attribute" << a << "value" << v
        << "outside training domain of size" << attr_sizes_[a];
  }
  int best = 0;
  double best_score = -1e300;
  for (int y = 0; y < num_labels_; ++y) {
    double score = log_prior_[y];
    for (int a = 0; a < d; ++a) {
      if (a == label_attr_) continue;
      const int n = attr_sizes_[a];
      score += log_conditional_[a][y * n + data.value(row, a)];
    }
    if (score > best_score) {
      best_score = score;
      best = y;
    }
  }
  return best;
}

double NaiveBayesClassifier::Accuracy(const Dataset& test) const {
  AIM_CHECK_GT(test.num_records(), 0);
  int64_t correct = 0;
  for (int64_t row = 0; row < test.num_records(); ++row) {
    if (Predict(test, row) == test.value(row, label_attr_)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(test.num_records());
}

double MlEfficacy(const Dataset& train, const Dataset& real_test,
                  int label_attr, double smoothing) {
  NaiveBayesClassifier model(train, label_attr, smoothing);
  return model.Accuracy(real_test);
}

std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                           int holdout_period) {
  AIM_CHECK_GE(holdout_period, 2);
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t row = 0; row < data.num_records(); ++row) {
    if (row % holdout_period == 0) {
      test_rows.push_back(row);
    } else {
      train_rows.push_back(row);
    }
  }
  return {data.Subsample(train_rows), data.Subsample(test_rows)};
}

}  // namespace aim
