#include "eval/ml_efficacy.h"

#include <cmath>

#include "util/logging.h"

namespace aim {

NaiveBayesClassifier::NaiveBayesClassifier(const Dataset& train,
                                           int label_attr, double smoothing)
    : label_attr_(label_attr) {
  const Domain& domain = train.domain();
  AIM_CHECK_GE(label_attr, 0);
  AIM_CHECK_LT(label_attr, domain.num_attributes());
  AIM_CHECK_GT(train.num_records(), 0);
  AIM_CHECK_GT(smoothing, 0.0);
  num_labels_ = domain.size(label_attr);

  // Class counts.
  std::vector<double> class_count(num_labels_, smoothing);
  for (int64_t row = 0; row < train.num_records(); ++row) {
    class_count[train.value(row, label_attr_)] += 1.0;
  }
  double total = 0.0;
  for (double c : class_count) total += c;
  log_prior_.resize(num_labels_);
  for (int y = 0; y < num_labels_; ++y) {
    log_prior_[y] = std::log(class_count[y] / total);
  }

  // Per-attribute conditionals.
  log_conditional_.resize(domain.num_attributes());
  for (int a = 0; a < domain.num_attributes(); ++a) {
    if (a == label_attr_) continue;
    const int n = domain.size(a);
    std::vector<double> counts(static_cast<size_t>(num_labels_) * n,
                               smoothing);
    for (int64_t row = 0; row < train.num_records(); ++row) {
      counts[train.value(row, label_attr_) * n + train.value(row, a)] += 1.0;
    }
    log_conditional_[a].resize(counts.size());
    for (int y = 0; y < num_labels_; ++y) {
      double row_total = 0.0;
      for (int v = 0; v < n; ++v) row_total += counts[y * n + v];
      for (int v = 0; v < n; ++v) {
        log_conditional_[a][y * n + v] =
            std::log(counts[y * n + v] / row_total);
      }
    }
  }
}

int NaiveBayesClassifier::Predict(const Dataset& data, int64_t row) const {
  const Domain& domain = data.domain();
  int best = 0;
  double best_score = -1e300;
  for (int y = 0; y < num_labels_; ++y) {
    double score = log_prior_[y];
    for (int a = 0; a < domain.num_attributes(); ++a) {
      if (a == label_attr_) continue;
      const int n = domain.size(a);
      score += log_conditional_[a][y * n + data.value(row, a)];
    }
    if (score > best_score) {
      best_score = score;
      best = y;
    }
  }
  return best;
}

double NaiveBayesClassifier::Accuracy(const Dataset& test) const {
  AIM_CHECK_GT(test.num_records(), 0);
  int64_t correct = 0;
  for (int64_t row = 0; row < test.num_records(); ++row) {
    if (Predict(test, row) == test.value(row, label_attr_)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(test.num_records());
}

double MlEfficacy(const Dataset& train, const Dataset& real_test,
                  int label_attr, double smoothing) {
  NaiveBayesClassifier model(train, label_attr, smoothing);
  return model.Accuracy(real_test);
}

std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                           int holdout_period) {
  AIM_CHECK_GE(holdout_period, 2);
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t row = 0; row < data.num_records(); ++row) {
    if (row % holdout_period == 0) {
      test_rows.push_back(row);
    } else {
      train_rows.push_back(row);
    }
  }
  return {data.Subsample(train_rows), data.Subsample(test_rows)};
}

}  // namespace aim
