#include "eval/error.h"

#include "marginal/marginal.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {

double WorkloadError(const Dataset& data, const Dataset& synthetic,
                     const Workload& workload) {
  AIM_CHECK_GT(workload.num_queries(), 0);
  AIM_CHECK_GT(data.num_records(), 0);
  double total = 0.0;
  for (const auto& q : workload.queries()) {
    total += q.weight * L1Distance(ComputeMarginal(data, q.attrs),
                                   ComputeMarginal(synthetic, q.attrs));
  }
  return total / (workload.num_queries() *
                  static_cast<double>(data.num_records()));
}

double NormalizedWorkloadError(const Dataset& data, const Dataset& synthetic,
                               const Workload& workload) {
  AIM_CHECK_GT(workload.num_queries(), 0);
  AIM_CHECK_GT(data.num_records(), 0);
  AIM_CHECK_GT(synthetic.num_records(), 0);
  double total = 0.0;
  const double data_w = 1.0 / static_cast<double>(data.num_records());
  const double synth_w = 1.0 / static_cast<double>(synthetic.num_records());
  for (const auto& q : workload.queries()) {
    total +=
        q.weight * L1Distance(ComputeMarginal(data, q.attrs, data_w),
                              ComputeMarginal(synthetic, q.attrs, synth_w));
  }
  return total / workload.num_queries();
}

double WorkloadErrorFromAnswers(
    const Dataset& data, const std::vector<std::vector<double>>& answers,
    const Workload& workload) {
  AIM_CHECK_EQ(static_cast<int>(answers.size()), workload.num_queries());
  AIM_CHECK_GT(data.num_records(), 0);
  double total = 0.0;
  for (int i = 0; i < workload.num_queries(); ++i) {
    const auto& q = workload.query(i);
    total += q.weight *
             L1Distance(ComputeMarginal(data, q.attrs), answers[i]);
  }
  return total / (workload.num_queries() *
                  static_cast<double>(data.num_records()));
}

double WorkloadError(const Dataset& data, const MechanismResult& result,
                     const Workload& workload) {
  if (result.has_synthetic) {
    return WorkloadError(data, result.synthetic, workload);
  }
  return WorkloadErrorFromAnswers(data, result.query_answers, workload);
}

}  // namespace aim
