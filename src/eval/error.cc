#include "eval/error.h"

#include "marginal/marginal.h"
#include "parallel/parallel.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {

WorkloadMarginalCache::WorkloadMarginalCache(const Dataset& data,
                                             const Workload& workload,
                                             double weight)
    : WorkloadMarginalCache(DatasetSource(data), workload, weight) {}

WorkloadMarginalCache::WorkloadMarginalCache(const DataSource& source,
                                             const Workload& workload,
                                             double weight)
    : weight_(weight) {
  marginals_ = ParallelMap(
      static_cast<int64_t>(workload.num_queries()), [&](int64_t i) {
        return ComputeMarginal(source,
                               workload.query(static_cast<int>(i)).attrs,
                               weight);
      });
}

const std::vector<double>& WorkloadMarginalCache::marginal(
    int query_index) const {
  AIM_CHECK_GE(query_index, 0);
  AIM_CHECK_LT(query_index, num_queries());
  return marginals_[query_index];
}

double WorkloadError(const DataSource& source, const Dataset& synthetic,
                     const Workload& workload,
                     const WorkloadMarginalCache* data_cache) {
  AIM_CHECK_GT(workload.num_queries(), 0);
  AIM_CHECK_GT(source.num_records(), 0);
  if (data_cache != nullptr) {
    AIM_CHECK_EQ(data_cache->num_queries(), workload.num_queries());
    AIM_CHECK_EQ(data_cache->weight(), 1.0);
  }
  double total = 0.0;
  for (int i = 0; i < workload.num_queries(); ++i) {
    const auto& q = workload.query(i);
    const std::vector<double> truth =
        data_cache != nullptr ? std::vector<double>()
                              : ComputeMarginal(source, q.attrs);
    const std::vector<double>& data_marginal =
        data_cache != nullptr ? data_cache->marginal(i) : truth;
    total += q.weight * L1Distance(data_marginal,
                                   ComputeMarginal(synthetic, q.attrs));
  }
  return total / (workload.num_queries() *
                  static_cast<double>(source.num_records()));
}

double WorkloadError(const Dataset& data, const Dataset& synthetic,
                     const Workload& workload,
                     const WorkloadMarginalCache* data_cache) {
  return WorkloadError(DatasetSource(data), synthetic, workload, data_cache);
}

double NormalizedWorkloadError(const Dataset& data, const Dataset& synthetic,
                               const Workload& workload,
                               const WorkloadMarginalCache* data_cache) {
  AIM_CHECK_GT(workload.num_queries(), 0);
  AIM_CHECK_GT(data.num_records(), 0);
  AIM_CHECK_GT(synthetic.num_records(), 0);
  const double data_w = 1.0 / static_cast<double>(data.num_records());
  const double synth_w = 1.0 / static_cast<double>(synthetic.num_records());
  if (data_cache != nullptr) {
    AIM_CHECK_EQ(data_cache->num_queries(), workload.num_queries());
    AIM_CHECK_EQ(data_cache->weight(), data_w);
  }
  double total = 0.0;
  for (int i = 0; i < workload.num_queries(); ++i) {
    const auto& q = workload.query(i);
    const std::vector<double> truth =
        data_cache != nullptr ? std::vector<double>()
                              : ComputeMarginal(data, q.attrs, data_w);
    const std::vector<double>& data_marginal =
        data_cache != nullptr ? data_cache->marginal(i) : truth;
    total += q.weight *
             L1Distance(data_marginal,
                        ComputeMarginal(synthetic, q.attrs, synth_w));
  }
  return total / workload.num_queries();
}

double WorkloadErrorFromAnswers(
    const Dataset& data, const std::vector<std::vector<double>>& answers,
    const Workload& workload, const WorkloadMarginalCache* data_cache) {
  AIM_CHECK_EQ(static_cast<int>(answers.size()), workload.num_queries());
  AIM_CHECK_GT(data.num_records(), 0);
  if (data_cache != nullptr) {
    AIM_CHECK_EQ(data_cache->num_queries(), workload.num_queries());
    AIM_CHECK_EQ(data_cache->weight(), 1.0);
  }
  double total = 0.0;
  for (int i = 0; i < workload.num_queries(); ++i) {
    const auto& q = workload.query(i);
    const std::vector<double> truth =
        data_cache != nullptr ? std::vector<double>()
                              : ComputeMarginal(data, q.attrs);
    const std::vector<double>& data_marginal =
        data_cache != nullptr ? data_cache->marginal(i) : truth;
    total += q.weight * L1Distance(data_marginal, answers[i]);
  }
  return total / (workload.num_queries() *
                  static_cast<double>(data.num_records()));
}

double WorkloadError(const Dataset& data, const MechanismResult& result,
                     const Workload& workload,
                     const WorkloadMarginalCache* data_cache) {
  if (result.has_synthetic) {
    return WorkloadError(data, result.synthetic, workload, data_cache);
  }
  return WorkloadErrorFromAnswers(data, result.query_answers, workload,
                                  data_cache);
}

double WorkloadError(const DataSource& source, const MechanismResult& result,
                     const Workload& workload,
                     const WorkloadMarginalCache* data_cache) {
  if (result.has_synthetic) {
    return WorkloadError(source, result.synthetic, workload, data_cache);
  }
  // Answer-only mechanisms compare against cached/streamed true marginals
  // the same way; only the record count is needed from the source.
  AIM_CHECK_EQ(static_cast<int>(result.query_answers.size()),
               workload.num_queries());
  AIM_CHECK_GT(source.num_records(), 0);
  if (data_cache != nullptr) {
    AIM_CHECK_EQ(data_cache->num_queries(), workload.num_queries());
    AIM_CHECK_EQ(data_cache->weight(), 1.0);
  }
  double total = 0.0;
  for (int i = 0; i < workload.num_queries(); ++i) {
    const auto& q = workload.query(i);
    const std::vector<double> truth =
        data_cache != nullptr ? std::vector<double>()
                              : ComputeMarginal(source, q.attrs);
    const std::vector<double>& data_marginal =
        data_cache != nullptr ? data_cache->marginal(i) : truth;
    total += q.weight * L1Distance(data_marginal, result.query_answers[i]);
  }
  return total / (workload.num_queries() *
                  static_cast<double>(source.num_records()));
}

}  // namespace aim
