// Workload error (Definition 2) evaluation for synthetic datasets and for
// answer-only mechanisms.

#ifndef AIM_EVAL_ERROR_H_
#define AIM_EVAL_ERROR_H_

#include <vector>

#include "data/data_source.h"
#include "data/dataset.h"
#include "marginal/workload.h"
#include "mechanisms/mechanism.h"

namespace aim {

// Precomputed true-data marginals for one (dataset, workload) pair. The
// error functions below recompute M_{r_i}(D) on every call, which an eval
// sweep repeats for every mechanism × trial even though the true data never
// changes; build the cache once and pass it to reuse them. Marginals are
// computed with the same ComputeMarginal call the uncached path uses (in
// parallel across queries), so cached evaluations are bitwise identical.
// Construction-then-read-only, safe to share across concurrent trials.
class WorkloadMarginalCache {
 public:
  // `weight` is the per-record weight forwarded to ComputeMarginal: 1.0
  // (the default) matches WorkloadError / WorkloadErrorFromAnswers raw
  // counts; pass 1.0 / data.num_records() for NormalizedWorkloadError's
  // data side. Consumers check the weight matches what they expect.
  WorkloadMarginalCache(const Dataset& data, const Workload& workload,
                        double weight = 1.0);
  // As above, streaming from a (possibly out-of-core) source. One counting
  // pass per query; the source is not retained after construction.
  WorkloadMarginalCache(const DataSource& source, const Workload& workload,
                        double weight = 1.0);

  double weight() const { return weight_; }
  int num_queries() const { return static_cast<int>(marginals_.size()); }
  const std::vector<double>& marginal(int query_index) const;

 private:
  double weight_ = 1.0;
  std::vector<std::vector<double>> marginals_;
};

// Definition 2: Error(D, D̂) = (1 / (k |D|)) sum_i c_i ||M_{r_i}(D) -
// M_{r_i}(D̂)||_1. `data_cache`, when given, must be built from the same
// (data, workload) with weight 1.0.
double WorkloadError(const Dataset& data, const Dataset& synthetic,
                     const Workload& workload,
                     const WorkloadMarginalCache* data_cache = nullptr);

// As above but with each dataset's marginals normalized by its own record
// count (used by the Appendix-C subsampling comparison, where the synthetic
// dataset intentionally has fewer records). `data_cache`, when given, must
// be built with weight 1.0 / data.num_records().
double NormalizedWorkloadError(const Dataset& data, const Dataset& synthetic,
                               const Workload& workload,
                               const WorkloadMarginalCache* data_cache =
                                   nullptr);

// Definition-2 error for an answer-only mechanism: the noisy answers stand
// in for M_{r_i}(D̂). `answers` must be aligned with workload.queries().
double WorkloadErrorFromAnswers(
    const Dataset& data, const std::vector<std::vector<double>>& answers,
    const Workload& workload,
    const WorkloadMarginalCache* data_cache = nullptr);

// Dispatches on the result type (synthetic data vs. query answers).
double WorkloadError(const Dataset& data, const MechanismResult& result,
                     const Workload& workload,
                     const WorkloadMarginalCache* data_cache = nullptr);

// DataSource counterparts: the true-data side streams from `source` (or
// comes from `data_cache`); the synthetic side is always in-memory. Results
// are bitwise identical to the Dataset overloads on the same records.
double WorkloadError(const DataSource& source, const Dataset& synthetic,
                     const Workload& workload,
                     const WorkloadMarginalCache* data_cache = nullptr);
double WorkloadError(const DataSource& source, const MechanismResult& result,
                     const Workload& workload,
                     const WorkloadMarginalCache* data_cache = nullptr);

}  // namespace aim

#endif  // AIM_EVAL_ERROR_H_
