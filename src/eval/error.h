// Workload error (Definition 2) evaluation for synthetic datasets and for
// answer-only mechanisms.

#ifndef AIM_EVAL_ERROR_H_
#define AIM_EVAL_ERROR_H_

#include <vector>

#include "data/dataset.h"
#include "marginal/workload.h"
#include "mechanisms/mechanism.h"

namespace aim {

// Definition 2: Error(D, D̂) = (1 / (k |D|)) sum_i c_i ||M_{r_i}(D) -
// M_{r_i}(D̂)||_1.
double WorkloadError(const Dataset& data, const Dataset& synthetic,
                     const Workload& workload);

// As above but with each dataset's marginals normalized by its own record
// count (used by the Appendix-C subsampling comparison, where the synthetic
// dataset intentionally has fewer records).
double NormalizedWorkloadError(const Dataset& data, const Dataset& synthetic,
                               const Workload& workload);

// Definition-2 error for an answer-only mechanism: the noisy answers stand
// in for M_{r_i}(D̂). `answers` must be aligned with workload.queries().
double WorkloadErrorFromAnswers(
    const Dataset& data, const std::vector<std::vector<double>>& answers,
    const Workload& workload);

// Dispatches on the result type (synthetic data vs. query answers).
double WorkloadError(const Dataset& data, const MechanismResult& result,
                     const Workload& workload);

}  // namespace aim

#endif  // AIM_EVAL_ERROR_H_
