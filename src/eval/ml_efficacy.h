// Machine-learning efficacy evaluation (Section 7 discusses ML efficacy as
// the downstream metric synthetic data is often judged by; the TARGET
// workload exists because ADULT/TITANIC are prediction tasks).
//
// A naive-Bayes classifier is trained on (synthetic or real) data and
// evaluated on held-out real records: if the synthetic data preserves the
// 1-way class-conditional structure, the accuracy gap to a real-data-trained
// model is small.

#ifndef AIM_EVAL_ML_EFFICACY_H_
#define AIM_EVAL_ML_EFFICACY_H_

#include <vector>

#include "data/dataset.h"

namespace aim {

// Multinomial naive Bayes over discrete attributes with Laplace smoothing.
class NaiveBayesClassifier {
 public:
  // Trains P(label) and P(attr = v | label) from `train`; `label_attr`
  // names the class attribute. `smoothing` is the Laplace pseudo-count.
  NaiveBayesClassifier(const Dataset& train, int label_attr,
                       double smoothing = 1.0);

  int label_attr() const { return label_attr_; }

  // Most likely label for record `row` of `data` (the label attribute of
  // the record is ignored).
  int Predict(const Dataset& data, int64_t row) const;

  // Fraction of records of `test` whose label is predicted correctly.
  double Accuracy(const Dataset& test) const;

 private:
  int label_attr_;
  int num_labels_;
  // Per-attribute sizes of the *training* domain. Prediction indexes the
  // count tables with these (never the query dataset's own domain), and
  // every incoming value is validated against them — a dataset with a
  // mismatched schema fails an AIM_CHECK instead of reading out of bounds.
  std::vector<int> attr_sizes_;
  std::vector<double> log_prior_;
  // log_conditional_[attr][label * n_attr + value]
  std::vector<std::vector<double>> log_conditional_;
};

// Convenience: accuracy on `real_test` of a naive-Bayes model trained on
// `train` (typically synthetic data). Compare against training on real data
// to quantify the utility cost of privacy.
double MlEfficacy(const Dataset& train, const Dataset& real_test,
                  int label_attr, double smoothing = 1.0);

// Splits `data` into train/test by taking every `holdout_period`-th record
// as test (deterministic). Returns {train, test}.
std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                           int holdout_period = 5);

}  // namespace aim

#endif  // AIM_EVAL_ML_EFFICACY_H_
