// AVX2+FMA bodies for the factor SIMD dispatch table. Compiled with
// -mavx2 -mfma -ffp-contract=off (see src/factor/CMakeLists.txt); when the
// toolchain cannot build AVX2 this TU degenerates to a nullptr stub.

#include "factor/simd_dispatch.h"

#if defined(AIM_BUILD_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace {

struct V {
  using D = __m256d;
  using M = __m256d;  // all-ones / all-zeros lanes from vcmppd
  static constexpr int kWidth = 4;

  static D Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, D v) { _mm256_storeu_pd(p, v); }
  static D Splat(double x) { return _mm256_set1_pd(x); }
  static D Zero() { return _mm256_setzero_pd(); }

  static D Add(D a, D b) { return _mm256_add_pd(a, b); }
  static D Sub(D a, D b) { return _mm256_sub_pd(a, b); }
  static D Mul(D a, D b) { return _mm256_mul_pd(a, b); }
  static D Div(D a, D b) { return _mm256_div_pd(a, b); }
  static D Fma(D a, D b, D c) { return _mm256_fmadd_pd(a, b, c); }
  static D Fnma(D a, D b, D c) { return _mm256_fnmadd_pd(a, b, c); }

  static M Lt(D a, D b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static M Le(D a, D b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  static M Gt(D a, D b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static M Ge(D a, D b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  static M Eq(D a, D b) { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
  static M Unord(D a) { return _mm256_cmp_pd(a, a, _CMP_UNORD_Q); }
  static M MOr(M a, M b) { return _mm256_or_pd(a, b); }
  static M MFalse() { return _mm256_setzero_pd(); }
  static bool AnyTrue(M m) { return _mm256_movemask_pd(m) != 0; }
  static D Select(M m, D a, D b) { return _mm256_blendv_pd(b, a, m); }

  // Round-to-nearest integral double -> int64 lanes via the 1.5*2^52
  // magic constant (AVX2 has no packed int64 <-> double conversion).
  static __m256i ToI64(D n) {
    const D magic = _mm256_set1_pd(6755399441055744.0);
    return _mm256_sub_epi64(_mm256_castpd_si256(_mm256_add_pd(n, magic)),
                            _mm256_castpd_si256(magic));
  }

  // 2^n for integral-valued n with 1023 + n in (0, 2047).
  static D Pow2(D n) {
    __m256i k = _mm256_add_epi64(ToI64(n), _mm256_set1_epi64x(1023));
    return _mm256_castsi256_pd(_mm256_slli_epi64(k, 52));
  }

  // x positive, finite, normal: *m in [0.5, 1) with x = *m * 2^(kb - 1022).
  static void RawFrexp(D x, D* m, D* kb) {
    const __m256i bits = _mm256_castpd_si256(x);
    const __m256i k = _mm256_and_si256(_mm256_srli_epi64(bits, 52),
                                       _mm256_set1_epi64x(0x7ff));
    // int64 in [0, 2047] -> double via the OR-with-2^52 trick.
    const __m256i two52 = _mm256_castpd_si256(_mm256_set1_pd(0x1p52));
    *kb = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(k, two52)),
                        _mm256_set1_pd(0x1p52));
    const __m256i mant = _mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL)),
        _mm256_castpd_si256(_mm256_set1_pd(0.5)));
    *m = _mm256_castsi256_pd(mant);
  }
};

#include "factor/simd_body.inc.h"

}  // namespace

namespace aim {

const SimdOps* GetAvx2SimdOps() { return MakeBodyOps(SimdLevel::kAvx2); }

}  // namespace aim

#else  // !defined(AIM_BUILD_AVX2)

namespace aim {

const SimdOps* GetAvx2SimdOps() { return nullptr; }

}  // namespace aim

#endif
