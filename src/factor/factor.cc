#include "factor/factor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "parallel/parallel.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Strides of `sub`'s cells when iterating over the axes of `super`.
// Axis j of `super` gets sub-stride 0 if super.attrs[j] is not in `sub`.
std::vector<int64_t> StridesInto(const std::vector<int>& super_attrs,
                                 const std::vector<int>& sub_attrs,
                                 const std::vector<int>& sub_sizes) {
  std::vector<int64_t> sub_strides(sub_attrs.size(), 1);
  for (int j = static_cast<int>(sub_attrs.size()) - 2; j >= 0; --j) {
    sub_strides[j] = sub_strides[j + 1] * sub_sizes[j + 1];
  }
  std::vector<int64_t> out(super_attrs.size(), 0);
  for (size_t i = 0; i < super_attrs.size(); ++i) {
    auto it =
        std::find(sub_attrs.begin(), sub_attrs.end(), super_attrs[i]);
    if (it != sub_attrs.end()) {
      out[i] = sub_strides[it - sub_attrs.begin()];
    }
  }
  return out;
}

// Cell count below which element-wise loops stay serial (the chunking
// overhead outweighs the work).
constexpr int64_t kParallelCellThreshold = 1 << 15;
// Cells per chunk for parallel element-wise loops. Fixed (never derived
// from the thread count) so chunk boundaries — and therefore any chunked
// arithmetic — are identical at every parallelism level.
constexpr int64_t kCellGrain = 1 << 14;

// Iterates cells [cell_begin, cell_end) of a factor with axes `sizes` in
// row-major order (last axis fastest), maintaining a set of derived linear
// indices (one per stride vector). Calls fn(cell, derived_indices) once per
// cell. Seeking to cell_begin is O(rank), so a chunked caller can start
// mid-tensor.
template <int kNumDerived, typename Fn>
void ForEachCellRange(const std::vector<int>& sizes,
                      const std::vector<int64_t>* strides[kNumDerived],
                      int64_t cell_begin, int64_t cell_end, Fn&& fn) {
  const int rank = static_cast<int>(sizes.size());
  std::vector<int> coord(rank, 0);
  int64_t derived[kNumDerived] = {};
  // Decompose cell_begin into coordinates and derived offsets.
  int64_t rem = cell_begin;
  for (int axis = rank - 1; axis >= 0; --axis) {
    coord[axis] = static_cast<int>(rem % sizes[axis]);
    rem /= sizes[axis];
    for (int k = 0; k < kNumDerived; ++k) {
      derived[k] += coord[axis] * (*strides[k])[axis];
    }
  }
  for (int64_t cell = cell_begin; cell < cell_end; ++cell) {
    fn(cell, derived);
    // Odometer increment (last axis fastest).
    for (int axis = rank - 1; axis >= 0; --axis) {
      ++coord[axis];
      if (coord[axis] < sizes[axis]) {
        for (int k = 0; k < kNumDerived; ++k) {
          derived[k] += (*strides[k])[axis];
        }
        break;
      }
      coord[axis] = 0;
      for (int k = 0; k < kNumDerived; ++k) {
        derived[k] -= (*strides[k])[axis] * (sizes[axis] - 1);
      }
    }
  }
}

// Runs fn(cell, derived) over all cells — chunked across the pool when the
// factor is large enough and every cell writes only to its own destination
// (true for the gather-style loops below: dst is indexed by `cell`).
template <int kNumDerived, typename Fn>
void ForEachCellParallel(const std::vector<int>& sizes,
                         const std::vector<int64_t>* strides[kNumDerived],
                         int64_t total, Fn&& fn) {
  if (total < kParallelCellThreshold) {
    ForEachCellRange<kNumDerived>(sizes, strides, 0, total, fn);
    return;
  }
  ParallelForChunks(0, total, kCellGrain,
                    [&](int64_t lo, int64_t hi, int64_t /*chunk*/) {
                      ForEachCellRange<kNumDerived>(sizes, strides, lo, hi,
                                                    fn);
                    });
}

}  // namespace

Factor::Factor() : values_(1, 0.0) {}

Factor::Factor(std::vector<int> attrs, std::vector<int> sizes, double fill)
    : attrs_(std::move(attrs)), sizes_(std::move(sizes)) {
  AIM_CHECK_EQ(attrs_.size(), sizes_.size());
  AIM_CHECK(std::is_sorted(attrs_.begin(), attrs_.end()));
  AIM_CHECK(std::adjacent_find(attrs_.begin(), attrs_.end()) == attrs_.end());
  int64_t total = 1;
  for (int s : sizes_) {
    AIM_CHECK_GE(s, 1);
    total *= s;
  }
  values_.assign(total, fill);
}

Factor Factor::FromDomain(const Domain& domain, const AttrSet& r,
                          double fill) {
  std::vector<int> sizes;
  sizes.reserve(r.size());
  for (int attr : r) sizes.push_back(domain.size(attr));
  return Factor(r.attrs(), std::move(sizes), fill);
}

Factor Factor::FromValues(std::vector<int> attrs, std::vector<int> sizes,
                          std::vector<double> values) {
  Factor out(std::move(attrs), std::move(sizes));
  AIM_CHECK_EQ(out.values_.size(), values.size());
  out.values_ = std::move(values);
  return out;
}

int Factor::AxisOf(int attr) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr);
  if (it == attrs_.end() || *it != attr) return -1;
  return static_cast<int>(it - attrs_.begin());
}

namespace {

template <typename Op>
Factor BinaryOp(const Factor& a, const Factor& b, Op op) {
  // Union domain.
  std::vector<int> attrs;
  std::vector<int> sizes;
  {
    size_t i = 0, j = 0;
    const auto& aa = a.attrs();
    const auto& ba = b.attrs();
    while (i < aa.size() || j < ba.size()) {
      if (j >= ba.size() || (i < aa.size() && aa[i] < ba[j])) {
        attrs.push_back(aa[i]);
        sizes.push_back(a.sizes()[i]);
        ++i;
      } else if (i >= aa.size() || ba[j] < aa[i]) {
        attrs.push_back(ba[j]);
        sizes.push_back(b.sizes()[j]);
        ++j;
      } else {
        AIM_CHECK_EQ(a.sizes()[i], b.sizes()[j]);
        attrs.push_back(aa[i]);
        sizes.push_back(a.sizes()[i]);
        ++i;
        ++j;
      }
    }
  }
  Factor out(attrs, sizes);
  std::vector<int64_t> a_strides = StridesInto(attrs, a.attrs(), a.sizes());
  std::vector<int64_t> b_strides = StridesInto(attrs, b.attrs(), b.sizes());
  const std::vector<int64_t>* strides[2] = {&a_strides, &b_strides};
  double* dst = out.mutable_values().data();
  const double* av = a.values().data();
  const double* bv = b.values().data();
  ForEachCellParallel<2>(sizes, strides, out.num_cells(),
                         [&](int64_t cell, const int64_t* idx) {
                           dst[cell] = op(av[idx[0]], bv[idx[1]]);
                         });
  return out;
}

}  // namespace

Factor Factor::Add(const Factor& other) const {
  return BinaryOp(*this, other, [](double x, double y) { return x + y; });
}

Factor Factor::Subtract(const Factor& other) const {
  return BinaryOp(*this, other, [](double x, double y) { return x - y; });
}

Factor Factor::Multiply(const Factor& other) const {
  return BinaryOp(*this, other, [](double x, double y) { return x * y; });
}

void Factor::AddInPlace(const Factor& other, double scale) {
  AIM_CHECK(AttrSet(other.attrs_).IsSubsetOf(AttrSet(attrs_)))
      << "AddInPlace requires other.attrs ⊆ attrs";
  std::vector<int64_t> other_strides =
      StridesInto(attrs_, other.attrs_, other.sizes_);
  const std::vector<int64_t>* strides[1] = {&other_strides};
  double* dst = values_.data();
  const double* src = other.values_.data();
  ForEachCellParallel<1>(sizes_, strides, num_cells(),
                         [&](int64_t cell, const int64_t* idx) {
                           dst[cell] += scale * src[idx[0]];
                         });
}

void Factor::ScaleInPlace(double factor) {
  for (double& v : values_) v *= factor;
}

void Factor::AddScalarInPlace(double shift) {
  for (double& v : values_) v += shift;
}

Factor Factor::SumTo(const AttrSet& target) const {
  AIM_CHECK(target.IsSubsetOf(AttrSet(attrs_)));
  std::vector<int> t_sizes;
  for (int attr : target) t_sizes.push_back(sizes_[AxisOf(attr)]);
  Factor out(target.attrs(), t_sizes, 0.0);
  std::vector<int64_t> out_strides =
      StridesInto(attrs_, out.attrs_, out.sizes_);
  const std::vector<int64_t>* strides[1] = {&out_strides};
  double* dst = out.values_.data();
  const double* src = values_.data();
  // Scatter-add into dst[idx] — destinations collide across cells, so this
  // stays serial (parallelizing would need per-thread partials keyed by
  // destination, which the small output rarely justifies).
  ForEachCellRange<1>(sizes_, strides, 0, num_cells(),
                      [&](int64_t cell, const int64_t* idx) {
                        dst[idx[0]] += src[cell];
                      });
  return out;
}

Factor Factor::LogSumExpTo(const AttrSet& target) const {
  AIM_CHECK(target.IsSubsetOf(AttrSet(attrs_)));
  std::vector<int> t_sizes;
  for (int attr : target) t_sizes.push_back(sizes_[AxisOf(attr)]);
  Factor maxes(target.attrs(), t_sizes, kNegInf);
  std::vector<int64_t> out_strides =
      StridesInto(attrs_, maxes.attrs_, maxes.sizes_);
  const std::vector<int64_t>* strides[1] = {&out_strides};
  // Both passes scatter into dst[idx] (colliding destinations): serial, as
  // in SumTo.
  // Pass 1: per-destination max.
  {
    double* dst = maxes.values_.data();
    const double* src = values_.data();
    ForEachCellRange<1>(sizes_, strides, 0, num_cells(),
                        [&](int64_t cell, const int64_t* idx) {
                          dst[idx[0]] = std::max(dst[idx[0]], src[cell]);
                        });
  }
  // Pass 2: accumulate exp(v - max).
  Factor out(maxes.attrs_, maxes.sizes_, 0.0);
  {
    double* dst = out.values_.data();
    const double* mx = maxes.values_.data();
    const double* src = values_.data();
    ForEachCellRange<1>(sizes_, strides, 0, num_cells(),
                        [&](int64_t cell, const int64_t* idx) {
                          double m = mx[idx[0]];
                          double v = src[cell];
                          if (!(std::isinf(m) && m < 0)) {
                            dst[idx[0]] += std::exp(v - m);
                          }
                        });
  }
  for (int64_t i = 0; i < out.num_cells(); ++i) {
    double m = maxes.values_[i];
    out.values_[i] =
        (std::isinf(m) && m < 0) ? kNegInf : m + std::log(out.values_[i]);
  }
  return out;
}

double Factor::Sum() const { return aim::Sum(values_); }

double Factor::LogSumExp() const { return aim::LogSumExp(values_); }

double Factor::Max() const {
  double m = kNegInf;
  for (double v : values_) m = std::max(m, v);
  return m;
}

Factor Factor::Exp(double shift) const {
  Factor out(attrs_, sizes_);
  if (num_cells() < kParallelCellThreshold) {
    for (int64_t i = 0; i < num_cells(); ++i) {
      out.values_[i] = std::exp(values_[i] - shift);
    }
    return out;
  }
  ParallelFor(0, num_cells(), kCellGrain, [&](int64_t i) {
    out.values_[i] = std::exp(values_[i] - shift);
  });
  return out;
}

Factor Factor::Log() const {
  Factor out(attrs_, sizes_);
  if (num_cells() < kParallelCellThreshold) {
    for (int64_t i = 0; i < num_cells(); ++i) {
      out.values_[i] = values_[i] > 0 ? std::log(values_[i]) : kNegInf;
    }
    return out;
  }
  ParallelFor(0, num_cells(), kCellGrain, [&](int64_t i) {
    out.values_[i] = values_[i] > 0 ? std::log(values_[i]) : kNegInf;
  });
  return out;
}

double Factor::L1DistanceTo(const Factor& other) const {
  AIM_CHECK(attrs_ == other.attrs_);
  return L1Distance(values_, other.values_);
}

}  // namespace aim
