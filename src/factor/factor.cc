#include "factor/factor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "factor/kernel_plan.h"
#include "factor/kernels.h"
#include "factor/simd_dispatch.h"
#include "factor/workspace.h"
#include "parallel/parallel.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kQuietNan = std::numeric_limits<double>::quiet_NaN();

// True when `sub` (sorted ascending, distinct) is a subset of `super`
// (same convention). Allocation-free replacement for building AttrSets.
bool IsSortedSubset(const std::vector<int>& sub,
                    const std::vector<int>& super) {
  size_t i = 0;
  for (int attr : sub) {
    while (i < super.size() && super[i] < attr) ++i;
    if (i == super.size() || super[i] != attr) return false;
    ++i;
  }
  return true;
}

// Strides of `sub`'s cells when iterating over the axes of `super`.
// Axis j of `super` gets sub-stride 0 if super.attrs[j] is not in `sub`.
// Writes into *out (reused caller buffer) instead of allocating; requires
// sub ⊆ super, both sorted ascending.
void StridesIntoBuf(const std::vector<int>& super_attrs,
                    const std::vector<int>& sub_attrs,
                    const std::vector<int>& sub_sizes,
                    std::vector<int64_t>* out) {
  out->assign(super_attrs.size(), 0);
  int64_t stride = 1;
  int i = static_cast<int>(super_attrs.size()) - 1;
  for (int j = static_cast<int>(sub_attrs.size()) - 1; j >= 0; --j) {
    while (i >= 0 && super_attrs[i] > sub_attrs[j]) --i;
    AIM_DCHECK(i >= 0 && super_attrs[i] == sub_attrs[j]);
    (*out)[i] = stride;
    stride *= sub_sizes[j];
  }
}

// Cell count below which element-wise loops stay serial (the chunking
// overhead outweighs the work).
constexpr int64_t kParallelCellThreshold = 1 << 15;
// Cells per chunk for parallel element-wise loops. Fixed (never derived
// from the thread count) so chunk boundaries — and therefore any chunked
// arithmetic — are identical at every parallelism level.
constexpr int64_t kCellGrain = 1 << 14;

// ---------------------------------------------------------------------------
// Seed odometer (fallback path; also the reference the flat kernels are
// asserted bitwise-identical against in tests/factor_test.cc).
// ---------------------------------------------------------------------------

// Iterates cells [cell_begin, cell_end) of a factor with axes `sizes` in
// row-major order (last axis fastest), maintaining a set of derived linear
// indices (one per stride vector). Calls fn(cell, derived_indices) once per
// cell. Seeking to cell_begin is O(rank), so a chunked caller can start
// mid-tensor.
template <int kNumDerived, typename Fn>
void ForEachCellRange(const std::vector<int>& sizes,
                      const std::vector<int64_t>* strides[kNumDerived],
                      int64_t cell_begin, int64_t cell_end, Fn&& fn) {
  const int rank = static_cast<int>(sizes.size());
  std::vector<int> coord(rank, 0);
  int64_t derived[kNumDerived] = {};
  // Decompose cell_begin into coordinates and derived offsets.
  int64_t rem = cell_begin;
  for (int axis = rank - 1; axis >= 0; --axis) {
    coord[axis] = static_cast<int>(rem % sizes[axis]);
    rem /= sizes[axis];
    for (int k = 0; k < kNumDerived; ++k) {
      derived[k] += coord[axis] * (*strides[k])[axis];
    }
  }
  for (int64_t cell = cell_begin; cell < cell_end; ++cell) {
    fn(cell, derived);
    // Odometer increment (last axis fastest).
    for (int axis = rank - 1; axis >= 0; --axis) {
      ++coord[axis];
      if (coord[axis] < sizes[axis]) {
        for (int k = 0; k < kNumDerived; ++k) {
          derived[k] += (*strides[k])[axis];
        }
        break;
      }
      coord[axis] = 0;
      for (int k = 0; k < kNumDerived; ++k) {
        derived[k] -= (*strides[k])[axis] * (sizes[axis] - 1);
      }
    }
  }
}

// Runs fn(cell, derived) over all cells — chunked across the pool when the
// factor is large enough and every cell writes only to its own destination
// (true for the gather-style loops below: dst is indexed by `cell`).
template <int kNumDerived, typename Fn>
void ForEachCellParallel(const std::vector<int>& sizes,
                         const std::vector<int64_t>* strides[kNumDerived],
                         int64_t total, Fn&& fn) {
  if (total < kParallelCellThreshold) {
    ForEachCellRange<kNumDerived>(sizes, strides, 0, total, fn);
    return;
  }
  ParallelForChunks(0, total, kCellGrain,
                    [&](int64_t lo, int64_t hi, int64_t /*chunk*/) {
                      ForEachCellRange<kNumDerived>(sizes, strides, lo, hi,
                                                    fn);
                    });
}

// ---------------------------------------------------------------------------
// Flat kernels: loop-collapsed executors over a KernelPlan. Each one visits
// cells in exactly the seed order; the unit-stride inner runs (inner stride
// 0 = operand constant over the run, 1 = operand contiguous — the only
// values sub-factor broadcasting produces) go through the SimdOps table
// (simd_dispatch.h). The exact kernels are bitwise equal to the odometer
// path at every SIMD level (see kernel_plan.h for the argument and
// factor_test.cc for the assertion); the transcendental kernels
// (LogSumExpTo pass 2) are bitwise equal at SimdLevel::kScalar and
// ULP-gated above it.
// ---------------------------------------------------------------------------

enum class BinKind { kAdd, kSub, kMul };

template <BinKind K>
inline double ApplyBin(double x, double y) {
  if constexpr (K == BinKind::kAdd) {
    return x + y;
  } else if constexpr (K == BinKind::kSub) {
    return x - y;
  } else {
    return x * y;
  }
}

template <BinKind K>
void RunBinaryRange(const KernelPlan& plan, double* dst, const double* av,
                    const double* bv, const SimdOps& ops, int64_t lo,
                    int64_t hi) {
  const int64_t ia = plan.inner_strides[0];
  const int64_t ib = plan.inner_strides[1];
  if (ia == 1 && ib == 1) {
    ForEachRunRange<2>(plan, lo, hi,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         const double* pa = av + base[0];
                         const double* pb = bv + base[1];
                         double* pd = dst + cell;
                         if constexpr (K == BinKind::kAdd) {
                           ops.add_vv(pd, pa, pb, len);
                         } else if constexpr (K == BinKind::kSub) {
                           ops.sub_vv(pd, pa, pb, len);
                         } else {
                           ops.mul_vv(pd, pa, pb, len);
                         }
                       });
  } else if (ia == 1 && ib == 0) {
    ForEachRunRange<2>(plan, lo, hi,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         const double* pa = av + base[0];
                         const double y = bv[base[1]];
                         double* pd = dst + cell;
                         if constexpr (K == BinKind::kAdd) {
                           ops.add_vs(pd, pa, y, len);
                         } else if constexpr (K == BinKind::kSub) {
                           ops.sub_vs(pd, pa, y, len);
                         } else {
                           ops.mul_vs(pd, pa, y, len);
                         }
                       });
  } else if (ia == 0 && ib == 1) {
    ForEachRunRange<2>(plan, lo, hi,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         const double x = av[base[0]];
                         const double* pb = bv + base[1];
                         double* pd = dst + cell;
                         if constexpr (K == BinKind::kAdd) {
                           ops.add_vs(pd, pb, x, len);  // x + b == b + x
                         } else if constexpr (K == BinKind::kSub) {
                           ops.sub_sv(pd, x, pb, len);
                         } else {
                           ops.mul_vs(pd, pb, x, len);  // x * b == b * x
                         }
                       });
  } else {
    ForEachRunRange<2>(plan, lo, hi,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         double* pd = dst + cell;
                         for (int64_t t = 0; t < len; ++t) {
                           pd[t] = ApplyBin<K>(av[base[0] + t * ia],
                                               bv[base[1] + t * ib]);
                         }
                       });
  }
}

void RunAddInPlaceRange(const KernelPlan& plan, double* dst,
                        const double* src, double scale, const SimdOps& ops,
                        int64_t lo, int64_t hi) {
  const int64_t is = plan.inner_strides[0];
  if (is == 1) {
    ForEachRunRange<1>(plan, lo, hi,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         ops.axpy(dst + cell, src + base[0], scale, len);
                       });
  } else if (is == 0) {
    ForEachRunRange<1>(plan, lo, hi,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         const double add = scale * src[base[0]];
                         ops.add_scalar(dst + cell, add, len);
                       });
  } else {
    ForEachRunRange<1>(plan, lo, hi,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         double* pd = dst + cell;
                         for (int64_t t = 0; t < len; ++t) {
                           pd[t] += scale * src[base[0] + t * is];
                         }
                       });
  }
}

// Scatter-add src (full shape) into dst (marginal shape). A run whose
// destination stride is 0 reduces into a scalar accumulator — the additions
// happen in the same left-to-right order as the seed's per-cell
// dst[idx] += src[cell], so the result is bitwise identical.
void RunScatterAdd(const KernelPlan& plan, double* dst, const double* src,
                   const SimdOps& ops, int64_t total) {
  const int64_t os = plan.inner_strides[0];
  if (os == 0) {
    // Order-sensitive reduction into one destination: stays scalar at every
    // SIMD level so the left-to-right addition sequence (and therefore the
    // result bits) matches the seed exactly.
    ForEachRunRange<1>(plan, 0, total,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         const double* ps = src + cell;
                         double acc = dst[base[0]];
                         for (int64_t t = 0; t < len; ++t) {
                           acc += ps[t];
                         }
                         dst[base[0]] = acc;
                       });
  } else if (os == 1) {
    ForEachRunRange<1>(plan, 0, total,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         ops.acc_add(dst + base[0], src + cell, len);
                       });
  } else {
    ForEachRunRange<1>(plan, 0, total,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         const double* ps = src + cell;
                         for (int64_t t = 0; t < len; ++t) {
                           dst[base[0] + t * os] += ps[t];
                         }
                       });
  }
}

// Scatter-max (LogSumExpTo pass 1). max is exact, so accumulation matches
// the seed's per-cell sequence bit for bit. NaN contributions poison the
// destination with a canonical quiet NaN (the seed's `<`-based max silently
// dropped them, yielding a wrong finite LogSumExpTo result — see the
// regression test NanInputPoisonsLogSumExpCell); once poisoned, a cell
// stays NaN because no later comparison against it can succeed.
void RunScatterMax(const KernelPlan& plan, double* dst, const double* src,
                   const SimdOps& ops, int64_t total) {
  const int64_t os = plan.inner_strides[0];
  if (os == 0) {
    ForEachRunRange<1>(plan, 0, total,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         dst[base[0]] =
                             ops.reduce_max(dst[base[0]], src + cell, len);
                       });
  } else if (os == 1) {
    ForEachRunRange<1>(plan, 0, total,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         ops.acc_max(dst + base[0], src + cell, len);
                       });
  } else {
    ForEachRunRange<1>(plan, 0, total,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         const double* ps = src + cell;
                         for (int64_t t = 0; t < len; ++t) {
                           double& d = dst[base[0] + t * os];
                           const double v = ps[t];
                           d = (v != v) ? kQuietNan : ((d < v) ? v : d);
                         }
                       });
  }
}

// LogSumExpTo pass 2: dst[idx] += exp(src - mx[idx]) with the seed's
// structural-zero skip (per-destination max of -inf means every
// contribution is skipped, which the run-level branch reproduces exactly).
void RunScatterExpAcc(const KernelPlan& plan, double* dst, const double* mx,
                      const double* src, const SimdOps& ops, int64_t total) {
  const int64_t os = plan.inner_strides[0];
  if (os == 0) {
    ForEachRunRange<1>(plan, 0, total,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         const double m = mx[base[0]];
                         if (std::isinf(m) && m < 0) return;
                         dst[base[0]] =
                             ops.exp_acc(dst[base[0]], src + cell, m, len);
                       });
  } else if (os == 1) {
    ForEachRunRange<1>(plan, 0, total,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         ops.acc_exp(dst + base[0], mx + base[0], src + cell,
                                     len);
                       });
  } else {
    ForEachRunRange<1>(plan, 0, total,
                       [&](int64_t cell, const int64_t* base, int64_t len) {
                         const double* ps = src + cell;
                         for (int64_t t = 0; t < len; ++t) {
                           const double m = mx[base[0] + t * os];
                           if (!(std::isinf(m) && m < 0)) {
                             dst[base[0] + t * os] += std::exp(ps[t] - m);
                           }
                         }
                       });
  }
}

// Runs body(lo, hi) over [0, total) with the same serial threshold and
// fixed grain as the seed's ForEachCellParallel, so parallel chunk
// boundaries are unchanged.
template <typename Body>
void RunFlatParallel(int64_t total, Body&& body) {
  if (total < kParallelCellThreshold) {
    body(0, total);
    return;
  }
  ParallelForChunks(0, total, kCellGrain,
                    [&](int64_t lo, int64_t hi, int64_t /*chunk*/) {
                      body(lo, hi);
                    });
}

}  // namespace

Factor::Factor() : values_(1, 0.0) {}

Factor::Factor(std::vector<int> attrs, std::vector<int> sizes, double fill)
    : attrs_(std::move(attrs)), sizes_(std::move(sizes)) {
  AIM_CHECK_EQ(attrs_.size(), sizes_.size());
  AIM_CHECK(std::is_sorted(attrs_.begin(), attrs_.end()));
  AIM_CHECK(std::adjacent_find(attrs_.begin(), attrs_.end()) == attrs_.end());
  int64_t total = 1;
  for (int s : sizes_) {
    AIM_CHECK_GE(s, 1);
    total *= s;
  }
  values_.assign(total, fill);
}

Factor Factor::FromDomain(const Domain& domain, const AttrSet& r,
                          double fill) {
  std::vector<int> sizes;
  sizes.reserve(r.size());
  for (int attr : r) sizes.push_back(domain.size(attr));
  return Factor(r.attrs(), std::move(sizes), fill);
}

Factor Factor::FromValues(std::vector<int> attrs, std::vector<int> sizes,
                          std::vector<double> values) {
  Factor out(std::move(attrs), std::move(sizes));
  AIM_CHECK_EQ(out.values_.size(), values.size());
  out.values_ = std::move(values);
  return out;
}

int Factor::AxisOf(int attr) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr);
  if (it == attrs_.end() || *it != attr) return -1;
  return static_cast<int>(it - attrs_.begin());
}

namespace {

template <BinKind K>
Factor BinaryOp(const Factor& a, const Factor& b) {
  // Union domain.
  std::vector<int> attrs;
  std::vector<int> sizes;
  {
    size_t i = 0, j = 0;
    const auto& aa = a.attrs();
    const auto& ba = b.attrs();
    while (i < aa.size() || j < ba.size()) {
      if (j >= ba.size() || (i < aa.size() && aa[i] < ba[j])) {
        attrs.push_back(aa[i]);
        sizes.push_back(a.sizes()[i]);
        ++i;
      } else if (i >= aa.size() || ba[j] < aa[i]) {
        attrs.push_back(ba[j]);
        sizes.push_back(b.sizes()[j]);
        ++j;
      } else {
        AIM_CHECK_EQ(a.sizes()[i], b.sizes()[j]);
        attrs.push_back(aa[i]);
        sizes.push_back(a.sizes()[i]);
        ++i;
        ++j;
      }
    }
  }
  Factor out(attrs, sizes);
  FactorWorkspace& ws = FactorWorkspace::Get();
  std::vector<int64_t>& a_strides = ws.IndexBuf(0);
  std::vector<int64_t>& b_strides = ws.IndexBuf(1);
  StridesIntoBuf(attrs, a.attrs(), a.sizes(), &a_strides);
  StridesIntoBuf(attrs, b.attrs(), b.sizes(), &b_strides);
  const std::vector<int64_t>* strides[2] = {&a_strides, &b_strides};
  double* dst = out.mutable_values().data();
  const double* av = a.values().data();
  const double* bv = b.values().data();
  const KernelPlan* plan =
      FlatKernelsEnabled() ? ws.GetPlan(sizes, strides, 2) : nullptr;
  if (plan != nullptr) {
    const SimdOps& ops = ActiveSimdOps();
    RunFlatParallel(out.num_cells(), [&](int64_t lo, int64_t hi) {
      RunBinaryRange<K>(*plan, dst, av, bv, ops, lo, hi);
    });
    return out;
  }
  ForEachCellParallel<2>(sizes, strides, out.num_cells(),
                         [&](int64_t cell, const int64_t* idx) {
                           dst[cell] = ApplyBin<K>(av[idx[0]], bv[idx[1]]);
                         });
  return out;
}

}  // namespace

Factor Factor::Add(const Factor& other) const {
  return BinaryOp<BinKind::kAdd>(*this, other);
}

Factor Factor::Subtract(const Factor& other) const {
  return BinaryOp<BinKind::kSub>(*this, other);
}

Factor Factor::Multiply(const Factor& other) const {
  return BinaryOp<BinKind::kMul>(*this, other);
}

void Factor::AddInPlace(const Factor& other, double scale) {
  AIM_CHECK(IsSortedSubset(other.attrs_, attrs_))
      << "AddInPlace requires other.attrs ⊆ attrs";
  FactorWorkspace& ws = FactorWorkspace::Get();
  std::vector<int64_t>& other_strides = ws.IndexBuf(0);
  StridesIntoBuf(attrs_, other.attrs_, other.sizes_, &other_strides);
  const std::vector<int64_t>* strides[1] = {&other_strides};
  double* dst = values_.data();
  const double* src = other.values_.data();
  const KernelPlan* plan =
      FlatKernelsEnabled() ? ws.GetPlan(sizes_, strides, 1) : nullptr;
  if (plan != nullptr) {
    const SimdOps& ops = ActiveSimdOps();
    RunFlatParallel(num_cells(), [&](int64_t lo, int64_t hi) {
      RunAddInPlaceRange(*plan, dst, src, scale, ops, lo, hi);
    });
    return;
  }
  ForEachCellParallel<1>(sizes_, strides, num_cells(),
                         [&](int64_t cell, const int64_t* idx) {
                           dst[cell] += scale * src[idx[0]];
                         });
}

void Factor::ScaleInPlace(double factor) {
  for (double& v : values_) v *= factor;
}

void Factor::AddScalarInPlace(double shift) {
  for (double& v : values_) v += shift;
}

void Factor::PrepareMarginalInto(const AttrSet& target, double fill,
                                 Factor* out) const {
  AIM_CHECK(out != this);
  AIM_CHECK(IsSortedSubset(target.attrs(), attrs_));
  out->attrs_.assign(target.attrs().begin(), target.attrs().end());
  out->sizes_.clear();
  int64_t total = 1;
  for (int attr : target) {
    const int s = sizes_[AxisOf(attr)];
    out->sizes_.push_back(s);
    total *= s;
  }
  out->values_.assign(total, fill);
}

Factor Factor::SumTo(const AttrSet& target) const {
  Factor out;
  SumToInto(target, &out);
  return out;
}

void Factor::SumToInto(const AttrSet& target, Factor* out) const {
  PrepareMarginalInto(target, 0.0, out);
  FactorWorkspace& ws = FactorWorkspace::Get();
  std::vector<int64_t>& out_strides = ws.IndexBuf(0);
  StridesIntoBuf(attrs_, out->attrs_, out->sizes_, &out_strides);
  const std::vector<int64_t>* strides[1] = {&out_strides};
  double* dst = out->values_.data();
  const double* src = values_.data();
  // Scatter-add into dst[idx] — destinations collide across cells, so this
  // stays serial (parallelizing would need per-thread partials keyed by
  // destination, which the small output rarely justifies).
  const KernelPlan* plan =
      FlatKernelsEnabled() ? ws.GetPlan(sizes_, strides, 1) : nullptr;
  if (plan != nullptr) {
    RunScatterAdd(*plan, dst, src, ActiveSimdOps(), num_cells());
    return;
  }
  ForEachCellRange<1>(sizes_, strides, 0, num_cells(),
                      [&](int64_t cell, const int64_t* idx) {
                        dst[idx[0]] += src[cell];
                      });
}

Factor Factor::LogSumExpTo(const AttrSet& target) const {
  Factor out;
  LogSumExpToInto(target, &out);
  return out;
}

void Factor::LogSumExpToInto(const AttrSet& target, Factor* out) const {
  PrepareMarginalInto(target, 0.0, out);
  FactorWorkspace& ws = FactorWorkspace::Get();
  std::vector<int64_t>& out_strides = ws.IndexBuf(0);
  StridesIntoBuf(attrs_, out->attrs_, out->sizes_, &out_strides);
  const std::vector<int64_t>* strides[1] = {&out_strides};
  const int64_t out_cells = out->num_cells();
  AlignedDoubleBuffer& max_buf = ws.DoubleBuf(0);
  max_buf.Assign(out_cells, kNegInf);
  double* mx = max_buf.data();
  double* dst = out->values_.data();
  const double* src = values_.data();
  // Both passes scatter into colliding destinations: serial, as in SumTo.
  const KernelPlan* plan =
      FlatKernelsEnabled() ? ws.GetPlan(sizes_, strides, 1) : nullptr;
  if (plan != nullptr) {
    const SimdOps& ops = ActiveSimdOps();
    RunScatterMax(*plan, mx, src, ops, num_cells());
    RunScatterExpAcc(*plan, dst, mx, src, ops, num_cells());
  } else {
    // Pass 1: per-destination max, NaN poisoning the cell (a NaN max makes
    // pass 2 and the combine below produce NaN for that cell too).
    ForEachCellRange<1>(sizes_, strides, 0, num_cells(),
                        [&](int64_t cell, const int64_t* idx) {
                          const double v = src[cell];
                          double& d = mx[idx[0]];
                          d = (v != v) ? kQuietNan : ((d < v) ? v : d);
                        });
    // Pass 2: accumulate exp(v - max).
    ForEachCellRange<1>(sizes_, strides, 0, num_cells(),
                        [&](int64_t cell, const int64_t* idx) {
                          double m = mx[idx[0]];
                          double v = src[cell];
                          if (!(std::isinf(m) && m < 0)) {
                            dst[idx[0]] += std::exp(v - m);
                          }
                        });
  }
  for (int64_t i = 0; i < out_cells; ++i) {
    double m = mx[i];
    out->values_[i] =
        (std::isinf(m) && m < 0) ? kNegInf : m + std::log(out->values_[i]);
  }
}

double Factor::Sum() const { return aim::Sum(values_); }

double Factor::LogSumExp() const { return aim::LogSumExp(values_); }

double Factor::Max() const {
  double m = kNegInf;
  for (double v : values_) m = std::max(m, v);
  return m;
}

namespace {

// Runs the elementwise kernel fn(dst_chunk, src_chunk, len) over [0, n)
// with the factor engine's fixed serial threshold / chunk grain, so chunk
// boundaries — and therefore results — are identical at every thread count.
template <typename Fn>
void RunElementwise(double* dst, const double* src, int64_t n, Fn&& fn) {
  if (n < kParallelCellThreshold) {
    fn(dst, src, n);
    return;
  }
  ParallelForChunks(0, n, kCellGrain,
                    [&](int64_t lo, int64_t hi, int64_t /*chunk*/) {
                      fn(dst + lo, src + lo, hi - lo);
                    });
}

}  // namespace

Factor Factor::Exp(double shift) const {
  Factor out(attrs_, sizes_);
  // Degenerate shift: callers pass shift = Max(), which is -inf only for an
  // all--inf (all-zero-probability) factor. Unguarded, exp(-inf - -inf)
  // would turn every cell into NaN; the correct limit exp(v) is 0.
  if (std::isinf(shift) && shift < 0) return out;  // constructed all-zero
  const SimdOps& ops = ActiveSimdOps();
  RunElementwise(out.values_.data(), values_.data(), num_cells(),
                 [&](double* d, const double* s, int64_t len) {
                   ops.vexp(d, s, shift, len);
                 });
  return out;
}

void Factor::ExpInPlace(double shift) {
  if (std::isinf(shift) && shift < 0) {  // see Exp()
    std::fill(values_.begin(), values_.end(), 0.0);
    return;
  }
  const SimdOps& ops = ActiveSimdOps();
  RunElementwise(values_.data(), values_.data(), num_cells(),
                 [&](double* d, const double* s, int64_t len) {
                   ops.vexp(d, s, shift, len);
                 });
}

Factor Factor::Log() const {
  Factor out(attrs_, sizes_);
  const SimdOps& ops = ActiveSimdOps();
  RunElementwise(out.values_.data(), values_.data(), num_cells(),
                 [&](double* d, const double* s, int64_t len) {
                   ops.vlog(d, s, len);
                 });
  return out;
}

double Factor::L1DistanceTo(const Factor& other) const {
  AIM_CHECK(attrs_ == other.attrs_);
  return L1Distance(values_, other.values_);
}

}  // namespace aim
