// Scalar kernel table, CPU detection, and the active-table switch for the
// factor SIMD dispatch layer. The scalar bodies here are the reference
// semantics: every SIMD body is either bitwise-identical to them (exact
// kernels) or ULP-gated against them (transcendental kernels).

#include "factor/simd_dispatch.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace aim {
namespace {

constexpr double kQuietNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// --- Scalar bodies: bit-for-bit the seed arithmetic (factor.cc loops). ---

void ScalarAddVV(double* d, const double* a, const double* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = a[i] + b[i];
}
void ScalarSubVV(double* d, const double* a, const double* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = a[i] - b[i];
}
void ScalarMulVV(double* d, const double* a, const double* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = a[i] * b[i];
}
void ScalarAddVS(double* d, const double* a, double s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = a[i] + s;
}
void ScalarSubVS(double* d, const double* a, double s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = a[i] - s;
}
void ScalarMulVS(double* d, const double* a, double s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = a[i] * s;
}
void ScalarSubSV(double* d, double s, const double* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = s - b[i];
}
void ScalarAxpy(double* d, const double* a, double scale, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const double t = scale * a[i];
    d[i] = d[i] + t;
  }
}
void ScalarAddScalar(double* d, double s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = d[i] + s;
}
void ScalarAccAdd(double* d, const double* a, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = d[i] + a[i];
}
void ScalarAccMax(double* d, const double* a, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const double v = a[i];
    d[i] = (v != v) ? kQuietNan : ((d[i] < v) ? v : d[i]);
  }
}
double ScalarReduceMax(double m0, const double* a, int64_t n) {
  double m = m0;
  bool nan = false;
  for (int64_t i = 0; i < n; ++i) {
    const double v = a[i];
    nan = nan || (v != v);
    m = (m < v) ? v : m;
  }
  return nan ? kQuietNan : m;
}
void ScalarVExp(double* d, const double* a, double shift, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = std::exp(a[i] - shift);
}
void ScalarVLog(double* d, const double* a, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    d[i] = a[i] > 0 ? std::log(a[i]) : kNegInf;
  }
}
double ScalarExpAcc(double acc0, const double* a, double m, int64_t n) {
  double acc = acc0;
  for (int64_t i = 0; i < n; ++i) acc += std::exp(a[i] - m);
  return acc;
}
void ScalarAccExp(double* d, const double* m, const double* a, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const double mi = m[i];
    if (!(std::isinf(mi) && mi < 0)) d[i] += std::exp(a[i] - mi);
  }
}

const SimdOps kScalarOps = {
    SimdLevel::kScalar,
    ScalarAddVV,  ScalarSubVV,     ScalarMulVV, ScalarAddVS,
    ScalarSubVS,  ScalarMulVS,     ScalarSubSV, ScalarAxpy,
    ScalarAddScalar, ScalarAccAdd, ScalarAccMax, ScalarReduceMax,
    ScalarVExp,   ScalarVLog,      ScalarExpAcc, ScalarAccExp,
};

// --- Detection / selection. ---

SimdLevel ProbeDetectedLevel() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (GetAvx512SimdOps() != nullptr &&
      __builtin_cpu_supports("avx512f")) {
    return SimdLevel::kAvx512;
  }
  if (GetAvx2SimdOps() != nullptr && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

SimdLevel ClampToDetected(SimdLevel requested, const char* origin) {
  const SimdLevel detected = DetectedSimdLevel();
  if (static_cast<int>(requested) <= static_cast<int>(detected)) {
    return requested;
  }
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "aim: %s requested SIMD level %s but this CPU/binary "
                 "supports at most %s; falling back.\n",
                 origin, ToString(requested), ToString(detected));
  }
  return detected;
}

SimdLevel ParseEnvLevel() {
  const char* env = std::getenv("AIM_SIMD");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "auto") == 0) {
    return DetectedSimdLevel();
  }
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    return ClampToDetected(SimdLevel::kAvx2, "AIM_SIMD");
  }
  if (std::strcmp(env, "avx512") == 0) {
    return ClampToDetected(SimdLevel::kAvx512, "AIM_SIMD");
  }
  std::fprintf(stderr,
               "aim: unknown AIM_SIMD value '%s' "
               "(want auto|avx512|avx2|scalar); using auto.\n",
               env);
  return DetectedSimdLevel();
}

std::atomic<const SimdOps*>& ActiveOpsSlot() {
  static std::atomic<const SimdOps*> active{
      SimdOpsForLevel(DefaultSimdLevel())};
  return active;
}

}  // namespace

const char* ToString(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = ProbeDetectedLevel();
  return detected;
}

bool SimdLevelSupported(SimdLevel level) {
  return static_cast<int>(level) <=
         static_cast<int>(DetectedSimdLevel());
}

SimdLevel DefaultSimdLevel() {
  static const SimdLevel initial = ParseEnvLevel();
  return initial;
}

SimdLevel ActiveSimdLevel() {
  return ActiveOpsSlot().load(std::memory_order_relaxed)->level;
}

const SimdOps& ActiveSimdOps() {
  return *ActiveOpsSlot().load(std::memory_order_relaxed);
}

SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel installed = ClampToDetected(level, "SetSimdLevel");
  ActiveOpsSlot().store(SimdOpsForLevel(installed),
                        std::memory_order_relaxed);
  return installed;
}

const SimdOps* SimdOpsForLevel(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarOps;
    case SimdLevel::kAvx2:
      return SimdLevelSupported(level) ? GetAvx2SimdOps() : nullptr;
    case SimdLevel::kAvx512:
      return SimdLevelSupported(level) ? GetAvx512SimdOps() : nullptr;
  }
  return nullptr;
}

}  // namespace aim
