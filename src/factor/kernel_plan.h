// Loop-collapse planner for the dense factor kernels.
//
// A factor kernel walks the cells of a result shape in row-major order
// (last axis fastest) while maintaining one derived linear index per
// operand, where an operand's per-axis stride is 0 for axes it does not
// carry. The seed implementation does this with a rank-generic odometer and
// a per-cell callback. A KernelPlan precomputes the loop structure instead:
// trailing axes whose strides are mutually compatible across every operand
// (stride[axis] == stride[axis+1] * size[axis+1], the row-major contiguity
// condition, including the all-zero broadcast case) are fused into a single
// inner run, and the remaining axes are fused greedily the same way into a
// short outer odometer. Execution becomes
//
//   for each outer block:            // num_outer fused axes, odometer
//     for t in [0, inner_size):      // contiguous, vectorizable
//       body(cell + t, base[k] + t * inner_strides[k], ...)
//
// which visits cells in exactly the same order as the seed loop — a plan
// changes how iteration is *bookkept*, never the sequence of cell visits,
// so accumulation order (and therefore every bit of floating-point output)
// is preserved.
//
// Plans are pure functions of (sizes, operand strides) and are memoized in
// the thread-local FactorWorkspace (factor/workspace.h).

#ifndef AIM_FACTOR_KERNEL_PLAN_H_
#define AIM_FACTOR_KERNEL_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace aim {

struct KernelPlan {
  // Factors beyond this rank (after dropping size-1 axes) fall back to the
  // seed odometer. AIM cliques are rank <= ~6; 16 leaves huge headroom.
  static constexpr int kMaxAxes = 16;
  // Kernels derive at most two operand indices (binary ops).
  static constexpr int kMaxOperands = 2;

  bool valid = false;
  int num_operands = 0;
  // Fused outer axes, axis 0 slowest, axis num_outer-1 fastest.
  int num_outer = 0;
  // Length of the fused contiguous inner run (product of the fused trailing
  // axes; 1 for a rank-0/all-degenerate shape).
  int64_t inner_size = 1;
  // Total cells (product of all axis sizes).
  int64_t total = 1;
  int64_t outer_sizes[kMaxAxes] = {};
  int64_t outer_strides[kMaxOperands][kMaxAxes] = {};
  // Per-operand stride within the inner run. For strides produced by
  // sub-factor broadcasting this is 0 (operand constant over the run) or 1
  // (operand contiguous), but kernels must handle the general value.
  int64_t inner_strides[kMaxOperands] = {};
};

// Builds a plan for iterating a result shape `sizes` with `num_operands`
// derived index streams, `operand_strides[k]` giving operand k's per-axis
// strides (same length as `sizes`). Returns plan.valid == false when the
// shape has more than kMaxAxes non-degenerate axes (callers then use the
// seed odometer).
KernelPlan BuildKernelPlan(
    const std::vector<int>& sizes,
    const std::vector<int64_t>* const* operand_strides, int num_operands);

// Iterates cells [cell_begin, cell_end) of a planned shape as contiguous
// runs. Calls fn(cell, base, len): `cell` is the linear index of the run's
// first cell, `base[k]` operand k's linear index at that cell, and the run
// covers cells [cell, cell + len) with operand k advancing by
// plan.inner_strides[k] per cell. Seeking to cell_begin is O(num_outer), so
// chunked parallel callers can start mid-tensor; runs never straddle a
// chunk boundary's [cell_begin, cell_end) — a partial run is emitted with a
// shortened len instead.
template <int kNumOps, typename Fn>
void ForEachRunRange(const KernelPlan& plan, int64_t cell_begin,
                     int64_t cell_end, Fn&& fn) {
  const int64_t inner = plan.inner_size;
  int64_t run = cell_begin / inner;
  int64_t offset = cell_begin - run * inner;
  int64_t coord[KernelPlan::kMaxAxes];
  int64_t base[kNumOps > 0 ? kNumOps : 1] = {};
  int64_t rem = run;
  for (int axis = plan.num_outer - 1; axis >= 0; --axis) {
    coord[axis] = rem % plan.outer_sizes[axis];
    rem /= plan.outer_sizes[axis];
    for (int k = 0; k < kNumOps; ++k) {
      base[k] += coord[axis] * plan.outer_strides[k][axis];
    }
  }
  int64_t cell = cell_begin;
  while (cell < cell_end) {
    const int64_t len = std::min(inner - offset, cell_end - cell);
    int64_t at[kNumOps > 0 ? kNumOps : 1];
    for (int k = 0; k < kNumOps; ++k) {
      at[k] = base[k] + offset * plan.inner_strides[k];
    }
    fn(cell, at, len);
    cell += len;
    offset = 0;
    // Advance the outer odometer (axis num_outer-1 fastest).
    for (int axis = plan.num_outer - 1; axis >= 0; --axis) {
      ++coord[axis];
      if (coord[axis] < plan.outer_sizes[axis]) {
        for (int k = 0; k < kNumOps; ++k) {
          base[k] += plan.outer_strides[k][axis];
        }
        break;
      }
      coord[axis] = 0;
      for (int k = 0; k < kNumOps; ++k) {
        base[k] -= plan.outer_strides[k][axis] * (plan.outer_sizes[axis] - 1);
      }
    }
  }
}

}  // namespace aim

#endif  // AIM_FACTOR_KERNEL_PLAN_H_
