// Thread-local scratch arena for the factor kernels.
//
// Two jobs:
//   1. Memoize KernelPlans. Plan construction is cheap but not free, and
//      the hot loops (Calibrate, EstimateMrf, GenerateSynthetic) run the
//      same handful of (sizes, strides) combinations thousands of times.
//      A small direct-mapped cache keyed on the exact (sizes, operand
//      strides) tuple makes repeat lookups allocation-free pointer returns.
//   2. Lend out reusable index/double scratch vectors so kernels (stride
//      tables, logsumexp max buffers) stop allocating per call. Buffers
//      only ever grow, so after a warm-up pass the steady state performs
//      zero heap allocations (asserted in tests/factor_test.cc).
//
// The arena is thread_local: workers in a parallel region each get their
// own, so no locking is needed. A kernel that hands a cached plan to
// ParallelForChunks is safe because the submitting thread blocks until the
// region completes, and nested regions run inline on the worker.
//
// Slot discipline: kernels never nest factor kernels, so each kernel may
// claim fixed slot numbers. Current assignments:
//   IndexBuf(0)  — operand stride table (all kernels)
//   DoubleBuf(0) — per-destination max buffer (LogSumExpTo)

#ifndef AIM_FACTOR_WORKSPACE_H_
#define AIM_FACTOR_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "factor/kernel_plan.h"

namespace aim {

// Grow-only scratch array of doubles with 64-byte-aligned storage (a full
// AVX-512 vector / cache line), so SIMD kernels reading a workspace buffer
// start aligned. Replaces std::vector<double> in the workspace slots: same
// reuse discipline (capacity never shrinks, so the steady state is
// allocation-free), but with controlled alignment.
class AlignedDoubleBuffer {
 public:
  AlignedDoubleBuffer() = default;
  ~AlignedDoubleBuffer();
  AlignedDoubleBuffer(const AlignedDoubleBuffer&) = delete;
  AlignedDoubleBuffer& operator=(const AlignedDoubleBuffer&) = delete;

  // Resize to n elements, all set to `fill` (like vector::assign).
  // Reallocates only when n exceeds the high-water capacity.
  void Assign(int64_t n, double fill);

  double* data() { return data_; }
  const double* data() const { return data_; }
  int64_t size() const { return size_; }

  static constexpr size_t kAlignment = 64;

 private:
  double* data_ = nullptr;
  int64_t size_ = 0;
  int64_t capacity_ = 0;
};

class FactorWorkspace {
 public:
  // The calling thread's arena (created on first use).
  static FactorWorkspace& Get();

  // Returns the memoized plan for (sizes, operand_strides), building and
  // caching it on a miss. Returns nullptr when the shape is unplannable
  // (more than KernelPlan::kMaxAxes fused axes) — callers fall back to the
  // seed odometer. The pointer stays valid until a colliding shape evicts
  // the slot; kernels must finish with the plan before invoking code that
  // could insert new plans on this thread.
  const KernelPlan* GetPlan(const std::vector<int>& sizes,
                            const std::vector<int64_t>* const* operand_strides,
                            int num_operands);

  // Reusable scratch buffers (see slot discipline above). Contents are
  // unspecified on entry; callers assign/resize as needed.
  std::vector<int64_t>& IndexBuf(int slot);
  AlignedDoubleBuffer& DoubleBuf(int slot);

  // Cache statistics for tests.
  int64_t plan_hits() const { return plan_hits_; }
  int64_t plan_misses() const { return plan_misses_; }

 private:
  static constexpr int kCacheSlots = 256;  // power of two
  static constexpr int kIndexBufs = 4;
  static constexpr int kDoubleBufs = 2;

  struct CacheSlot {
    bool used = false;
    uint64_t hash = 0;
    int rank = 0;
    int num_operands = 0;
    int sizes[KernelPlan::kMaxAxes] = {};
    int64_t strides[KernelPlan::kMaxOperands][KernelPlan::kMaxAxes] = {};
    KernelPlan plan;
  };

  CacheSlot slots_[kCacheSlots];
  std::vector<int64_t> index_bufs_[kIndexBufs];
  AlignedDoubleBuffer double_bufs_[kDoubleBufs];
  int64_t plan_hits_ = 0;
  int64_t plan_misses_ = 0;
};

}  // namespace aim

#endif  // AIM_FACTOR_WORKSPACE_H_
