// Flat-kernel switch for the factor engine.
//
// The factor element-wise kernels (DESIGN.md "Factor kernels") run through a
// loop-collapse planner: trailing axes with compatible strides are fused
// into a single unit-stride inner run, so Multiply / AddInPlace /
// SumTo / LogSumExpTo execute as (outer blocks) x (contiguous inner loop)
// instead of a per-cell odometer with a callback. The flat kernels visit
// cells in exactly the seed's row-major order and perform the identical
// floating-point operations per cell, so every output is bitwise identical
// to the odometer path (asserted op-by-op and end-to-end in
// tests/factor_test.cc).
//
// The switch below exists for A/B benchmarking and the bitwise equivalence
// tests; production keeps it on.

#ifndef AIM_FACTOR_KERNELS_H_
#define AIM_FACTOR_KERNELS_H_

namespace aim {

// Global flat-kernel switch. Defaults to on; the environment variable
// AIM_FLAT_KERNELS=0 (read once, at first use) disables it, in which case
// every kernel falls back to the seed's rank-generic odometer loop.
bool FlatKernelsEnabled();
void SetFlatKernelsEnabled(bool enabled);

}  // namespace aim

#endif  // AIM_FACTOR_KERNELS_H_
