// Width-generic SIMD kernel bodies for the factor engine.
//
// This file is #included (inside an anonymous namespace) by one translation
// unit per instruction set — simd_avx2.cc, simd_avx512.cc — after defining
// a traits struct `V` that maps a small vector vocabulary onto that ISA:
//
//   V::D                     vector of V::kWidth doubles
//   V::M                     comparison mask (vector or bitmask)
//   Load/Store (unaligned), Splat, Zero
//   Add/Sub/Mul/Div          lanewise IEEE ops
//   Fma(a,b,c) = a*b + c     single rounding
//   Fnma(a,b,c) = c - a*b    single rounding
//   Lt/Le/Gt/Ge/Eq           ordered quiet compares -> M
//   Unord(a)                 per-lane a != a -> M
//   MOr(M,M), AnyTrue(M), MFalse()
//   Select(m, a, b)          m ? a : b
//   Pow2(n)                  2^n for integral-valued doubles n (valid
//                            biased exponent range)
//   RawFrexp(x, &m, &kb)     mantissa with exponent forced to 1022
//                            (m in [0.5, 1)) and the biased exponent as a
//                            double — x must be positive and finite
//
// Contract notes (see simd_dispatch.h): the exact kernels below perform
// the same individual IEEE operations per lane as the scalar table — no
// FMA, no re-association — so their outputs are bitwise identical. The
// translation units are compiled with -ffp-contract=off so the scalar tail
// loops cannot be silently contracted either. The transcendental kernels
// (ExpCore / LogCore and everything built on them) are polynomial
// implementations gated by the ULP tests in tests/simd_test.cc.
//
// The includer must #include <cmath>, <cstdint>, and <limits> BEFORE the
// anonymous namespace — this file is included inside one, so it cannot
// pull standard headers itself.

// ---------------------------------------------------------------------------
// Constants.
// ---------------------------------------------------------------------------

constexpr double kQuietNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNegInfBody = -std::numeric_limits<double>::infinity();

// log2(e); exp(x) = 2^(x * log2e).
constexpr double kLog2e = 1.4426950408889634074;
// ln(2) split: kLn2Hi has 21 significant bits, so n * kLn2Hi is exact for
// |n| < 2^32; kLn2Hi + kLn2Lo rounds to ln(2) with ~1e-22 residual.
constexpr double kLn2Hi = 6.93145751953125e-1;
constexpr double kLn2Lo = 1.42860682030941723212e-6;
// 1.5 * 2^52: adding then subtracting rounds to the nearest integer (ties
// to even) for |x| < 2^51, entirely in double arithmetic.
constexpr double kRoundMagic = 6755399441055744.0;
// |x| beyond this: exp(x) saturates to +inf / 0 by mask (the polynomial
// path handles everything in (-1000, 1000), including the gradual overflow
// / underflow boundaries near +-709.78 / -745.13 by natural rounding of
// the final power-of-two scaling).
constexpr double kExpHuge = 1000.0;
constexpr double kSqrtHalf = 0.70710678118654752440;

// exp(r) Taylor coefficients 1/k!, k = 0..13. |r| <= ln(2)/2 after
// reduction, where the degree-13 truncation error is ~4e-18 relative —
// below half an ulp.
constexpr double kExpC[14] = {
    1.0,
    1.0,
    1.0 / 2,
    1.0 / 6,
    1.0 / 24,
    1.0 / 120,
    1.0 / 720,
    1.0 / 5040,
    1.0 / 40320,
    1.0 / 362880,
    1.0 / 3628800,
    1.0 / 39916800,
    1.0 / 479001600,
    1.0 / 6227020800.0,
};

// log(m) = 2s + s^3 * P(s^2) with s = (m-1)/(m+1) (atanh series),
// P coefficients 2/(2k+3), k = 0..9 — covers terms through s^21; |s| <=
// 0.1716 makes the s^23 tail ~2e-19.
constexpr double kLogC[10] = {
    2.0 / 3,  2.0 / 5,  2.0 / 7,  2.0 / 9,  2.0 / 11,
    2.0 / 13, 2.0 / 15, 2.0 / 17, 2.0 / 19, 2.0 / 21,
};

// ---------------------------------------------------------------------------
// Transcendental cores.
// ---------------------------------------------------------------------------

// exp(x) per lane: |x| < kExpHuge runs the polynomial path with two-step
// power-of-two scaling (gradual underflow to subnormals and overflow to
// +inf fall out of the final multiplies' natural rounding); saturation and
// NaN lanes are patched from the raw input afterwards.
static inline typename V::D ExpCore(typename V::D x) {
  using D = typename V::D;
  const D magic = V::Splat(kRoundMagic);
  D n = V::Sub(V::Add(V::Mul(x, V::Splat(kLog2e)), magic), magic);
  D r = V::Fnma(n, V::Splat(kLn2Hi), x);
  r = V::Fnma(n, V::Splat(kLn2Lo), r);
  D p = V::Splat(kExpC[13]);
  p = V::Fma(p, r, V::Splat(kExpC[12]));
  p = V::Fma(p, r, V::Splat(kExpC[11]));
  p = V::Fma(p, r, V::Splat(kExpC[10]));
  p = V::Fma(p, r, V::Splat(kExpC[9]));
  p = V::Fma(p, r, V::Splat(kExpC[8]));
  p = V::Fma(p, r, V::Splat(kExpC[7]));
  p = V::Fma(p, r, V::Splat(kExpC[6]));
  p = V::Fma(p, r, V::Splat(kExpC[5]));
  p = V::Fma(p, r, V::Splat(kExpC[4]));
  p = V::Fma(p, r, V::Splat(kExpC[3]));
  p = V::Fma(p, r, V::Splat(kExpC[2]));
  p = V::Fma(p, r, V::Splat(kExpC[1]));
  p = V::Fma(p, r, V::Splat(kExpC[0]));
  // 2^n = 2^n1 * 2^n2 with n1 = round(n/2): p * 2^n1 stays normal (exact),
  // the second multiply performs the single rounding into subnormal/inf.
  D n1 = V::Sub(V::Add(V::Mul(n, V::Splat(0.5)), magic), magic);
  D n2 = V::Sub(n, n1);
  D res = V::Mul(V::Mul(p, V::Pow2(n1)), V::Pow2(n2));
  res = V::Select(V::Ge(x, V::Splat(kExpHuge)), V::Splat(kInf), res);
  res = V::Select(V::Le(x, V::Splat(-kExpHuge)), V::Zero(), res);
  res = V::Select(V::Unord(x), x, res);  // NaN in -> NaN out
  return res;
}

// Scalar-kernel log semantics per lane: x > 0 ? log(x) : -inf (NaN and
// negatives map to -inf, matching Factor::Log); +inf -> +inf.
static inline typename V::D LogCore(typename V::D x) {
  using D = typename V::D;
  using M = typename V::M;
  const M pos = V::Gt(x, V::Zero());
  // Pre-scale subnormals into the normal range (lanes that are <= 0 or NaN
  // compute garbage here and are overwritten by the `pos` select below).
  const M tiny =
      V::Lt(x, V::Splat(std::numeric_limits<double>::min()));
  D xs = V::Select(tiny, V::Mul(x, V::Splat(0x1p54)), x);
  D eadj = V::Select(tiny, V::Splat(-54.0), V::Zero());
  D m, kb;
  V::RawFrexp(xs, &m, &kb);
  D e = V::Add(V::Sub(kb, V::Splat(1022.0)), eadj);
  const M small = V::Lt(m, V::Splat(kSqrtHalf));
  m = V::Select(small, V::Add(m, m), m);
  e = V::Sub(e, V::Select(small, V::Splat(1.0), V::Zero()));
  D t = V::Sub(m, V::Splat(1.0));  // exact: m in [sqrt(1/2), sqrt(2))
  D u = V::Add(m, V::Splat(1.0));
  D s = V::Div(t, u);
  D z = V::Mul(s, s);
  D p = V::Splat(kLogC[9]);
  p = V::Fma(p, z, V::Splat(kLogC[8]));
  p = V::Fma(p, z, V::Splat(kLogC[7]));
  p = V::Fma(p, z, V::Splat(kLogC[6]));
  p = V::Fma(p, z, V::Splat(kLogC[5]));
  p = V::Fma(p, z, V::Splat(kLogC[4]));
  p = V::Fma(p, z, V::Splat(kLogC[3]));
  p = V::Fma(p, z, V::Splat(kLogC[2]));
  p = V::Fma(p, z, V::Splat(kLogC[1]));
  p = V::Fma(p, z, V::Splat(kLogC[0]));
  D tail = V::Fma(e, V::Splat(kLn2Lo), V::Mul(V::Mul(s, z), p));
  D res = V::Fma(e, V::Splat(kLn2Hi), V::Add(V::Add(s, s), tail));
  res = V::Select(V::Gt(x, V::Splat(std::numeric_limits<double>::max())),
                  V::Splat(kInf), res);
  res = V::Select(pos, res, V::Splat(kNegInfBody));
  return res;
}

// ---------------------------------------------------------------------------
// Exact elementwise kernels (bitwise identical to the scalar table).
// ---------------------------------------------------------------------------

constexpr int kW = V::kWidth;

static void BodyAddVV(double* d, const double* a, const double* b,
                      int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Add(V::Load(a + i), V::Load(b + i)));
  }
  for (; i < n; ++i) d[i] = a[i] + b[i];
}

static void BodySubVV(double* d, const double* a, const double* b,
                      int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Sub(V::Load(a + i), V::Load(b + i)));
  }
  for (; i < n; ++i) d[i] = a[i] - b[i];
}

static void BodyMulVV(double* d, const double* a, const double* b,
                      int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Mul(V::Load(a + i), V::Load(b + i)));
  }
  for (; i < n; ++i) d[i] = a[i] * b[i];
}

static void BodyAddVS(double* d, const double* a, double s, int64_t n) {
  const typename V::D vs = V::Splat(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Add(V::Load(a + i), vs));
  }
  for (; i < n; ++i) d[i] = a[i] + s;
}

static void BodySubVS(double* d, const double* a, double s, int64_t n) {
  const typename V::D vs = V::Splat(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Sub(V::Load(a + i), vs));
  }
  for (; i < n; ++i) d[i] = a[i] - s;
}

static void BodyMulVS(double* d, const double* a, double s, int64_t n) {
  const typename V::D vs = V::Splat(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Mul(V::Load(a + i), vs));
  }
  for (; i < n; ++i) d[i] = a[i] * s;
}

static void BodySubSV(double* d, double s, const double* b, int64_t n) {
  const typename V::D vs = V::Splat(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Sub(vs, V::Load(b + i)));
  }
  for (; i < n; ++i) d[i] = s - b[i];
}

// d[i] += scale * a[i]. Separate multiply and add (no FMA): the scalar
// path rounds twice, and the bitwise contract requires matching it.
static void BodyAxpy(double* d, const double* a, double scale, int64_t n) {
  const typename V::D vs = V::Splat(scale);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Add(V::Load(d + i), V::Mul(V::Load(a + i), vs)));
  }
  for (; i < n; ++i) {
    const double t = scale * a[i];
    d[i] = d[i] + t;
  }
}

static void BodyAddScalar(double* d, double s, int64_t n) {
  const typename V::D vs = V::Splat(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Add(V::Load(d + i), vs));
  }
  for (; i < n; ++i) d[i] = d[i] + s;
}

static void BodyAccAdd(double* d, const double* a, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, V::Add(V::Load(d + i), V::Load(a + i)));
  }
  for (; i < n; ++i) d[i] = d[i] + a[i];
}

// d[i] = nanmax(d[i], a[i]): the seed's (d < a ? a : d) select, except a
// NaN contribution poisons the lane with a canonical quiet NaN.
static void BodyAccMax(double* d, const double* a, int64_t n) {
  const typename V::D qnan = V::Splat(kQuietNan);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const typename V::D va = V::Load(a + i);
    const typename V::D vd = V::Load(d + i);
    const typename V::M isnan = V::Unord(va);
    typename V::D nd = V::Select(V::Lt(vd, va), va, vd);
    nd = V::Select(isnan, qnan, nd);
    V::Store(d + i, nd);
  }
  for (; i < n; ++i) {
    const double v = a[i];
    d[i] = (v != v) ? kQuietNan : ((d[i] < v) ? v : d[i]);
  }
}

// Returns nanmax(m0, a[0..n)). max over doubles is order-independent (the
// lanewise fold visits elements in a different order than the scalar
// left-to-right chain but produces the same value; the one unobservable
// exception — which signed zero wins a 0.0 vs -0.0 tie — cannot reach any
// factor output, see DESIGN.md "SIMD backend").
static double BodyReduceMax(double m0, const double* a, int64_t n) {
  typename V::D macc = V::Splat(m0);
  typename V::M nanacc = V::MFalse();
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const typename V::D va = V::Load(a + i);
    nanacc = V::MOr(nanacc, V::Unord(va));
    macc = V::Select(V::Lt(macc, va), va, macc);
  }
  double lanes[kW];
  V::Store(lanes, macc);
  double m = m0;
  bool nan = V::AnyTrue(nanacc);
  for (int lane = 0; lane < kW; ++lane) {
    m = (m < lanes[lane]) ? lanes[lane] : m;
  }
  for (; i < n; ++i) {
    const double v = a[i];
    nan = nan || (v != v);
    m = (m < v) ? v : m;
  }
  return nan ? kQuietNan : m;
}

// ---------------------------------------------------------------------------
// Transcendental kernels (ULP-gated).
// ---------------------------------------------------------------------------

static void BodyVExp(double* d, const double* a, double shift, int64_t n) {
  const typename V::D vshift = V::Splat(shift);
  int64_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    const typename V::D r0 = ExpCore(V::Sub(V::Load(a + i), vshift));
    const typename V::D r1 = ExpCore(V::Sub(V::Load(a + i + kW), vshift));
    V::Store(d + i, r0);
    V::Store(d + i + kW, r1);
  }
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, ExpCore(V::Sub(V::Load(a + i), vshift)));
  }
  for (; i < n; ++i) d[i] = std::exp(a[i] - shift);
}

static void BodyVLog(double* d, const double* a, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    V::Store(d + i, LogCore(V::Load(a + i)));
  }
  for (; i < n; ++i) {
    d[i] = a[i] > 0 ? std::log(a[i]) : kNegInfBody;
  }
}

static double BodyExpAcc(double acc0, const double* a, double m, int64_t n) {
  const typename V::D vm = V::Splat(m);
  typename V::D acc_a = V::Zero();
  typename V::D acc_b = V::Zero();
  int64_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    acc_a = V::Add(acc_a, ExpCore(V::Sub(V::Load(a + i), vm)));
    acc_b = V::Add(acc_b, ExpCore(V::Sub(V::Load(a + i + kW), vm)));
  }
  for (; i + kW <= n; i += kW) {
    acc_a = V::Add(acc_a, ExpCore(V::Sub(V::Load(a + i), vm)));
  }
  double lanes[kW];
  V::Store(lanes, V::Add(acc_a, acc_b));
  double acc = acc0;
  for (int lane = 0; lane < kW; ++lane) acc += lanes[lane];
  for (; i < n; ++i) acc += std::exp(a[i] - m);
  return acc;
}

static void BodyAccExp(double* d, const double* m, const double* a,
                       int64_t n) {
  const typename V::D neg_inf = V::Splat(kNegInfBody);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const typename V::D vm = V::Load(m + i);
    const typename V::M zero_group = V::Eq(vm, neg_inf);
    const typename V::D vd = V::Load(d + i);
    const typename V::D e = ExpCore(V::Sub(V::Load(a + i), vm));
    V::Store(d + i, V::Select(zero_group, vd, V::Add(vd, e)));
  }
  for (; i < n; ++i) {
    const double mi = m[i];
    if (!(std::isinf(mi) && mi < 0)) d[i] += std::exp(a[i] - mi);
  }
}

// ---------------------------------------------------------------------------
// Table.
// ---------------------------------------------------------------------------

static const aim::SimdOps* MakeBodyOps(aim::SimdLevel level) {
  static const aim::SimdOps ops = {
      level,
      BodyAddVV,  BodySubVV,     BodyMulVV, BodyAddVS,
      BodySubVS,  BodyMulVS,     BodySubSV, BodyAxpy,
      BodyAddScalar, BodyAccAdd, BodyAccMax, BodyReduceMax,
      BodyVExp,   BodyVLog,      BodyExpAcc, BodyAccExp,
  };
  return &ops;
}
