// AVX-512F bodies for the factor SIMD dispatch table. Compiled with
// -mavx512f -ffp-contract=off (see src/factor/CMakeLists.txt); when the
// toolchain cannot build AVX-512 this TU degenerates to a nullptr stub.

#include "factor/simd_dispatch.h"

#if defined(AIM_BUILD_AVX512)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace {

struct V {
  using D = __m512d;
  using M = __mmask8;
  static constexpr int kWidth = 8;

  static D Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, D v) { _mm512_storeu_pd(p, v); }
  static D Splat(double x) { return _mm512_set1_pd(x); }
  static D Zero() { return _mm512_setzero_pd(); }

  static D Add(D a, D b) { return _mm512_add_pd(a, b); }
  static D Sub(D a, D b) { return _mm512_sub_pd(a, b); }
  static D Mul(D a, D b) { return _mm512_mul_pd(a, b); }
  static D Div(D a, D b) { return _mm512_div_pd(a, b); }
  static D Fma(D a, D b, D c) { return _mm512_fmadd_pd(a, b, c); }
  static D Fnma(D a, D b, D c) { return _mm512_fnmadd_pd(a, b, c); }

  static M Lt(D a, D b) { return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ); }
  static M Le(D a, D b) { return _mm512_cmp_pd_mask(a, b, _CMP_LE_OQ); }
  static M Gt(D a, D b) { return _mm512_cmp_pd_mask(a, b, _CMP_GT_OQ); }
  static M Ge(D a, D b) { return _mm512_cmp_pd_mask(a, b, _CMP_GE_OQ); }
  static M Eq(D a, D b) { return _mm512_cmp_pd_mask(a, b, _CMP_EQ_OQ); }
  static M Unord(D a) { return _mm512_cmp_pd_mask(a, a, _CMP_UNORD_Q); }
  static M MOr(M a, M b) { return static_cast<M>(a | b); }
  static M MFalse() { return 0; }
  static bool AnyTrue(M m) { return m != 0; }
  // _mm512_mask_blend_pd(k, a, b) picks b where k is set.
  static D Select(M m, D a, D b) { return _mm512_mask_blend_pd(m, b, a); }

  static __m512i ToI64(D n) {
    const D magic = _mm512_set1_pd(6755399441055744.0);
    return _mm512_sub_epi64(_mm512_castpd_si512(_mm512_add_pd(n, magic)),
                            _mm512_castpd_si512(magic));
  }

  static D Pow2(D n) {
    __m512i k = _mm512_add_epi64(ToI64(n), _mm512_set1_epi64(1023));
    return _mm512_castsi512_pd(_mm512_slli_epi64(k, 52));
  }

  static void RawFrexp(D x, D* m, D* kb) {
    const __m512i bits = _mm512_castpd_si512(x);
    const __m512i k = _mm512_and_epi64(_mm512_srli_epi64(bits, 52),
                                       _mm512_set1_epi64(0x7ff));
    const __m512i two52 = _mm512_castpd_si512(_mm512_set1_pd(0x1p52));
    *kb = _mm512_sub_pd(_mm512_castsi512_pd(_mm512_or_epi64(k, two52)),
                        _mm512_set1_pd(0x1p52));
    const __m512i mant = _mm512_or_epi64(
        _mm512_and_epi64(bits, _mm512_set1_epi64(0x000fffffffffffffLL)),
        _mm512_castpd_si512(_mm512_set1_pd(0.5)));
    *m = _mm512_castsi512_pd(mant);
  }
};

#include "factor/simd_body.inc.h"

}  // namespace

namespace aim {

const SimdOps* GetAvx512SimdOps() { return MakeBodyOps(SimdLevel::kAvx512); }

}  // namespace aim

#else  // !defined(AIM_BUILD_AVX512)

namespace aim {

const SimdOps* GetAvx512SimdOps() { return nullptr; }

}  // namespace aim

#endif
