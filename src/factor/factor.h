// Dense factor (multi-dimensional table) over a subset of attributes.
//
// Factors are the arithmetic substrate of the Private-PGM engine: clique
// log-potentials, belief-propagation messages, and marginals are all
// factors. Cells are laid out with the same convention as marginals
// (attributes ascending, last attribute fastest; see marginal/marginal.h),
// so a Factor's flat values are directly comparable to ComputeMarginal
// output for the same attribute set.

#ifndef AIM_FACTOR_FACTOR_H_
#define AIM_FACTOR_FACTOR_H_

#include <cstdint>
#include <vector>

#include "data/domain.h"
#include "marginal/attr_set.h"

namespace aim {

class Factor {
 public:
  // The empty factor: a single scalar cell over no attributes.
  Factor();

  // Factor over `attrs` (must be sorted ascending, distinct) with the given
  // per-attribute sizes, every cell set to `fill`.
  Factor(std::vector<int> attrs, std::vector<int> sizes, double fill = 0.0);

  // Factor over the attributes in `r`, sizes taken from `domain`.
  static Factor FromDomain(const Domain& domain, const AttrSet& r,
                           double fill = 0.0);

  // Factor with explicit cell values (row-major; size must match).
  static Factor FromValues(std::vector<int> attrs, std::vector<int> sizes,
                           std::vector<double> values);

  const std::vector<int>& attrs() const { return attrs_; }
  const std::vector<int>& sizes() const { return sizes_; }
  AttrSet attr_set() const { return AttrSet(attrs_); }
  int num_attrs() const { return static_cast<int>(attrs_.size()); }
  int64_t num_cells() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }
  double value(int64_t i) const { return values_[i]; }

  // Position of `attr` among attrs(), or -1 if absent.
  int AxisOf(int attr) const;

  // --- Elementwise binary operations over the union domain (broadcast). ---
  Factor Add(const Factor& other) const;
  Factor Subtract(const Factor& other) const;
  Factor Multiply(const Factor& other) const;

  // In-place accumulate of a factor whose attrs are a subset of this one's
  // (broadcast over the missing axes). Much cheaper than Add when shapes
  // already agree.
  void AddInPlace(const Factor& other, double scale = 1.0);

  void ScaleInPlace(double factor);
  void AddScalarInPlace(double shift);

  // --- Marginalization. `target` must be a subset of attrs(). ---
  // Sums out all attributes not in `target`.
  Factor SumTo(const AttrSet& target) const;
  // Log-space marginalization: logsumexp over the summed-out attributes.
  // Stable under -inf cells (structural zeros).
  Factor LogSumExpTo(const AttrSet& target) const;

  // Allocation-reusing variants: overwrite *out (which must not alias this)
  // with the marginal. When out's buffers already have capacity — e.g. a
  // cached message being recomputed — no heap allocation occurs, which is
  // what keeps Calibrate alloc-free after warm-up (DESIGN.md "Factor
  // kernels"). Results are bitwise identical to SumTo / LogSumExpTo.
  void SumToInto(const AttrSet& target, Factor* out) const;
  void LogSumExpToInto(const AttrSet& target, Factor* out) const;

  double Sum() const;
  double LogSumExp() const;
  double Max() const;

  // Returns exp(v - shift) cellwise (shift typically the log-partition).
  Factor Exp(double shift = 0.0) const;
  // In-place version of Exp (same chunking, bitwise-identical values).
  void ExpInPlace(double shift = 0.0);
  // Returns log(v) cellwise; log(0) = -inf.
  Factor Log() const;

  // ||this - other||_1 over identical shapes.
  double L1DistanceTo(const Factor& other) const;

 private:
  // Sets *out to the marginal shape for `target` (attrs/sizes/values
  // assigned in place so existing capacity is reused), every cell `fill`.
  void PrepareMarginalInto(const AttrSet& target, double fill,
                           Factor* out) const;

  std::vector<int> attrs_;
  std::vector<int> sizes_;
  std::vector<double> values_;
};

}  // namespace aim

#endif  // AIM_FACTOR_FACTOR_H_
