#include "factor/workspace.h"

#include <algorithm>
#include <new>

#include "util/logging.h"

namespace aim {

AlignedDoubleBuffer::~AlignedDoubleBuffer() {
  ::operator delete(data_, std::align_val_t(kAlignment));
}

void AlignedDoubleBuffer::Assign(int64_t n, double fill) {
  if (n > capacity_) {
    const int64_t cap = std::max(n, capacity_ * 2);
    ::operator delete(data_, std::align_val_t(kAlignment));
    data_ = static_cast<double*>(::operator new(
        static_cast<size_t>(cap) * sizeof(double),
        std::align_val_t(kAlignment)));
    capacity_ = cap;
  }
  size_ = n;
  std::fill_n(data_, n, fill);
}
namespace {

// FNV-1a over the (rank, num_operands, sizes, strides) key.
uint64_t HashKey(const std::vector<int>& sizes,
                 const std::vector<int64_t>* const* operand_strides,
                 int num_operands) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(sizes.size()));
  mix(static_cast<uint64_t>(num_operands));
  for (int s : sizes) mix(static_cast<uint64_t>(s));
  for (int k = 0; k < num_operands; ++k) {
    for (int64_t s : *operand_strides[k]) mix(static_cast<uint64_t>(s));
  }
  return h;
}

}  // namespace

FactorWorkspace& FactorWorkspace::Get() {
  thread_local FactorWorkspace workspace;
  return workspace;
}

const KernelPlan* FactorWorkspace::GetPlan(
    const std::vector<int>& sizes,
    const std::vector<int64_t>* const* operand_strides, int num_operands) {
  const int rank = static_cast<int>(sizes.size());
  if (rank > KernelPlan::kMaxAxes ||
      num_operands > KernelPlan::kMaxOperands) {
    return nullptr;
  }
  const uint64_t hash = HashKey(sizes, operand_strides, num_operands);
  CacheSlot& slot = slots_[hash & (kCacheSlots - 1)];
  if (slot.used && slot.hash == hash && slot.rank == rank &&
      slot.num_operands == num_operands) {
    bool match = true;
    for (int axis = 0; match && axis < rank; ++axis) {
      match = slot.sizes[axis] == sizes[axis];
    }
    for (int k = 0; match && k < num_operands; ++k) {
      for (int axis = 0; match && axis < rank; ++axis) {
        match = slot.strides[k][axis] == (*operand_strides[k])[axis];
      }
    }
    if (match) {
      ++plan_hits_;
      return &slot.plan;
    }
  }
  // Miss (or direct-mapped collision): rebuild and overwrite the slot.
  ++plan_misses_;
  slot.used = true;
  slot.hash = hash;
  slot.rank = rank;
  slot.num_operands = num_operands;
  for (int axis = 0; axis < rank; ++axis) slot.sizes[axis] = sizes[axis];
  for (int k = 0; k < num_operands; ++k) {
    for (int axis = 0; axis < rank; ++axis) {
      slot.strides[k][axis] = (*operand_strides[k])[axis];
    }
  }
  slot.plan = BuildKernelPlan(sizes, operand_strides, num_operands);
  if (!slot.plan.valid) {
    slot.used = false;  // do not cache unplannable shapes
    return nullptr;
  }
  return &slot.plan;
}

std::vector<int64_t>& FactorWorkspace::IndexBuf(int slot) {
  AIM_CHECK(slot >= 0 && slot < kIndexBufs);
  return index_bufs_[slot];
}

AlignedDoubleBuffer& FactorWorkspace::DoubleBuf(int slot) {
  AIM_CHECK(slot >= 0 && slot < kDoubleBufs);
  return double_bufs_[slot];
}

}  // namespace aim
