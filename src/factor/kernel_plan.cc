#include "factor/kernel_plan.h"

#include "util/logging.h"

namespace aim {

KernelPlan BuildKernelPlan(
    const std::vector<int>& sizes,
    const std::vector<int64_t>* const* operand_strides, int num_operands) {
  KernelPlan plan;
  AIM_CHECK_LE(num_operands, KernelPlan::kMaxOperands);
  plan.num_operands = num_operands;
  const int rank = static_cast<int>(sizes.size());
  for (int axis = 0; axis < rank; ++axis) {
    plan.total *= sizes[axis];
  }

  // Fuse axes from fastest (last) to slowest. Size-1 axes contribute
  // nothing to iteration (their coordinate is always 0) and are dropped
  // outright; a remaining axis merges into the current group when every
  // operand's stride satisfies the row-major contiguity condition
  // stride[axis] == group_stride * group_size (0 == 0 * n covers the
  // broadcast case).
  int64_t g_sizes[KernelPlan::kMaxAxes];
  int64_t g_strides[KernelPlan::kMaxOperands][KernelPlan::kMaxAxes];
  int ng = 0;
  for (int axis = rank - 1; axis >= 0; --axis) {
    if (sizes[axis] == 1) continue;
    bool merge = ng > 0;
    for (int k = 0; merge && k < num_operands; ++k) {
      if ((*operand_strides[k])[axis] !=
          g_strides[k][ng - 1] * g_sizes[ng - 1]) {
        merge = false;
      }
    }
    if (merge) {
      g_sizes[ng - 1] *= sizes[axis];
    } else {
      if (ng == KernelPlan::kMaxAxes) {
        plan.valid = false;
        return plan;
      }
      g_sizes[ng] = sizes[axis];
      for (int k = 0; k < num_operands; ++k) {
        g_strides[k][ng] = (*operand_strides[k])[axis];
      }
      ++ng;
    }
  }

  if (ng == 0) {
    // Rank 0 or all axes degenerate: a single 1-cell run.
    plan.inner_size = 1;
    plan.num_outer = 0;
    plan.valid = true;
    return plan;
  }

  // Group 0 is the fastest (the fused inner run); groups 1..ng-1 become the
  // outer odometer with plan axis 0 slowest (matching row-major order).
  plan.inner_size = g_sizes[0];
  for (int k = 0; k < num_operands; ++k) {
    plan.inner_strides[k] = g_strides[k][0];
  }
  plan.num_outer = ng - 1;
  for (int g = 1; g < ng; ++g) {
    const int axis = ng - 1 - g;  // reverse: slowest group -> plan axis 0
    plan.outer_sizes[axis] = g_sizes[g];
    for (int k = 0; k < num_operands; ++k) {
      plan.outer_strides[k][axis] = g_strides[k][g];
    }
  }
  plan.valid = true;
  return plan;
}

}  // namespace aim
