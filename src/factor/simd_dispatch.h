// Runtime SIMD dispatch for the flat factor kernels.
//
// The loop-collapse planner (kernel_plan.h) reduces every hot factor op to
// outer blocks x unit-stride inner runs. The inner-run bodies live behind
// the function-pointer table below, with one implementation per instruction
// set: a portable scalar set (always built, bit-for-bit the seed
// arithmetic), an AVX2+FMA set, and an AVX-512F set. The active table is
// chosen once, at first use, from a cpuid probe intersected with what the
// compiler could build, and can be narrowed by the AIM_SIMD environment
// variable or the SetSimdLevel() test seam.
//
// Kernel contract (DESIGN.md "SIMD backend"):
//   * Exact kernels — add/sub/mul (elementwise and broadcast), AddInPlace
//     accumulation, scatter-add, and the scatter-max used by LogSumExpTo
//     pass 1 — produce bitwise-identical results at every level: each lane
//     performs the same individual IEEE operations as the scalar loop, and
//     order-sensitive reductions (contiguous scatter-add) stay scalar.
//   * Transcendental kernels — vexp/vlog and the exp-accumulate of
//     LogSumExpTo pass 2 — use a vector polynomial exp/log at the AVX
//     levels. They are tolerance-gated: within a documented ULP bound of
//     the scalar libm path (tests/simd_test.cc), not bitwise. AIM_SIMD=
//     scalar restores the exact seed arithmetic everywhere.
//   * NaN handling: scatter-max poisons its destination with a canonical
//     quiet NaN when any contribution is NaN (at every level), and vexp /
//     vlog handle NaN/+-inf lanes explicitly (vlog maps non-positive
//     inputs, including NaN, to -inf — the scalar Factor::Log semantics).

#ifndef AIM_FACTOR_SIMD_DISPATCH_H_
#define AIM_FACTOR_SIMD_DISPATCH_H_

#include <cstdint>

namespace aim {

enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* ToString(SimdLevel level);

// Per-kernel function-pointer table. Pointers are never null in a table
// returned by the accessors below. "n" is the inner-run length in doubles;
// all pointers may be unaligned.
struct SimdOps {
  SimdLevel level;
  // --- Exact kernels (bitwise-identical at every level). ---
  // d[i] = a[i] op b[i]
  void (*add_vv)(double* d, const double* a, const double* b, int64_t n);
  void (*sub_vv)(double* d, const double* a, const double* b, int64_t n);
  void (*mul_vv)(double* d, const double* a, const double* b, int64_t n);
  // d[i] = a[i] op s  (vs) and d[i] = s - b[i]  (sv; only sub needs it)
  void (*add_vs)(double* d, const double* a, double s, int64_t n);
  void (*sub_vs)(double* d, const double* a, double s, int64_t n);
  void (*mul_vs)(double* d, const double* a, double s, int64_t n);
  void (*sub_sv)(double* d, double s, const double* b, int64_t n);
  // d[i] += scale * a[i]  /  d[i] += s  /  d[i] += a[i]
  void (*axpy)(double* d, const double* a, double scale, int64_t n);
  void (*add_scalar)(double* d, double s, int64_t n);
  void (*acc_add)(double* d, const double* a, int64_t n);
  // Scatter-max bodies (LogSumExpTo pass 1), NaN-poisoning: a NaN
  // contribution turns the destination into a canonical quiet NaN.
  //   acc_max: d[i] = nanmax(d[i], a[i])
  //   reduce_max: returns nanmax(m0, a[0..n))
  void (*acc_max)(double* d, const double* a, int64_t n);
  double (*reduce_max)(double m0, const double* a, int64_t n);
  // --- Transcendental kernels (ULP-gated at the AVX levels). ---
  // d[i] = exp(a[i] - shift); d == a allowed (ExpInPlace).
  void (*vexp)(double* d, const double* a, double shift, int64_t n);
  // d[i] = a[i] > 0 ? log(a[i]) : -inf; d == a allowed.
  void (*vlog)(double* d, const double* a, int64_t n);
  // Returns acc0 + sum_i exp(a[i] - m)   (LogSumExpTo pass 2, contracted
  // destination; caller has already handled m == -inf).
  double (*exp_acc)(double acc0, const double* a, double m, int64_t n);
  // d[i] += exp(a[i] - m[i]) for lanes where m[i] != -inf; other lanes
  // (structural zeros) leave d[i] untouched (LogSumExpTo pass 2,
  // unit-stride destination).
  void (*acc_exp)(double* d, const double* m, const double* a, int64_t n);
};

// Widest level the current CPU *and* this binary support (cpuid probe
// intersected with the per-file ISA flags CMake managed to enable).
SimdLevel DetectedSimdLevel();

// True when `level` can actually execute here (kScalar always can).
bool SimdLevelSupported(SimdLevel level);

// The level the process starts with: AIM_SIMD={auto,avx512,avx2,scalar}
// clamped to DetectedSimdLevel() (unsupported requests warn once on stderr
// and fall back). Unset or "auto" means DetectedSimdLevel().
SimdLevel DefaultSimdLevel();

// Current level / table. Reads are a single relaxed atomic load.
SimdLevel ActiveSimdLevel();
const SimdOps& ActiveSimdOps();

// Test/bench seam: force a level. Requests above DetectedSimdLevel() are
// clamped; returns the level actually installed.
SimdLevel SetSimdLevel(SimdLevel level);

// Table for an explicit level, or nullptr when unsupported in this
// binary/CPU. Lets tests sweep every available implementation directly.
const SimdOps* SimdOpsForLevel(SimdLevel level);

// Implemented in simd_avx2.cc / simd_avx512.cc (nullptr when the compiler
// could not build that ISA). Internal to the dispatch layer and tests.
const SimdOps* GetAvx2SimdOps();
const SimdOps* GetAvx512SimdOps();

}  // namespace aim

#endif  // AIM_FACTOR_SIMD_DISPATCH_H_
