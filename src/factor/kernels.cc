#include "factor/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace aim {
namespace {

bool FlatKernelsFromEnv() {
  const char* env = std::getenv("AIM_FLAT_KERNELS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

std::atomic<bool>& FlatKernelsFlag() {
  static std::atomic<bool> enabled{FlatKernelsFromEnv()};
  return enabled;
}

}  // namespace

bool FlatKernelsEnabled() {
  return FlatKernelsFlag().load(std::memory_order_relaxed);
}

void SetFlatKernelsEnabled(bool enabled) {
  FlatKernelsFlag().store(enabled, std::memory_order_relaxed);
}

}  // namespace aim
