#include "uncertainty/bounds.h"

#include <cmath>

#include "marginal/marginal.h"
#include "uncertainty/estimators.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

constexpr double kSqrt2OverPi = 0.7978845608028654;
const double kSqrt2Log2 = std::sqrt(2.0 * std::log(2.0));

}  // namespace

UncertaintyQuantifier::UncertaintyQuantifier(const Domain& domain,
                                             const MechanismResult& result,
                                             BoundOptions options)
    : domain_(domain), result_(result), options_(options) {}

std::optional<ConfidenceBound> UncertaintyQuantifier::BoundFor(
    const AttrSet& r, const Dataset& synthetic) const {
  AIM_CHECK(!r.empty());
  const double n_r = static_cast<double>(MarginalSize(domain_, r));
  std::vector<double> synth_marginal = ComputeMarginal(synthetic, r);

  // ---- Easy case (Theorem 3 / Corollary 1): supported marginals.
  std::optional<WeightedAverageEstimate> estimate =
      WeightedAverageEstimator(domain_, result_.log.measurements, r);
  if (estimate.has_value()) {
    ConfidenceBound out;
    out.supported = true;
    const double sigma_bar = estimate->sigma_bar;
    out.bound = L1Distance(synth_marginal, estimate->values) +
                kSqrt2Log2 * sigma_bar * n_r +
                options_.lambda * sigma_bar * std::sqrt(2.0 * n_r);
    return out;
  }

  // ---- Hard case (Theorem 4 / Corollary 2): last round with r in C_t.
  int last_round = -1;
  int candidate_index = -1;
  for (int t = static_cast<int>(result_.log.rounds.size()) - 1; t >= 0; --t) {
    const RoundInfo& info = result_.log.rounds[t];
    for (size_t j = 0; j < info.candidates.size(); ++j) {
      if (info.candidates[j].attrs == r) {
        last_round = t;
        candidate_index = static_cast<int>(j);
        break;
      }
    }
    if (last_round >= 0) break;
  }
  if (last_round < 0) return std::nullopt;

  const RoundInfo& info = result_.log.rounds[last_round];
  const double w_r = info.candidates[candidate_index].weight;
  if (w_r <= 0.0 || info.epsilon <= 0.0) return std::nullopt;
  // Selected candidate's weight and size.
  double w_rt = 1.0;
  double n_rt = static_cast<double>(MarginalSize(domain_, info.selected));
  for (const CandidateInfo& c : info.candidates) {
    if (c.attrs == info.selected) {
      w_rt = c.weight;
      break;
    }
  }
  const double delta_t = info.sensitivity;
  const double num_candidates =
      static_cast<double>(info.candidates.size());

  // B_r (Theorem 4).
  const double b_r =
      w_rt * info.estimated_error_on_selected +
      kSqrt2OverPi * info.sigma * (w_r * n_r - w_rt * n_rt) +
      (2.0 * delta_t / info.epsilon) * std::log(num_candidates);

  // Corollary 2's model-to-synthetic term ||M_r(D̂) - M_r(p̂_{t-1})||_1.
  // p̂_{t-1} for the final round is the recorded penultimate model; for
  // earlier rounds we use it as the closest retained iterate (the models
  // only improve between t and the end, so this tracks the paper's choice
  // of "the last round where r was a candidate").
  const MarkovRandomField* model = nullptr;
  if (result_.penultimate_model.has_value()) {
    model = &*result_.penultimate_model;
  } else if (result_.final_model.has_value()) {
    model = &*result_.final_model;
  }
  if (model == nullptr) return std::nullopt;
  double model_term =
      L1Distance(synth_marginal, model->MarginalVector(r));

  ConfidenceBound out;
  out.supported = false;
  out.round = last_round;
  out.bound = model_term +
              (b_r + options_.lambda1 * info.sigma * std::sqrt(n_rt) +
               options_.lambda2 * 2.0 * delta_t / info.epsilon) /
                  w_r;
  return out;
}

}  // namespace aim
