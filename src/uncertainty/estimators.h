// Weighted-average estimator for supported marginal queries (Theorem 2):
// each measurement whose attribute set contains r yields an unbiased
// estimate of M_r(D) by marginalization; the estimates are combined by
// inverse-variance weighting.

#ifndef AIM_UNCERTAINTY_ESTIMATORS_H_
#define AIM_UNCERTAINTY_ESTIMATORS_H_

#include <optional>
#include <vector>

#include "data/domain.h"
#include "marginal/attr_set.h"
#include "pgm/estimation.h"

namespace aim {

struct WeightedAverageEstimate {
  // ȳ_r: unbiased estimate of M_r(D), Gaussian with variance σ̄_r² per cell.
  std::vector<double> values;
  double sigma_bar = 0.0;
  int support_count = 0;  // measurements with r ⊆ r_i
};

// Returns nullopt when no measurement supports r (r ⊄ every r_i).
std::optional<WeightedAverageEstimate> WeightedAverageEstimator(
    const Domain& domain, const std::vector<Measurement>& measurements,
    const AttrSet& r);

}  // namespace aim

#endif  // AIM_UNCERTAINTY_ESTIMATORS_H_
