// A-posteriori per-query confidence bounds for AIM's output (Section 5).
//
// Supported marginals (r contained in some measured set) use the
// weighted-average estimator and Theorem 3 / Corollary 1. Unsupported
// marginals use the exponential-mechanism guarantee of Theorem 4 /
// Corollary 2, evaluated at the last round where r was a candidate. Both
// are one-sided bounds on ||M_r(D) - M_r(D̂)||_1 that hold with the stated
// probability and consume no additional privacy budget.

#ifndef AIM_UNCERTAINTY_BOUNDS_H_
#define AIM_UNCERTAINTY_BOUNDS_H_

#include <optional>

#include "data/dataset.h"
#include "marginal/attr_set.h"
#include "mechanisms/mechanism.h"

namespace aim {

struct BoundOptions {
  // Corollary 1 parameter: failure probability exp(-lambda^2).
  // lambda = 1.7 gives ~95% confidence (Section 6.6).
  double lambda = 1.7;
  // Corollary 2 parameters: failure probability exp(-lambda1^2/2) +
  // exp(-lambda2); lambda1 = 2.7, lambda2 = 3.7 give ~95%.
  double lambda1 = 2.7;
  double lambda2 = 3.7;
};

struct ConfidenceBound {
  double bound = 0.0;   // one-sided bound on ||M_r(D) - M_r(D̂)||_1
  bool supported = false;
  int round = -1;       // round used (unsupported case)
};

// Computes bounds from an AIM MechanismResult (requires
// record_candidates=true in AimOptions for the unsupported case, and the
// final/penultimate models for Corollary 2's model-to-data term).
class UncertaintyQuantifier {
 public:
  UncertaintyQuantifier(const Domain& domain, const MechanismResult& result,
                        BoundOptions options = {});

  // One-sided (1 - failure-probability) bound on ||M_r(D) - M_r(D̂)||_1 for
  // the synthetic dataset `synthetic` (normally result.synthetic). Returns
  // nullopt when r is neither supported nor ever a candidate.
  std::optional<ConfidenceBound> BoundFor(const AttrSet& r,
                                          const Dataset& synthetic) const;

 private:
  const Domain& domain_;
  const MechanismResult& result_;
  BoundOptions options_;
};

}  // namespace aim

#endif  // AIM_UNCERTAINTY_BOUNDS_H_
