#include "uncertainty/subsampling.h"

#include <cmath>
#include <unordered_map>

#include "marginal/marginal.h"
#include "parallel/parallel.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {

double ExpectedSubsamplingL1(const std::vector<double>& marginal, int64_t n,
                             int64_t k) {
  AIM_CHECK_GT(n, 0);
  AIM_CHECK_GT(k, 0);
  // Lemma 3: the L1 deviation of a Multinomial(k, p) sample mean is the sum
  // of per-cell binomial mean deviations.
  double total = 0.0;
  for (double count : marginal) {
    double p = count / static_cast<double>(n);
    if (p <= 0.0 || p >= 1.0) continue;
    total += BinomialMeanDeviation(k, p);
  }
  return total;
}

double ExpectedSubsamplingWorkloadError(const Dataset& data,
                                        const Workload& workload, int64_t k) {
  AIM_CHECK_GT(workload.num_queries(), 0);
  // Per-query terms are independent; compute them in parallel and sum in
  // query order (bitwise identical to the serial loop).
  std::vector<double> terms = ParallelMap(
      static_cast<int64_t>(workload.num_queries()), [&](int64_t i) {
        const auto& q = workload.query(static_cast<int>(i));
        std::vector<double> marginal = ComputeMarginal(data, q.attrs);
        return q.weight *
               ExpectedSubsamplingL1(marginal, data.num_records(), k);
      });
  double total = 0.0;
  for (double term : terms) total += term;
  return total / workload.num_queries();
}

double MatchingSubsamplingFraction(const Dataset& data,
                                   const Workload& workload,
                                   double target_error) {
  const int64_t n = data.num_records();
  AIM_CHECK_GT(n, 0);
  AIM_CHECK_GT(target_error, 0.0);
  // Precompute marginals once; the bisection re-evaluates only the
  // closed-form deviations.
  std::vector<std::vector<double>> marginals;
  std::vector<double> weights;
  for (const auto& q : workload.queries()) {
    marginals.push_back(ComputeMarginal(data, q.attrs));
    weights.push_back(q.weight);
  }
  auto error_at = [&](int64_t k) {
    double total = 0.0;
    for (size_t i = 0; i < marginals.size(); ++i) {
      total += weights[i] * ExpectedSubsamplingL1(marginals[i], n, k);
    }
    return total / static_cast<double>(marginals.size());
  };
  if (error_at(n) >= target_error) return 1.0;
  if (error_at(1) <= target_error) return 1.0 / static_cast<double>(n);
  int64_t lo = 1, hi = n;  // error(lo) > target >= error(hi)
  while (hi - lo > 1) {
    int64_t mid = lo + (hi - lo) / 2;
    if (error_at(mid) > target_error) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<double>(hi) / static_cast<double>(n);
}

}  // namespace aim
