#include "uncertainty/estimators.h"

#include <cmath>

#include "factor/factor.h"
#include "marginal/marginal.h"
#include "util/logging.h"

namespace aim {

std::optional<WeightedAverageEstimate> WeightedAverageEstimator(
    const Domain& domain, const std::vector<Measurement>& measurements,
    const AttrSet& r) {
  AIM_CHECK(!r.empty());
  const int64_t n_r = MarginalSize(domain, r);
  std::vector<double> weighted_sum(n_r, 0.0);
  double precision = 0.0;  // sum of 1/var_i
  int support = 0;
  for (const Measurement& m : measurements) {
    if (!r.IsSubsetOf(m.attrs)) continue;
    ++support;
    // Project ỹ_i down to r: summing n_{r_i}/n_r iid cells multiplies the
    // per-cell variance by n_{r_i}/n_r.
    std::vector<int> sizes;
    for (int attr : m.attrs) sizes.push_back(domain.size(attr));
    Factor projected =
        Factor::FromValues(m.attrs.attrs(), std::move(sizes), m.values)
            .SumTo(r);
    const double n_ri = static_cast<double>(MarginalSize(domain, m.attrs));
    const double variance =
        (n_ri / static_cast<double>(n_r)) * m.sigma * m.sigma;
    const double w = 1.0 / variance;
    precision += w;
    for (int64_t c = 0; c < n_r; ++c) {
      weighted_sum[c] += w * projected.value(c);
    }
  }
  if (support == 0) return std::nullopt;
  WeightedAverageEstimate out;
  out.values.resize(n_r);
  for (int64_t c = 0; c < n_r; ++c) {
    out.values[c] = weighted_sum[c] / precision;
  }
  out.sigma_bar = std::sqrt(1.0 / precision);
  out.support_count = support;
  return out;
}

}  // namespace aim
