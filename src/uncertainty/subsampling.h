// Appendix C: the (non-private) subsampling baseline whose expected
// workload error is available in closed form (Theorem 7, via the binomial
// mean-deviation formula of Lemma 2), and the "matching fraction"
// interpretation of mechanism error: the fraction K/N of records a
// with-replacement resample needs to match a given error level.

#ifndef AIM_UNCERTAINTY_SUBSAMPLING_H_
#define AIM_UNCERTAINTY_SUBSAMPLING_H_

#include <cstdint>

#include "data/dataset.h"
#include "marginal/workload.h"

namespace aim {

// E || (1/N) M_r(D) - (1/K) M_r(D̂) ||_1 for D̂ a K-record with-replacement
// resample of D (Theorem 7). `marginal` holds the raw counts of M_r(D).
double ExpectedSubsamplingL1(const std::vector<double>& marginal, int64_t n,
                             int64_t k);

// Expected normalized workload error (Definition 2 with per-dataset
// normalization) of the K-record subsampling mechanism: the workload-
// weighted mean of ExpectedSubsamplingL1 over the queries.
double ExpectedSubsamplingWorkloadError(const Dataset& data,
                                        const Workload& workload, int64_t k);

// The subsampling fraction f = K/N whose expected workload error equals
// `target_error`, found by bisection over K (error is decreasing in K).
// Returns 1.0 if even a full-size resample has higher expected error than
// the target (i.e., the mechanism beats resampling the entire dataset).
double MatchingSubsamplingFraction(const Dataset& data,
                                   const Workload& workload,
                                   double target_error);

}  // namespace aim

#endif  // AIM_UNCERTAINTY_SUBSAMPLING_H_
