// Linear queries over low-dimensional marginals (Section 7, "Handling More
// General Workloads"): a linear query is <coefficients, M_r(D)> for some
// attribute set r. Range queries over discretized numerical attributes are
// the canonical example; this module provides evaluation of arbitrary
// linear-query workloads on real or synthetic data, plus generators for
// prefix-range and random-range workloads.
//
// Synthetic data from any select-measure-generate mechanism answers these
// for free — this module quantifies how well, beyond the marginal workload
// the mechanism optimized.

#ifndef AIM_MARGINAL_LINEAR_QUERY_H_
#define AIM_MARGINAL_LINEAR_QUERY_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "marginal/attr_set.h"

namespace aim {

// answer = sum_t coefficients[t] * M_r(D)[t], with t indexed by the
// library's row-major marginal convention.
struct LinearQuery {
  AttrSet attrs;
  std::vector<double> coefficients;
};

// Evaluates the query against a dataset.
double AnswerLinearQuery(const Dataset& data, const LinearQuery& query);

// Evaluates the query against a precomputed marginal on query.attrs.
double AnswerLinearQuery(const std::vector<double>& marginal,
                         const LinearQuery& query);

// All prefix-range queries over a single attribute: query k counts records
// with value <= k (k = 0 .. n_attr - 2; the full range is omitted as
// trivial).
std::vector<LinearQuery> PrefixRangeQueries(const Domain& domain, int attr);

// `count` random axis-aligned 2-dimensional range queries: a random
// attribute pair and a random sub-rectangle of their joint domain.
// Deterministic in `seed`.
std::vector<LinearQuery> RandomRangeQueryWorkload(const Domain& domain,
                                                  int count, uint64_t seed);

// Mean absolute error of `synthetic` on the queries, normalized by the real
// record count (comparable across workloads like Definition 2).
double LinearQueryError(const Dataset& data, const Dataset& synthetic,
                        const std::vector<LinearQuery>& queries);

}  // namespace aim

#endif  // AIM_MARGINAL_LINEAR_QUERY_H_
