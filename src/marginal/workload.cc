#include "marginal/workload.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"
#include "util/rng.h"

namespace aim {
namespace {

// Enumerates all size-k subsets of {0..d-1}, invoking `fn` on each.
template <typename Fn>
void ForEachSubset(int d, int k, Fn&& fn) {
  AIM_CHECK_GE(k, 1);
  if (k > d) return;
  std::vector<int> subset(k);
  for (int i = 0; i < k; ++i) subset[i] = i;
  while (true) {
    fn(subset);
    int i = k - 1;
    while (i >= 0 && subset[i] == d - k + i) --i;
    if (i < 0) break;
    ++subset[i];
    for (int j = i + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
  }
}

// Enumerates all non-empty subsets of the (small) attribute set `base`.
void AddAllNonEmptySubsets(const AttrSet& base, std::set<AttrSet>* out) {
  const std::vector<int>& attrs = base.attrs();
  const int m = static_cast<int>(attrs.size());
  AIM_CHECK_LE(m, 20) << "workload query too wide for subset enumeration";
  for (int mask = 1; mask < (1 << m); ++mask) {
    std::vector<int> subset;
    for (int j = 0; j < m; ++j) {
      if (mask & (1 << j)) subset.push_back(attrs[j]);
    }
    out->insert(AttrSet(std::move(subset)));
  }
}

}  // namespace

Workload::Workload(std::vector<WorkloadQuery> queries)
    : queries_(std::move(queries)) {
  for (const auto& q : queries_) {
    AIM_CHECK(!q.attrs.empty());
    AIM_CHECK_GE(q.weight, 0.0);
  }
}

void Workload::Add(AttrSet attrs, double weight) {
  AIM_CHECK(!attrs.empty());
  AIM_CHECK_GE(weight, 0.0);
  queries_.push_back({std::move(attrs), weight});
}

bool Workload::CoveredBy(const AttrSet& attrs) const {
  for (const auto& q : queries_) {
    if (q.attrs.IsSubsetOf(attrs)) return true;
  }
  return false;
}

Workload AllKWayWorkload(const Domain& domain, int k) {
  Workload workload;
  ForEachSubset(domain.num_attributes(), k, [&](const std::vector<int>& s) {
    workload.Add(AttrSet(s));
  });
  return workload;
}

Workload TargetWorkload(const Domain& domain, int k, int target_attr) {
  AIM_CHECK_GE(target_attr, 0);
  AIM_CHECK_LT(target_attr, domain.num_attributes());
  Workload workload;
  ForEachSubset(domain.num_attributes(), k, [&](const std::vector<int>& s) {
    if (std::find(s.begin(), s.end(), target_attr) != s.end()) {
      workload.Add(AttrSet(s));
    }
  });
  return workload;
}

Workload SkewedWorkload(const Domain& domain, int k, int num_queries,
                        uint64_t seed) {
  const int d = domain.num_attributes();
  AIM_CHECK_GE(d, k);
  Rng rng(seed);
  // Squared-exponential attribute weights: w_i = exp(Z_i)^2 with Z ~ N(0,1).
  std::vector<double> attr_weights(d);
  for (int i = 0; i < d; ++i) {
    double z = rng.Gaussian();
    attr_weights[i] = std::exp(z) * std::exp(z);
  }
  std::set<AttrSet> chosen;
  Workload workload;
  int attempts = 0;
  const int max_attempts = num_queries * 1000;
  while (static_cast<int>(chosen.size()) < num_queries &&
         attempts < max_attempts) {
    ++attempts;
    // Sample k distinct attributes proportional to their weights.
    std::vector<double> weights = attr_weights;
    std::vector<int> picked;
    for (int j = 0; j < k; ++j) {
      int attr = rng.SampleDiscrete(weights);
      picked.push_back(attr);
      weights[attr] = 0.0;
    }
    AttrSet attrs(picked);
    if (chosen.insert(attrs).second) {
      workload.Add(attrs);
    }
  }
  // Small domains may not have `num_queries` distinct triples; the loop
  // above terminates with all of them in that case.
  return workload;
}

std::vector<AttrSet> DownwardClosure(const Workload& workload) {
  std::set<AttrSet> closure;
  for (const auto& q : workload.queries()) {
    AddAllNonEmptySubsets(q.attrs, &closure);
  }
  return std::vector<AttrSet>(closure.begin(), closure.end());
}

double WorkloadWeight(const Workload& workload, const AttrSet& r) {
  double weight = 0.0;
  for (const auto& q : workload.queries()) {
    weight += q.weight * r.IntersectionSize(q.attrs);
  }
  return weight;
}

}  // namespace aim
