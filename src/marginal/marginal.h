// Marginal computation M_r(D) (Definition 1) and the indexing conventions
// shared across the library.
//
// Convention: the marginal vector for attribute set r = {a_1 < ... < a_m} is
// laid out row-major with the LAST attribute varying fastest:
//   index(t) = sum_j t[a_j] * stride[j],  stride[m-1] = 1,
//   stride[j] = stride[j+1] * n_{a_{j+1}}.

#ifndef AIM_MARGINAL_MARGINAL_H_
#define AIM_MARGINAL_MARGINAL_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "marginal/attr_set.h"

namespace aim {

// Product of the domain sizes of the attributes in r (n_r in the paper).
int64_t MarginalSize(const Domain& domain, const AttrSet& attrs);

// Precomputed strides for mapping records / coordinate tuples to cells of
// the marginal on `attrs`.
class MarginalIndexer {
 public:
  MarginalIndexer(const Domain& domain, const AttrSet& attrs);

  int64_t size() const { return size_; }
  const AttrSet& attrs() const { return attrs_; }

  // Cell index for a record of the dataset.
  int64_t IndexOfRecord(const Dataset& data, int64_t row) const {
    int64_t index = 0;
    for (size_t j = 0; j < attr_ids_.size(); ++j) {
      index += static_cast<int64_t>(data.value(row, attr_ids_[j])) *
               strides_[j];
    }
    return index;
  }

  // Cell index for a coordinate tuple aligned with attrs() order.
  int64_t IndexOfTuple(const std::vector<int>& tuple) const;

  // Inverse of IndexOfTuple.
  std::vector<int> TupleOfIndex(int64_t index) const;
  // Buffer-reusing variant for per-cell loops (GenerateSyntheticData walks
  // every clique cell): writes the tuple into *out without allocating once
  // out has capacity.
  void TupleOfIndex(int64_t index, std::vector<int>* out) const;

 private:
  AttrSet attrs_;
  std::vector<int> attr_ids_;
  std::vector<int> sizes_;
  std::vector<int64_t> strides_;
  int64_t size_;
};

// Computes the marginal (vector of counts) of `data` on `attrs`.
std::vector<double> ComputeMarginal(const Dataset& data, const AttrSet& attrs);

// As above but each record contributes `weight` instead of 1 (used to
// compare datasets of different sizes on a common scale).
std::vector<double> ComputeMarginal(const Dataset& data, const AttrSet& attrs,
                                    double weight);

}  // namespace aim

#endif  // AIM_MARGINAL_MARGINAL_H_
