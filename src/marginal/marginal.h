// Marginal computation M_r(D) (Definition 1) and the indexing conventions
// shared across the library.
//
// Convention: the marginal vector for attribute set r = {a_1 < ... < a_m} is
// laid out row-major with the LAST attribute varying fastest:
//   index(t) = sum_j t[a_j] * stride[j],  stride[m-1] = 1,
//   stride[j] = stride[j+1] * n_{a_{j+1}}.

#ifndef AIM_MARGINAL_MARGINAL_H_
#define AIM_MARGINAL_MARGINAL_H_

#include <cstdint>
#include <vector>

#include "data/data_source.h"
#include "data/dataset.h"
#include "marginal/attr_set.h"

namespace aim {

// Product of the domain sizes of the attributes in r (n_r in the paper).
int64_t MarginalSize(const Domain& domain, const AttrSet& attrs);

// Precomputed strides for mapping records / coordinate tuples to cells of
// the marginal on `attrs`.
class MarginalIndexer {
 public:
  MarginalIndexer(const Domain& domain, const AttrSet& attrs);

  int64_t size() const { return size_; }
  const AttrSet& attrs() const { return attrs_; }

  // Cell index for a record of the dataset.
  int64_t IndexOfRecord(const Dataset& data, int64_t row) const {
    int64_t index = 0;
    for (size_t j = 0; j < attr_ids_.size(); ++j) {
      index += static_cast<int64_t>(data.value(row, attr_ids_[j])) *
               strides_[j];
    }
    return index;
  }

  // Cell index for row `i` of a set of per-attribute column views aligned
  // with attrs() order (the streaming counting path).
  int64_t IndexOfViews(const ColumnView* views, int64_t i) const {
    int64_t index = 0;
    for (size_t j = 0; j < strides_.size(); ++j) {
      index += static_cast<int64_t>(views[j].at(i)) * strides_[j];
    }
    return index;
  }

  // Cell index for a coordinate tuple aligned with attrs() order.
  int64_t IndexOfTuple(const std::vector<int>& tuple) const;

  // Inverse of IndexOfTuple.
  std::vector<int> TupleOfIndex(int64_t index) const;
  // Buffer-reusing variant for per-cell loops (GenerateSyntheticData walks
  // every clique cell): writes the tuple into *out without allocating once
  // out has capacity.
  void TupleOfIndex(int64_t index, std::vector<int>* out) const;

 private:
  AttrSet attrs_;
  std::vector<int> attr_ids_;
  std::vector<int> sizes_;
  std::vector<int64_t> strides_;
  int64_t size_;
};

// Tuning knobs for the streaming counting engine. The defaults reproduce
// the classic in-memory behaviour; out-of-core callers bound their working
// set by fixing chunk_rows and turning on release_pages.
struct MarginalCountOptions {
  // Rows per counting chunk. <= 0 picks the automatic grain (>= 16384 rows,
  // sized so the per-chunk scratch histograms total at most ~8 MB). The
  // result is bitwise identical for EVERY chunk size: chunks count into
  // int64 histograms and integer addition is exact and associative.
  int64_t chunk_rows = 0;

  // After counting a chunk, hint the source to drop the pages backing it
  // (DataSource::ReleaseRows). With a fixed chunk_rows this bounds the
  // resident working set of a pass over an mmap-backed store regardless of
  // file size.
  bool release_pages = false;
};

// Computes the marginal (vector of counts) of `source` on `attrs`, one
// streaming pass per shard, each record contributing `weight`. Per-chunk
// int64 histograms merge in chunk order within a shard; shard histograms
// combine by pairwise tree-reduce; the single final scale by `weight`
// happens after all integer accumulation. Counts are therefore bitwise
// identical across every (chunk size, shard count, thread count)
// combination, and identical to the in-memory Dataset overloads.
std::vector<double> ComputeMarginal(const DataSource& source,
                                    const AttrSet& attrs, double weight = 1.0,
                                    const MarginalCountOptions& options = {});

// Computes the marginal (vector of counts) of `data` on `attrs`.
// (Delegates to the streaming engine through a DatasetSource view.)
std::vector<double> ComputeMarginal(const Dataset& data, const AttrSet& attrs);

// As above but each record contributes `weight` instead of 1 (used to
// compare datasets of different sizes on a common scale).
std::vector<double> ComputeMarginal(const Dataset& data, const AttrSet& attrs,
                                    double weight);

}  // namespace aim

#endif  // AIM_MARGINAL_MARGINAL_H_
