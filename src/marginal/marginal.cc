#include "marginal/marginal.h"

#include <algorithm>

#include "parallel/parallel.h"
#include "util/logging.h"

namespace aim {

int64_t MarginalSize(const Domain& domain, const AttrSet& attrs) {
  return domain.ProjectionSize(attrs.attrs());
}

MarginalIndexer::MarginalIndexer(const Domain& domain, const AttrSet& attrs)
    : attrs_(attrs), attr_ids_(attrs.attrs()) {
  sizes_.reserve(attr_ids_.size());
  for (int attr : attr_ids_) sizes_.push_back(domain.size(attr));
  strides_.assign(attr_ids_.size(), 1);
  for (int j = static_cast<int>(attr_ids_.size()) - 2; j >= 0; --j) {
    strides_[j] = strides_[j + 1] * sizes_[j + 1];
  }
  size_ = attr_ids_.empty() ? 1 : strides_[0] * sizes_[0];
}

int64_t MarginalIndexer::IndexOfTuple(const std::vector<int>& tuple) const {
  AIM_CHECK_EQ(tuple.size(), attr_ids_.size());
  int64_t index = 0;
  for (size_t j = 0; j < tuple.size(); ++j) {
    AIM_DCHECK(tuple[j] >= 0 && tuple[j] < sizes_[j]);
    index += static_cast<int64_t>(tuple[j]) * strides_[j];
  }
  return index;
}

std::vector<int> MarginalIndexer::TupleOfIndex(int64_t index) const {
  std::vector<int> tuple;
  TupleOfIndex(index, &tuple);
  return tuple;
}

void MarginalIndexer::TupleOfIndex(int64_t index,
                                   std::vector<int>* out) const {
  AIM_CHECK(index >= 0 && index < size_);
  out->assign(attr_ids_.size(), 0);
  for (size_t j = 0; j < attr_ids_.size(); ++j) {
    (*out)[j] = static_cast<int>(index / strides_[j]);
    index %= strides_[j];
  }
}

std::vector<double> ComputeMarginal(const Dataset& data, const AttrSet& attrs,
                                    double weight) {
  MarginalIndexer indexer(data.domain(), attrs);
  const int64_t n = data.num_records();
  // Records are partitioned into chunks, each chunk counts into its own
  // histogram, and the histograms merge in chunk order. The chunk plan
  // depends only on (n, cells) — never the thread count — so the result is
  // bitwise identical at any parallelism level. The grain floor bounds the
  // scratch histograms at ~8 MB for wide marginals.
  constexpr int64_t kRowGrain = 16384;
  const int64_t max_chunks = std::clamp<int64_t>(
      (int64_t{8} << 20) / (8 * std::max<int64_t>(1, indexer.size())), 1, 64);
  const int64_t grain =
      std::max(kRowGrain, (n + max_chunks - 1) / std::max<int64_t>(1, max_chunks));
  std::vector<std::vector<double>> partial = ParallelMapChunks(
      0, n, grain, [&](int64_t row_begin, int64_t row_end) {
        std::vector<double> local(indexer.size(), 0.0);
        for (int64_t row = row_begin; row < row_end; ++row) {
          local[indexer.IndexOfRecord(data, row)] += weight;
        }
        return local;
      });
  std::vector<double> counts(indexer.size(), 0.0);
  for (const std::vector<double>& local : partial) {
    for (int64_t i = 0; i < indexer.size(); ++i) counts[i] += local[i];
  }
  return counts;
}

std::vector<double> ComputeMarginal(const Dataset& data,
                                    const AttrSet& attrs) {
  return ComputeMarginal(data, attrs, 1.0);
}

}  // namespace aim
