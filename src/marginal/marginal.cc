#include "marginal/marginal.h"

#include "util/logging.h"

namespace aim {

int64_t MarginalSize(const Domain& domain, const AttrSet& attrs) {
  return domain.ProjectionSize(attrs.attrs());
}

MarginalIndexer::MarginalIndexer(const Domain& domain, const AttrSet& attrs)
    : attrs_(attrs), attr_ids_(attrs.attrs()) {
  sizes_.reserve(attr_ids_.size());
  for (int attr : attr_ids_) sizes_.push_back(domain.size(attr));
  strides_.assign(attr_ids_.size(), 1);
  for (int j = static_cast<int>(attr_ids_.size()) - 2; j >= 0; --j) {
    strides_[j] = strides_[j + 1] * sizes_[j + 1];
  }
  size_ = attr_ids_.empty() ? 1 : strides_[0] * sizes_[0];
}

int64_t MarginalIndexer::IndexOfTuple(const std::vector<int>& tuple) const {
  AIM_CHECK_EQ(tuple.size(), attr_ids_.size());
  int64_t index = 0;
  for (size_t j = 0; j < tuple.size(); ++j) {
    AIM_DCHECK(tuple[j] >= 0 && tuple[j] < sizes_[j]);
    index += static_cast<int64_t>(tuple[j]) * strides_[j];
  }
  return index;
}

std::vector<int> MarginalIndexer::TupleOfIndex(int64_t index) const {
  AIM_CHECK(index >= 0 && index < size_);
  std::vector<int> tuple(attr_ids_.size());
  for (size_t j = 0; j < attr_ids_.size(); ++j) {
    tuple[j] = static_cast<int>(index / strides_[j]);
    index %= strides_[j];
  }
  return tuple;
}

std::vector<double> ComputeMarginal(const Dataset& data, const AttrSet& attrs,
                                    double weight) {
  MarginalIndexer indexer(data.domain(), attrs);
  std::vector<double> counts(indexer.size(), 0.0);
  for (int64_t row = 0; row < data.num_records(); ++row) {
    counts[indexer.IndexOfRecord(data, row)] += weight;
  }
  return counts;
}

std::vector<double> ComputeMarginal(const Dataset& data,
                                    const AttrSet& attrs) {
  return ComputeMarginal(data, attrs, 1.0);
}

}  // namespace aim
