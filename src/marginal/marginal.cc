#include "marginal/marginal.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "parallel/parallel.h"
#include "util/logging.h"

namespace aim {

int64_t MarginalSize(const Domain& domain, const AttrSet& attrs) {
  return domain.ProjectionSize(attrs.attrs());
}

MarginalIndexer::MarginalIndexer(const Domain& domain, const AttrSet& attrs)
    : attrs_(attrs), attr_ids_(attrs.attrs()) {
  sizes_.reserve(attr_ids_.size());
  for (int attr : attr_ids_) sizes_.push_back(domain.size(attr));
  strides_.assign(attr_ids_.size(), 1);
  for (int j = static_cast<int>(attr_ids_.size()) - 2; j >= 0; --j) {
    strides_[j] = strides_[j + 1] * sizes_[j + 1];
  }
  size_ = attr_ids_.empty() ? 1 : strides_[0] * sizes_[0];
}

int64_t MarginalIndexer::IndexOfTuple(const std::vector<int>& tuple) const {
  AIM_CHECK_EQ(tuple.size(), attr_ids_.size());
  int64_t index = 0;
  for (size_t j = 0; j < tuple.size(); ++j) {
    AIM_DCHECK(tuple[j] >= 0 && tuple[j] < sizes_[j]);
    index += static_cast<int64_t>(tuple[j]) * strides_[j];
  }
  return index;
}

std::vector<int> MarginalIndexer::TupleOfIndex(int64_t index) const {
  std::vector<int> tuple;
  TupleOfIndex(index, &tuple);
  return tuple;
}

void MarginalIndexer::TupleOfIndex(int64_t index,
                                   std::vector<int>* out) const {
  AIM_CHECK(index >= 0 && index < size_);
  out->assign(attr_ids_.size(), 0);
  for (size_t j = 0; j < attr_ids_.size(); ++j) {
    (*out)[j] = static_cast<int>(index / strides_[j]);
    index %= strides_[j];
  }
}

namespace {

// Automatic rows-per-chunk: at least 16384 rows (amortizes scratch
// allocation), at most 64 chunks, fewer for wide marginals so the per-chunk
// scratch histograms total at most ~8 MB. A function of (n, cells) only —
// never the thread count — matching the parallel determinism contract.
int64_t AutoChunkRows(int64_t n, int64_t cells) {
  constexpr int64_t kRowGrain = 16384;
  const int64_t max_chunks = std::clamp<int64_t>(
      (int64_t{8} << 20) / (8 * std::max<int64_t>(1, cells)), 1, 64);
  return std::max(kRowGrain, (n + max_chunks - 1) / max_chunks);
}

// Counts one shard into an int64 histogram: per-chunk local histograms
// (zero-copy column views where the source supports them), merged in chunk
// order. Integer accumulation makes the merge exact, so the histogram is
// identical for every chunk plan and thread count.
std::vector<int64_t> CountShard(const DataSource& source, int shard,
                                const MarginalIndexer& indexer,
                                const std::vector<int>& attr_ids,
                                const MarginalCountOptions& options,
                                int64_t* chunks_scanned) {
  const int64_t n = source.ShardRecords(shard);
  const int64_t grain = options.chunk_rows > 0
                            ? options.chunk_rows
                            : AutoChunkRows(n, indexer.size());
  const int m = static_cast<int>(attr_ids.size());
  std::vector<std::vector<int64_t>> partial = ParallelMapChunks(
      0, n, grain, [&](int64_t row_begin, int64_t row_end) {
        const int64_t rows = row_end - row_begin;
        std::vector<ColumnView> views(m);
        std::vector<std::vector<int32_t>> scratch(m);
        for (int j = 0; j < m; ++j) {
          if (!source.TryColumnView(shard, attr_ids[j], row_begin, row_end,
                                    &views[j])) {
            scratch[j].resize(static_cast<size_t>(rows));
            source.ReadColumn(shard, attr_ids[j], row_begin, row_end,
                              scratch[j].data());
            views[j] = ColumnView{scratch[j].data(), 4};
          }
        }
        std::vector<int64_t> local(indexer.size(), 0);
        for (int64_t i = 0; i < rows; ++i) {
          ++local[indexer.IndexOfViews(views.data(), i)];
        }
        if (options.release_pages) {
          source.ReleaseRows(shard, row_begin, row_end);
        }
        return local;
      });
  *chunks_scanned += static_cast<int64_t>(partial.size());
  std::vector<int64_t> counts(indexer.size(), 0);
  for (const std::vector<int64_t>& local : partial) {
    for (int64_t i = 0; i < indexer.size(); ++i) counts[i] += local[i];
  }
  return counts;
}

}  // namespace

std::vector<double> ComputeMarginal(const DataSource& source,
                                    const AttrSet& attrs, double weight,
                                    const MarginalCountOptions& options) {
  MarginalIndexer indexer(source.domain(), attrs);
  const std::vector<int>& attr_ids = attrs.attrs();
  const int num_shards = source.num_shards();

  int64_t chunks_scanned = 0;
  std::vector<std::vector<int64_t>> shard_counts;
  shard_counts.reserve(static_cast<size_t>(num_shards));
  for (int shard = 0; shard < num_shards; ++shard) {
    shard_counts.push_back(
        CountShard(source, shard, indexer, attr_ids, options,
                   &chunks_scanned));
  }

  // Pairwise tree-reduce across shards. Also exact (integer adds); the tree
  // shape bounds the combine critical path at ceil(log2(shards)) for future
  // distributed reducers and is what the depth gauge reports.
  int reduce_depth = 0;
  while (shard_counts.size() > 1) {
    ++reduce_depth;
    size_t out = 0;
    for (size_t i = 0; i + 1 < shard_counts.size(); i += 2) {
      for (int64_t c = 0; c < indexer.size(); ++c) {
        shard_counts[i][c] += shard_counts[i + 1][c];
      }
      if (out != i) shard_counts[out] = std::move(shard_counts[i]);
      ++out;
    }
    if (shard_counts.size() % 2 == 1) {
      if (out != shard_counts.size() - 1) {
        shard_counts[out] = std::move(shard_counts.back());
      }
      ++out;
    }
    shard_counts.resize(out);
  }

  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter& chunks = registry.counter("store.chunks_scanned");
    static Gauge& depth = registry.gauge("store.shard_reduce_depth");
    chunks.Add(chunks_scanned);
    depth.Set(static_cast<double>(reduce_depth));
  }

  // One final scale: double(count) * weight. Exact for weight == 1 (counts
  // are integers <= 2^53) and within half an ulp otherwise — unlike the
  // repeated-addition alternative, independent of the accumulation order.
  if (shard_counts.empty()) shard_counts.emplace_back(indexer.size(), 0);
  const std::vector<int64_t>& total = shard_counts.front();
  std::vector<double> counts(indexer.size());
  for (int64_t i = 0; i < indexer.size(); ++i) {
    counts[i] = static_cast<double>(total[i]) * weight;
  }
  return counts;
}

std::vector<double> ComputeMarginal(const Dataset& data, const AttrSet& attrs,
                                    double weight) {
  return ComputeMarginal(DatasetSource(data), attrs, weight);
}

std::vector<double> ComputeMarginal(const Dataset& data,
                                    const AttrSet& attrs) {
  return ComputeMarginal(data, attrs, 1.0);
}

}  // namespace aim
