#include "marginal/attr_set.h"

#include <algorithm>

#include "util/logging.h"

namespace aim {
namespace {

std::vector<int> Normalize(std::vector<int> attrs) {
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  for (int attr : attrs) AIM_CHECK_GE(attr, 0);
  return attrs;
}

}  // namespace

AttrSet::AttrSet(std::initializer_list<int> attrs)
    : attrs_(Normalize(std::vector<int>(attrs))) {}

AttrSet::AttrSet(std::vector<int> attrs) : attrs_(Normalize(std::move(attrs))) {}

bool AttrSet::Contains(int attr) const {
  return std::binary_search(attrs_.begin(), attrs_.end(), attr);
}

bool AttrSet::IsSubsetOf(const AttrSet& other) const {
  return std::includes(other.attrs_.begin(), other.attrs_.end(),
                       attrs_.begin(), attrs_.end());
}

AttrSet AttrSet::Union(const AttrSet& other) const {
  std::vector<int> merged;
  merged.reserve(attrs_.size() + other.attrs_.size());
  std::set_union(attrs_.begin(), attrs_.end(), other.attrs_.begin(),
                 other.attrs_.end(), std::back_inserter(merged));
  AttrSet out;
  out.attrs_ = std::move(merged);
  return out;
}

AttrSet AttrSet::Intersect(const AttrSet& other) const {
  std::vector<int> shared;
  std::set_intersection(attrs_.begin(), attrs_.end(), other.attrs_.begin(),
                        other.attrs_.end(), std::back_inserter(shared));
  AttrSet out;
  out.attrs_ = std::move(shared);
  return out;
}

AttrSet AttrSet::Difference(const AttrSet& other) const {
  std::vector<int> rest;
  std::set_difference(attrs_.begin(), attrs_.end(), other.attrs_.begin(),
                      other.attrs_.end(), std::back_inserter(rest));
  AttrSet out;
  out.attrs_ = std::move(rest);
  return out;
}

int AttrSet::IntersectionSize(const AttrSet& other) const {
  int count = 0;
  size_t i = 0, j = 0;
  while (i < attrs_.size() && j < other.attrs_.size()) {
    if (attrs_[i] == other.attrs_[j]) {
      ++count;
      ++i;
      ++j;
    } else if (attrs_[i] < other.attrs_[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

std::string AttrSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(attrs_[i]);
  }
  out += "}";
  return out;
}

size_t AttrSet::Hash() const {
  size_t h = 1469598103934665603ULL;
  for (int attr : attrs_) {
    h ^= static_cast<size_t>(attr) + 0x9E3779B9;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace aim
