#include "marginal/linear_query.h"

#include <cmath>

#include "marginal/marginal.h"
#include "util/logging.h"
#include "util/rng.h"

namespace aim {

double AnswerLinearQuery(const std::vector<double>& marginal,
                         const LinearQuery& query) {
  AIM_CHECK_EQ(marginal.size(), query.coefficients.size());
  double answer = 0.0;
  for (size_t t = 0; t < marginal.size(); ++t) {
    answer += query.coefficients[t] * marginal[t];
  }
  return answer;
}

double AnswerLinearQuery(const Dataset& data, const LinearQuery& query) {
  return AnswerLinearQuery(ComputeMarginal(data, query.attrs), query);
}

std::vector<LinearQuery> PrefixRangeQueries(const Domain& domain, int attr) {
  AIM_CHECK_GE(attr, 0);
  AIM_CHECK_LT(attr, domain.num_attributes());
  const int n = domain.size(attr);
  std::vector<LinearQuery> queries;
  for (int k = 0; k + 1 < n; ++k) {
    LinearQuery q;
    q.attrs = AttrSet({attr});
    q.coefficients.assign(n, 0.0);
    for (int v = 0; v <= k; ++v) q.coefficients[v] = 1.0;
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<LinearQuery> RandomRangeQueryWorkload(const Domain& domain,
                                                  int count, uint64_t seed) {
  AIM_CHECK_GE(domain.num_attributes(), 2);
  Rng rng(seed);
  std::vector<LinearQuery> queries;
  queries.reserve(count);
  while (static_cast<int>(queries.size()) < count) {
    int a = static_cast<int>(rng.UniformInt(domain.num_attributes()));
    int b = static_cast<int>(rng.UniformInt(domain.num_attributes()));
    if (a == b) continue;
    AttrSet attrs({a, b});
    const int first = attrs[0], second = attrs[1];
    const int n1 = domain.size(first), n2 = domain.size(second);
    // Random sub-rectangle [lo1, hi1] x [lo2, hi2].
    int lo1 = static_cast<int>(rng.UniformInt(n1));
    int hi1 = lo1 + static_cast<int>(rng.UniformInt(n1 - lo1));
    int lo2 = static_cast<int>(rng.UniformInt(n2));
    int hi2 = lo2 + static_cast<int>(rng.UniformInt(n2 - lo2));
    LinearQuery q;
    q.attrs = attrs;
    q.coefficients.assign(static_cast<size_t>(n1) * n2, 0.0);
    for (int v1 = lo1; v1 <= hi1; ++v1) {
      for (int v2 = lo2; v2 <= hi2; ++v2) {
        q.coefficients[static_cast<size_t>(v1) * n2 + v2] = 1.0;
      }
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

double LinearQueryError(const Dataset& data, const Dataset& synthetic,
                        const std::vector<LinearQuery>& queries) {
  AIM_CHECK(!queries.empty());
  AIM_CHECK_GT(data.num_records(), 0);
  double total = 0.0;
  for (const LinearQuery& q : queries) {
    total += std::fabs(AnswerLinearQuery(data, q) -
                       AnswerLinearQuery(synthetic, q));
  }
  return total / (static_cast<double>(queries.size()) *
                  static_cast<double>(data.num_records()));
}

}  // namespace aim
