// Workloads of weighted marginal queries (Definition 2) and the paper's
// three workload generators: ALL-3WAY, TARGET, and SKEWED (Section 6.1).

#ifndef AIM_MARGINAL_WORKLOAD_H_
#define AIM_MARGINAL_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/domain.h"
#include "marginal/attr_set.h"

namespace aim {

struct WorkloadQuery {
  AttrSet attrs;
  double weight = 1.0;
};

// An ordered list of weighted marginal queries.
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<WorkloadQuery> queries);

  int num_queries() const { return static_cast<int>(queries_.size()); }
  const WorkloadQuery& query(int i) const { return queries_[i]; }
  const std::vector<WorkloadQuery>& queries() const { return queries_; }

  void Add(AttrSet attrs, double weight = 1.0);

  // True if some query's attribute set contains `attrs`.
  bool CoveredBy(const AttrSet& attrs) const;

 private:
  std::vector<WorkloadQuery> queries_;
};

// All k-way marginal queries over the domain, unit weight. (ALL-3WAY uses
// k = 3.)
Workload AllKWayWorkload(const Domain& domain, int k);

// All k-way marginal queries that include `target_attr` (the TARGET
// workload).
Workload TargetWorkload(const Domain& domain, int k, int target_attr);

// The SKEWED workload: each attribute receives a weight sampled from a
// squared-exponential distribution; `num_queries` attribute triples are then
// sampled (without replacement) with probability proportional to the product
// of their weights. Deterministic given `seed` (the paper fixes the seed so
// all mechanisms see the same workload).
Workload SkewedWorkload(const Domain& domain, int k, int num_queries,
                        uint64_t seed);

// The downward closure W+ = {r | r ⊆ s for some s in W}, excluding the empty
// set, in deterministic (sorted) order.
std::vector<AttrSet> DownwardClosure(const Workload& workload);

// The AIM candidate weight w_r = sum_{s in W} c_s * |r ∩ s| (Line 8 of
// Algorithm 4).
double WorkloadWeight(const Workload& workload, const AttrSet& r);

}  // namespace aim

#endif  // AIM_MARGINAL_WORKLOAD_H_
