// AttrSet: an immutable sorted set of attribute indices, used to identify
// marginal queries (the sets `r` of the paper).

#ifndef AIM_MARGINAL_ATTR_SET_H_
#define AIM_MARGINAL_ATTR_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace aim {

// A subset r of attribute indices, stored sorted and de-duplicated.
class AttrSet {
 public:
  AttrSet() = default;
  AttrSet(std::initializer_list<int> attrs);
  explicit AttrSet(std::vector<int> attrs);

  int size() const { return static_cast<int>(attrs_.size()); }
  bool empty() const { return attrs_.empty(); }
  const std::vector<int>& attrs() const { return attrs_; }
  int operator[](int i) const { return attrs_[i]; }

  bool Contains(int attr) const;
  bool IsSubsetOf(const AttrSet& other) const;
  AttrSet Union(const AttrSet& other) const;
  AttrSet Intersect(const AttrSet& other) const;
  AttrSet Difference(const AttrSet& other) const;

  // Number of shared attributes |r ∩ s| (used by workload weights w_r).
  int IntersectionSize(const AttrSet& other) const;

  // e.g. "{0,3,7}".
  std::string ToString() const;

  bool operator==(const AttrSet& other) const { return attrs_ == other.attrs_; }
  bool operator!=(const AttrSet& other) const { return attrs_ != other.attrs_; }
  bool operator<(const AttrSet& other) const { return attrs_ < other.attrs_; }

  // FNV-style hash for use in unordered containers.
  size_t Hash() const;

  std::vector<int>::const_iterator begin() const { return attrs_.begin(); }
  std::vector<int>::const_iterator end() const { return attrs_.end(); }

 private:
  std::vector<int> attrs_;
};

struct AttrSetHash {
  size_t operator()(const AttrSet& s) const { return s.Hash(); }
};

}  // namespace aim

#endif  // AIM_MARGINAL_ATTR_SET_H_
