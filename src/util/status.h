// Minimal Status / StatusOr for recoverable errors at API boundaries
// (file I/O, configuration parsing). Internal invariants use AIM_CHECK.

#ifndef AIM_UTIL_STATUS_H_
#define AIM_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace aim {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  kCancelled,
};

// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// Value-semantic error carrier. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "CODE: message" for diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);

// Maps a Status to the process exit code documented in the README (the
// contract the chaos sweep asserts on): 0 OK, 1 INTERNAL, 2 INVALID_ARGUMENT
// (also used for usage errors), 4 NOT_FOUND, 5 FAILED_PRECONDITION,
// 6 OUT_OF_RANGE, 7 DEADLINE_EXCEEDED, 8 UNAVAILABLE, 9 CANCELLED (the
// typed "interrupted by SIGINT/SIGTERM" exit: the run wound down at a safe
// point, checkpoints and sinks were flushed). Exit code 3 is reserved for
// audit_cli's claim-refutation verdict, which is a finding, not an error.
int ExitCodeForStatus(const Status& status);

// Holds either a value of type T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    AIM_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AIM_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    AIM_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    AIM_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace aim

#endif  // AIM_UTIL_STATUS_H_
