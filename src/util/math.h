// Numerically-stable math helpers shared across the library.

#ifndef AIM_UTIL_MATH_H_
#define AIM_UTIL_MATH_H_

#include <cstdint>
#include <vector>

namespace aim {

// log(exp(a) + exp(b)), stable for large magnitudes and -inf inputs.
double LogAddExp(double a, double b);

// log(sum_i exp(values[i])); returns -inf for an empty input or all -inf.
double LogSumExp(const std::vector<double>& values);

// Standard normal CDF Phi(x).
double NormalCdf(double x);

// Standard normal PDF phi(x).
double NormalPdf(double x);

// ||a - b||_1. Vectors must have equal length.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

// ||a - b||_2^2. Vectors must have equal length.
double SquaredL2Distance(const std::vector<double>& a,
                         const std::vector<double>& b);

// sum_i v[i].
double Sum(const std::vector<double>& v);

// log(n choose k) via lgamma.
double LogBinomialCoefficient(int64_t n, int64_t k);

// Expected L1 deviation of a Binomial(n, p) sample mean from p (Lemma 2 of
// the paper / Frame 1945): E|p - k/n| = (2/n) s C(n,s) p^s (1-p)^{n-s+1}
// with s = ceil(n p). Computed in log space for stability.
double BinomialMeanDeviation(int64_t n, double p);

// Minimizes a unimodal function on [lo, hi] by golden-section search.
// Returns the minimizing argument after `iters` contractions.
double GoldenSectionMinimize(double (*f)(double, const void*), const void* ctx,
                             double lo, double hi, int iters);

}  // namespace aim

#endif  // AIM_UTIL_MATH_H_
