#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace aim {

double LogAddExp(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  double hi = std::max(a, b);
  double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double LogSumExp(const std::vector<double>& values) {
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) hi = std::max(hi, v);
  if (std::isinf(hi) && hi < 0) return hi;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - hi);
  return hi + std::log(sum);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  AIM_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::fabs(a[i] - b[i]);
  return total;
}

double SquaredL2Distance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  AIM_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

double Sum(const std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  return total;
}

double LogBinomialCoefficient(int64_t n, int64_t k) {
  AIM_CHECK_GE(n, 0);
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double BinomialMeanDeviation(int64_t n, double p) {
  AIM_CHECK_GT(n, 0);
  AIM_CHECK_GE(p, 0.0);
  AIM_CHECK_LE(p, 1.0);
  if (p == 0.0 || p == 1.0) return 0.0;
  const int64_t s =
      static_cast<int64_t>(std::ceil(static_cast<double>(n) * p));
  if (s == 0 || s > n) return 0.0;
  double log_term = std::log(2.0) - std::log(static_cast<double>(n)) +
                    std::log(static_cast<double>(s)) +
                    LogBinomialCoefficient(n, s) +
                    static_cast<double>(s) * std::log(p) +
                    static_cast<double>(n - s + 1) * std::log1p(-p);
  return std::exp(log_term);
}

double GoldenSectionMinimize(double (*f)(double, const void*), const void* ctx,
                             double lo, double hi, int iters) {
  AIM_CHECK_LE(lo, hi);
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double x1 = b - phi * (b - a);
  double x2 = a + phi * (b - a);
  double f1 = f(x1, ctx), f2 = f(x2, ctx);
  for (int i = 0; i < iters; ++i) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = f(x1, ctx);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = f(x2, ctx);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace aim
