// Deterministic random number generation for all randomized components.
//
// A single Rng type (xoshiro256++ core) is threaded explicitly through every
// mechanism so that runs are reproducible from a seed. All distributions are
// hand-rolled (Box-Muller Gaussian, inverse-CDF Gumbel, sequential-binomial
// multinomial) so results are identical across standard-library versions.

#ifndef AIM_UTIL_RNG_H_
#define AIM_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace aim {

// Complete serializable generator state: the xoshiro256++ core plus the
// Box-Muller spare cache. Restoring a saved state resumes the exact output
// stream (the crash-safe checkpoint/resume path depends on this).
struct RngState {
  uint64_t state[4] = {0, 0, 0, 0};
  bool have_spare = false;
  double spare = 0.0;

  bool operator==(const RngState& other) const;
};

// Deterministic pseudo-random generator (xoshiro256++).
class Rng {
 public:
  // Seeds the state via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Returns the next raw 64-bit output.
  uint64_t NextUint64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  // Standard normal deviate (Box-Muller, cached spare).
  double Gaussian();

  // Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Standard Gumbel deviate: -log(-log(U)).
  double Gumbel();

  // Gumbel deviate with the given scale (location 0).
  double Gumbel(double scale);

  // Samples an index in [0, weights.size()) with probability proportional to
  // weights[i]. Requires at least one strictly positive weight; negative
  // weights are rejected with AIM_CHECK.
  int SampleDiscrete(const std::vector<double>& weights);

  // Samples an index with probability proportional to exp(log_weights[i]),
  // computed stably (Gumbel-max trick). Entries may be -inf (never chosen,
  // unless all are).
  int SampleDiscreteLog(const std::vector<double>& log_weights);

  // Draws counts ~ Multinomial(n, p) where p is proportional to `weights`.
  // Uses sequential conditional binomials for O(k) time per draw.
  std::vector<int64_t> Multinomial(int64_t n, const std::vector<double>& weights);

  // Binomial(n, p) sample. Exact inversion for small n*p, otherwise a
  // normal approximation with continuity correction clamped to [0, n].
  int64_t Binomial(int64_t n, double p);

  // Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  // Derives an independent child generator (useful for per-trial streams).
  Rng Fork();

  // Snapshot of the full generator state; RestoreState(SaveState()) is a
  // no-op and a restored generator continues the identical stream.
  RngState SaveState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace aim

#endif  // AIM_UTIL_RNG_H_
