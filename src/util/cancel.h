// Cooperative cancellation: a CancelToken is set by a supervisor (watchdog,
// daemon request handler) and polled by long-running loops, which wind down
// at the next safe point — for AIM that means "after finishing the current
// round and writing a final checkpoint", never mid-measurement, so every
// unit of spent privacy budget remains resumable.

#ifndef AIM_UTIL_CANCEL_H_
#define AIM_UTIL_CANCEL_H_

#include <atomic>

namespace aim {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace aim

#endif  // AIM_UTIL_CANCEL_H_
