#include "util/rng.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace aim {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  AIM_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t n) {
  AIM_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = std::numeric_limits<uint64_t>::max() -
                         std::numeric_limits<uint64_t>::max() % un;
  uint64_t x;
  do {
    x = NextUint64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

double Rng::Gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box-Muller. u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_ = radius * std::sin(theta);
  have_spare_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  AIM_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

double Rng::Gumbel() {
  double u = 1.0 - Uniform();  // (0, 1]
  return -std::log(-std::log(u));
}

double Rng::Gumbel(double scale) {
  AIM_CHECK_GE(scale, 0.0);
  return scale * Gumbel();
}

int Rng::SampleDiscrete(const std::vector<double>& weights) {
  AIM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AIM_CHECK_GE(w, 0.0);
    total += w;
  }
  AIM_CHECK_GT(total, 0.0) << "SampleDiscrete requires a positive weight";
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int>(i);
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Rng::SampleDiscreteLog(const std::vector<double>& log_weights) {
  AIM_CHECK(!log_weights.empty());
  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < log_weights.size(); ++i) {
    if (std::isinf(log_weights[i]) && log_weights[i] < 0) continue;
    double score = log_weights[i] + Gumbel();
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int64_t Rng::Binomial(int64_t n, double p) {
  AIM_CHECK_GE(n, 0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Exact inversion when the expected work is small.
  if (static_cast<double>(n) * std::min(p, 1.0 - p) < 30.0) {
    bool flipped = p > 0.5;
    double q = flipped ? 1.0 - p : p;
    // Inversion by sequential search on the CDF.
    double log1mq = std::log1p(-q);
    int64_t count = 0;
    // Sum of geometric gaps: number of failures before each success.
    double remaining = static_cast<double>(n);
    while (true) {
      double u = 1.0 - Uniform();
      double gap = std::floor(std::log(u) / log1mq);
      remaining -= gap + 1.0;
      if (remaining < 0) break;
      ++count;
    }
    return flipped ? n - count : count;
  }
  // Normal approximation with continuity correction for large n.
  double mean = static_cast<double>(n) * p;
  double sd = std::sqrt(static_cast<double>(n) * p * (1.0 - p));
  double x = std::round(Gaussian(mean, sd));
  if (x < 0) x = 0;
  if (x > static_cast<double>(n)) x = static_cast<double>(n);
  return static_cast<int64_t>(x);
}

std::vector<int64_t> Rng::Multinomial(int64_t n,
                                      const std::vector<double>& weights) {
  AIM_CHECK(!weights.empty());
  AIM_CHECK_GE(n, 0);
  double total = 0.0;
  for (double w : weights) {
    AIM_CHECK_GE(w, 0.0);
    total += w;
  }
  std::vector<int64_t> counts(weights.size(), 0);
  if (total <= 0.0) {
    // Degenerate distribution: dump all mass in the first cell.
    if (n > 0) counts[0] = n;
    return counts;
  }
  int64_t remaining = n;
  double mass = total;
  for (size_t i = 0; i + 1 < weights.size() && remaining > 0; ++i) {
    double p = mass > 0 ? weights[i] / mass : 0.0;
    if (p > 1.0) p = 1.0;
    int64_t c = Binomial(remaining, p);
    counts[i] = c;
    remaining -= c;
    mass -= weights[i];
  }
  counts.back() += remaining;
  return counts;
}

std::vector<int> Rng::Permutation(int n) {
  AIM_CHECK_GE(n, 0);
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    int j = static_cast<int>(UniformInt(i + 1));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

bool RngState::operator==(const RngState& other) const {
  return state[0] == other.state[0] && state[1] == other.state[1] &&
         state[2] == other.state[2] && state[3] == other.state[3] &&
         have_spare == other.have_spare && spare == other.spare;
}

RngState Rng::SaveState() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.state[i] = state_[i];
  s.have_spare = have_spare_;
  s.spare = spare_;
  return s;
}

void Rng::RestoreState(const RngState& s) {
  for (int i = 0; i < 4; ++i) state_[i] = s.state[i];
  have_spare_ = s.have_spare;
  spare_ = s.spare;
}

}  // namespace aim
