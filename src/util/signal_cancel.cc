#include "util/signal_cancel.h"

#include <csignal>

#include <atomic>

namespace aim {
namespace {

std::atomic<int> g_cancel_signal{0};

void HandleCancelSignal(int signum) {
  // Async-signal-safe: CancelToken::Cancel is a lock-free atomic store, and
  // so is recording the signal number. Everything else (checkpointing,
  // sink flushing, typed exit) happens on the main thread when it observes
  // the token. Restore the default disposition so a repeated signal
  // terminates immediately — an operator mashing Ctrl-C during a slow
  // wind-down must not be trapped.
  g_cancel_signal.store(signum, std::memory_order_relaxed);
  ProcessCancelToken().Cancel();
  std::signal(signum, SIG_DFL);
}

}  // namespace

CancelToken& ProcessCancelToken() {
  static CancelToken token;
  return token;
}

void InstallSignalCancel() {
  std::signal(SIGINT, HandleCancelSignal);
  std::signal(SIGTERM, HandleCancelSignal);
}

int ReceivedCancelSignal() {
  return g_cancel_signal.load(std::memory_order_relaxed);
}

}  // namespace aim
