// Lightweight CHECK/LOG macros for invariant enforcement.
//
// The library is exception-free (Google style): programming errors and
// violated invariants abort the process with a diagnostic; recoverable
// conditions (I/O, user configuration) surface through util/status.h.

#ifndef AIM_UTIL_LOGGING_H_
#define AIM_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace aim {
namespace internal_logging {

// Accumulates a failure message and aborts on destruction. Used as the
// right-hand side of the AIM_CHECK macros so that callers can stream extra
// context: AIM_CHECK(ok) << "while doing X";
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failure at " << file << ":" << line << ": "
            << condition;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the stream expression in the ternary's false branch while still
// allowing callers to append `<< extra << context` (glog's Voidify idiom).
struct Voidify {
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal_logging
}  // namespace aim

// Aborts with a diagnostic if `condition` is false.
#define AIM_CHECK(condition)                                               \
  (condition) ? (void)0                                                    \
              : ::aim::internal_logging::Voidify() &                       \
                    ::aim::internal_logging::CheckFailureStream(           \
                        "AIM_CHECK", __FILE__, __LINE__, #condition)

#define AIM_CHECK_OP(op, a, b)                                             \
  ((a)op(b)) ? (void)0                                                     \
             : ::aim::internal_logging::Voidify() &                        \
                   ::aim::internal_logging::CheckFailureStream(            \
                       "AIM_CHECK", __FILE__, __LINE__, #a " " #op " " #b) \
                       << "(lhs=" << (a) << ", rhs=" << (b) << ")"

#define AIM_CHECK_EQ(a, b) AIM_CHECK_OP(==, a, b)
#define AIM_CHECK_NE(a, b) AIM_CHECK_OP(!=, a, b)
#define AIM_CHECK_LT(a, b) AIM_CHECK_OP(<, a, b)
#define AIM_CHECK_LE(a, b) AIM_CHECK_OP(<=, a, b)
#define AIM_CHECK_GT(a, b) AIM_CHECK_OP(>, a, b)
#define AIM_CHECK_GE(a, b) AIM_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define AIM_DCHECK(condition) (void)0
#else
#define AIM_DCHECK(condition) AIM_CHECK(condition)
#endif

#endif  // AIM_UTIL_LOGGING_H_
