// Small string helpers used by the CSV reader and the bench table printers.

#ifndef AIM_UTIL_STRINGS_H_
#define AIM_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace aim {

// Splits `input` on `delimiter`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char delimiter);

// Joins `parts` with `delimiter`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delimiter);

// Removes leading/trailing ASCII whitespace.
std::string StripWhitespace(std::string_view input);

// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view input, double* out);

// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view input, int64_t* out);

// Parses a signed 32-bit integer; returns false on malformed input or a
// value outside int's range. CLI flags that land in `int` fields must use
// this instead of ParseInt64 + static_cast, which silently truncates.
bool ParseInt32(std::string_view input, int* out);

// Parses an unsigned 64-bit integer; returns false on malformed input,
// overflow, or any sign character (a negative seed must be a usage error,
// not a two's-complement bit reinterpretation).
bool ParseUint64(std::string_view input, uint64_t* out);

}  // namespace aim

#endif  // AIM_UTIL_STRINGS_H_
