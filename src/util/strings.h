// Small string helpers used by the CSV reader and the bench table printers.

#ifndef AIM_UTIL_STRINGS_H_
#define AIM_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace aim {

// Splits `input` on `delimiter`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char delimiter);

// Joins `parts` with `delimiter`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delimiter);

// Removes leading/trailing ASCII whitespace.
std::string StripWhitespace(std::string_view input);

// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view input, double* out);

// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view input, int64_t* out);

}  // namespace aim

#endif  // AIM_UTIL_STRINGS_H_
