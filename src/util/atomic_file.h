// Crash-safe whole-file writes: tmp + fsync + rename (+ directory fsync).
//
// The only mutation of `path` is the final rename, so a crash at any point
// leaves either the previous file intact or the new one fully in place —
// never a torn mix. Shared by the snapshot writer (src/robust/) and the
// columnar store writer (src/store/).

#ifndef AIM_UTIL_ATOMIC_FILE_H_
#define AIM_UTIL_ATOMIC_FILE_H_

#include <string>

#include "util/status.h"

namespace aim {

// Writes `content` to `path` atomically and durably: the bytes land in
// `path + ".tmp"`, are fsync'd, and replace `path` via rename; the
// containing directory is fsync'd best-effort so the rename itself
// survives a crash. `what` labels error messages ("snapshot", "store").
Status AtomicWriteFile(const std::string& path, const std::string& content,
                       const std::string& what);

// Reads the entire file into a string; NotFoundError when it does not
// exist, InternalError on read failure.
StatusOr<std::string> ReadFileToString(const std::string& path,
                                       const std::string& what);

}  // namespace aim

#endif  // AIM_UTIL_ATOMIC_FILE_H_
