#include "util/status.h"

namespace aim {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInternal:
      return 1;
    case StatusCode::kInvalidArgument:
      return 2;
    // 3 is reserved for audit_cli claim refutation.
    case StatusCode::kNotFound:
      return 4;
    case StatusCode::kFailedPrecondition:
      return 5;
    case StatusCode::kOutOfRange:
      return 6;
    case StatusCode::kDeadlineExceeded:
      return 7;
    case StatusCode::kUnavailable:
      return 8;
    case StatusCode::kCancelled:
      return 9;
  }
  return 1;
}

}  // namespace aim
