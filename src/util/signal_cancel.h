// Process-wide SIGINT/SIGTERM -> CancelToken bridge for the CLIs and the
// aimd daemon.
//
// A signal must never abandon a run mid-round: AIM polls a CancelToken at
// round boundaries and winds down through the same degradation path a
// watchdog trip takes — final checkpoint forced, measurements preserved,
// trace/metrics sinks flushed by the caller — so every unit of spent
// privacy budget stays resumable. The handler itself only performs
// async-signal-safe work (two lock-free atomic stores), and after the first
// signal it restores the default disposition, so a second Ctrl-C kills the
// process immediately instead of being ignored while the wind-down runs.

#ifndef AIM_UTIL_SIGNAL_CANCEL_H_
#define AIM_UTIL_SIGNAL_CANCEL_H_

#include "util/cancel.h"

namespace aim {

// The token cancelled by InstallSignalCancel's handlers. Long-running
// entry points (aim_cli's AimOptions::cancel, csv2aim's row loops, the
// audit pair fan-out, aimd's serve loop) poll this token.
CancelToken& ProcessCancelToken();

// Installs SIGINT and SIGTERM handlers that cancel ProcessCancelToken()
// and record the signal number. Idempotent; call once at CLI startup after
// flag parsing.
void InstallSignalCancel();

// The first cancellation signal received since InstallSignalCancel, or 0.
// Callers use this to distinguish "interrupted by the operator" (typed
// CANCELLED exit) from other CancelToken sources (stall watchdog).
int ReceivedCancelSignal();

}  // namespace aim

#endif  // AIM_UTIL_SIGNAL_CANCEL_H_
