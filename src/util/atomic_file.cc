#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace aim {

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       const std::string& what) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return InternalError(what + ": cannot open " + tmp + ": " +
                         std::strerror(errno));
  }
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written,
                        content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return InternalError(what + ": write to " + tmp + " failed: " +
                           std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return InternalError(what + ": fsync of " + tmp + " failed: " +
                         std::strerror(err));
  }
  if (::close(fd) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return InternalError(what + ": close of " + tmp + " failed: " +
                         std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return InternalError(what + ": rename to " + path + " failed: " +
                         std::strerror(err));
  }
  // Durability of the rename itself: fsync the containing directory (best
  // effort — some filesystems reject directory fsync).
  size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFileToString(const std::string& path,
                                       const std::string& what) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFoundError(what + ": cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return InternalError(what + ": read failed for " + path);
  return buffer.str();
}

}  // namespace aim
