#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <limits>

namespace aim {

std::vector<std::string> SplitString(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delimiter) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delimiter;
    out += parts[i];
  }
  return out;
}

std::string StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

bool ParseDouble(std::string_view input, double* out) {
  std::string stripped = StripWhitespace(input);
  if (stripped.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(stripped.c_str(), &end);
  if (end != stripped.c_str() + stripped.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view input, int64_t* out) {
  std::string stripped = StripWhitespace(input);
  if (stripped.empty()) return false;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(
      stripped.data(), stripped.data() + stripped.size(), value);
  if (ec != std::errc() || ptr != stripped.data() + stripped.size()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseInt32(std::string_view input, int* out) {
  int64_t value = 0;
  if (!ParseInt64(input, &value)) return false;
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool ParseUint64(std::string_view input, uint64_t* out) {
  std::string stripped = StripWhitespace(input);
  if (stripped.empty()) return false;
  // from_chars for unsigned types rejects '-' itself, but be explicit about
  // '+' too so every accepted string is a plain digit run.
  if (stripped[0] == '-' || stripped[0] == '+') return false;
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(
      stripped.data(), stripped.data() + stripped.size(), value);
  if (ec != std::errc() || ptr != stripped.data() + stripped.size()) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace aim
