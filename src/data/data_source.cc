#include "data/data_source.h"

#include <vector>

#include "util/logging.h"

namespace aim {

Dataset DataSource::Materialize() const {
  const Domain& dom = domain();
  const int d = dom.num_attributes();
  std::vector<std::vector<int32_t>> columns(d);
  for (auto& column : columns) {
    column.reserve(static_cast<size_t>(num_records()));
  }
  for (int shard = 0; shard < num_shards(); ++shard) {
    const int64_t n = ShardRecords(shard);
    for (int a = 0; a < d; ++a) {
      const size_t old_size = columns[a].size();
      columns[a].resize(old_size + static_cast<size_t>(n));
      ReadColumn(shard, a, 0, n, columns[a].data() + old_size);
    }
  }
  return Dataset::FromColumns(dom, std::move(columns));
}

int64_t DatasetSource::ShardRecords(int shard) const {
  AIM_CHECK_EQ(shard, 0);
  return data_->num_records();
}

bool DatasetSource::TryColumnView(int shard, int attr, int64_t row_begin,
                                  int64_t row_end, ColumnView* view) const {
  (void)row_end;
  AIM_CHECK_EQ(shard, 0);
  AIM_DCHECK(row_begin >= 0 && row_begin <= row_end &&
             row_end <= data_->num_records());
  view->data = data_->column(attr).data() + row_begin;
  view->width = 4;
  return true;
}

void DatasetSource::ReadColumn(int shard, int attr, int64_t row_begin,
                               int64_t row_end, int32_t* out) const {
  AIM_CHECK_EQ(shard, 0);
  AIM_CHECK(row_begin >= 0 && row_begin <= row_end &&
            row_end <= data_->num_records());
  const std::vector<int32_t>& column = data_->column(attr);
  for (int64_t i = row_begin; i < row_end; ++i) {
    out[i - row_begin] = column[i];
  }
}

}  // namespace aim
