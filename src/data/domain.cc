#include "data/domain.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace aim {

Domain::Domain(std::vector<std::string> names, std::vector<int> sizes)
    : names_(std::move(names)), sizes_(std::move(sizes)) {
  AIM_CHECK_EQ(names_.size(), sizes_.size());
  for (int size : sizes_) AIM_CHECK_GE(size, 1);
}

Domain Domain::WithSizes(std::vector<int> sizes) {
  std::vector<std::string> names;
  names.reserve(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    names.push_back("attr" + std::to_string(i));
  }
  return Domain(std::move(names), std::move(sizes));
}

int Domain::size(int attr) const {
  AIM_CHECK_GE(attr, 0);
  AIM_CHECK_LT(attr, num_attributes());
  return sizes_[attr];
}

const std::string& Domain::name(int attr) const {
  AIM_CHECK_GE(attr, 0);
  AIM_CHECK_LT(attr, num_attributes());
  return names_[attr];
}

int Domain::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (names_[i] == name) return i;
  }
  return -1;
}

double Domain::Log10TotalSize() const {
  double total = 0.0;
  for (int size : sizes_) total += std::log10(static_cast<double>(size));
  return total;
}

int64_t Domain::ProjectionSize(const std::vector<int>& attrs) const {
  // Saturating product: wide cliques can exceed 2^63, and a wrapped
  // (negative) size would sail through every "size <= budget" filter.
  // Sizes are >= 1 (constructor invariant), so the product never shrinks
  // and the overflow check is a plain division bound.
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  int64_t total = 1;
  for (int attr : attrs) {
    const int64_t s = size(attr);
    if (total > kMax / s) return kMax;
    total *= s;
  }
  return total;
}

}  // namespace aim
