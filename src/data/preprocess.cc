#include "data/preprocess.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/logging.h"
#include "util/strings.h"

namespace aim {
namespace {

// Bins `value` into [0, num_bins) by equal-width binning on [lo, hi].
int Discretize(double value, double lo, double hi, int num_bins) {
  if (hi <= lo) return 0;
  double scaled = (value - lo) / (hi - lo) * num_bins;
  int bin = static_cast<int>(std::floor(scaled));
  if (bin < 0) bin = 0;
  if (bin >= num_bins) bin = num_bins - 1;
  return bin;
}

}  // namespace

StatusOr<PreprocessResult> Preprocess(const RawTable& table,
                                      const PreprocessOptions& options) {
  if (options.num_bins < 1) {
    return InvalidArgumentError("num_bins must be >= 1");
  }
  const int num_cols = table.num_columns();
  if (num_cols == 0) return InvalidArgumentError("table has no columns");

  std::vector<AttributeSpec> specs(num_cols);
  // Pass 1: identify each column as numerical or categorical.
  for (int c = 0; c < num_cols; ++c) {
    AttributeSpec& spec = specs[c];
    spec.name = table.header[c];
    bool all_numeric = true;
    std::set<std::string> distinct;
    double lo = 0.0, hi = 0.0;
    bool have_range = false;
    for (const auto& row : table.rows) {
      const std::string& field = row[c];
      distinct.insert(field);
      if (field.empty()) continue;  // nulls do not block numeric treatment
      double value;
      if (!ParseDouble(field, &value)) {
        all_numeric = false;
      } else if (!have_range) {
        lo = hi = value;
        have_range = true;
      } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
      }
    }
    const bool has_null = distinct.count("") > 0;
    if (all_numeric && have_range &&
        static_cast<int>(distinct.size()) > options.numeric_threshold) {
      spec.numeric = true;
      spec.min_value = lo;
      spec.max_value = hi;
      // Null values, if present, get their own final bin.
      spec.num_bins = options.num_bins + (has_null ? 1 : 0);
    } else {
      spec.numeric = false;
      spec.categories.assign(distinct.begin(), distinct.end());
      if (spec.categories.empty()) spec.categories.push_back("");
    }
  }

  std::vector<std::string> names;
  std::vector<int> sizes;
  for (const auto& spec : specs) {
    names.push_back(spec.name);
    sizes.push_back(spec.domain_size());
  }

  // Pass 2: encode column by column into fully reserved buffers. One
  // column's spec and category index stay hot for its whole scan, and the
  // per-record AppendRecord churn (d bounds checks + d push_backs per row)
  // collapses into a bulk FromColumns build.
  const int64_t num_rows = table.num_rows();
  std::vector<std::vector<int32_t>> columns(num_cols);
  for (int c = 0; c < num_cols; ++c) {
    const AttributeSpec& spec = specs[c];
    std::map<std::string, int> category_index;
    for (size_t i = 0; i < spec.categories.size(); ++i) {
      category_index[spec.categories[i]] = static_cast<int>(i);
    }
    std::vector<int32_t>& column = columns[c];
    column.reserve(static_cast<size_t>(num_rows));
    const size_t reserved = column.capacity();
    for (const auto& row : table.rows) {
      const std::string& field = row[c];
      int value_code;
      if (spec.numeric) {
        if (field.empty()) {
          value_code = spec.num_bins - 1;  // dedicated null bin
        } else {
          double value = 0.0;
          AIM_CHECK(ParseDouble(field, &value));
          int data_bins =
              spec.num_bins - (spec.num_bins > options.num_bins ? 1 : 0);
          value_code =
              Discretize(value, spec.min_value, spec.max_value, data_bins);
        }
      } else {
        auto it = category_index.find(field);
        AIM_CHECK(it != category_index.end());
        value_code = it->second;
      }
      column.push_back(value_code);
    }
    // The reserve above covers every row, so the append loop must never
    // have reallocated.
    AIM_CHECK_EQ(column.capacity(), reserved);
  }
  Dataset dataset =
      Dataset::FromColumns(Domain(std::move(names), std::move(sizes)),
                           std::move(columns));
  return PreprocessResult{std::move(dataset), std::move(specs)};
}

}  // namespace aim
