// Domain: the schema of a discrete dataset — attribute names and finite
// per-attribute domain sizes (Section 2.1 of the paper).

#ifndef AIM_DATA_DOMAIN_H_
#define AIM_DATA_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aim {

// Immutable description of a discrete data domain Omega = Omega_1 x ... x
// Omega_d. Attribute i has n_i = size(i) possible values {0, ..., n_i - 1}.
class Domain {
 public:
  Domain() = default;

  // `names` and `sizes` must have equal length; every size must be >= 1.
  Domain(std::vector<std::string> names, std::vector<int> sizes);

  // Convenience: attributes named "attr0", "attr1", ...
  static Domain WithSizes(std::vector<int> sizes);

  int num_attributes() const { return static_cast<int>(sizes_.size()); }

  // Domain size n_i of attribute `attr`.
  int size(int attr) const;

  const std::string& name(int attr) const;
  const std::vector<int>& sizes() const { return sizes_; }
  const std::vector<std::string>& names() const { return names_; }

  // Index of the attribute with the given name, or -1 if absent.
  int IndexOf(const std::string& name) const;

  // log10 of the full domain size prod_i n_i (the paper's "Total Domain
  // Size" column, reported in log form to avoid overflow).
  double Log10TotalSize() const;

  // Product of sizes of the given attributes. Attributes must be valid.
  // Saturates at INT64_MAX instead of wrapping, so size-budget comparisons
  // against huge projections stay correct.
  int64_t ProjectionSize(const std::vector<int>& attrs) const;

  bool operator==(const Domain& other) const {
    return sizes_ == other.sizes_ && names_ == other.names_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<int> sizes_;
};

}  // namespace aim

#endif  // AIM_DATA_DOMAIN_H_
