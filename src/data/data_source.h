// DataSource: the read path every marginal-counting consumer uses.
//
// A DataSource is a sharded, chunk-iterable view of N discretized records
// over a Domain. Records are the concatenation of the shards in shard
// order; within a shard, consumers read column ranges either zero-copy
// (TryColumnView — the backing bytes are exposed directly, in their native
// 1/2/4-byte little-endian encoding) or decoded into an int32 buffer
// (ReadColumn). Nothing here requires the records to be materialized in
// RAM: the mmap-backed store (src/store/) implements the same interface
// over files far larger than memory.
//
// Determinism contract: a DataSource is read-only and position-stable —
// the value of (shard, attr, row) never changes over the source's
// lifetime — so any counting pass that fixes its chunk plan independently
// of the thread count is reproducible (see ComputeMarginal in
// src/marginal/marginal.cc).

#ifndef AIM_DATA_DATA_SOURCE_H_
#define AIM_DATA_DATA_SOURCE_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/domain.h"

namespace aim {

// Zero-copy view of one column over a contiguous row range. `data` points
// at the value of the first row in the range; values are unsigned
// little-endian integers of `width` bytes (1, 2, or 4 — the store's
// width-minimal encodings; in-memory datasets always expose width 4).
struct ColumnView {
  const void* data = nullptr;
  int width = 4;

  int32_t at(int64_t i) const {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    switch (width) {
      case 1:
        return p[i];
      case 2: {
        const uint8_t* q = p + 2 * i;
        return static_cast<int32_t>(q[0] | (uint32_t{q[1]} << 8));
      }
      default: {
        const uint8_t* q = p + 4 * i;
        return static_cast<int32_t>(q[0] | (uint32_t{q[1]} << 8) |
                                    (uint32_t{q[2]} << 16) |
                                    (uint32_t{q[3]} << 24));
      }
    }
  }
};

class DataSource {
 public:
  virtual ~DataSource() = default;

  virtual const Domain& domain() const = 0;

  // Total records across all shards.
  virtual int64_t num_records() const = 0;

  // Shards partition the records; always >= 1.
  virtual int num_shards() const = 0;
  virtual int64_t ShardRecords(int shard) const = 0;

  // Zero-copy view of attribute `attr` over rows [row_begin, row_end) of
  // `shard`. Returns false when the backing storage cannot expose the
  // range without copying; callers then fall back to ReadColumn.
  virtual bool TryColumnView(int shard, int attr, int64_t row_begin,
                             int64_t row_end, ColumnView* view) const = 0;

  // Decodes attribute `attr` for rows [row_begin, row_end) of `shard` into
  // `out` (which must hold row_end - row_begin values).
  virtual void ReadColumn(int shard, int attr, int64_t row_begin,
                          int64_t row_end, int32_t* out) const = 0;

  // Hint that rows [row_begin, row_end) of `shard` have been consumed and
  // will not be re-read soon; out-of-core sources drop the backing pages
  // so a streaming pass holds only its chunk working set resident.
  virtual void ReleaseRows(int shard, int64_t row_begin,
                           int64_t row_end) const {
    (void)shard;
    (void)row_begin;
    (void)row_end;
  }

  // Copies every record into an in-memory Dataset (for consumers that need
  // random row access, e.g. subsampling baselines). Defeats the purpose of
  // an out-of-core source — counting paths must not call this.
  Dataset Materialize() const;
};

// Non-owning DataSource view of an in-memory Dataset (single shard, every
// column zero-copy at width 4). The Dataset must outlive the view.
class DatasetSource final : public DataSource {
 public:
  explicit DatasetSource(const Dataset& data) : data_(&data) {}

  const Domain& domain() const override { return data_->domain(); }
  int64_t num_records() const override { return data_->num_records(); }
  int num_shards() const override { return 1; }
  int64_t ShardRecords(int shard) const override;
  bool TryColumnView(int shard, int attr, int64_t row_begin, int64_t row_end,
                     ColumnView* view) const override;
  void ReadColumn(int shard, int attr, int64_t row_begin, int64_t row_end,
                  int32_t* out) const override;

  const Dataset& dataset() const { return *data_; }

 private:
  const Dataset* data_;
};

}  // namespace aim

#endif  // AIM_DATA_DATA_SOURCE_H_
