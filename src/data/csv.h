// CSV reading/writing for raw (string-valued) tables and discretized Datasets.

#ifndef AIM_DATA_CSV_H_
#define AIM_DATA_CSV_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace aim {

// A raw table of strings, as loaded from a CSV file (before preprocessing).
struct RawTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  int num_columns() const { return static_cast<int>(header.size()); }
  int64_t num_rows() const { return static_cast<int64_t>(rows.size()); }
};

// Reads a CSV file with a header row. Fields are split on commas; no quoting
// support (the paper's datasets are plain). Rows whose field count differs
// from the header are rejected.
StatusOr<RawTable> ReadCsv(const std::string& path);

// Parses CSV content provided directly (used by tests).
StatusOr<RawTable> ParseCsv(const std::string& content);

// Writes a discretized dataset to CSV (integer-coded values, header from the
// domain's attribute names).
Status WriteCsv(const Dataset& dataset, const std::string& path);

}  // namespace aim

#endif  // AIM_DATA_CSV_H_
