// Dataset: a column-oriented multiset of discretized records over a Domain.

#ifndef AIM_DATA_DATASET_H_
#define AIM_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/domain.h"
#include "util/logging.h"
#include "util/status.h"

namespace aim {

// Stores N records, each a d-tuple of small integers x_i in [0, n_i).
// Column-major layout: marginal computation scans only the needed columns.
class Dataset {
 public:
  // Empty dataset over the empty domain.
  Dataset() : Dataset(Domain()) {}

  explicit Dataset(Domain domain);

  // Builds a dataset directly from columns. All columns must have equal
  // length and values within the attribute domain (CHECK-enforced; for
  // untrusted input use FromColumnsValidated).
  static Dataset FromColumns(Domain domain,
                             std::vector<std::vector<int32_t>> columns);

  // As FromColumns, but reports mismatched column counts/lengths and
  // out-of-domain values as a recoverable error naming the offending
  // attribute and row, instead of aborting or silently constructing an
  // out-of-domain dataset.
  static StatusOr<Dataset> FromColumnsValidated(
      Domain domain, std::vector<std::vector<int32_t>> columns);

  const Domain& domain() const { return domain_; }
  int64_t num_records() const { return num_records_; }

  // Appends one record; `values` must have one in-domain entry per attribute.
  void AppendRecord(const std::vector<int>& values);

  void Reserve(int64_t n);

  // Value of attribute `attr` in record `row`.
  int32_t value(int64_t row, int attr) const {
    AIM_DCHECK(row >= 0 && row < num_records_);
    return columns_[attr][row];
  }

  const std::vector<int32_t>& column(int attr) const;

  // Returns the record at `row` as a d-tuple.
  std::vector<int> Record(int64_t row) const;

  // Returns a dataset containing `rows.size()` records copied from the given
  // row indices (with repetition allowed) — used by the subsampling baseline.
  Dataset Subsample(const std::vector<int64_t>& rows) const;

 private:
  Domain domain_;
  int64_t num_records_ = 0;
  std::vector<std::vector<int32_t>> columns_;
};

}  // namespace aim

#endif  // AIM_DATA_DATASET_H_
