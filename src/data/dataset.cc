#include "data/dataset.h"

#include "util/logging.h"

namespace aim {

Dataset::Dataset(Domain domain) : domain_(std::move(domain)) {
  columns_.resize(domain_.num_attributes());
}

Dataset Dataset::FromColumns(Domain domain,
                             std::vector<std::vector<int32_t>> columns) {
  StatusOr<Dataset> out =
      FromColumnsValidated(std::move(domain), std::move(columns));
  AIM_CHECK(out.ok()) << out.status().ToString();
  return *std::move(out);
}

StatusOr<Dataset> Dataset::FromColumnsValidated(
    Domain domain, std::vector<std::vector<int32_t>> columns) {
  if (static_cast<int>(columns.size()) != domain.num_attributes()) {
    return InvalidArgumentError(
        "dataset: " + std::to_string(columns.size()) + " columns for a " +
        std::to_string(domain.num_attributes()) + "-attribute domain");
  }
  Dataset out(std::move(domain));
  const int64_t n =
      columns.empty() ? 0 : static_cast<int64_t>(columns[0].size());
  for (int a = 0; a < out.domain_.num_attributes(); ++a) {
    if (static_cast<int64_t>(columns[a].size()) != n) {
      return InvalidArgumentError(
          "dataset: column '" + out.domain_.name(a) + "' has " +
          std::to_string(columns[a].size()) + " values, expected " +
          std::to_string(n));
    }
    const int size = out.domain_.size(a);
    for (size_t row = 0; row < columns[a].size(); ++row) {
      const int32_t v = columns[a][row];
      if (v < 0 || v >= size) {
        return InvalidArgumentError(
            "dataset: value " + std::to_string(v) + " at row " +
            std::to_string(row) + " is out of domain [0, " +
            std::to_string(size) + ") for attribute '" +
            out.domain_.name(a) + "'");
      }
    }
  }
  out.columns_ = std::move(columns);
  out.num_records_ = n;
  return out;
}

void Dataset::AppendRecord(const std::vector<int>& values) {
  AIM_CHECK_EQ(static_cast<int>(values.size()), domain_.num_attributes());
  for (int a = 0; a < domain_.num_attributes(); ++a) {
    AIM_CHECK(values[a] >= 0 && values[a] < domain_.size(a))
        << "value" << values[a] << "out of domain for attribute" << a;
    columns_[a].push_back(values[a]);
  }
  ++num_records_;
}

void Dataset::Reserve(int64_t n) {
  for (auto& column : columns_) column.reserve(n);
}

const std::vector<int32_t>& Dataset::column(int attr) const {
  AIM_CHECK_GE(attr, 0);
  AIM_CHECK_LT(attr, domain_.num_attributes());
  return columns_[attr];
}

std::vector<int> Dataset::Record(int64_t row) const {
  AIM_CHECK(row >= 0 && row < num_records_);
  std::vector<int> record(domain_.num_attributes());
  for (int a = 0; a < domain_.num_attributes(); ++a) {
    record[a] = columns_[a][row];
  }
  return record;
}

Dataset Dataset::Subsample(const std::vector<int64_t>& rows) const {
  Dataset out(domain_);
  out.Reserve(rows.size());
  for (int a = 0; a < domain_.num_attributes(); ++a) {
    out.columns_[a].reserve(rows.size());
    for (int64_t row : rows) {
      AIM_CHECK(row >= 0 && row < num_records_);
      out.columns_[a].push_back(columns_[a][row]);
    }
  }
  out.num_records_ = static_cast<int64_t>(rows.size());
  return out;
}

}  // namespace aim
