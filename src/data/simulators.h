// Simulated stand-ins for the paper's six evaluation datasets (Table 2).
//
// The originals (ADULT, SALARY, MSNBC, FIRE, NLTCS, TITANIC) are external
// downloads that are not available in this offline environment. Each
// simulator reproduces the dataset's schema statistics from Table 2 (record
// count, dimensionality, per-attribute domain sizes) and generates records
// from a randomly-drawn Bayesian network with skewed Dirichlet CPTs, so the
// low-dimensional marginal structure that marginal-based mechanisms exploit
// (strong 1/2/3-way correlations, heavy cell skew) is present. FIRE
// additionally embeds correlated attribute pairs with genuine structural
// zeros to support the Appendix-D experiment. See DESIGN.md §3.

#ifndef AIM_DATA_SIMULATORS_H_
#define AIM_DATA_SIMULATORS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace aim {

enum class PaperDataset { kAdult, kSalary, kMsnbc, kFire, kNltcs, kTitanic };

// All six datasets, in the order of Table 2.
std::vector<PaperDataset> AllPaperDatasets();

// Lowercase paper name ("adult", "salary", ...).
std::string PaperDatasetName(PaperDataset dataset);

// Parses a name produced by PaperDatasetName; returns false on mismatch.
bool ParsePaperDataset(const std::string& name, PaperDataset* out);

// A set of attribute combinations that cannot occur in the data
// (Appendix D). `zero_tuples[i]` is aligned with `attributes`.
struct StructuralZeroConstraint {
  std::vector<int> attributes;
  std::vector<std::vector<int>> zero_tuples;
};

struct SimulatorOptions {
  // Fraction of the paper's record count to generate (default 10% so the
  // full benchmark suite runs on a single core; pass 1.0 for Table-2 sizes).
  double record_scale = 0.1;

  // Lower bound on generated records regardless of scale.
  int64_t min_records = 1000;

  // Seed for the generating Bayesian network and the records drawn from it.
  uint64_t seed = 20221107;

  // Structure/skew of the generating network.
  int max_parents = 2;
  double dirichlet_alpha = 0.25;
};

struct SimulatedData {
  std::string name;
  Dataset data;
  // Attribute used by the TARGET workload (paper: INCOME>50K for ADULT,
  // SURVIVED for TITANIC, a fixed random attribute otherwise).
  int target_attribute = 0;
  // Non-empty only for FIRE: the known-impossible attribute combinations.
  std::vector<StructuralZeroConstraint> structural_zeros;
};

// Builds the simulated counterpart of a paper dataset.
SimulatedData MakePaperDataset(PaperDataset which,
                               const SimulatorOptions& options = {});

// Samples `n` records from a randomly-drawn Bayesian network over `domain`:
// attributes are processed in order, each choosing up to `max_parents`
// earlier attributes (bounded CPT size), with per-configuration conditional
// distributions drawn from Dirichlet(alpha). Exposed for tests and examples.
Dataset SampleRandomBayesNet(const Domain& domain, int64_t n, int max_parents,
                             double alpha, Rng& rng);

}  // namespace aim

#endif  // AIM_DATA_SIMULATORS_H_
