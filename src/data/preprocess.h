// Appendix-A preprocessing: domain identification from the active domain and
// equal-width discretization of numerical attributes.

#ifndef AIM_DATA_PREPROCESS_H_
#define AIM_DATA_PREPROCESS_H_

#include <string>
#include <vector>

#include "data/csv.h"
#include "data/dataset.h"
#include "util/status.h"

namespace aim {

struct PreprocessOptions {
  // Number of equal-width bins for numerical attributes (paper default: 32).
  int num_bins = 32;

  // A column is treated as numerical if every non-empty field parses as a
  // double and it has more than `numeric_threshold` distinct values;
  // otherwise it is categorical.
  int numeric_threshold = 32;
};

// Per-attribute description produced by domain identification.
struct AttributeSpec {
  std::string name;
  bool numeric = false;
  // Categorical: observed distinct values (including "" for null), sorted.
  std::vector<std::string> categories;
  // Numerical: observed range, discretized into `num_bins` bins.
  double min_value = 0.0;
  double max_value = 0.0;
  int num_bins = 0;

  int domain_size() const {
    return numeric ? num_bins : static_cast<int>(categories.size());
  }
};

struct PreprocessResult {
  Dataset dataset;
  std::vector<AttributeSpec> specs;
};

// Applies the paper's preprocessing (Appendix A) to a raw table: identifies
// each column as categorical or numerical from the active domain, then
// discretizes numerical columns into equal-width bins.
StatusOr<PreprocessResult> Preprocess(const RawTable& table,
                                      const PreprocessOptions& options = {});

}  // namespace aim

#endif  // AIM_DATA_PREPROCESS_H_
