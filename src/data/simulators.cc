#include "data/simulators.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace aim {
namespace {

// Gamma(alpha, 1) sampler (Marsaglia-Tsang, with the alpha<1 boost).
double SampleGamma(double alpha, Rng& rng) {
  AIM_CHECK_GT(alpha, 0.0);
  if (alpha < 1.0) {
    double u = 1.0 - rng.Uniform();
    return SampleGamma(alpha + 1.0, rng) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = rng.Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = 1.0 - rng.Uniform();
    if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v)) {
      return d * v;
    }
  }
}

// Dirichlet(alpha) draw of length k, returned unnormalized-safe.
std::vector<double> SampleDirichlet(int k, double alpha, Rng& rng) {
  std::vector<double> probs(k);
  double total = 0.0;
  for (int i = 0; i < k; ++i) {
    probs[i] = SampleGamma(alpha, rng);
    total += probs[i];
  }
  if (total <= 0.0) {
    std::fill(probs.begin(), probs.end(), 1.0 / k);
    return probs;
  }
  for (double& p : probs) p /= total;
  return probs;
}

// A Bayesian network over the domain: per attribute, a parent list and a CPT
// with one conditional distribution per joint parent configuration.
struct BayesNet {
  struct Node {
    std::vector<int> parents;                      // strictly earlier attrs
    std::vector<std::vector<double>> conditionals;  // [parent cfg][value]
  };
  std::vector<Node> nodes;

  int ParentConfig(const std::vector<int>& record, int attr,
                   const Domain& domain) const {
    int index = 0;
    for (int parent : nodes[attr].parents) {
      index = index * domain.size(parent) + record[parent];
    }
    return index;
  }
};

constexpr int64_t kMaxCptCells = 1 << 14;

BayesNet DrawRandomBayesNet(const Domain& domain, int max_parents,
                            double alpha, Rng& rng) {
  const int d = domain.num_attributes();
  BayesNet net;
  net.nodes.resize(d);
  for (int attr = 0; attr < d; ++attr) {
    auto& node = net.nodes[attr];
    if (attr > 0) {
      // Prefer the previous attribute (chain backbone) and add extra
      // earlier parents while the CPT stays small.
      int64_t cfgs = 1;
      auto try_add = [&](int candidate) {
        if (candidate < 0 || candidate >= attr) return;
        if (std::find(node.parents.begin(), node.parents.end(), candidate) !=
            node.parents.end()) {
          return;
        }
        if (static_cast<int>(node.parents.size()) >= max_parents) return;
        int64_t next = cfgs * domain.size(candidate) * domain.size(attr);
        if (next > kMaxCptCells) return;
        node.parents.push_back(candidate);
        cfgs *= domain.size(candidate);
      };
      try_add(attr - 1);
      if (attr >= 2 && rng.Uniform() < 0.6) {
        try_add(static_cast<int>(rng.UniformInt(attr)));
      }
      std::sort(node.parents.begin(), node.parents.end());
    }
    int64_t num_configs = 1;
    for (int parent : node.parents) num_configs *= domain.size(parent);
    node.conditionals.resize(num_configs);
    for (auto& conditional : node.conditionals) {
      conditional = SampleDirichlet(domain.size(attr), alpha, rng);
    }
  }
  return net;
}

Dataset SampleFromBayesNet(const Domain& domain, const BayesNet& net,
                           int64_t n, Rng& rng) {
  Dataset data(domain);
  data.Reserve(n);
  std::vector<int> record(domain.num_attributes());
  for (int64_t i = 0; i < n; ++i) {
    for (int attr = 0; attr < domain.num_attributes(); ++attr) {
      int config = net.ParentConfig(record, attr, domain);
      record[attr] = rng.SampleDiscrete(net.nodes[attr].conditionals[config]);
    }
    data.AppendRecord(record);
  }
  return data;
}

struct DatasetSpec {
  std::string name;
  int64_t paper_records;
  std::vector<std::string> attr_names;
  std::vector<int> sizes;
  // Name of the TARGET workload attribute, or "" for seeded-random choice.
  std::string target_name;
};

DatasetSpec SpecFor(PaperDataset which) {
  switch (which) {
    case PaperDataset::kAdult:
      // 48842 records, 15 attributes, domains 2-42 (Table 2).
      return {"adult",
              48842,
              {"income", "age", "workclass", "fnlwgt", "education",
               "education_num", "marital_status", "occupation", "relationship",
               "race", "sex", "capital_gain", "capital_loss", "hours_per_week",
               "native_country"},
              {2, 32, 9, 32, 16, 16, 7, 15, 6, 5, 2, 32, 32, 32, 42},
              "income"};
    case PaperDataset::kSalary:
      // 135727 records, 9 attributes, domains 3-501.
      return {"salary",
              135727,
              {"agency", "title", "grade", "status", "pay_basis", "step",
               "location", "schedule", "category"},
              {120, 501, 51, 3, 13, 13, 32, 4, 12},
              ""};
    case PaperDataset::kMsnbc: {
      // 989818 records, 16 attributes, every domain 18.
      std::vector<std::string> names;
      for (int i = 0; i < 16; ++i) names.push_back("page" + std::to_string(i));
      return {"msnbc", 989818, names, std::vector<int>(16, 18), ""};
    }
    case PaperDataset::kFire:
      // 305119 records, 15 attributes, domains 2-46.
      return {"fire",
              305119,
              {"call_type", "zipcode", "city", "battalion", "station_area",
               "box", "priority", "als_unit", "call_final_disposition",
               "neighborhood", "unit_type", "first_unit", "supervisor",
               "fire_prevention", "ems"},
              {32, 46, 12, 10, 40, 32, 4, 2, 16, 24, 9, 6, 8, 3, 2},
              ""};
    case PaperDataset::kNltcs: {
      // 21574 records, 16 binary attributes.
      std::vector<std::string> names;
      for (int i = 0; i < 16; ++i) names.push_back("adl" + std::to_string(i));
      return {"nltcs", 21574, names, std::vector<int>(16, 2), ""};
    }
    case PaperDataset::kTitanic:
      // 1304 records, 9 attributes, domains 2-91.
      return {"titanic",
              1304,
              {"survived", "pclass", "sex", "age", "sibsp", "parch", "fare",
               "embarked", "deck"},
              {2, 3, 2, 32, 8, 8, 91, 4, 9},
              "survived"};
  }
  AIM_CHECK(false) << "unknown dataset";
  return {};
}

// Embeds structural zeros in FIRE: for each chosen (a, b) attribute pair,
// every a-value is mapped to a small allowed set of b-values; b is then
// regenerated conditioned on a within the allowed set, and the complement is
// reported as the zero set.
std::vector<StructuralZeroConstraint> EmbedFireStructuralZeros(
    Dataset* data, Rng& rng) {
  const Domain& domain = data->domain();
  // Nine pairs of related attributes (paper: nine pairs, 2696 zero cells).
  // Each pair (source, target) regenerates the target column conditioned on
  // the source. Sources {0,1,3,5,6,9} are never targets and targets are all
  // distinct, so no constraint is invalidated by a later regeneration.
  const std::vector<std::pair<int, int>> pairs = {
      {1, 2},  {3, 4},  {5, 7},  {9, 8},  {1, 10},
      {3, 11}, {5, 12}, {0, 13}, {6, 14},
  };
  std::vector<StructuralZeroConstraint> constraints;
  std::vector<std::vector<int32_t>> columns(domain.num_attributes());
  for (int a = 0; a < domain.num_attributes(); ++a) columns[a] = data->column(a);

  for (const auto& [a, b] : pairs) {
    const int na = domain.size(a);
    const int nb = domain.size(b);
    // Allowed b-values per a-value: between 1 and ceil(nb/2), skew-sampled.
    std::vector<std::vector<int>> allowed(na);
    std::vector<std::vector<char>> mask(na, std::vector<char>(nb, 0));
    for (int va = 0; va < na; ++va) {
      int count = 1 + static_cast<int>(rng.UniformInt(std::max(1, nb / 2)));
      std::vector<int> perm = rng.Permutation(nb);
      for (int i = 0; i < count; ++i) {
        allowed[va].push_back(perm[i]);
        mask[va][perm[i]] = 1;
      }
      std::sort(allowed[va].begin(), allowed[va].end());
    }
    // Regenerate column b within the allowed sets, with skewed conditionals.
    std::vector<std::vector<double>> conditional(na);
    for (int va = 0; va < na; ++va) {
      conditional[va] =
          SampleDirichlet(static_cast<int>(allowed[va].size()), 0.4, rng);
    }
    for (int64_t row = 0; row < data->num_records(); ++row) {
      int va = columns[a][row];
      int pick = rng.SampleDiscrete(conditional[va]);
      columns[b][row] = allowed[va][pick];
    }
    StructuralZeroConstraint constraint;
    constraint.attributes = {std::min(a, b), std::max(a, b)};
    for (int va = 0; va < na; ++va) {
      for (int vb = 0; vb < nb; ++vb) {
        if (!mask[va][vb]) {
          if (a < b) {
            constraint.zero_tuples.push_back({va, vb});
          } else {
            constraint.zero_tuples.push_back({vb, va});
          }
        }
      }
    }
    constraints.push_back(std::move(constraint));
  }
  *data = Dataset::FromColumns(domain, std::move(columns));
  return constraints;
}

}  // namespace

std::vector<PaperDataset> AllPaperDatasets() {
  return {PaperDataset::kAdult, PaperDataset::kSalary, PaperDataset::kMsnbc,
          PaperDataset::kFire,  PaperDataset::kNltcs,  PaperDataset::kTitanic};
}

std::string PaperDatasetName(PaperDataset dataset) {
  return SpecFor(dataset).name;
}

bool ParsePaperDataset(const std::string& name, PaperDataset* out) {
  for (PaperDataset dataset : AllPaperDatasets()) {
    if (PaperDatasetName(dataset) == name) {
      *out = dataset;
      return true;
    }
  }
  return false;
}

Dataset SampleRandomBayesNet(const Domain& domain, int64_t n, int max_parents,
                             double alpha, Rng& rng) {
  BayesNet net = DrawRandomBayesNet(domain, max_parents, alpha, rng);
  return SampleFromBayesNet(domain, net, n, rng);
}

SimulatedData MakePaperDataset(PaperDataset which,
                               const SimulatorOptions& options) {
  DatasetSpec spec = SpecFor(which);
  Domain domain(spec.attr_names, spec.sizes);

  int64_t records = static_cast<int64_t>(
      std::llround(static_cast<double>(spec.paper_records) *
                   options.record_scale));
  records = std::max<int64_t>(records, options.min_records);
  records = std::min(records, spec.paper_records);

  // Dataset-specific deterministic stream: same seed, different datasets
  // produce unrelated networks.
  uint64_t stream = options.seed;
  for (char c : spec.name) stream = stream * 1000003ULL + static_cast<uint64_t>(c);
  Rng rng(stream);

  SimulatedData out;
  out.name = spec.name;
  out.data = SampleRandomBayesNet(domain, records, options.max_parents,
                                  options.dirichlet_alpha, rng);

  if (which == PaperDataset::kFire) {
    out.structural_zeros = EmbedFireStructuralZeros(&out.data, rng);
  }

  if (!spec.target_name.empty()) {
    out.target_attribute = domain.IndexOf(spec.target_name);
    AIM_CHECK_GE(out.target_attribute, 0);
  } else {
    // Paper: target chosen uniformly at random with a fixed seed.
    out.target_attribute =
        static_cast<int>(rng.UniformInt(domain.num_attributes()));
  }
  return out;
}

}  // namespace aim
