#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace aim {

StatusOr<RawTable> ParseCsv(const std::string& content) {
  RawTable table;
  std::istringstream in(content);
  std::string line;
  bool have_header = false;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitString(line, ',');
    for (auto& field : fields) field = StripWhitespace(field);
    if (!have_header) {
      table.header = std::move(fields);
      have_header = true;
      continue;
    }
    if (fields.size() != table.header.size()) {
      return InvalidArgumentError(
          "row " + std::to_string(line_number) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(fields));
  }
  if (!have_header) return InvalidArgumentError("empty CSV input");
  return table;
}

StatusOr<RawTable> ReadCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str());
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream file(path);
  if (!file) return InvalidArgumentError("cannot open " + path + " for write");
  const Domain& domain = dataset.domain();
  for (int a = 0; a < domain.num_attributes(); ++a) {
    if (a > 0) file << ',';
    file << domain.name(a);
  }
  file << '\n';
  for (int64_t row = 0; row < dataset.num_records(); ++row) {
    for (int a = 0; a < domain.num_attributes(); ++a) {
      if (a > 0) file << ',';
      file << dataset.value(row, a);
    }
    file << '\n';
  }
  if (!file) return InternalError("write failed for " + path);
  return Status::Ok();
}

}  // namespace aim
