#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "robust/fault.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/strings.h"

namespace aim {
namespace {

const FaultPointRegistration kCsvReadFault{"csv_read"};
const FaultPointRegistration kCsvWriteFault{"csv_write"};

// Per-field size cap: a field this large is a corrupt or hostile file, not
// data, and must become a Status rather than an allocation blow-up deep in
// preprocessing.
constexpr size_t kMaxFieldLength = 1 << 20;  // 1 MiB

// Short printable preview of an offending token for error messages.
std::string TokenPreview(const std::string& token) {
  constexpr size_t kMaxPreview = 40;
  std::string out;
  const size_t n = std::min(token.size(), kMaxPreview);
  for (size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(token[i]);
    if (c == '\0') {
      out += "\\0";
    } else if (c < 0x20 || c == 0x7f) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\x%02x", c);
      out += buffer;
    } else {
      out += static_cast<char>(c);
    }
  }
  if (token.size() > kMaxPreview) out += "...";
  return out;
}

std::string Position(int64_t line, size_t column) {
  return "line " + std::to_string(line) + ", column " +
         std::to_string(column);
}

}  // namespace

StatusOr<RawTable> ParseCsv(const std::string& content) {
  RawTable table;
  std::istringstream in(content);
  std::string line;
  bool have_header = false;
  int64_t line_number = 0;  // 1-based, counting every physical line
  const bool ends_with_newline =
      !content.empty() && content.back() == '\n';
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitString(line, ',');
    for (size_t i = 0; i < fields.size(); ++i) {
      fields[i] = StripWhitespace(fields[i]);
      const std::string& field = fields[i];
      // Columns are reported 1-based to match the 1-based line numbers.
      if (field.find('\0') != std::string::npos) {
        return InvalidArgumentError(
            Position(line_number, i + 1) +
            ": field contains an embedded NUL byte (token '" +
            TokenPreview(field) + "') — binary data is not valid CSV");
      }
      if (field.size() > kMaxFieldLength) {
        return InvalidArgumentError(
            Position(line_number, i + 1) + ": field of " +
            std::to_string(field.size()) + " bytes exceeds the " +
            std::to_string(kMaxFieldLength) + "-byte limit (token '" +
            TokenPreview(field) + "')");
      }
    }
    if (!have_header) {
      table.header = std::move(fields);
      have_header = true;
      continue;
    }
    if (fields.size() != table.header.size()) {
      const bool at_end =
          in.peek() == std::istringstream::traits_type::eof();
      std::string message =
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(table.header.size()) + " fields, got " +
          std::to_string(fields.size()) + " (first field: '" +
          TokenPreview(fields.empty() ? std::string() : fields.front()) +
          "')";
      if (at_end && !ends_with_newline) {
        message += "; the final row appears truncated (no trailing newline)";
      }
      return InvalidArgumentError(std::move(message));
    }
    table.rows.push_back(std::move(fields));
  }
  if (!have_header) return InvalidArgumentError("empty CSV input");
  return table;
}

StatusOr<RawTable> ReadCsv(const std::string& path) {
  Status fault = FaultStatus("csv_read");
  if (!fault.ok()) return fault;
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return InternalError("read failed for " + path);
  StatusOr<RawTable> parsed = ParseCsv(buffer.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  parsed.status().message() + " (file: " + path + ")");
  }
  return parsed;
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  // Built in memory and committed via the atomic tmp+fsync+rename writer:
  // a crash (or injected fault) mid-write never leaves a truncated output
  // CSV behind — the chaos-sweep invariant for every tool output file.
  Status fault = FaultStatus("csv_write");
  if (!fault.ok()) return fault;
  std::string out;
  const Domain& domain = dataset.domain();
  for (int a = 0; a < domain.num_attributes(); ++a) {
    if (a > 0) out += ',';
    out += domain.name(a);
  }
  out += '\n';
  for (int64_t row = 0; row < dataset.num_records(); ++row) {
    for (int a = 0; a < domain.num_attributes(); ++a) {
      if (a > 0) out += ',';
      out += std::to_string(dataset.value(row, a));
    }
    out += '\n';
  }
  return AtomicWriteFile(path, out, "csv");
}

}  // namespace aim
