// Synthetic tabular data generation from a calibrated MarkovRandomField
// (the "generate" step of select-measure-generate).
//
// Records are produced by traversing the junction tree from the root:
// the root clique's attributes are assigned by randomized rounding of its
// marginal, and each subsequent clique assigns its new attributes from the
// conditional distribution given the separator, again by randomized
// rounding within each separator group. Randomized rounding is the
// lower-variance alternative to iid sampling used by Private-PGM [35].

#ifndef AIM_PGM_SYNTHETIC_H_
#define AIM_PGM_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "pgm/markov_random_field.h"
#include "util/rng.h"

namespace aim {

// Rounds `total * weights / sum(weights)` to non-negative integer counts
// summing exactly to `total`: deterministic floors plus a random allocation
// of the remainder proportional to the fractional parts. If all weights are
// zero (or negative-clipped), falls back to uniform. Exposed for testing.
std::vector<int64_t> RandomizedRound(const std::vector<double>& weights,
                                     int64_t total, Rng& rng);

// Generates `num_records` synthetic records approximately distributed as
// the model. The model must be calibrated.
Dataset GenerateSyntheticData(const MarkovRandomField& model,
                              int64_t num_records, Rng& rng);

}  // namespace aim

#endif  // AIM_PGM_SYNTHETIC_H_
