// MarkovRandomField: a graphical model over the data domain, parameterized
// by log-potentials on the cliques of a junction tree, with exact inference
// by Shafer-Shenoy belief propagation in log space.
//
// The model represents a *scaled* distribution: marginals sum to total()
// (the Private-PGM convention, so model marginals are directly comparable
// to raw-count data marginals).
//
// Inference is cached and lazy (DESIGN.md "Inference engine"): mutating a
// potential marks its clique dirty, Calibrate() invalidates exactly the
// messages whose upstream subtree contains a dirty clique, and messages /
// beliefs materialize on demand when a query needs them. Every cached value
// is a pure function of the potentials computed by a fixed instruction
// sequence, so cache hits are bitwise-identical to recomputation and the
// cache can never change any marginal. AnswerMarginals() answers a batch of
// queries from one calibrated pass: a serial prepass materializes the shared
// state (beliefs of the covering cliques, memoized variable-elimination
// orders for uncovered queries), then the per-query reductions run under
// ParallelMap.
//
// Thread contract: queries (Marginal / MarginalVector / AnswerMarginals /
// CliqueBelief / LogPartition) may run concurrently with each other; any
// mutation (SetPotential / AccumulatePotential / Calibrate / copy-from)
// requires exclusive access, matching the rest of the engine.

#ifndef AIM_PGM_MARKOV_RANDOM_FIELD_H_
#define AIM_PGM_MARKOV_RANDOM_FIELD_H_

#include <array>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/domain.h"
#include "factor/factor.h"
#include "marginal/attr_set.h"
#include "pgm/inference.h"
#include "pgm/junction_tree.h"

namespace aim {

class MarkovRandomField {
 public:
  // Builds the junction tree implied by `model_cliques` and initializes all
  // log-potentials to zero (the uniform model).
  MarkovRandomField(Domain domain, std::vector<AttrSet> model_cliques);

  // Copies/moves transfer the inference cache contents but never share the
  // synchronization state (a mutex guards the lazily materialized messages,
  // so the implicit special members are unavailable).
  MarkovRandomField(const MarkovRandomField& other);
  MarkovRandomField& operator=(const MarkovRandomField& other);
  MarkovRandomField(MarkovRandomField&& other);
  MarkovRandomField& operator=(MarkovRandomField&& other);

  const Domain& domain() const { return domain_; }
  const JunctionTree& tree() const { return tree_; }
  int num_cliques() const { return static_cast<int>(tree_.cliques.size()); }

  // Scale of the represented distribution (estimated record count).
  double total() const { return total_; }
  void set_total(double total);

  // Log-potential on junction-tree clique `i`. Mutating invalidates the
  // calibration; call Calibrate() before reading marginals again.
  const Factor& potential(int i) const { return potentials_[i]; }
  void SetPotential(int i, Factor potential);
  // Adds `delta` (over a subset of clique i's attributes, broadcast) scaled
  // by `scale` into potential i.
  void AccumulatePotential(int i, const Factor& delta, double scale);

  // Index of the first tree clique containing r, or -1.
  int ContainingClique(const AttrSet& r) const {
    return tree_.ContainingClique(r);
  }

  // Validates the calibration. With the inference cache on this only
  // invalidates the messages affected by cliques dirtied since the previous
  // Calibrate() (messages and beliefs then materialize lazily, per query);
  // with the cache off it eagerly recomputes every message and belief, the
  // seed behavior. Either way, afterwards beliefs and marginals are valid
  // and bitwise identical.
  void Calibrate();
  bool calibrated() const { return calibrated_; }

  // log of the partition function of exp(sum of potentials).
  double LogPartition() const;

  // Calibrated log-belief of clique i (unnormalized: belief - LogPartition()
  // is the log marginal probability).
  const Factor& CliqueBelief(int i) const;

  // Scaled marginal on r (cells sum to total()). Uses the clique beliefs
  // when r is covered by a tree clique; otherwise falls back to variable
  // elimination over the potentials. Requires Calibrate() first.
  Factor Marginal(const AttrSet& r) const;
  std::vector<double> MarginalVector(const AttrSet& r) const;

  // Batched queries: answers queries[i] exactly as Marginal(queries[i])
  // would — bitwise identical at any thread count — but materializes the
  // shared inference state once and runs the per-query reductions in
  // parallel. Duplicate and overlapping queries share all message work.
  std::vector<Factor> AnswerMarginals(std::span<const AttrSet> queries) const;
  std::vector<std::vector<double>> AnswerMarginalVectors(
      std::span<const AttrSet> queries) const;

  // Forces the variable-elimination path even when r is covered by a tree
  // clique. Exposed for tests: both paths normalize by their own mass, so
  // they must agree bitwise on clique-covered queries.
  Factor MarginalViaVariableElimination(const AttrSet& r) const;

 private:
  // Memoized variable-elimination plan for one query: the greedy
  // elimination order, a pure function of the potential scopes (fixed for
  // the life of the model) and the query.
  struct VeOrder {
    std::vector<int> eliminate;
  };

  void CopyStateFrom(const MarkovRandomField& other);
  void MoveStateFrom(MarkovRandomField& other);
  void BuildTraversal();
  void MarkDirty(int i);

  // Locked helpers: caller holds infer_mu_.
  void ApplyDirtyLocked();
  void ComputeMessageLocked(int from, int to, int edge_index,
                            InferCounters* counters);
  void EnsureMessagesTowardLocked(int target, InferCounters* counters) const;
  void EnsureBeliefLocked(int c, InferCounters* counters) const;
  void MaterializeAllLocked(InferCounters* counters);
  void EnsureVeComponentsLocked() const;
  const VeOrder& GetVeOrderLocked(const AttrSet& r) const;

  // Executes a memoized elimination order. Pure read of potentials_ /
  // ve_component_ — safe to run outside the lock once both are ready.
  Factor RunVe(const AttrSet& r, const VeOrder& order) const;

  Domain domain_;
  JunctionTree tree_;
  std::vector<Factor> potentials_;  // log space, one per tree clique

  // Fixed DFS traversal from clique 0 shared by full calibration and the
  // dirty-subtree computation: order0_ is post-order (children first),
  // parent0_/parent_edge0_ the DFS tree.
  std::vector<int> order0_;
  std::vector<int> parent0_;
  std::vector<int> parent_edge0_;

  // --- Inference cache (guarded by infer_mu_ during queries). ---
  // messages_[e][dir]: message along edge e; dir 0 = a->b, dir 1 = b->a.
  mutable std::vector<std::array<Factor, 2>> messages_;
  mutable std::vector<std::array<char, 2>> message_valid_;
  mutable std::vector<Factor> beliefs_;  // log space, calibrated
  mutable std::vector<char> belief_valid_;
  std::vector<char> dirty_;  // potentials mutated since last Calibrate()
  mutable double log_partition_ = 0.0;
  mutable bool log_partition_valid_ = false;
  // Memoized VE state: attribute connected components (potential scopes
  // never change, so computed once) and per-query elimination orders.
  // unordered_map node storage keeps VeOrder references stable across
  // rehashes, so pointers taken under the lock stay valid outside it.
  mutable std::vector<int> ve_component_;
  mutable bool ve_components_ready_ = false;
  mutable std::unordered_map<AttrSet, VeOrder, AttrSetHash> ve_orders_;
  // Reusable scratch for the locked helpers (message accumulator, dirty
  // subtree counts, DFS walk state). Guarded by infer_mu_ like the caches
  // they serve; deliberately NOT transferred by CopyStateFrom/MoveStateFrom
  // — scratch contents are meaningless between calls, and keeping them
  // local means Calibrate performs no heap allocations once the buffers
  // have grown to their steady-state sizes (tests/factor_test.cc).
  mutable Factor msg_accum_;
  mutable std::vector<int64_t> dirty_subtree_;
  mutable std::vector<int> walk_pre_;
  mutable std::vector<int> walk_parent_;
  mutable std::vector<int> walk_parent_edge_;
  mutable std::vector<int> walk_stack_;
  mutable std::vector<char> walk_seen_;
  mutable std::mutex infer_mu_;

  double total_ = 1.0;
  bool calibrated_ = false;
};

}  // namespace aim

#endif  // AIM_PGM_MARKOV_RANDOM_FIELD_H_
