// MarkovRandomField: a graphical model over the data domain, parameterized
// by log-potentials on the cliques of a junction tree, with exact inference
// by Shafer-Shenoy belief propagation in log space.
//
// The model represents a *scaled* distribution: marginals sum to total()
// (the Private-PGM convention, so model marginals are directly comparable
// to raw-count data marginals).

#ifndef AIM_PGM_MARKOV_RANDOM_FIELD_H_
#define AIM_PGM_MARKOV_RANDOM_FIELD_H_

#include <vector>

#include "data/domain.h"
#include "factor/factor.h"
#include "marginal/attr_set.h"
#include "pgm/junction_tree.h"

namespace aim {

class MarkovRandomField {
 public:
  // Builds the junction tree implied by `model_cliques` and initializes all
  // log-potentials to zero (the uniform model).
  MarkovRandomField(Domain domain, std::vector<AttrSet> model_cliques);

  const Domain& domain() const { return domain_; }
  const JunctionTree& tree() const { return tree_; }
  int num_cliques() const { return static_cast<int>(tree_.cliques.size()); }

  // Scale of the represented distribution (estimated record count).
  double total() const { return total_; }
  void set_total(double total);

  // Log-potential on junction-tree clique `i`. Mutating invalidates the
  // calibration; call Calibrate() before reading marginals again.
  const Factor& potential(int i) const { return potentials_[i]; }
  void SetPotential(int i, Factor potential);
  // Adds `delta` (over a subset of clique i's attributes, broadcast) scaled
  // by `scale` into potential i.
  void AccumulatePotential(int i, const Factor& delta, double scale);

  // Index of the first tree clique containing r, or -1.
  int ContainingClique(const AttrSet& r) const {
    return tree_.ContainingClique(r);
  }

  // Runs belief propagation; afterwards beliefs and marginals are valid.
  void Calibrate();
  bool calibrated() const { return calibrated_; }

  // log of the partition function of exp(sum of potentials).
  double LogPartition() const;

  // Calibrated log-belief of clique i (unnormalized: belief - LogPartition()
  // is the log marginal probability).
  const Factor& CliqueBelief(int i) const;

  // Scaled marginal on r (cells sum to total()). Uses the clique beliefs
  // when r is covered by a tree clique; otherwise falls back to variable
  // elimination over the potentials. Requires Calibrate() first.
  Factor Marginal(const AttrSet& r) const;
  std::vector<double> MarginalVector(const AttrSet& r) const;

 private:
  Factor VariableEliminationMarginal(const AttrSet& r) const;

  Domain domain_;
  JunctionTree tree_;
  std::vector<Factor> potentials_;  // log space, one per tree clique
  std::vector<Factor> beliefs_;     // log space, calibrated
  double log_partition_ = 0.0;
  double total_ = 1.0;
  bool calibrated_ = false;
};

}  // namespace aim

#endif  // AIM_PGM_MARKOV_RANDOM_FIELD_H_
