#include "pgm/inference.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace aim {
namespace {

bool CacheEnabledFromEnv() {
  const char* env = std::getenv("AIM_INFER_CACHE");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

std::atomic<bool>& CacheEnabledFlag() {
  static std::atomic<bool> enabled{CacheEnabledFromEnv()};
  return enabled;
}

}  // namespace

bool InferenceCacheEnabled() {
  return CacheEnabledFlag().load(std::memory_order_relaxed);
}

void SetInferenceCacheEnabled(bool enabled) {
  CacheEnabledFlag().store(enabled, std::memory_order_relaxed);
}

void FlushInferCounters(const InferCounters& counters, int64_t batch_queries) {
  if (!MetricsEnabled()) return;
  static Counter& recomputed =
      MetricsRegistry::Global().counter("pgm.infer.messages_recomputed");
  static Counter& reused =
      MetricsRegistry::Global().counter("pgm.infer.messages_reused");
  static Counter& batch =
      MetricsRegistry::Global().counter("pgm.infer.batch_queries");
  if (counters.messages_recomputed > 0) {
    recomputed.Add(counters.messages_recomputed);
  }
  if (counters.messages_reused > 0) reused.Add(counters.messages_reused);
  if (batch_queries > 0) batch.Add(batch_queries);
}

}  // namespace aim
