#include "pgm/estimation.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <cmath>
#include <limits>

#include "marginal/marginal.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "parallel/parallel.h"
#include "robust/fault.h"
#include "util/logging.h"
#include "util/math.h"

namespace aim {
namespace {

const FaultPointRegistration kEstimationFault{"estimation_step"};

}  // namespace

double EstimateTotal(const std::vector<Measurement>& measurements) {
  double numerator = 0.0;
  double denominator = 0.0;
  for (const Measurement& m : measurements) {
    AIM_CHECK_GT(m.sigma, 0.0);
    double estimate = Sum(m.values);
    double variance =
        static_cast<double>(m.values.size()) * m.sigma * m.sigma;
    numerator += estimate / variance;
    denominator += 1.0 / variance;
  }
  if (denominator <= 0.0) return 1.0;
  return std::max(1.0, numerator / denominator);
}

double EstimationObjective(const MarkovRandomField& model,
                           const std::vector<Measurement>& measurements) {
  // One batched inference pass answers every measurement marginal (repeated
  // cliques share all message work); terms are then computed in parallel
  // and summed in measurement order, so the result is bitwise identical to
  // the serial per-query loop at any thread count.
  std::vector<AttrSet> queries;
  queries.reserve(measurements.size());
  for (const Measurement& m : measurements) queries.push_back(m.attrs);
  std::vector<std::vector<double>> mus = model.AnswerMarginalVectors(queries);
  std::vector<double> terms = ParallelMap(
      static_cast<int64_t>(measurements.size()), [&](int64_t i) {
        return SquaredL2Distance(mus[i], measurements[i].values) /
               measurements[i].sigma;
      });
  double objective = 0.0;
  for (double term : terms) objective += term;
  return objective;
}

MarkovRandomField EstimateMrf(const Domain& domain,
                              const std::vector<Measurement>& measurements,
                              double total,
                              const EstimationOptions& options,
                              const MarkovRandomField* warm_start,
                              const std::vector<ZeroConstraint>* zeros,
                              EstimationStats* stats) {
  AIM_CHECK(!measurements.empty());
  MaybeThrowFault("estimation_step");
  EstimationStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = EstimationStats();
  LapClock clock(MetricsEnabled() || TraceEnabled());
  std::vector<AttrSet> cliques;
  for (const Measurement& m : measurements) cliques.push_back(m.attrs);
  if (zeros != nullptr) {
    for (const ZeroConstraint& z : *zeros) cliques.push_back(z.attrs);
  }
  if (warm_start != nullptr) {
    // Incremental triangulation: a fresh min-fill order need not reproduce
    // the old fill edges, so an old maximal clique may not be contained in
    // any new one. Adding the old tree cliques to the base graph guarantees
    // containment and keeps the warm start exact.
    for (const AttrSet& c : warm_start->tree().cliques) cliques.push_back(c);
  }

  MarkovRandomField model(domain, cliques);
  model.set_total(total);

  if (warm_start != nullptr) {
    for (int i = 0; i < warm_start->num_cliques(); ++i) {
      int j = model.ContainingClique(warm_start->tree().cliques[i]);
      AIM_CHECK_GE(j, 0) << "warm-start clique not contained in new model";
      model.AccumulatePotential(j, warm_start->potential(i), 1.0);
    }
  }

  if (zeros != nullptr) {
    const double neg_inf = -std::numeric_limits<double>::infinity();
    for (const ZeroConstraint& z : *zeros) {
      Factor mask = Factor::FromDomain(domain, z.attrs, 0.0);
      for (int64_t cell : z.zero_cells) {
        AIM_CHECK(cell >= 0 && cell < mask.num_cells());
        mask.mutable_values()[cell] = neg_inf;
      }
      int j = model.ContainingClique(z.attrs);
      AIM_CHECK_GE(j, 0);
      model.AccumulatePotential(j, mask, 1.0);
    }
  }

  // Map each measurement to a containing tree clique once.
  std::vector<int> home(measurements.size());
  std::vector<AttrSet> query_attrs;
  query_attrs.reserve(measurements.size());
  for (size_t i = 0; i < measurements.size(); ++i) {
    home[i] = model.ContainingClique(measurements[i].attrs);
    AIM_CHECK_GE(home[i], 0);
    AIM_CHECK_EQ(
        static_cast<int64_t>(measurements[i].values.size()),
        MarginalSize(domain, measurements[i].attrs));
    query_attrs.push_back(measurements[i].attrs);
  }
  // The gradient step only mutates the home cliques, so the line search
  // saves and restores exactly those — keeping every other clique's cached
  // messages valid across backtracking attempts.
  std::vector<int> touched = home;
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  model.Calibrate();
  double objective = EstimationObjective(model, measurements);

  // Step-size control: each trial step is capped so the largest per-cell
  // log-potential update is at most `initial_step` nats (gradients scale
  // with total/sigma and would otherwise overflow exp()), then adapted
  // multiplicatively — doubling on acceptance, halving on rejection — so
  // the effective step tracks the problem's own curvature.
  double step = std::numeric_limits<double>::infinity();

  // Gradient and line-search buffers persist across iterations: each pass
  // copy-assigns into them, so after the first iteration the mirror-descent
  // loop reuses capacity instead of allocating per step.
  std::vector<Factor> gradients(measurements.size());
  std::vector<Factor> saved(touched.size());

  int stall = 0;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    // Gradient of L with respect to each clique's marginal, lifted to the
    // clique log-potentials (entropic mirror descent step). Per-measurement
    // gradients only read the calibrated model, so they compute in
    // parallel; each writes only its own slot, so the result is identical
    // to the sequential loop.
    std::vector<Factor> mus = model.AnswerMarginals(query_attrs);
    ParallelFor(0, static_cast<int64_t>(measurements.size()), 1,
                [&](int64_t i) {
                  const Measurement& m = measurements[i];
                  const Factor& mu = mus[i];
                  Factor& grad = gradients[i];
                  grad = mu;  // reuse shape (and capacity after iter 0)
                  std::vector<double>& g = grad.mutable_values();
                  const double scale = 2.0 / m.sigma;
                  for (size_t t = 0; t < g.size(); ++t) {
                    g[t] = scale * (mu.value(t) - m.values[t]);
                  }
                });

    // Cap the step so the largest per-cell potential change stays bounded.
    double grad_max = 0.0;
    for (const Factor& g : gradients) {
      for (double v : g.values()) grad_max = std::max(grad_max, std::fabs(v));
    }
    double trial =
        grad_max > 0.0 ? std::min(step, options.initial_step / grad_max)
                       : step;
    if (!std::isfinite(trial) || trial <= 0.0) break;  // zero gradient

    // Backtracking line search on the primal objective.
    for (size_t c = 0; c < touched.size(); ++c) {
      saved[c] = model.potential(touched[c]);
    }
    bool accepted = false;
    double new_objective = objective;
    for (int attempt = 0; attempt < 60; ++attempt) {
      for (size_t i = 0; i < measurements.size(); ++i) {
        model.AccumulatePotential(home[i], gradients[i], -trial);
      }
      model.Calibrate();
      new_objective = EstimationObjective(model, measurements);
      if (new_objective <= objective && std::isfinite(new_objective)) {
        accepted = true;
        break;
      }
      // Restore and retry with a smaller step.
      for (size_t c = 0; c < touched.size(); ++c) {
        model.SetPotential(touched[c], saved[c]);
      }
      trial *= 0.5;
      ++stats->backtracking_steps;
      if (trial < 1e-15) break;
    }
    if (!accepted) {
      model.Calibrate();
      break;
    }
    ++stats->iterations;
    if (std::getenv("AIM_ESTIMATION_TRACE") != nullptr) {
      std::cerr << "[est] iter=" << iter << " accepted=" << accepted
                << " trial=" << trial << " obj=" << new_objective
                << " grad_max=" << grad_max << "\n";
    }
    // Step adaptation. An accepted step with negligible improvement is the
    // signature of overshooting across a narrow valley (the step bounces
    // between near-symmetric points), so the base step SHRINKS on a
    // negligible-improvement acceptance and grows only on real progress.
    double improvement = objective - new_objective;
    objective = new_objective;
    if (improvement < options.tolerance * std::max(1.0, objective)) {
      step = trial * 0.5;
      if (++stall >= options.patience) {
        stats->converged = true;
        break;
      }
    } else {
      step = trial * 2.0;
      stall = 0;
    }
  }
  if (!model.calibrated()) model.Calibrate();
  stats->final_objective = objective;

  const double seconds = clock.Lap();
  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter& calls = registry.counter("pgm.estimation.calls");
    static Counter& iters = registry.counter("pgm.estimation.iterations");
    static Counter& backtracks =
        registry.counter("pgm.estimation.backtracks");
    static Histogram& seconds_hist =
        registry.histogram("pgm.estimation.seconds");
    calls.Add(1);
    iters.Add(stats->iterations);
    backtracks.Add(stats->backtracking_steps);
    seconds_hist.Observe(seconds);
  }
  if (TraceEnabled()) {
    EmitTrace(TraceEvent("estimation")
                  .Set("measurements",
                       static_cast<int64_t>(measurements.size()))
                  .Set("cliques", model.num_cliques())
                  .Set("iterations", stats->iterations)
                  .Set("backtracking_steps", stats->backtracking_steps)
                  .Set("objective", stats->final_objective)
                  .Set("converged", stats->converged)
                  .Set("warm_start", warm_start != nullptr)
                  .Set("seconds", seconds));
  }
  return model;
}

}  // namespace aim
