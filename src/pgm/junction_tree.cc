#include "pgm/junction_tree.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace aim {
namespace {

// Greedy min-fill triangulation. Returns the elimination cliques
// ({v} ∪ remaining neighbors of v, at the time v is eliminated).
std::vector<AttrSet> EliminationCliques(const Domain& domain,
                                        const std::vector<AttrSet>& cliques) {
  const int d = domain.num_attributes();
  std::vector<std::vector<char>> adj(d, std::vector<char>(d, 0));
  for (const AttrSet& clique : cliques) {
    const auto& attrs = clique.attrs();
    for (size_t i = 0; i < attrs.size(); ++i) {
      for (size_t j = i + 1; j < attrs.size(); ++j) {
        adj[attrs[i]][attrs[j]] = adj[attrs[j]][attrs[i]] = 1;
      }
    }
  }
  std::vector<char> alive(d, 1);
  std::vector<AttrSet> out;
  out.reserve(d);
  for (int step = 0; step < d; ++step) {
    // Pick the vertex whose elimination adds the fewest fill edges, breaking
    // ties by smallest resulting clique table.
    int best = -1;
    int64_t best_fill = -1;
    double best_weight = 0.0;
    for (int v = 0; v < d; ++v) {
      if (!alive[v]) continue;
      std::vector<int> nbrs;
      for (int u = 0; u < d; ++u) {
        if (u != v && alive[u] && adj[v][u]) nbrs.push_back(u);
      }
      int64_t fill = 0;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          if (!adj[nbrs[i]][nbrs[j]]) ++fill;
        }
      }
      double weight = static_cast<double>(domain.size(v));
      for (int u : nbrs) weight *= static_cast<double>(domain.size(u));
      if (best == -1 || fill < best_fill ||
          (fill == best_fill && weight < best_weight)) {
        best = v;
        best_fill = fill;
        best_weight = weight;
      }
    }
    AIM_CHECK_GE(best, 0);
    std::vector<int> clique = {best};
    for (int u = 0; u < d; ++u) {
      if (u != best && alive[u] && adj[best][u]) clique.push_back(u);
    }
    // Connect the neighborhood (fill edges).
    for (size_t i = 1; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        adj[clique[i]][clique[j]] = adj[clique[j]][clique[i]] = 1;
      }
    }
    alive[best] = 0;
    out.push_back(AttrSet(std::move(clique)));
  }
  return out;
}

// Removes cliques contained in another clique.
std::vector<AttrSet> MaximalCliques(std::vector<AttrSet> cliques) {
  // Sort by descending size so each clique only needs checking against
  // larger ones.
  std::sort(cliques.begin(), cliques.end(),
            [](const AttrSet& a, const AttrSet& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  std::vector<AttrSet> maximal;
  for (const AttrSet& c : cliques) {
    bool contained = false;
    for (const AttrSet& m : maximal) {
      if (c.IsSubsetOf(m)) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.push_back(c);
  }
  std::sort(maximal.begin(), maximal.end());
  return maximal;
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool Merge(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent[a] = b;
    return true;
  }
};

}  // namespace

int JunctionTree::ContainingClique(const AttrSet& r) const {
  for (size_t i = 0; i < cliques.size(); ++i) {
    if (r.IsSubsetOf(cliques[i])) return static_cast<int>(i);
  }
  return -1;
}

namespace {

JunctionTree BuildJunctionTreeImpl(const Domain& domain,
                                   const std::vector<AttrSet>& model_cliques) {
  AIM_CHECK_GE(domain.num_attributes(), 1);
  for (const AttrSet& c : model_cliques) {
    for (int attr : c) AIM_CHECK_LT(attr, domain.num_attributes());
  }
  JunctionTree tree;
  tree.cliques =
      MaximalCliques(EliminationCliques(domain, model_cliques));
  const int k = static_cast<int>(tree.cliques.size());
  tree.neighbors.resize(k);
  if (k <= 1) return tree;

  // Maximum-weight spanning tree (Kruskal) on separator cardinality; weight-0
  // edges join disconnected components with empty separators.
  struct Candidate {
    int a, b, weight;
  };
  std::vector<Candidate> candidates;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      candidates.push_back(
          {i, j, tree.cliques[i].IntersectionSize(tree.cliques[j])});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) {
                     return x.weight > y.weight;
                   });
  UnionFind uf(k);
  for (const Candidate& c : candidates) {
    if (!uf.Merge(c.a, c.b)) continue;
    JunctionTree::Edge edge;
    edge.a = c.a;
    edge.b = c.b;
    edge.separator = tree.cliques[c.a].Intersect(tree.cliques[c.b]);
    int edge_index = static_cast<int>(tree.edges.size());
    tree.neighbors[c.a].push_back({c.b, edge_index});
    tree.neighbors[c.b].push_back({c.a, edge_index});
    tree.edges.push_back(std::move(edge));
    if (static_cast<int>(tree.edges.size()) == k - 1) break;
  }
  AIM_CHECK_EQ(static_cast<int>(tree.edges.size()), k - 1);
  return tree;
}

double CliquesSizeMb(const Domain& domain,
                     const std::vector<AttrSet>& cliques) {
  double bytes = 0.0;
  for (const AttrSet& clique : cliques) {
    double cells = 1.0;
    for (int attr : clique) cells *= static_cast<double>(domain.size(attr));
    bytes += 8.0 * cells;
  }
  return bytes / 1e6;
}

}  // namespace

JunctionTree BuildJunctionTree(const Domain& domain,
                               const std::vector<AttrSet>& model_cliques) {
  LapClock clock(MetricsEnabled() || TraceEnabled());
  JunctionTree tree = BuildJunctionTreeImpl(domain, model_cliques);
  if (clock.enabled()) {
    const double seconds = clock.Lap();
    int max_clique_attrs = 0;
    for (const AttrSet& c : tree.cliques) {
      max_clique_attrs = std::max(max_clique_attrs, c.size());
    }
    if (MetricsEnabled()) {
      MetricsRegistry& registry = MetricsRegistry::Global();
      static Counter& builds = registry.counter("pgm.jt.builds");
      static Histogram& seconds_hist =
          registry.histogram("pgm.jt.build_seconds");
      static Histogram& clique_hist =
          registry.histogram("pgm.jt.max_clique_attrs");
      builds.Add(1);
      seconds_hist.Observe(seconds);
      clique_hist.Observe(static_cast<double>(max_clique_attrs));
    }
    if (TraceEnabled()) {
      EmitTrace(TraceEvent("jt_build")
                    .Set("cliques", static_cast<int64_t>(tree.cliques.size()))
                    .Set("max_clique_attrs", max_clique_attrs)
                    .Set("size_mb", CliquesSizeMb(domain, tree.cliques))
                    .Set("seconds", seconds));
    }
  }
  return tree;
}

double JtSizeMb(const Domain& domain,
                const std::vector<AttrSet>& model_cliques) {
  // Hot path: called once per candidate per AIM round (in parallel), so the
  // only instrumentation is a gated counter.
  if (MetricsEnabled()) {
    static Counter& evals =
        MetricsRegistry::Global().counter("pgm.jt.size_evals");
    evals.Add(1);
  }
  return CliquesSizeMb(
      domain, MaximalCliques(EliminationCliques(domain, model_cliques)));
}

}  // namespace aim
