#include "pgm/markov_random_field.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace aim {

MarkovRandomField::MarkovRandomField(Domain domain,
                                     std::vector<AttrSet> model_cliques)
    : domain_(std::move(domain)),
      tree_(BuildJunctionTree(domain_, model_cliques)) {
  potentials_.reserve(tree_.cliques.size());
  for (const AttrSet& clique : tree_.cliques) {
    potentials_.push_back(Factor::FromDomain(domain_, clique, 0.0));
  }
}

void MarkovRandomField::set_total(double total) {
  AIM_CHECK_GT(total, 0.0);
  total_ = total;
}

void MarkovRandomField::SetPotential(int i, Factor potential) {
  AIM_CHECK_GE(i, 0);
  AIM_CHECK_LT(i, num_cliques());
  AIM_CHECK(potential.attrs() == potentials_[i].attrs());
  potentials_[i] = std::move(potential);
  calibrated_ = false;
}

void MarkovRandomField::AccumulatePotential(int i, const Factor& delta,
                                            double scale) {
  AIM_CHECK_GE(i, 0);
  AIM_CHECK_LT(i, num_cliques());
  potentials_[i].AddInPlace(delta, scale);
  calibrated_ = false;
}

void MarkovRandomField::Calibrate() {
  const int k = num_cliques();
  // messages[e][dir]: message along edge e; dir 0 = a->b, dir 1 = b->a.
  std::vector<std::array<Factor, 2>> messages(tree_.edges.size());
  std::vector<std::array<bool, 2>> ready(tree_.edges.size(), {false, false});

  // Iterative two-pass schedule: process cliques in DFS post-order from
  // clique 0 (upward), then reverse (downward).
  std::vector<int> order;
  order.reserve(k);
  std::vector<int> parent_edge(k, -1), parent(k, -1);
  {
    std::vector<int> stack = {0};
    std::vector<char> seen(k, 0);
    seen[0] = 1;
    std::vector<int> pre;
    while (!stack.empty()) {
      int c = stack.back();
      stack.pop_back();
      pre.push_back(c);
      for (auto [nbr, edge] : tree_.neighbors[c]) {
        if (!seen[nbr]) {
          seen[nbr] = 1;
          parent[nbr] = c;
          parent_edge[nbr] = edge;
          stack.push_back(nbr);
        }
      }
    }
    AIM_CHECK_EQ(static_cast<int>(pre.size()), k);
    order.assign(pre.rbegin(), pre.rend());  // post-order (children first)
  }

  auto send_message = [&](int from, int to, int edge_index) {
    const JunctionTree::Edge& edge = tree_.edges[edge_index];
    int dir = (edge.a == from) ? 0 : 1;
    Factor accum = potentials_[from];
    for (auto [nbr, e] : tree_.neighbors[from]) {
      if (nbr == to) continue;
      const JunctionTree::Edge& in_edge = tree_.edges[e];
      int in_dir = (in_edge.a == nbr) ? 0 : 1;
      AIM_CHECK(ready[e][in_dir]);
      accum.AddInPlace(messages[e][in_dir]);
    }
    messages[edge_index][dir] = accum.LogSumExpTo(edge.separator);
    ready[edge_index][dir] = true;
  };

  // Upward: every non-root clique sends to its parent (children already
  // done thanks to post-order).
  for (int c : order) {
    if (parent[c] >= 0) send_message(c, parent[c], parent_edge[c]);
  }
  // Downward: every non-root clique receives from its parent, in pre-order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int c = *it;
    if (parent[c] >= 0) send_message(parent[c], c, parent_edge[c]);
  }

  // Beliefs.
  beliefs_.clear();
  beliefs_.reserve(k);
  for (int c = 0; c < k; ++c) {
    Factor belief = potentials_[c];
    for (auto [nbr, e] : tree_.neighbors[c]) {
      const JunctionTree::Edge& in_edge = tree_.edges[e];
      int in_dir = (in_edge.a == nbr) ? 0 : 1;
      AIM_CHECK(ready[e][in_dir]);
      belief.AddInPlace(messages[e][in_dir]);
    }
    beliefs_.push_back(std::move(belief));
  }
  log_partition_ = beliefs_[0].LogSumExp();
  calibrated_ = true;
}

double MarkovRandomField::LogPartition() const {
  AIM_CHECK(calibrated_) << "call Calibrate() first";
  return log_partition_;
}

const Factor& MarkovRandomField::CliqueBelief(int i) const {
  AIM_CHECK(calibrated_) << "call Calibrate() first";
  AIM_CHECK_GE(i, 0);
  AIM_CHECK_LT(i, num_cliques());
  return beliefs_[i];
}

Factor MarkovRandomField::Marginal(const AttrSet& r) const {
  AIM_CHECK(calibrated_) << "call Calibrate() first";
  AIM_CHECK(!r.empty());
  int clique = ContainingClique(r);
  Factor log_marginal =
      clique >= 0 ? beliefs_[clique].LogSumExpTo(r)
                  : VariableEliminationMarginal(r);
  // Normalize via the factor's own mass: identical to log_partition_ in
  // exact arithmetic but more robust numerically.
  double log_z = clique >= 0 ? log_partition_ : log_marginal.LogSumExp();
  Factor out = log_marginal.Exp(log_z);
  out.ScaleInPlace(total_);
  return out;
}

std::vector<double> MarkovRandomField::MarginalVector(const AttrSet& r) const {
  return Marginal(r).values();
}

Factor MarkovRandomField::VariableEliminationMarginal(const AttrSet& r) const {
  // Sum-product variable elimination over the (log) potentials. Factors in
  // graph components disconnected from r contribute only a multiplicative
  // constant that the final normalization cancels, so they are dropped —
  // this makes candidate scoring on sparse models (AIM's early rounds)
  // dramatically cheaper.
  std::vector<int> component(domain_.num_attributes());
  std::iota(component.begin(), component.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (component[x] != x) {
      component[x] = component[component[x]];
      x = component[x];
    }
    return x;
  };
  for (const Factor& f : potentials_) {
    if (f.num_attrs() == 0) continue;
    int root = find(f.attrs()[0]);
    for (int attr : f.attrs()) component[find(attr)] = root;
  }
  std::vector<char> keep_component(domain_.num_attributes(), 0);
  for (int attr : r) keep_component[find(attr)] = 1;

  std::vector<Factor> factors;
  for (const Factor& f : potentials_) {
    if (f.num_attrs() > 0 && keep_component[find(f.attrs()[0])]) {
      factors.push_back(f);
    }
  }
  // Attributes to eliminate: everything in the kept factors minus r.
  std::vector<char> in_r(domain_.num_attributes(), 0);
  for (int attr : r) in_r[attr] = 1;
  std::vector<char> present(domain_.num_attributes(), 0);
  for (const Factor& f : factors) {
    for (int attr : f.attrs()) present[attr] = 1;
  }
  for (int attr : r) {
    AIM_CHECK(present[attr]) << "attribute" << attr << "missing from model";
  }
  std::vector<int> to_eliminate;
  for (int attr = 0; attr < domain_.num_attributes(); ++attr) {
    if (present[attr] && !in_r[attr]) to_eliminate.push_back(attr);
  }
  while (!to_eliminate.empty()) {
    // Greedy: eliminate the attribute whose combined factor is smallest.
    int best_pos = -1;
    double best_cells = std::numeric_limits<double>::infinity();
    for (size_t pos = 0; pos < to_eliminate.size(); ++pos) {
      int attr = to_eliminate[pos];
      AttrSet scope;
      for (const Factor& f : factors) {
        if (f.AxisOf(attr) >= 0) scope = scope.Union(f.attr_set());
      }
      double cells = 1.0;
      for (int a : scope) cells *= static_cast<double>(domain_.size(a));
      if (cells < best_cells) {
        best_cells = cells;
        best_pos = static_cast<int>(pos);
      }
    }
    int attr = to_eliminate[best_pos];
    to_eliminate.erase(to_eliminate.begin() + best_pos);

    Factor combined;
    bool first = true;
    std::vector<Factor> remaining;
    for (Factor& f : factors) {
      if (f.AxisOf(attr) >= 0) {
        combined = first ? std::move(f) : combined.Add(f);
        first = false;
      } else {
        remaining.push_back(std::move(f));
      }
    }
    AIM_CHECK(!first);
    AttrSet keep = combined.attr_set().Difference(AttrSet({attr}));
    remaining.push_back(combined.LogSumExpTo(keep));
    factors = std::move(remaining);
  }
  // Combine what remains and restrict to r.
  Factor result;
  bool first = true;
  for (Factor& f : factors) {
    result = first ? std::move(f) : result.Add(f);
    first = false;
  }
  AIM_CHECK(!first);
  AIM_CHECK(r.IsSubsetOf(result.attr_set()));
  if (result.attr_set() != r) {
    result = result.LogSumExpTo(r);
  }
  return result;
}

}  // namespace aim
