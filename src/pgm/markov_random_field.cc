#include "pgm/markov_random_field.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "parallel/parallel.h"
#include "util/logging.h"

namespace aim {
namespace {

// Direction index of the message `from` sends along `edge` (0 = a->b).
int DirFrom(const JunctionTree::Edge& edge, int from) {
  return edge.a == from ? 0 : 1;
}

}  // namespace

MarkovRandomField::MarkovRandomField(Domain domain,
                                     std::vector<AttrSet> model_cliques)
    : domain_(std::move(domain)),
      tree_(BuildJunctionTree(domain_, model_cliques)) {
  potentials_.reserve(tree_.cliques.size());
  for (const AttrSet& clique : tree_.cliques) {
    potentials_.push_back(Factor::FromDomain(domain_, clique, 0.0));
  }
  BuildTraversal();
  messages_.resize(tree_.edges.size());
  message_valid_.assign(tree_.edges.size(), {0, 0});
  beliefs_.resize(tree_.cliques.size());
  belief_valid_.assign(tree_.cliques.size(), 0);
  dirty_.assign(tree_.cliques.size(), 1);
}

MarkovRandomField::MarkovRandomField(const MarkovRandomField& other) {
  CopyStateFrom(other);
}

MarkovRandomField& MarkovRandomField::operator=(
    const MarkovRandomField& other) {
  if (this != &other) CopyStateFrom(other);
  return *this;
}

MarkovRandomField::MarkovRandomField(MarkovRandomField&& other) {
  MoveStateFrom(other);
}

MarkovRandomField& MarkovRandomField::operator=(MarkovRandomField&& other) {
  if (this != &other) MoveStateFrom(other);
  return *this;
}

void MarkovRandomField::CopyStateFrom(const MarkovRandomField& other) {
  // Guard against a concurrent query on `other` materializing cache state
  // mid-copy; infer_mu_ itself is never copied.
  std::lock_guard<std::mutex> lock(other.infer_mu_);
  domain_ = other.domain_;
  tree_ = other.tree_;
  potentials_ = other.potentials_;
  order0_ = other.order0_;
  parent0_ = other.parent0_;
  parent_edge0_ = other.parent_edge0_;
  messages_ = other.messages_;
  message_valid_ = other.message_valid_;
  beliefs_ = other.beliefs_;
  belief_valid_ = other.belief_valid_;
  dirty_ = other.dirty_;
  log_partition_ = other.log_partition_;
  log_partition_valid_ = other.log_partition_valid_;
  ve_component_ = other.ve_component_;
  ve_components_ready_ = other.ve_components_ready_;
  ve_orders_ = other.ve_orders_;
  total_ = other.total_;
  calibrated_ = other.calibrated_;
}

void MarkovRandomField::MoveStateFrom(MarkovRandomField& other) {
  std::lock_guard<std::mutex> lock(other.infer_mu_);
  domain_ = std::move(other.domain_);
  tree_ = std::move(other.tree_);
  potentials_ = std::move(other.potentials_);
  order0_ = std::move(other.order0_);
  parent0_ = std::move(other.parent0_);
  parent_edge0_ = std::move(other.parent_edge0_);
  messages_ = std::move(other.messages_);
  message_valid_ = std::move(other.message_valid_);
  beliefs_ = std::move(other.beliefs_);
  belief_valid_ = std::move(other.belief_valid_);
  dirty_ = std::move(other.dirty_);
  log_partition_ = other.log_partition_;
  log_partition_valid_ = other.log_partition_valid_;
  ve_component_ = std::move(other.ve_component_);
  ve_components_ready_ = other.ve_components_ready_;
  ve_orders_ = std::move(other.ve_orders_);
  total_ = other.total_;
  calibrated_ = other.calibrated_;
}

void MarkovRandomField::BuildTraversal() {
  const int k = num_cliques();
  parent0_.assign(k, -1);
  parent_edge0_.assign(k, -1);
  order0_.clear();
  order0_.reserve(k);
  std::vector<int> stack = {0};
  std::vector<char> seen(k, 0);
  seen[0] = 1;
  std::vector<int> pre;
  while (!stack.empty()) {
    int c = stack.back();
    stack.pop_back();
    pre.push_back(c);
    for (auto [nbr, edge] : tree_.neighbors[c]) {
      if (!seen[nbr]) {
        seen[nbr] = 1;
        parent0_[nbr] = c;
        parent_edge0_[nbr] = edge;
        stack.push_back(nbr);
      }
    }
  }
  AIM_CHECK_EQ(static_cast<int>(pre.size()), k);
  order0_.assign(pre.rbegin(), pre.rend());  // post-order (children first)
}

void MarkovRandomField::set_total(double total) {
  AIM_CHECK_GT(total, 0.0);
  total_ = total;
}

void MarkovRandomField::MarkDirty(int i) {
  dirty_[i] = 1;
  calibrated_ = false;
}

void MarkovRandomField::SetPotential(int i, Factor potential) {
  AIM_CHECK_GE(i, 0);
  AIM_CHECK_LT(i, num_cliques());
  AIM_CHECK(potential.attrs() == potentials_[i].attrs());
  potentials_[i] = std::move(potential);
  MarkDirty(i);
}

void MarkovRandomField::AccumulatePotential(int i, const Factor& delta,
                                            double scale) {
  AIM_CHECK_GE(i, 0);
  AIM_CHECK_LT(i, num_cliques());
  potentials_[i].AddInPlace(delta, scale);
  MarkDirty(i);
}

void MarkovRandomField::ApplyDirtyLocked() {
  // Invalidation rule: the message u->v depends on every potential on the
  // u-side of edge (u,v), so it is stale iff some dirty clique lies in that
  // side. With the DFS tree rooted at clique 0, the u-side of the edge
  // between child c and parent p is exactly c's subtree for the upward
  // message, and everything else for the downward one — one subtree-count
  // pass decides both directions for every edge.
  const int k = num_cliques();
  int64_t total_dirty = 0;
  for (char d : dirty_) total_dirty += d;
  if (total_dirty == 0) return;
  dirty_subtree_.assign(k, 0);
  std::vector<int64_t>& sub = dirty_subtree_;
  for (int c : order0_) {
    sub[c] += dirty_[c];
    if (parent0_[c] >= 0) sub[parent0_[c]] += sub[c];
  }
  for (int c = 0; c < k; ++c) {
    if (parent0_[c] < 0) continue;
    int e = parent_edge0_[c];
    int up = DirFrom(tree_.edges[e], c);
    if (sub[c] > 0) message_valid_[e][up] = 0;
    if (total_dirty - sub[c] > 0) message_valid_[e][1 - up] = 0;
  }
  // Any dirty clique changes the joint distribution, so every belief (and
  // the partition function) is stale even where all incoming messages
  // survive.
  std::fill(belief_valid_.begin(), belief_valid_.end(), 0);
  log_partition_valid_ = false;
}

void MarkovRandomField::Calibrate() {
  std::lock_guard<std::mutex> lock(infer_mu_);
  const bool cache_on = InferenceCacheEnabled();
  if (cache_on) {
    ApplyDirtyLocked();
  } else {
    for (auto& mv : message_valid_) mv = {0, 0};
    std::fill(belief_valid_.begin(), belief_valid_.end(), 0);
    log_partition_valid_ = false;
  }
  std::fill(dirty_.begin(), dirty_.end(), 0);
  calibrated_ = true;
  if (!cache_on) {
    InferCounters counters;
    MaterializeAllLocked(&counters);
    FlushInferCounters(counters);
  }
}

void MarkovRandomField::ComputeMessageLocked(int from, int to, int edge_index,
                                             InferCounters* counters) {
  const JunctionTree::Edge& edge = tree_.edges[edge_index];
  int dir = DirFrom(edge, from);
  // Copy-assign into the scratch accumulator (and LogSumExpToInto into the
  // existing message slot) so steady-state recomputation reuses capacity
  // instead of allocating per message.
  msg_accum_ = potentials_[from];
  for (auto [nbr, e] : tree_.neighbors[from]) {
    if (nbr == to) continue;
    const JunctionTree::Edge& in_edge = tree_.edges[e];
    int in_dir = DirFrom(in_edge, nbr);
    AIM_CHECK(message_valid_[e][in_dir]);
    msg_accum_.AddInPlace(messages_[e][in_dir]);
  }
  msg_accum_.LogSumExpToInto(edge.separator, &messages_[edge_index][dir]);
  message_valid_[edge_index][dir] = 1;
  ++counters->messages_recomputed;
}

void MarkovRandomField::EnsureMessagesTowardLocked(
    int target, InferCounters* counters) const {
  // Materialize, children before parents, every message on the DFS tree
  // rooted at `target` — i.e. all messages flowing toward the target. Each
  // message is a fixed function of the potentials and the already-validated
  // messages behind it, so materialization order cannot change its bits.
  const int k = num_cliques();
  std::vector<int>& pre = walk_pre_;
  std::vector<int>& parent = walk_parent_;
  std::vector<int>& parent_edge = walk_parent_edge_;
  std::vector<int>& stack = walk_stack_;
  pre.clear();
  parent.assign(k, -1);
  parent_edge.assign(k, -1);
  stack.assign(1, target);
  walk_seen_.assign(k, 0);
  std::vector<char>& seen = walk_seen_;
  seen[target] = 1;
  while (!stack.empty()) {
    int c = stack.back();
    stack.pop_back();
    pre.push_back(c);
    for (auto [nbr, edge] : tree_.neighbors[c]) {
      if (!seen[nbr]) {
        seen[nbr] = 1;
        parent[nbr] = c;
        parent_edge[nbr] = edge;
        stack.push_back(nbr);
      }
    }
  }
  auto* self = const_cast<MarkovRandomField*>(this);
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    int c = *it;
    if (parent[c] < 0) continue;
    int e = parent_edge[c];
    int dir = DirFrom(tree_.edges[e], c);
    if (message_valid_[e][dir]) {
      ++counters->messages_reused;
    } else {
      self->ComputeMessageLocked(c, parent[c], e, counters);
    }
  }
}

void MarkovRandomField::EnsureBeliefLocked(int c,
                                           InferCounters* counters) const {
  if (belief_valid_[c]) return;
  EnsureMessagesTowardLocked(c, counters);
  // Copy-assign so a belief recomputed into an already-materialized slot
  // reuses its buffer. Partial state is invisible: the caller holds
  // infer_mu_ and belief_valid_ flips only at the end.
  beliefs_[c] = potentials_[c];
  for (auto [nbr, e] : tree_.neighbors[c]) {
    const JunctionTree::Edge& in_edge = tree_.edges[e];
    int in_dir = DirFrom(in_edge, nbr);
    AIM_CHECK(message_valid_[e][in_dir]);
    beliefs_[c].AddInPlace(messages_[e][in_dir]);
  }
  belief_valid_[c] = 1;
}

void MarkovRandomField::MaterializeAllLocked(InferCounters* counters) {
  // Eager full pass (cache-off mode): the seed's two-pass Shafer-Shenoy
  // schedule, then all beliefs and the partition function.
  for (int c : order0_) {
    if (parent0_[c] < 0) continue;
    int e = parent_edge0_[c];
    int dir = DirFrom(tree_.edges[e], c);
    if (!message_valid_[e][dir]) {
      ComputeMessageLocked(c, parent0_[c], e, counters);
    }
  }
  for (auto it = order0_.rbegin(); it != order0_.rend(); ++it) {
    int c = *it;
    if (parent0_[c] < 0) continue;
    int e = parent_edge0_[c];
    int dir = DirFrom(tree_.edges[e], parent0_[c]);
    if (!message_valid_[e][dir]) {
      ComputeMessageLocked(parent0_[c], c, e, counters);
    }
  }
  for (int c = 0; c < num_cliques(); ++c) EnsureBeliefLocked(c, counters);
  if (!log_partition_valid_) {
    log_partition_ = beliefs_[0].LogSumExp();
    log_partition_valid_ = true;
  }
}

double MarkovRandomField::LogPartition() const {
  AIM_CHECK(calibrated_) << "call Calibrate() first";
  InferCounters counters;
  double log_partition;
  {
    std::lock_guard<std::mutex> lock(infer_mu_);
    if (!log_partition_valid_) {
      EnsureBeliefLocked(0, &counters);
      log_partition_ = beliefs_[0].LogSumExp();
      log_partition_valid_ = true;
    }
    log_partition = log_partition_;
  }
  FlushInferCounters(counters);
  return log_partition;
}

const Factor& MarkovRandomField::CliqueBelief(int i) const {
  AIM_CHECK(calibrated_) << "call Calibrate() first";
  AIM_CHECK_GE(i, 0);
  AIM_CHECK_LT(i, num_cliques());
  InferCounters counters;
  {
    std::lock_guard<std::mutex> lock(infer_mu_);
    EnsureBeliefLocked(i, &counters);
  }
  FlushInferCounters(counters);
  return beliefs_[i];
}

Factor MarkovRandomField::Marginal(const AttrSet& r) const {
  AIM_CHECK(calibrated_) << "call Calibrate() first";
  AIM_CHECK(!r.empty());
  int clique = ContainingClique(r);
  InferCounters counters;
  Factor log_marginal;
  if (clique >= 0) {
    {
      std::lock_guard<std::mutex> lock(infer_mu_);
      EnsureBeliefLocked(clique, &counters);
    }
    log_marginal = beliefs_[clique].LogSumExpTo(r);
  } else {
    const VeOrder* order;
    {
      std::lock_guard<std::mutex> lock(infer_mu_);
      EnsureVeComponentsLocked();
      order = &GetVeOrderLocked(r);
    }
    log_marginal = RunVe(r, *order);
  }
  FlushInferCounters(counters);
  // Normalize via the factor's own mass: identical to log_partition_ in
  // exact arithmetic but more robust numerically, and — unlike the global
  // partition function — gives both answer paths the same normalizer, so a
  // query gets bitwise the same answer no matter which path serves it.
  double log_z = log_marginal.LogSumExp();
  log_marginal.ExpInPlace(log_z);
  log_marginal.ScaleInPlace(total_);
  return log_marginal;
}

std::vector<double> MarkovRandomField::MarginalVector(const AttrSet& r) const {
  return Marginal(r).values();
}

Factor MarkovRandomField::MarginalViaVariableElimination(
    const AttrSet& r) const {
  AIM_CHECK(calibrated_) << "call Calibrate() first";
  AIM_CHECK(!r.empty());
  const VeOrder* order;
  {
    std::lock_guard<std::mutex> lock(infer_mu_);
    EnsureVeComponentsLocked();
    order = &GetVeOrderLocked(r);
  }
  Factor log_marginal = RunVe(r, *order);
  double log_z = log_marginal.LogSumExp();
  log_marginal.ExpInPlace(log_z);
  log_marginal.ScaleInPlace(total_);
  return log_marginal;
}

std::vector<Factor> MarkovRandomField::AnswerMarginals(
    std::span<const AttrSet> queries) const {
  AIM_CHECK(calibrated_) << "call Calibrate() first";
  const int64_t n = static_cast<int64_t>(queries.size());
  std::vector<int> clique(n);
  std::vector<const VeOrder*> ve_order(n, nullptr);
  InferCounters counters;
  {
    // Serial prepass: materialize every shared piece of inference state the
    // batch needs (beliefs of the covering cliques; VE components and
    // memoized elimination orders for uncovered queries). The parallel
    // phase below then only reads.
    std::lock_guard<std::mutex> lock(infer_mu_);
    for (int64_t i = 0; i < n; ++i) {
      AIM_CHECK(!queries[i].empty());
      clique[i] = ContainingClique(queries[i]);
      if (clique[i] >= 0) {
        EnsureBeliefLocked(clique[i], &counters);
      } else {
        EnsureVeComponentsLocked();
        ve_order[i] = &GetVeOrderLocked(queries[i]);
      }
    }
  }
  FlushInferCounters(counters, n);
  // Per-query reductions, identical instruction sequence to Marginal(), so
  // the batch is bitwise-equal to the sequential path at any thread count.
  return ParallelMap(n, [&](int64_t i) {
    Factor log_marginal = clique[i] >= 0
                              ? beliefs_[clique[i]].LogSumExpTo(queries[i])
                              : RunVe(queries[i], *ve_order[i]);
    double log_z = log_marginal.LogSumExp();
    log_marginal.ExpInPlace(log_z);
    log_marginal.ScaleInPlace(total_);
    return log_marginal;
  });
}

std::vector<std::vector<double>> MarkovRandomField::AnswerMarginalVectors(
    std::span<const AttrSet> queries) const {
  std::vector<Factor> factors = AnswerMarginals(queries);
  std::vector<std::vector<double>> out(factors.size());
  for (size_t i = 0; i < factors.size(); ++i) {
    out[i] = std::move(factors[i].mutable_values());
  }
  return out;
}

void MarkovRandomField::EnsureVeComponentsLocked() const {
  // Attribute connected components over the potential scopes. Scopes are
  // fixed at construction, so one union-find pass serves every VE query.
  if (ve_components_ready_) return;
  std::vector<int> component(domain_.num_attributes());
  std::iota(component.begin(), component.end(), 0);
  auto find = [&](int x) {
    while (component[x] != x) {
      component[x] = component[component[x]];
      x = component[x];
    }
    return x;
  };
  for (const Factor& f : potentials_) {
    if (f.num_attrs() == 0) continue;
    int root = find(f.attrs()[0]);
    for (int attr : f.attrs()) component[find(attr)] = root;
  }
  ve_component_.resize(domain_.num_attributes());
  for (int a = 0; a < domain_.num_attributes(); ++a) ve_component_[a] = find(a);
  ve_components_ready_ = true;
}

const MarkovRandomField::VeOrder& MarkovRandomField::GetVeOrderLocked(
    const AttrSet& r) const {
  auto it = ve_orders_.find(r);
  if (it != ve_orders_.end()) return it->second;

  // Simulate the elimination symbolically (scopes only, no factor math) with
  // exactly the greedy rule RunVe's predecessor applied inline: eliminate
  // the attribute whose combined factor is smallest, strict < tie-break over
  // the remaining to_eliminate order.
  std::vector<AttrSet> scopes;
  std::vector<char> keep_component(domain_.num_attributes(), 0);
  for (int attr : r) keep_component[ve_component_[attr]] = 1;
  for (const Factor& f : potentials_) {
    if (f.num_attrs() > 0 && keep_component[ve_component_[f.attrs()[0]]]) {
      scopes.push_back(f.attr_set());
    }
  }
  std::vector<char> in_r(domain_.num_attributes(), 0);
  for (int attr : r) in_r[attr] = 1;
  std::vector<char> present(domain_.num_attributes(), 0);
  for (const AttrSet& s : scopes) {
    for (int attr : s) present[attr] = 1;
  }
  std::vector<int> to_eliminate;
  for (int attr = 0; attr < domain_.num_attributes(); ++attr) {
    if (present[attr] && !in_r[attr]) to_eliminate.push_back(attr);
  }
  VeOrder order;
  order.eliminate.reserve(to_eliminate.size());
  while (!to_eliminate.empty()) {
    int best_pos = -1;
    double best_cells = std::numeric_limits<double>::infinity();
    for (size_t pos = 0; pos < to_eliminate.size(); ++pos) {
      int attr = to_eliminate[pos];
      AttrSet scope;
      for (const AttrSet& s : scopes) {
        if (s.Contains(attr)) scope = scope.Union(s);
      }
      double cells = 1.0;
      for (int a : scope) cells *= static_cast<double>(domain_.size(a));
      if (cells < best_cells) {
        best_cells = cells;
        best_pos = static_cast<int>(pos);
      }
    }
    int attr = to_eliminate[best_pos];
    to_eliminate.erase(to_eliminate.begin() + best_pos);
    order.eliminate.push_back(attr);

    AttrSet merged;
    std::vector<AttrSet> remaining;
    bool any = false;
    for (AttrSet& s : scopes) {
      if (s.Contains(attr)) {
        merged = merged.Union(s);
        any = true;
      } else {
        remaining.push_back(std::move(s));
      }
    }
    AIM_CHECK(any);
    remaining.push_back(merged.Difference(AttrSet({attr})));
    scopes = std::move(remaining);
  }
  return ve_orders_.emplace(r, std::move(order)).first->second;
}

Factor MarkovRandomField::RunVe(const AttrSet& r, const VeOrder& order) const {
  // Sum-product variable elimination over the (log) potentials, following a
  // memoized elimination order. Factors in graph components disconnected
  // from r contribute only a multiplicative constant that the final
  // normalization cancels, so they are dropped — this makes candidate
  // scoring on sparse models (AIM's early rounds) dramatically cheaper.
  std::vector<char> keep_component(domain_.num_attributes(), 0);
  for (int attr : r) keep_component[ve_component_[attr]] = 1;
  std::vector<Factor> factors;
  for (const Factor& f : potentials_) {
    if (f.num_attrs() > 0 && keep_component[ve_component_[f.attrs()[0]]]) {
      factors.push_back(f);
    }
  }
  std::vector<char> present(domain_.num_attributes(), 0);
  for (const Factor& f : factors) {
    for (int attr : f.attrs()) present[attr] = 1;
  }
  for (int attr : r) {
    AIM_CHECK(present[attr]) << "attribute" << attr << "missing from model";
  }
  for (int attr : order.eliminate) {
    Factor combined;
    bool first = true;
    std::vector<Factor> remaining;
    for (Factor& f : factors) {
      if (f.AxisOf(attr) >= 0) {
        combined = first ? std::move(f) : combined.Add(f);
        first = false;
      } else {
        remaining.push_back(std::move(f));
      }
    }
    AIM_CHECK(!first);
    AttrSet keep = combined.attr_set().Difference(AttrSet({attr}));
    remaining.push_back(combined.LogSumExpTo(keep));
    factors = std::move(remaining);
  }
  // Combine what remains and restrict to r.
  Factor result;
  bool first = true;
  for (Factor& f : factors) {
    result = first ? std::move(f) : result.Add(f);
    first = false;
  }
  AIM_CHECK(!first);
  AIM_CHECK(r.IsSubsetOf(result.attr_set()));
  if (result.attr_set() != r) {
    result = result.LogSumExpTo(r);
  }
  return result;
}

}  // namespace aim
