// Private-PGM distribution estimation: given noisy marginal measurements
// (ỹ_i, σ_i, r_i), find the graphical model p̂ minimizing
//     L(p) = Σ_i (1/σ_i) ‖M_{r_i}(p) − ỹ_i‖₂²
// over the scaled probability simplex (Section 2.3 of the paper), by
// entropic mirror descent with Armijo backtracking. Supports warm starts
// across AIM rounds and structural-zero constraints (Appendix D).

#ifndef AIM_PGM_ESTIMATION_H_
#define AIM_PGM_ESTIMATION_H_

#include <vector>

#include "data/domain.h"
#include "marginal/attr_set.h"
#include "pgm/markov_random_field.h"

namespace aim {

// One noisy marginal measurement: ỹ = M_r(D) + N(0, σ² I).
struct Measurement {
  AttrSet attrs;
  std::vector<double> values;
  double sigma = 1.0;
};

// A structural-zero constraint for the estimator: the listed cells of the
// marginal on `attrs` are known to be impossible (Appendix D). Cell indices
// use the library's row-major marginal convention.
struct ZeroConstraint {
  AttrSet attrs;
  std::vector<int64_t> zero_cells;
};

struct EstimationOptions {
  // Mirror-descent iterations (paper's reference implementation defaults to
  // the order of 1000 for the final fit; intermediate AIM rounds use fewer
  // with warm starts).
  int max_iters = 500;

  // Initial step size; adapted by backtracking.
  double initial_step = 2.0;

  // Stop early when the relative objective improvement falls below this for
  // `patience` consecutive accepted steps. Stiff objectives (tiny sigmas)
  // progress in bursts, so the patience is generous.
  double tolerance = 1e-9;
  int patience = 20;
};

// Inverse-variance-weighted estimate of the dataset size from the noisy
// measurement sums (each Σ_t ỹ_i[t] estimates N with variance n_{r_i} σ_i²).
// Returns at least 1.
double EstimateTotal(const std::vector<Measurement>& measurements);

// Convergence diagnostics for one EstimateMrf call (filled when the caller
// passes a stats pointer; also emitted as an "estimation" trace event when
// tracing is on).
struct EstimationStats {
  int iterations = 0;         // accepted mirror-descent steps
  int backtracking_steps = 0; // rejected line-search attempts
  double final_objective = 0.0;
  // True when the loop stopped on the patience/tolerance rule rather than
  // exhausting max_iters or stalling on a zero gradient.
  bool converged = false;
};

// Fits the model. The model cliques are the measured attribute sets (plus
// the zero-constraint cliques); every domain attribute participates. If
// `warm_start` is non-null its potentials are mapped into the new model
// (each old clique is contained in a new clique because measurements only
// accumulate).
MarkovRandomField EstimateMrf(const Domain& domain,
                              const std::vector<Measurement>& measurements,
                              double total,
                              const EstimationOptions& options = {},
                              const MarkovRandomField* warm_start = nullptr,
                              const std::vector<ZeroConstraint>* zeros = nullptr,
                              EstimationStats* stats = nullptr);

// The estimation objective L(p̂) for diagnostics/tests.
double EstimationObjective(const MarkovRandomField& model,
                           const std::vector<Measurement>& measurements);

}  // namespace aim

#endif  // AIM_PGM_ESTIMATION_H_
