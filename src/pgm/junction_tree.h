// Junction-tree construction for the Private-PGM engine.
//
// Given the attribute sets of the measured marginals (model cliques), we
// build the induced attribute graph, triangulate it with a greedy min-fill
// elimination order, extract the maximal cliques, and connect them with a
// maximum-weight spanning tree on separator cardinality. The resulting tree
// satisfies the running-intersection property; disconnected components are
// joined by empty separators so callers always see a single tree.
//
// JT-SIZE (the paper's model-capacity oracle) is the total memory of one
// 8-byte table per maximal clique, in megabytes.

#ifndef AIM_PGM_JUNCTION_TREE_H_
#define AIM_PGM_JUNCTION_TREE_H_

#include <vector>

#include "data/domain.h"
#include "marginal/attr_set.h"

namespace aim {

struct JunctionTree {
  // Maximal cliques of the triangulated attribute graph. Every attribute of
  // the domain appears in at least one clique.
  std::vector<AttrSet> cliques;

  struct Edge {
    int a = 0;
    int b = 0;
    AttrSet separator;  // cliques[a] ∩ cliques[b]
  };
  // Spanning-tree edges (cliques.size() - 1 of them when cliques is
  // non-empty).
  std::vector<Edge> edges;

  // neighbors[i] lists (neighbor clique index, edge index) pairs.
  std::vector<std::vector<std::pair<int, int>>> neighbors;

  // Index of the first clique containing r, or -1.
  int ContainingClique(const AttrSet& r) const;
};

// Builds the junction tree for a model containing `model_cliques` (each a
// measured attribute set). All attributes of the domain participate, so
// unmeasured attributes appear as singleton (or absorbed) cliques.
JunctionTree BuildJunctionTree(const Domain& domain,
                               const std::vector<AttrSet>& model_cliques);

// The paper's JT-SIZE oracle: memory footprint in MB (1 MB = 1e6 bytes,
// 8-byte cells) of the junction tree implied by `model_cliques`.
double JtSizeMb(const Domain& domain,
                const std::vector<AttrSet>& model_cliques);

}  // namespace aim

#endif  // AIM_PGM_JUNCTION_TREE_H_
