// Inference-engine controls and counters for the Private-PGM engine.
//
// The MarkovRandomField calibration cache (DESIGN.md "Inference engine")
// tracks which clique potentials changed since the last calibration and
// recomputes only the Shafer-Shenoy messages on tree paths affected by the
// dirty cliques; beliefs materialize lazily, per queried clique. The cache
// is a pure memoization layer: every message and belief it reuses would be
// recomputed to the identical bits, so enabling or disabling it can never
// change any marginal (asserted end-to-end in tests/infer_test.cc).
//
// The switch below exists for A/B benchmarking and for the bitwise
// equivalence tests; production keeps it on.

#ifndef AIM_PGM_INFERENCE_H_
#define AIM_PGM_INFERENCE_H_

#include <cstdint>

namespace aim {

// Global inference-cache switch. Defaults to on; the environment variable
// AIM_INFER_CACHE=0 (read once, at first query) disables it, in which case
// Calibrate() falls back to a full eager recalibration every time.
bool InferenceCacheEnabled();
void SetInferenceCacheEnabled(bool enabled);

// Per-call tallies of message-cache behaviour, accumulated by the locked
// inference helpers and flushed to the metrics registry (when metrics are
// enabled) as:
//   pgm.infer.messages_recomputed  messages whose inputs changed
//   pgm.infer.messages_reused      cached messages served from the cache
//   pgm.infer.batch_queries        queries answered through AnswerMarginals
struct InferCounters {
  int64_t messages_recomputed = 0;
  int64_t messages_reused = 0;
};

// Flushes `counters` (plus `batch_queries` answered queries) to the metrics
// registry; a no-op when metrics are disabled.
void FlushInferCounters(const InferCounters& counters,
                        int64_t batch_queries = 0);

}  // namespace aim

#endif  // AIM_PGM_INFERENCE_H_
