#include "pgm/synthetic.h"

#include <algorithm>
#include <cmath>

#include "marginal/marginal.h"
#include "util/logging.h"

namespace aim {

std::vector<int64_t> RandomizedRound(const std::vector<double>& weights,
                                     int64_t total, Rng& rng) {
  AIM_CHECK(!weights.empty());
  AIM_CHECK_GE(total, 0);
  double mass = 0.0;
  for (double w : weights) mass += std::max(0.0, w);
  std::vector<int64_t> counts(weights.size(), 0);
  if (total == 0) return counts;
  if (mass <= 0.0) {
    // Uniform fallback.
    std::vector<double> uniform(weights.size(), 1.0);
    return rng.Multinomial(total, uniform);
  }
  int64_t assigned = 0;
  std::vector<double> fractional(weights.size(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    double expected =
        std::max(0.0, weights[i]) / mass * static_cast<double>(total);
    counts[i] = static_cast<int64_t>(std::floor(expected));
    fractional[i] = expected - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  int64_t remainder = total - assigned;
  AIM_CHECK_GE(remainder, 0);
  if (remainder > 0) {
    // The fractional parts can underflow to all zeros while remainder stays
    // positive: when expected values are huge, `expected - floor(expected)`
    // is exactly 0.0 in double precision even though the floors don't sum
    // to total. Rng::Multinomial on an all-zero weight vector dumps the
    // whole remainder into cell 0; spread it uniformly instead.
    double fractional_mass = 0.0;
    for (double f : fractional) fractional_mass += f;
    std::vector<int64_t> extra;
    if (fractional_mass > 0.0) {
      extra = rng.Multinomial(remainder, fractional);
    } else {
      std::vector<double> uniform(weights.size(), 1.0);
      extra = rng.Multinomial(remainder, uniform);
    }
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += extra[i];
  }
  return counts;
}

Dataset GenerateSyntheticData(const MarkovRandomField& model,
                              int64_t num_records, Rng& rng) {
  AIM_CHECK(model.calibrated()) << "call Calibrate() first";
  AIM_CHECK_GE(num_records, 0);
  const Domain& domain = model.domain();
  const JunctionTree& tree = model.tree();
  const int d = domain.num_attributes();
  const int k = model.num_cliques();
  AIM_CHECK_GE(k, 1);

  std::vector<std::vector<int32_t>> columns(
      d, std::vector<int32_t>(num_records, 0));
  std::vector<char> assigned(d, 0);

  // Parent-first traversal order from clique 0.
  std::vector<int> order, parent_edge(k, -1);
  {
    std::vector<int> stack = {0};
    std::vector<char> seen(k, 0);
    seen[0] = 1;
    while (!stack.empty()) {
      int c = stack.back();
      stack.pop_back();
      order.push_back(c);
      for (auto [nbr, edge] : tree.neighbors[c]) {
        if (!seen[nbr]) {
          seen[nbr] = 1;
          parent_edge[nbr] = edge;
          stack.push_back(nbr);
        }
      }
    }
    AIM_CHECK_EQ(static_cast<int>(order.size()), k);
  }

  // Per-step scratch, hoisted so the clique loop reuses capacity instead of
  // allocating per step (and, for `tuple`, per clique cell).
  std::vector<int> new_attrs;
  std::vector<int> sep_attrs;
  std::vector<double> cond;
  std::vector<std::vector<int64_t>> groups;
  std::vector<int64_t> strides;
  std::vector<double> weights;
  std::vector<int> tuple;
  std::vector<int> new_tuple;
  std::vector<int> sep_tuple;
  std::vector<int> value_tuple;

  for (int step = 0; step < k; ++step) {
    const int c = order[step];
    const AttrSet& clique = tree.cliques[c];
    // New attributes introduced by this clique.
    new_attrs.clear();
    sep_attrs.clear();
    for (int attr : clique) {
      if (assigned[attr]) {
        sep_attrs.push_back(attr);
      } else {
        new_attrs.push_back(attr);
      }
    }
    if (new_attrs.empty()) continue;
    AttrSet new_set(new_attrs);
    AttrSet sep_set(sep_attrs);

    Factor marginal = model.Marginal(clique);
    MarginalIndexer clique_indexer(domain, clique);
    MarginalIndexer new_indexer(domain, new_set);
    MarginalIndexer sep_indexer(domain, sep_set);
    const int64_t num_sep = sep_indexer.size();
    const int64_t num_new = new_indexer.size();

    // cond[s * num_new + a] = marginal mass of (sep=s, new=a).
    cond.assign(num_sep * num_new, 0.0);
    {
      const std::vector<int>& cl_attrs = clique.attrs();
      new_tuple.assign(new_set.size(), 0);
      sep_tuple.assign(sep_set.size(), 0);
      for (int64_t cell = 0; cell < clique_indexer.size(); ++cell) {
        clique_indexer.TupleOfIndex(cell, &tuple);
        int ni = 0, si = 0;
        for (size_t j = 0; j < cl_attrs.size(); ++j) {
          if (assigned[cl_attrs[j]]) {
            sep_tuple[si++] = tuple[j];
          } else {
            new_tuple[ni++] = tuple[j];
          }
        }
        int64_t s = sep_tuple.empty() ? 0 : sep_indexer.IndexOfTuple(sep_tuple);
        int64_t a = new_indexer.IndexOfTuple(new_tuple);
        cond[s * num_new + a] += std::max(0.0, marginal.value(cell));
      }
    }

    // Group records by separator value. The outer vector only grows; the
    // inner vectors are cleared (keeping capacity) each step.
    if (static_cast<int64_t>(groups.size()) < num_sep) groups.resize(num_sep);
    for (int64_t s = 0; s < num_sep; ++s) groups[s].clear();
    if (sep_attrs.empty()) {
      groups[0].resize(num_records);
      for (int64_t row = 0; row < num_records; ++row) groups[0][row] = row;
    } else {
      // Strides over separator attributes (ascending, last fastest).
      strides.assign(sep_attrs.size(), 1);
      for (int j = static_cast<int>(sep_attrs.size()) - 2; j >= 0; --j) {
        strides[j] = strides[j + 1] * domain.size(sep_attrs[j + 1]);
      }
      for (int64_t row = 0; row < num_records; ++row) {
        int64_t s = 0;
        for (size_t j = 0; j < sep_attrs.size(); ++j) {
          s += static_cast<int64_t>(columns[sep_attrs[j]][row]) * strides[j];
        }
        groups[s].push_back(row);
      }
    }

    // Assign new attributes within each separator group by randomized
    // rounding of the conditional distribution.
    weights.resize(num_new);
    for (int64_t s = 0; s < num_sep; ++s) {
      const std::vector<int64_t>& rows = groups[s];
      if (rows.empty()) continue;
      std::copy(cond.begin() + s * num_new,
                cond.begin() + (s + 1) * num_new, weights.begin());
      std::vector<int64_t> counts =
          RandomizedRound(weights, static_cast<int64_t>(rows.size()), rng);
      size_t row_pos = 0;
      for (int64_t a = 0; a < num_new; ++a) {
        if (counts[a] == 0) continue;
        new_indexer.TupleOfIndex(a, &value_tuple);
        for (int64_t rep = 0; rep < counts[a]; ++rep) {
          int64_t row = rows[row_pos++];
          for (size_t j = 0; j < new_attrs.size(); ++j) {
            columns[new_attrs[j]][row] = value_tuple[j];
          }
        }
      }
      AIM_CHECK_EQ(row_pos, rows.size());
    }
    for (int attr : new_attrs) assigned[attr] = 1;
  }

  for (int attr = 0; attr < d; ++attr) {
    AIM_CHECK(assigned[attr]) << "attribute" << attr << "never assigned";
  }
  return Dataset::FromColumns(domain, std::move(columns));
}

}  // namespace aim
