// aim_cli: end-to-end command-line synthesizer.
//
//   aim_cli --input=data.csv --output=synth.csv --epsilon=1.0
//           [--delta=1e-9] [--workload=all3way|all2way|target:<attr>]
//           [--bins=32] [--max_size_mb=80] [--records=N] [--seed=N]
//           [--report] [--trace-out=trace.jsonl] [--metrics-out=metrics.json]
//
// Reads a raw CSV (header row; categorical and numerical columns detected
// automatically per Appendix A), runs AIM under the requested (epsilon,
// delta) budget, writes integer-coded synthetic records to --output, and —
// with --report — prints per-query 95% confidence bounds (Section 5) so a
// data consumer can judge the quality of every workload marginal without
// any further privacy cost.

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "data/csv.h"
#include "data/data_source.h"
#include "data/preprocess.h"
#include "dp/accountant.h"
#include "eval/experiment.h"
#include "marginal/marginal.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/fault.h"
#include "robust/generations.h"
#include "robust/snapshot.h"
#include "robust/supervisor.h"
#include "store/reader.h"
#include "uncertainty/bounds.h"
#include "util/cancel.h"
#include "util/rng.h"
#include "util/signal_cancel.h"
#include "util/status.h"
#include "util/strings.h"

namespace {

struct CliFlags {
  std::string input;
  std::string output = "synthetic.csv";
  double epsilon = 1.0;
  double delta = 1e-9;
  std::string workload = "all3way";
  int bins = 32;
  double max_size_mb = 80.0;
  int64_t records = -1;
  uint64_t seed = 0;
  int threads = 0;  // 0 = automatic (AIM_THREADS env, else hardware)
  bool report = false;
  std::string trace_out;    // JSONL round trace ("-"/"stderr" = stderr)
  std::string metrics_out;  // metrics JSON dump ("-" = stdout)
  std::string checkpoint_out;  // atomic AimSnapshot written at round ends
  int checkpoint_every = 1;
  int checkpoint_generations = 1;  // rotated snapshot generations
  std::string resume;       // snapshot (generation base) to resume from
  double deadline_s = 0.0;  // wall-clock budget; <= 0 = none
  double stall_timeout_s = 0.0;  // watchdog stall window; <= 0 = none
};

int Usage() {
  std::cerr << "usage: aim_cli --input=data.{csv,aim} [--output=synth.csv]\n"
            << "  --data=F                  alias for --input; the format is "
               "auto-detected from the file content (raw CSV, an .aim "
               "columnar store, or a csv2aim shard manifest — stores are "
               "mmap'd and streamed, never fully loaded)\n"
            << "  --epsilon=F --delta=F     privacy budget (default 1.0, "
               "1e-9)\n"
            << "  --workload=all3way|all2way|target:<attribute name>\n"
            << "  --bins=N                  numeric discretization bins "
               "(default 32)\n"
            << "  --max_size_mb=F           model capacity (default 80)\n"
            << "  --records=N               synthetic records (default: "
               "estimated input size)\n"
            << "  --threads=N               worker threads (default: "
               "AIM_THREADS env or hardware)\n"
            << "  --trace-out=F             per-round JSONL trace "
               "(- or stderr for stderr; AIM_TRACE env also honored)\n"
            << "  --metrics-out=F           metrics JSON dump at exit "
               "(- for stdout)\n"
            << "  --checkpoint-out=F        crash-safe snapshot, written "
               "atomically every --checkpoint-every=N rounds (default 1)\n"
            << "  --checkpoint-generations=N  rotated snapshot generations "
               "kept at F, F.gen1, ... (default 1)\n"
            << "  --resume=F                resume from a snapshot written "
               "by --checkpoint-out (same data/flags/seed required); falls "
               "back to the newest valid generation\n"
            << "  --deadline-s=F            wall-clock budget; on expiry "
               "AIM stops selecting and synthesizes from what it has\n"
            << "  --stall-timeout-s=F       watchdog: if no round completes "
               "within F seconds, checkpoint and exit 7 "
               "(DEADLINE_EXCEEDED)\n"
            << "  --list-fault-points       print registered fault points, "
               "one per line, and exit\n"
            << "  --seed=N --report\n"
            << "  (AIM_FAULTS env arms deterministic fault injection; see "
               "DESIGN.md. Exit codes map Status categories: 0 OK, "
               "1 INTERNAL, 2 usage/INVALID_ARGUMENT, 4 NOT_FOUND, "
               "5 FAILED_PRECONDITION, 6 OUT_OF_RANGE, 7 DEADLINE_EXCEEDED, "
               "8 UNAVAILABLE, 9 CANCELLED [SIGINT/SIGTERM: the run wound "
               "down at a round boundary with a final checkpoint] — see "
               "README.)\n";
  return 2;
}

// Uniform error epilogue: print and map the typed status to the documented
// exit code.
int Fail(const aim::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return aim::ExitCodeForStatus(status);
}

bool Consume(const std::string& arg, const std::string& prefix,
             std::string* rest) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *rest = arg.substr(prefix.size());
  return true;
}

}  // namespace

static int RunCli(int argc, char** argv) {
  using namespace aim;
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i], value;
    if (arg == "--report") {
      flags.report = true;
    } else if (arg == "--list-fault-points") {
      // Discovery hook for the chaos sweep (scripts/chaos_sweep.py): every
      // fault point whose TU is linked into this binary, one per line.
      for (const std::string& point : RegisteredFaultPoints()) {
        std::cout << point << "\n";
      }
      return 0;
    } else if (Consume(arg, "--input=", &value) ||
               Consume(arg, "--data=", &value)) {
      flags.input = value;
    } else if (Consume(arg, "--output=", &value)) {
      flags.output = value;
    } else if (Consume(arg, "--workload=", &value)) {
      flags.workload = value;
    } else if (Consume(arg, "--epsilon=", &value)) {
      if (!ParseDouble(value, &flags.epsilon)) return Usage();
    } else if (Consume(arg, "--delta=", &value)) {
      if (!ParseDouble(value, &flags.delta)) return Usage();
    } else if (Consume(arg, "--bins=", &value)) {
      // ParseInt32 range-checks, so "--bins=4294967297" is a usage error
      // instead of truncating to 1 bin and silently flattening every
      // numeric column.
      if (!ParseInt32(value, &flags.bins) || flags.bins < 1) return Usage();
    } else if (Consume(arg, "--max_size_mb=", &value)) {
      if (!ParseDouble(value, &flags.max_size_mb)) return Usage();
    } else if (Consume(arg, "--records=", &value)) {
      if (!ParseInt64(value, &flags.records)) return Usage();
    } else if (Consume(arg, "--seed=", &value)) {
      // Seeds are unsigned; "--seed=-1" used to bit-cast to 2^64-1 and
      // synthesize from an RNG stream nobody could name. Usage error now.
      if (!ParseUint64(value, &flags.seed)) return Usage();
    } else if (Consume(arg, "--threads=", &value)) {
      if (!ParseInt32(value, &flags.threads) || flags.threads < 0) {
        return Usage();
      }
    } else if (Consume(arg, "--trace-out=", &value)) {
      flags.trace_out = value;
    } else if (Consume(arg, "--metrics-out=", &value)) {
      flags.metrics_out = value;
    } else if (Consume(arg, "--checkpoint-out=", &value)) {
      flags.checkpoint_out = value;
    } else if (Consume(arg, "--checkpoint-every=", &value)) {
      if (!ParseInt32(value, &flags.checkpoint_every) ||
          flags.checkpoint_every <= 0) {
        return Usage();
      }
    } else if (Consume(arg, "--checkpoint-generations=", &value)) {
      if (!ParseInt32(value, &flags.checkpoint_generations) ||
          flags.checkpoint_generations <= 0 ||
          flags.checkpoint_generations > kGenerationScanLimit) {
        return Usage();
      }
    } else if (Consume(arg, "--resume=", &value)) {
      flags.resume = value;
    } else if (Consume(arg, "--deadline-s=", &value)) {
      if (!ParseDouble(value, &flags.deadline_s)) return Usage();
    } else if (Consume(arg, "--stall-timeout-s=", &value)) {
      if (!ParseDouble(value, &flags.stall_timeout_s)) return Usage();
    } else {
      return Usage();
    }
  }
  if (flags.input.empty()) return Usage();
  SetParallelThreads(flags.threads);
  InitFaultsFromEnv();

  // ---- Observability. --trace-out installs a JSONL sink (overriding any
  // AIM_TRACE env sink); --metrics-out turns on metrics collection and dumps
  // the registry on exit.
  std::unique_ptr<JsonlTraceSink> trace_sink;
  if (!flags.trace_out.empty()) {
    trace_sink = std::make_unique<JsonlTraceSink>(flags.trace_out);
    if (!trace_sink->ok()) {
      return Fail(InternalError("cannot open trace output '" +
                                flags.trace_out + "'"));
    }
    SetGlobalTraceSink(trace_sink.get());
  } else {
    InitTraceSinkFromEnv();
  }
  if (!flags.metrics_out.empty()) SetMetricsEnabled(true);

  // ---- Load: a raw CSV (parsed + Appendix-A preprocessed) or an .aim
  // columnar store / shard manifest written by csv2aim (mmap'd and streamed
  // — the records are never materialized). Auto-detected from the file
  // content, not the extension.
  std::unique_ptr<StoreSource> store;
  std::optional<PreprocessResult> prep;
  std::optional<DatasetSource> csv_source;
  const DataSource* source = nullptr;
  if (IsStoreFile(flags.input)) {
    StatusOr<std::unique_ptr<StoreSource>> opened =
        StoreSource::Open(flags.input);
    if (!opened.ok()) return Fail(opened.status());
    store = std::move(*opened);
    source = store.get();
    std::cerr << "mapped store: " << store->num_records() << " records, "
              << store->domain().num_attributes() << " attributes, "
              << store->num_shards() << " shard(s), "
              << (store->mapped_bytes() >> 20) << " MB\n";
  } else {
    StatusOr<RawTable> table = ReadCsv(flags.input);
    if (!table.ok()) return Fail(table.status());
    PreprocessOptions prep_options;
    prep_options.num_bins = flags.bins;
    StatusOr<PreprocessResult> preprocessed = Preprocess(*table, prep_options);
    if (!preprocessed.ok()) return Fail(preprocessed.status());
    prep.emplace(*std::move(preprocessed));
    csv_source.emplace(prep->dataset);
    source = &*csv_source;
    std::cerr << "loaded " << source->num_records() << " records, "
              << source->domain().num_attributes() << " attributes\n";
  }
  const Domain& domain = source->domain();

  // ---- Workload.
  Workload workload;
  if (flags.workload == "all3way") {
    workload = AllKWayWorkload(
        domain, std::min(3, domain.num_attributes()));
  } else if (flags.workload == "all2way") {
    workload = AllKWayWorkload(
        domain, std::min(2, domain.num_attributes()));
  } else if (flags.workload.rfind("target:", 0) == 0) {
    std::string name = flags.workload.substr(7);
    int target = domain.IndexOf(name);
    if (target < 0) {
      return Fail(InvalidArgumentError("no attribute named '" + name + "'"));
    }
    workload = TargetWorkload(
        domain, std::min(3, domain.num_attributes()), target);
  } else {
    return Usage();
  }
  std::cerr << "workload: " << workload.num_queries() << " marginals ("
            << flags.workload << ")\n";

  // ---- Run AIM.
  const double rho = CdpRho(flags.epsilon, flags.delta);
  std::cerr << "privacy: (" << flags.epsilon << ", " << flags.delta
            << ")-DP = " << rho << "-zCDP\n";
  AimOptions options;
  options.max_size_mb = flags.max_size_mb;
  options.synthetic_records = flags.records;
  options.record_candidates = flags.report;
  options.checkpoint_path = flags.checkpoint_out;
  options.checkpoint_every_rounds = flags.checkpoint_every;
  options.checkpoint_generations = flags.checkpoint_generations;
  options.resume_path = flags.resume;
  options.deadline_seconds = flags.deadline_s;

  // Pre-validate a resume snapshot here so a stale or mismatched file is a
  // clean CLI error rather than a CHECK failure inside Run. The
  // generation-aware loader scans newest-first; a corrupt newest generation
  // is a warning (Run will fall back to the same older generation), only a
  // ladder with no valid snapshot at all is fatal.
  if (!flags.resume.empty()) {
    StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
        flags.resume, AimRunFingerprint(domain, workload, options, rho), rho);
    if (!loaded.ok()) {
      std::cerr << "error: cannot resume from '" << flags.resume
                << "': " << loaded.status().ToString() << "\n";
      return ExitCodeForStatus(loaded.status());
    }
    for (const std::string& rejected : loaded->rejected) {
      std::cerr << "warning: checkpoint generation rejected: " << rejected
                << "\n";
    }
    if (loaded->generation > 0) {
      std::cerr << "warning: falling back to checkpoint generation "
                << loaded->generation << " ('" << loaded->path << "')\n";
    }
    std::cerr << "resuming from '" << loaded->path << "' (round "
              << loaded->snapshot.round << ", rho spent "
              << loaded->snapshot.rho_spent << ")\n";
  }

  // ---- Interrupt safety + stall watchdog. SIGINT/SIGTERM trip the
  // process-wide token; AIM polls it at round boundaries, forces a final
  // checkpoint, and winds down — so an interrupted run is resumable from
  // its newest checkpoint generation. The stall watchdog shares the same
  // token (its progress probe reads the aim.rounds counter, so it implies
  // metrics collection — cheap, and output-neutral).
  InstallSignalCancel();
  CancelToken& cancel = ProcessCancelToken();
  options.cancel = &cancel;
  std::optional<RunSupervisor> supervisor;
  if (flags.stall_timeout_s > 0.0) {
    SetMetricsEnabled(true);
    SupervisorOptions sup_options;
    sup_options.stall_window_seconds = flags.stall_timeout_s;
    supervisor.emplace(&cancel, AimRoundProgressProbe(), sup_options);
  }

  AimMechanism mechanism(options);
  Rng rng(flags.seed + 0x41494D);
  MechanismResult result = mechanism.Run(*source, workload, rho, rng);
  if (supervisor.has_value()) supervisor->Stop();
  std::cerr << "AIM: " << result.rounds << " rounds, "
            << result.log.measurements.size() << " measurements, "
            << result.seconds << "s"
            << (result.deadline_expired ? " (deadline expired)" : "")
            << (result.cancelled ? " (cancelled)" : "")
            << "\n";
  if (supervisor.has_value() && supervisor->stall_detected()) {
    // The run was wound down and checkpointed; report the typed stall
    // status instead of writing output a caller would mistake for a
    // completed synthesis.
    return Fail(supervisor->status());
  }
  if (ReceivedCancelSignal() != 0) {
    // Interrupted: the final checkpoint is on disk (when --checkpoint-out
    // was given) and the partial synthesis is deliberately NOT written —
    // an output file must always mean "the whole budget was spent".
    // Flush the sinks so the rounds that did complete are on record, then
    // exit with the typed interrupted code (9).
    if (trace_sink != nullptr) {
      SetGlobalTraceSink(nullptr);
      trace_sink->Flush();
    }
    if (!flags.metrics_out.empty() && flags.metrics_out != "-") {
      std::ofstream out(flags.metrics_out);
      if (out) {
        MetricsRegistry::Global().WriteJson(out);
        out << "\n";
      }
    }
    return Fail(CancelledError(
        std::string("interrupted by signal ") +
        std::to_string(ReceivedCancelSignal()) + " after " +
        std::to_string(result.rounds) + " completed rounds" +
        (flags.checkpoint_out.empty()
             ? ""
             : "; resume with --resume=" + flags.checkpoint_out)));
  }

  // ---- Write output.
  Status status = WriteCsv(result.synthetic, flags.output);
  if (!status.ok()) return Fail(status);
  std::cerr << "wrote " << result.synthetic.num_records() << " records to "
            << flags.output << " (integer-coded; bins/categories per "
            << "Appendix-A preprocessing)\n";

  // ---- Optional quality report.
  if (flags.report) {
    UncertaintyQuantifier uq(domain, result);
    TablePrinter report({"workload_marginal", "cells", "supported",
                         "error_bound_95(L1 counts)"});
    for (const auto& q : workload.queries()) {
      auto bound = uq.BoundFor(q.attrs, result.synthetic);
      std::string names;
      for (int attr : q.attrs) {
        if (!names.empty()) names += "*";
        names += domain.name(attr);
      }
      report.AddRow(
          {names, std::to_string(MarginalSize(domain, q.attrs)),
           bound.has_value() ? (bound->supported ? "yes" : "no") : "?",
           bound.has_value() ? FormatG(bound->bound) : "n/a"});
    }
    report.Print(std::cout);
  }

  // ---- Observability teardown.
  if (trace_sink != nullptr) {
    SetGlobalTraceSink(nullptr);
    trace_sink->Flush();
    Status sink_status = trace_sink->status();
    if (!sink_status.ok()) {
      std::cerr << "warning: " << sink_status.ToString()
                << " — the trace is incomplete\n";
    }
  }
  if (!flags.metrics_out.empty()) {
    if (flags.metrics_out == "-") {
      MetricsRegistry::Global().WriteJson(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream out(flags.metrics_out);
      if (!out) {
        return Fail(InternalError("cannot open metrics output '" +
                                  flags.metrics_out + "'"));
      }
      MetricsRegistry::Global().WriteJson(out);
      out << "\n";
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  // Containment: an injected fault (or any library exception) surfacing
  // here must be a clean typed exit, never a std::terminate — the
  // chaos-sweep invariant. Output files are written atomically, so an
  // aborted run leaves no partial artifacts behind.
  try {
    return RunCli(argc, argv);
  } catch (const aim::FaultInjectedError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return aim::ExitCodeForStatus(aim::InternalError(e.what()));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return aim::ExitCodeForStatus(aim::InternalError(e.what()));
  }
}
