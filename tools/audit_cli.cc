// audit_cli: empirical privacy audit of the DP mechanisms.
//
//   audit_cli [--mechanism=AIM] [--epsilon=1.0] [--delta=1e-9]
//             [--pairs=100] [--records=500] [--domain=4,4,4]
//             [--stat=measurement|synthetic|selection]
//             [--confidence=0.95] [--seed=N] [--threads=N]
//             [--csv] [--require-claim]
//             [--trace-out=F] [--metrics-out=F]
//
// Crafts a worst-case neighboring pair (D, D ∪ {canary}), runs the
// mechanism many times on both sides with coupled randomness, thresholds a
// distinguishing statistic, and reports the empirical epsilon with exact
// Clopper-Pearson confidence edges next to the accountant's claimed
// epsilon (see DESIGN.md "Privacy auditing").
//
// Exit codes follow the shared Status contract (util/status.h,
// ExitCodeForStatus; see the README table): 0 success; 2 usage or invalid
// argument; other failures map their StatusCode. Exit 3 is reserved here
// for claim refutation: --require-claim is set and the empirical epsilon's
// upper confidence edge exceeds the claimed epsilon (i.e. the audit could
// not certify consistency with the claim at the configured confidence).

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "eval/experiment.h"
#include "marginal/workload.h"
#include "mechanisms/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/fault.h"
#include "util/signal_cancel.h"
#include "util/status.h"
#include "util/strings.h"

namespace {

struct CliFlags {
  std::string mechanism = "AIM";
  double epsilon = 1.0;
  double delta = 1e-9;
  int pairs = 100;
  int64_t records = 500;
  std::string domain = "4,4,4";
  std::string stat = "measurement";
  double confidence = 0.95;
  uint64_t seed = 0;
  int threads = 0;  // 0 = automatic (AIM_THREADS env, else hardware)
  bool csv = false;
  bool require_claim = false;
  std::string trace_out;
  std::string metrics_out;
};

int Usage() {
  std::cerr
      << "usage: audit_cli [--mechanism=AIM|MST|...]\n"
      << "  --epsilon=F --delta=F     claimed guarantee to audit "
         "(default 1.0, 1e-9)\n"
      << "  --pairs=N                 paired trials (default 100)\n"
      << "  --records=N               base-dataset size (default 500)\n"
      << "  --domain=n1,n2,...        attribute sizes of the audit domain "
         "(default 4,4,4; every size >= 2)\n"
      << "  --stat=measurement|synthetic|selection\n"
      << "                            distinguishing statistic "
         "(default measurement)\n"
      << "  --confidence=F            Clopper-Pearson coverage "
         "(default 0.95)\n"
      << "  --seed=N --threads=N --csv\n"
      << "  --require-claim           exit 3 unless the empirical epsilon's "
         "upper CI edge stays at or below the claimed epsilon\n"
      << "  --trace-out=F             JSONL audit trace (- or stderr)\n"
      << "  --metrics-out=F           metrics JSON dump at exit (- for "
         "stdout)\n"
      << "  --list-fault-points       print registered fault points, exit\n"
      << "  (AIM_FAULTS env arms deterministic fault injection; failed "
         "pairs are excluded from the bound, never counted)\n";
  return 2;
}

bool Consume(const std::string& arg, const std::string& prefix,
             std::string* rest) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *rest = arg.substr(prefix.size());
  return true;
}

// Prints a typed error and maps its Status category to the process exit
// code (exit 3 stays reserved for claim refutation, which is not a Status).
int Fail(const aim::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return aim::ExitCodeForStatus(status);
}

int RunCli(int argc, char** argv) {
  using namespace aim;
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i], value;
    if (arg == "--list-fault-points") {
      for (const std::string& point : RegisteredFaultPoints()) {
        std::cout << point << "\n";
      }
      return 0;
    } else if (arg == "--csv") {
      flags.csv = true;
    } else if (arg == "--require-claim") {
      flags.require_claim = true;
    } else if (Consume(arg, "--mechanism=", &value)) {
      flags.mechanism = value;
    } else if (Consume(arg, "--epsilon=", &value)) {
      if (!ParseDouble(value, &flags.epsilon)) return Usage();
    } else if (Consume(arg, "--delta=", &value)) {
      if (!ParseDouble(value, &flags.delta)) return Usage();
    } else if (Consume(arg, "--pairs=", &value)) {
      // ParseInt32 range-checks, so a --pairs past INT_MAX is a usage
      // error instead of a silent truncation to some smaller pair count.
      if (!ParseInt32(value, &flags.pairs) || flags.pairs < 1) {
        return Usage();
      }
    } else if (Consume(arg, "--records=", &value)) {
      if (!ParseInt64(value, &flags.records) || flags.records < 1) {
        return Usage();
      }
    } else if (Consume(arg, "--domain=", &value)) {
      flags.domain = value;
    } else if (Consume(arg, "--stat=", &value)) {
      flags.stat = value;
    } else if (Consume(arg, "--confidence=", &value)) {
      if (!ParseDouble(value, &flags.confidence)) return Usage();
    } else if (Consume(arg, "--seed=", &value)) {
      // Seeds are unsigned; "--seed=-1" used to bit-cast to 2^64-1, which
      // silently audited a different RNG stream than the operator wrote
      // down. Now it is a usage error.
      if (!ParseUint64(value, &flags.seed)) return Usage();
    } else if (Consume(arg, "--threads=", &value)) {
      if (!ParseInt32(value, &flags.threads) || flags.threads < 0) {
        return Usage();
      }
    } else if (Consume(arg, "--trace-out=", &value)) {
      flags.trace_out = value;
    } else if (Consume(arg, "--metrics-out=", &value)) {
      flags.metrics_out = value;
    } else {
      return Usage();
    }
  }
  SetParallelThreads(flags.threads);
  InitFaultsFromEnv();

  std::unique_ptr<JsonlTraceSink> trace_sink;
  if (!flags.trace_out.empty()) {
    trace_sink = std::make_unique<JsonlTraceSink>(flags.trace_out);
    if (!trace_sink->ok()) {
      return Fail(InternalError("cannot open trace output '" +
                                flags.trace_out + "'"));
    }
    SetGlobalTraceSink(trace_sink.get());
  } else {
    InitTraceSinkFromEnv();
  }
  if (!flags.metrics_out.empty()) SetMetricsEnabled(true);

  // ---- Audit domain: small on purpose. The attack's power per pair does
  // not grow with the domain, but runtime does; a tiny domain lets the pair
  // count (which is what tightens the CI) go up instead.
  std::vector<int> sizes;
  for (const std::string& part : SplitString(flags.domain, ',')) {
    int v;
    if (!ParseInt32(part, &v) || v < 2) {
      return Fail(InvalidArgumentError(
          "bad --domain (want comma-separated sizes >= 2)"));
    }
    sizes.push_back(v);
  }
  if (sizes.empty()) return Usage();
  const Domain domain = Domain::WithSizes(sizes);

  StatusOr<AttackStatistic> statistic = ParseAttackStatistic(flags.stat);
  if (!statistic.ok()) return Fail(statistic.status());

  // Modest estimation effort: the audit domain is tiny, so full paper-scale
  // iteration counts would only slow the fan-out down without changing the
  // distinguishing statistics in any way that matters at this scale.
  RegistryOptions registry_options;
  registry_options.round_iters = 50;
  registry_options.final_iters = 100;
  std::unique_ptr<Mechanism> mechanism =
      MechanismByName(flags.mechanism, registry_options);
  if (mechanism == nullptr) {
    return Fail(
        InvalidArgumentError("unknown mechanism '" + flags.mechanism + "'"));
  }

  const Workload workload =
      AllKWayWorkload(domain, std::min(2, domain.num_attributes()));

  AuditOptions options;
  options.epsilon = flags.epsilon;
  options.delta = flags.delta;
  options.pairs = flags.pairs;
  options.num_records = flags.records;
  options.statistic = *statistic;
  options.confidence = flags.confidence;
  options.seed = flags.seed;
  // SIGINT/SIGTERM wind the pair fan-out down at the next pair boundary;
  // the audit then reports CancelledError (a partial pair set must never
  // masquerade as a bound) and we exit 9 with the sinks flushed.
  InstallSignalCancel();
  options.cancel = &ProcessCancelToken();

  StatusOr<AuditResult> audit =
      RunAudit(*mechanism, domain, workload, options);
  if (!audit.ok()) {
    // Flush observability even on the error path: an interrupted audit's
    // partial trace (the pairs that did finish) is still evidence.
    if (trace_sink != nullptr) {
      SetGlobalTraceSink(nullptr);
      trace_sink->Flush();
    }
    return Fail(audit.status());
  }

  TablePrinter table({"mechanism", "stat", "eps_claimed", "pairs", "failed",
                      "tpr", "fpr", "eps_point", "eps_lower", "eps_upper",
                      "refuted", "seconds"});
  table.AddRow({audit->mechanism, ToString(audit->statistic),
                FormatG(audit->claimed_epsilon),
                std::to_string(audit->estimate.pairs),
                std::to_string(audit->failures.size()),
                FormatG(audit->estimate.tpr), FormatG(audit->estimate.fpr),
                FormatG(audit->estimate.eps_point),
                FormatG(audit->estimate.eps_lower),
                FormatG(audit->estimate.eps_upper),
                audit->refuted ? "YES" : "no", FormatG(audit->seconds, 3)});
  table.Print(std::cout, flags.csv);
  if (!flags.csv) {
    std::cout << "claimed (eps=" << FormatG(audit->claimed_epsilon)
              << ", delta=" << FormatG(audit->delta)
              << ") -> rho=" << FormatG(audit->rho) << "; empirical eps in ["
              << FormatG(audit->estimate.eps_lower) << ", "
              << FormatG(audit->estimate.eps_upper) << "] at "
              << FormatG(100.0 * flags.confidence) << "% confidence\n";
    if (audit->refuted) {
      std::cout << "REFUTED: the sound lower bound exceeds the claimed "
                   "epsilon — the mechanism is not ("
                << FormatG(audit->claimed_epsilon) << ", "
                << FormatG(audit->delta) << ")-DP\n";
    }
  }

  // ---- Teardown mirrors aim_cli: flush sinks and surface lost records.
  int exit_code = 0;
  if (flags.require_claim &&
      !(audit->estimate.eps_upper <= audit->claimed_epsilon)) {
    std::cerr << "claim check failed: empirical eps upper edge "
              << FormatG(audit->estimate.eps_upper)
              << " exceeds claimed eps "
              << FormatG(audit->claimed_epsilon) << "\n";
    exit_code = 3;
  }
  if (!flags.metrics_out.empty()) {
    if (flags.metrics_out == "-") {
      MetricsRegistry::Global().WriteJson(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream out(flags.metrics_out);
      MetricsRegistry::Global().WriteJson(out);
      out << "\n";
      if (!out) {
        std::cerr << "error: failed writing metrics to '"
                  << flags.metrics_out << "'\n";
        exit_code = exit_code == 0 ? 1 : exit_code;
      }
    }
  }
  if (trace_sink != nullptr) {
    SetGlobalTraceSink(nullptr);
    trace_sink->Flush();
    if (!trace_sink->ok()) {
      std::cerr << "error: " << trace_sink->status().ToString() << "\n";
      exit_code = exit_code == 0 ? 1 : exit_code;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  // Chaos-sweep containment: injected faults and library exceptions become
  // clean typed exits, never std::terminate.
  try {
    return RunCli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return aim::ExitCodeForStatus(aim::InternalError(e.what()));
  }
}
