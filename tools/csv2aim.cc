// csv2aim: converts a CSV dataset into the mmap-able `.aim` columnar store
// (optionally sharded) that aim_cli --data consumes.
//
//   csv2aim --input=data.csv --output=data.aim [--bins=32]
//           [--shard-rows=N] [--domain-sizes=n1,n2,...]
//
// Two modes:
//  - Default: the CSV is parsed and discretized with exactly the Appendix-A
//    preprocessing aim_cli applies to raw CSVs (same --bins), so running AIM
//    on the converted store produces byte-identical synthetic output to
//    running it on the original CSV.
//  - --domain-sizes: the CSV already holds integer codes (e.g. aim_cli's
//    synthetic output, or an export from another pipeline) with the given
//    per-column domain sizes. The file is converted in ONE STREAMING PASS
//    with bounded memory — at most one shard is buffered — so inputs far
//    larger than RAM convert fine; combine with --shard-rows.
//
// Output is written atomically (tmp + fsync + rename per shard); with
// --shard-rows the target path becomes a shard manifest and the shards land
// next to it as <stem>.00000.aim, <stem>.00001.aim, ... On ANY conversion
// failure every file already written is removed again, so the output
// location ends up either fully valid (verified by re-opening) or empty —
// never a truncated store or a manifest naming missing shards.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "data/csv.h"
#include "data/preprocess.h"
#include "robust/fault.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/signal_cancel.h"
#include "util/status.h"
#include "util/strings.h"

namespace {

int Usage() {
  std::cerr
      << "usage: csv2aim --input=data.csv --output=data.aim\n"
      << "  --bins=N            numeric discretization bins (default 32; "
         "must match aim_cli's --bins for byte-identical runs)\n"
      << "  --shard-rows=N      split into shards of N rows; --output "
         "becomes a manifest listing <stem>.00000.aim, ...\n"
      << "  --domain-sizes=a,b  input is already integer-coded with these "
         "per-column domain sizes; converts in one streaming pass with "
         "bounded memory (no preprocessing)\n"
      << "  --list-fault-points print registered fault points and exit\n"
      << "  (exit codes map Status categories — see README: 0 OK, "
         "1 INTERNAL, 2 usage/INVALID_ARGUMENT, 4 NOT_FOUND, ...)\n";
  return 2;
}

bool Consume(const std::string& arg, const std::string& prefix,
             std::string* rest) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *rest = arg.substr(prefix.size());
  return true;
}

// Splits one CSV line on commas (same dialect as data/csv.cc: no quoting).
void SplitFields(const std::string& line, std::vector<std::string>* out) {
  out->clear();
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out->push_back(line.substr(start));
      return;
    }
    out->push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

struct ConvertStats {
  int64_t rows = 0;
  int shards = 0;
  // Everything the writer put on disk (shards + manifest), so the
  // verification step can clean up if the re-open rejects the store.
  std::vector<std::string> written;
};

// Streaming precoded pass: header line gives the attribute names; every
// further line is one integer-coded record appended straight to the writer,
// which buffers at most one shard. Cleans up written files on failure.
aim::Status ConvertPrecoded(const std::string& input,
                            const std::string& output,
                            const std::vector<int>& domain_sizes,
                            const aim::StoreWriterOptions& store_options,
                            ConvertStats* stats) {
  using namespace aim;
  std::ifstream file(input);
  if (!file) return NotFoundError("cannot open " + input);
  std::string line;
  if (!std::getline(file, line)) {
    return InvalidArgumentError(input + " is empty (no header)");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> fields;
  SplitFields(line, &fields);
  if (fields.size() != domain_sizes.size()) {
    return InvalidArgumentError(
        "header has " + std::to_string(fields.size()) +
        " columns, --domain-sizes lists " +
        std::to_string(domain_sizes.size()));
  }
  StoreWriter writer(Domain(fields, domain_sizes), output, store_options);
  auto fail = [&writer](Status s) {
    writer.RemovePartialOutputs();
    return s;
  };
  std::vector<int> record(domain_sizes.size());
  int64_t line_number = 1;
  while (std::getline(file, line)) {
    ++line_number;
    if ((line_number & 0x3FF) == 0 && ProcessCancelToken().cancelled()) {
      // Interrupted mid-stream: remove every partial shard — the output
      // location must end up fully valid or empty, same as any failure.
      return fail(CancelledError("interrupted after " +
                                 std::to_string(line_number) + " lines"));
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    SplitFields(line, &fields);
    if (fields.size() != record.size()) {
      return fail(InvalidArgumentError(
          input + ":" + std::to_string(line_number) + ": " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(record.size())));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      int64_t v;
      if (!ParseInt64(fields[c], &v)) {
        return fail(InvalidArgumentError(
            input + ":" + std::to_string(line_number) + ": column " +
            std::to_string(c + 1) + ": '" + fields[c] +
            "' is not an integer code"));
      }
      record[c] = static_cast<int>(v);
    }
    Status s = writer.Append(record);
    if (!s.ok()) {
      return fail(Status(s.code(), input + ":" +
                                       std::to_string(line_number) + ": " +
                                       s.message()));
    }
  }
  if (file.bad()) return fail(InternalError("read failed for " + input));
  Status s = writer.Finish();
  if (!s.ok()) return fail(s);
  stats->rows = writer.rows_written();
  stats->shards = writer.shards_written();
  stats->written = writer.written_paths();
  return Status::Ok();
}

// Preprocessed mode: identical discretization to aim_cli --input. Cleans up
// written files on failure.
aim::Status ConvertPreprocessed(const std::string& input,
                                const std::string& output, int bins,
                                const aim::StoreWriterOptions& store_options,
                                ConvertStats* stats) {
  using namespace aim;
  StatusOr<RawTable> table = ReadCsv(input);
  if (!table.ok()) return table.status();
  PreprocessOptions prep_options;
  prep_options.num_bins = bins;
  StatusOr<PreprocessResult> prep = Preprocess(*table, prep_options);
  if (!prep.ok()) return prep.status();
  const Dataset& data = prep->dataset;
  StoreWriter writer(data.domain(), output, store_options);
  Status status;
  std::vector<int> record(data.domain().num_attributes());
  for (int64_t row = 0; row < data.num_records() && status.ok(); ++row) {
    if ((row & 0x3FF) == 0 && ProcessCancelToken().cancelled()) {
      status = CancelledError("interrupted after " + std::to_string(row) +
                              " rows");
      break;
    }
    for (int a = 0; a < data.domain().num_attributes(); ++a) {
      record[a] = data.value(row, a);
    }
    status = writer.Append(record);
  }
  if (status.ok()) status = writer.Finish();
  if (!status.ok()) {
    writer.RemovePartialOutputs();
    return status;
  }
  stats->rows = writer.rows_written();
  stats->shards = writer.shards_written();
  stats->written = writer.written_paths();
  return Status::Ok();
}

int RunCli(int argc, char** argv) {
  using namespace aim;
  std::string input, output;
  int bins = 32;
  int64_t shard_rows = 0;
  std::vector<int> domain_sizes;
  bool precoded = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i], value;
    if (arg == "--list-fault-points") {
      for (const std::string& point : RegisteredFaultPoints()) {
        std::cout << point << "\n";
      }
      return 0;
    } else if (Consume(arg, "--input=", &value)) {
      input = value;
    } else if (Consume(arg, "--output=", &value)) {
      output = value;
    } else if (Consume(arg, "--bins=", &value)) {
      // ParseInt32 range-checks; values past INT_MAX used to truncate.
      if (!ParseInt32(value, &bins) || bins < 1) return Usage();
    } else if (Consume(arg, "--shard-rows=", &value)) {
      if (!ParseInt64(value, &shard_rows) || shard_rows < 1) return Usage();
    } else if (Consume(arg, "--domain-sizes=", &value)) {
      precoded = true;
      std::vector<std::string> fields;
      SplitFields(value, &fields);
      for (const std::string& field : fields) {
        int v;
        if (!ParseInt32(field, &v) || v < 1) return Usage();
        domain_sizes.push_back(v);
      }
      if (domain_sizes.empty()) return Usage();
    } else {
      return Usage();
    }
  }
  if (input.empty() || output.empty()) return Usage();
  InitFaultsFromEnv();
  // SIGINT/SIGTERM: the row loops poll the process token, remove partial
  // shards, and exit 9 — an interrupted conversion never leaves a
  // truncated store behind.
  InstallSignalCancel();

  StoreWriterOptions store_options;
  store_options.shard_rows = shard_rows;

  ConvertStats stats;
  Status status =
      precoded
          ? ConvertPrecoded(input, output, domain_sizes, store_options,
                            &stats)
          : ConvertPreprocessed(input, output, bins, store_options, &stats);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return ExitCodeForStatus(status);
  }

  // Re-open what was just written: proves the store round-trips (checksums
  // and value ranges verify on open) before anything downstream trusts it.
  StatusOr<std::unique_ptr<StoreSource>> check = StoreSource::Open(output);
  if (!check.ok()) {
    std::cerr << "error: wrote " << output
              << " but it fails verification: " << check.status().ToString()
              << "\n";
    for (const std::string& path : stats.written) {
      std::remove(path.c_str());
    }
    return ExitCodeForStatus(check.status());
  }
  std::cerr << "wrote " << stats.rows << " records, "
            << (*check)->domain().num_attributes() << " attributes, "
            << stats.shards << " shard(s), " << (*check)->mapped_bytes()
            << " bytes to " << output << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Chaos-sweep containment: injected faults and library exceptions become
  // clean typed exits, never std::terminate.
  try {
    return RunCli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return aim::ExitCodeForStatus(aim::InternalError(e.what()));
  }
}
