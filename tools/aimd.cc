// aimd: the long-lived multi-tenant synthesis daemon.
//
//   aimd [--host=127.0.0.1] [--port=8177] [--work-dir=DIR]
//        [--job-workers=N] [--tenant=name:rho]... [--default-tenant-rho=F]
//        [--rate-burst=N] [--rate-per-s=F] [--checkpoint-generations=N]
//        [--threads=N] [--metrics-out=F]
//
// Serves synthesis jobs over HTTP (routes in src/serve/server.h; quickstart
// in README.md): submissions run through the mechanism registry on
// background workers, each charged up front against its tenant's lifetime
// zCDP budget, checkpointed every round, and independently cancellable.
// SIGINT/SIGTERM drain gracefully — in-flight jobs wind down at their next
// AIM round boundary with a final checkpoint (resumable via resume_from on
// resubmission), then the daemon exits 0.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "serve/server.h"
#include "util/signal_cancel.h"
#include "util/status.h"
#include "util/strings.h"

namespace {

int Usage() {
  std::cerr
      << "usage: aimd [--host=A] [--port=N] [--work-dir=DIR]\n"
      << "  --port=N                  listen port (default 8177; 0 = "
         "ephemeral, printed at startup)\n"
      << "  --host=A                  bind address (default 127.0.0.1)\n"
      << "  --work-dir=DIR            job directories land under "
         "DIR/jobs/<id> (default .)\n"
      << "  --job-workers=N           concurrent synthesis jobs (default "
         "2)\n"
      << "  --tenant=name:rho         provision a tenant with a lifetime "
         "zCDP budget (repeatable)\n"
      << "  --default-tenant-rho=F    budget for tenants first seen at "
         "submission (default: refuse unknown tenants)\n"
      << "  --rate-burst=N            per-tenant submission burst "
         "(default 8)\n"
      << "  --rate-per-s=F            per-tenant submission refill rate "
         "(default 1; 0 = no refill)\n"
      << "  --checkpoint-generations=N  rotated snapshot ladder depth per "
         "job (default 3)\n"
      << "  --threads=N               worker threads for parallel kernels "
         "(default: AIM_THREADS env or hardware)\n"
      << "  --metrics-out=F           metrics JSON dump at exit (- for "
         "stdout)\n"
      << "  (SIGINT/SIGTERM drain: jobs wind down at a round boundary "
         "with a final checkpoint, then aimd exits 0.)\n";
  return 2;
}

bool Consume(const std::string& arg, const std::string& prefix,
             std::string* rest) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *rest = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aim;
  ServerOptions options;
  options.port = 8177;
  std::vector<std::pair<std::string, double>> tenants;
  int threads = 0;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i], value;
    if (Consume(arg, "--host=", &value)) {
      options.host = value;
    } else if (Consume(arg, "--port=", &value)) {
      int port = 0;
      if (!ParseInt32(value, &port) || port < 0 || port > 65535) {
        return Usage();
      }
      options.port = port;
    } else if (Consume(arg, "--work-dir=", &value)) {
      options.jobs.work_dir = value;
    } else if (Consume(arg, "--job-workers=", &value)) {
      if (!ParseInt32(value, &options.jobs.workers) ||
          options.jobs.workers < 1 || options.jobs.workers > 256) {
        return Usage();
      }
    } else if (Consume(arg, "--tenant=", &value)) {
      const size_t colon = value.rfind(':');
      double rho = 0.0;
      if (colon == std::string::npos || colon == 0 ||
          !ParseDouble(value.substr(colon + 1), &rho)) {
        return Usage();
      }
      tenants.emplace_back(value.substr(0, colon), rho);
    } else if (Consume(arg, "--default-tenant-rho=", &value)) {
      if (!ParseDouble(value, &options.default_tenant_rho)) return Usage();
    } else if (Consume(arg, "--rate-burst=", &value)) {
      if (!ParseDouble(value, &options.rate_burst)) return Usage();
    } else if (Consume(arg, "--rate-per-s=", &value)) {
      if (!ParseDouble(value, &options.rate_per_second)) return Usage();
    } else if (Consume(arg, "--checkpoint-generations=", &value)) {
      if (!ParseInt32(value, &options.jobs.checkpoint_generations) ||
          options.jobs.checkpoint_generations < 1 ||
          options.jobs.checkpoint_generations > 16) {
        return Usage();
      }
    } else if (Consume(arg, "--threads=", &value)) {
      if (!ParseInt32(value, &threads) || threads < 0) return Usage();
    } else if (Consume(arg, "--metrics-out=", &value)) {
      metrics_out = value;
    } else {
      return Usage();
    }
  }
  SetParallelThreads(threads);
  InitTraceSinkFromEnv();
  if (!metrics_out.empty()) SetMetricsEnabled(true);

  Server server(options);
  for (const auto& [name, rho] : tenants) {
    Status provisioned = server.tenants().Provision(name, rho);
    if (!provisioned.ok()) {
      std::cerr << "error: " << provisioned.ToString() << "\n";
      return ExitCodeForStatus(provisioned);
    }
  }

  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started.ToString() << "\n";
    return ExitCodeForStatus(started);
  }

  // SIGINT/SIGTERM trip the process token; the accept loop polls it and
  // falls through to the graceful drain.
  InstallSignalCancel();
  std::cerr << "aimd listening on " << options.host << ":" << server.port()
            << " (" << options.jobs.workers << " job workers, work dir '"
            << options.jobs.work_dir << "')\n";
  server.ServeForever(&ProcessCancelToken());

  const int signal_number = ReceivedCancelSignal();
  if (signal_number != 0) {
    std::cerr << "aimd: received signal " << signal_number
              << "; jobs drained, exiting\n";
  }
  if (!metrics_out.empty()) {
    if (metrics_out == "-") {
      MetricsRegistry::Global().WriteJson(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream out(metrics_out);
      if (out) {
        MetricsRegistry::Global().WriteJson(out);
        out << "\n";
      } else {
        std::cerr << "warning: cannot open metrics output '" << metrics_out
                  << "'\n";
      }
    }
  }
  return 0;
}
