#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "factor/factor.h"
#include "factor/kernel_plan.h"
#include "factor/kernels.h"
#include "factor/simd_dispatch.h"
#include "factor/workspace.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "parallel/thread_pool.h"
#include "pgm/inference.h"
#include "pgm/markov_random_field.h"
#include "util/rng.h"

// ------------------------------------------------- allocation counting ----
// Replacement global operator new/delete family that counts every heap
// allocation made by this binary. Used by the zero-allocation Calibrate
// test below; all other tests are unaffected (counting is a relaxed atomic
// increment). Must live at global scope, outside any namespace.

namespace {
std::atomic<int64_t> g_heap_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aim {
namespace {

int64_t HeapAllocations() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

Factor RandomFactor(std::vector<int> attrs, std::vector<int> sizes,
                    Rng& rng) {
  Factor f(std::move(attrs), std::move(sizes));
  for (double& v : f.mutable_values()) v = rng.Uniform(-2.0, 2.0);
  return f;
}

TEST(FactorTest, ScalarFactor) {
  Factor f;
  EXPECT_EQ(f.num_cells(), 1);
  EXPECT_EQ(f.num_attrs(), 0);
  EXPECT_DOUBLE_EQ(f.Sum(), 0.0);
}

TEST(FactorTest, ConstructionFillsValue) {
  Factor f({0, 2}, {3, 4}, 1.5);
  EXPECT_EQ(f.num_cells(), 12);
  for (double v : f.values()) EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(FactorTest, FromDomain) {
  Domain domain = Domain::WithSizes({2, 3, 4});
  Factor f = Factor::FromDomain(domain, AttrSet({0, 2}));
  EXPECT_EQ(f.num_cells(), 8);
  EXPECT_EQ(f.attrs(), (std::vector<int>{0, 2}));
  EXPECT_EQ(f.sizes(), (std::vector<int>{2, 4}));
}

TEST(FactorTest, AxisOf) {
  Factor f({1, 3, 7}, {2, 2, 2});
  EXPECT_EQ(f.AxisOf(1), 0);
  EXPECT_EQ(f.AxisOf(3), 1);
  EXPECT_EQ(f.AxisOf(7), 2);
  EXPECT_EQ(f.AxisOf(2), -1);
}

// Row-major, last attribute fastest: cell (i, j) of a {a0:2, a1:3} factor is
// at index i*3 + j.
TEST(FactorTest, LayoutConvention) {
  Factor f = Factor::FromValues({0, 1}, {2, 3}, {0, 1, 2, 3, 4, 5});
  // Sum out attribute 1 -> row sums.
  Factor rows = f.SumTo(AttrSet({0}));
  EXPECT_DOUBLE_EQ(rows.value(0), 0 + 1 + 2);
  EXPECT_DOUBLE_EQ(rows.value(1), 3 + 4 + 5);
  // Sum out attribute 0 -> column sums.
  Factor cols = f.SumTo(AttrSet({1}));
  EXPECT_DOUBLE_EQ(cols.value(0), 0 + 3);
  EXPECT_DOUBLE_EQ(cols.value(1), 1 + 4);
  EXPECT_DOUBLE_EQ(cols.value(2), 2 + 5);
}

TEST(FactorTest, AddDisjointBroadcasts) {
  Factor a = Factor::FromValues({0}, {2}, {1, 2});
  Factor b = Factor::FromValues({1}, {3}, {10, 20, 30});
  Factor c = a.Add(b);
  EXPECT_EQ(c.attrs(), (std::vector<int>{0, 1}));
  EXPECT_EQ(c.num_cells(), 6);
  // c(i, j) = a(i) + b(j), row-major.
  std::vector<double> expected = {11, 21, 31, 12, 22, 32};
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(c.value(i), expected[i]);
}

TEST(FactorTest, MultiplySharedAxis) {
  Factor a = Factor::FromValues({0, 1}, {2, 2}, {1, 2, 3, 4});
  Factor b = Factor::FromValues({1}, {2}, {10, 100});
  Factor c = a.Multiply(b);
  EXPECT_EQ(c.attrs(), (std::vector<int>{0, 1}));
  std::vector<double> expected = {10, 200, 30, 400};
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(c.value(i), expected[i]);
}

TEST(FactorTest, SubtractSelfIsZero) {
  Rng rng(1);
  Factor a = RandomFactor({0, 1, 2}, {2, 3, 2}, rng);
  Factor z = a.Subtract(a);
  for (double v : z.values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FactorTest, AddInPlaceSubsetBroadcast) {
  Factor a({0, 1}, {2, 2}, 0.0);
  Factor b = Factor::FromValues({1}, {2}, {5, 7});
  a.AddInPlace(b, 2.0);
  std::vector<double> expected = {10, 14, 10, 14};
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(a.value(i), expected[i]);
}

TEST(FactorTest, SumToEmptySetGivesScalarTotal) {
  Factor a = Factor::FromValues({0, 1}, {2, 2}, {1, 2, 3, 4});
  Factor s = a.SumTo(AttrSet{});
  EXPECT_EQ(s.num_cells(), 1);
  EXPECT_DOUBLE_EQ(s.value(0), 10.0);
}

TEST(FactorTest, LogSumExpToMatchesExpSumLog) {
  Rng rng(2);
  Factor a = RandomFactor({0, 1, 3}, {3, 2, 4}, rng);
  Factor direct = a.Exp().SumTo(AttrSet({0, 3})).Log();
  Factor stable = a.LogSumExpTo(AttrSet({0, 3}));
  ASSERT_EQ(direct.num_cells(), stable.num_cells());
  for (int64_t i = 0; i < direct.num_cells(); ++i) {
    EXPECT_NEAR(direct.value(i), stable.value(i), 1e-10);
  }
}

TEST(FactorTest, LogSumExpToHandlesNegInfCells) {
  Factor a = Factor::FromValues({0, 1}, {2, 2},
                                {kNegInf, kNegInf, 0.0, std::log(2.0)});
  Factor m = a.LogSumExpTo(AttrSet({0}));
  EXPECT_EQ(m.value(0), kNegInf);
  EXPECT_NEAR(m.value(1), std::log(3.0), 1e-12);
}

TEST(FactorTest, LogSumExpToLargeValuesStable) {
  Factor a = Factor::FromValues({0}, {3}, {1000.0, 1000.0, 1000.0});
  Factor m = a.LogSumExpTo(AttrSet{});
  EXPECT_NEAR(m.value(0), 1000.0 + std::log(3.0), 1e-9);
}

TEST(FactorTest, ExpWithShift) {
  Factor a = Factor::FromValues({0}, {2}, {0.0, std::log(4.0)});
  Factor e = a.Exp(std::log(2.0));
  EXPECT_NEAR(e.value(0), 0.5, 1e-12);
  EXPECT_NEAR(e.value(1), 2.0, 1e-12);
}

TEST(FactorTest, LogOfZeroIsNegInf) {
  Factor a = Factor::FromValues({0}, {2}, {0.0, 1.0});
  Factor l = a.Log();
  EXPECT_EQ(l.value(0), kNegInf);
  EXPECT_DOUBLE_EQ(l.value(1), 0.0);
}

TEST(FactorTest, L1DistanceTo) {
  Factor a = Factor::FromValues({0}, {2}, {1, 5});
  Factor b = Factor::FromValues({0}, {2}, {2, 3});
  EXPECT_DOUBLE_EQ(a.L1DistanceTo(b), 3.0);
}

TEST(FactorTest, ScaleAndShift) {
  Factor a = Factor::FromValues({0}, {2}, {1, 2});
  a.ScaleInPlace(3.0);
  a.AddScalarInPlace(1.0);
  EXPECT_DOUBLE_EQ(a.value(0), 4.0);
  EXPECT_DOUBLE_EQ(a.value(1), 7.0);
}

// Property-style sweep: Add/Multiply against brute-force evaluation over the
// union domain, across several attribute-set configurations.
struct BinaryOpCase {
  std::vector<int> a_attrs;
  std::vector<int> a_sizes;
  std::vector<int> b_attrs;
  std::vector<int> b_sizes;
};

class FactorBinaryOpTest : public ::testing::TestWithParam<BinaryOpCase> {};

TEST_P(FactorBinaryOpTest, AddMatchesBruteForce) {
  const auto& param = GetParam();
  Rng rng(99);
  Factor a = RandomFactor(param.a_attrs, param.a_sizes, rng);
  Factor b = RandomFactor(param.b_attrs, param.b_sizes, rng);
  Factor c = a.Add(b);

  // Brute force: walk every cell of c, decompose into coordinates, and look
  // up both operands.
  const auto& attrs = c.attrs();
  const auto& sizes = c.sizes();
  std::vector<int64_t> strides(attrs.size(), 1);
  for (int j = static_cast<int>(attrs.size()) - 2; j >= 0; --j) {
    strides[j] = strides[j + 1] * sizes[j + 1];
  }
  auto lookup = [&](const Factor& f, const std::vector<int>& coord) {
    int64_t idx = 0;
    std::vector<int64_t> fstrides(f.attrs().size(), 1);
    for (int j = static_cast<int>(f.attrs().size()) - 2; j >= 0; --j) {
      fstrides[j] = fstrides[j + 1] * f.sizes()[j + 1];
    }
    for (size_t j = 0; j < f.attrs().size(); ++j) {
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (attrs[i] == f.attrs()[j]) idx += coord[i] * fstrides[j];
      }
    }
    return f.value(idx);
  };
  for (int64_t cell = 0; cell < c.num_cells(); ++cell) {
    std::vector<int> coord(attrs.size());
    int64_t rest = cell;
    for (size_t j = 0; j < attrs.size(); ++j) {
      coord[j] = static_cast<int>(rest / strides[j]);
      rest %= strides[j];
    }
    EXPECT_NEAR(c.value(cell), lookup(a, coord) + lookup(b, coord), 1e-12);
  }
}

TEST_P(FactorBinaryOpTest, MultiplyCommutes) {
  const auto& param = GetParam();
  Rng rng(7);
  Factor a = RandomFactor(param.a_attrs, param.a_sizes, rng);
  Factor b = RandomFactor(param.b_attrs, param.b_sizes, rng);
  Factor ab = a.Multiply(b);
  Factor ba = b.Multiply(a);
  ASSERT_EQ(ab.num_cells(), ba.num_cells());
  for (int64_t i = 0; i < ab.num_cells(); ++i) {
    EXPECT_NEAR(ab.value(i), ba.value(i), 1e-12);
  }
}

TEST_P(FactorBinaryOpTest, SumOfProductEqualsProductOfSumsWhenDisjoint) {
  const auto& param = GetParam();
  AttrSet a_set(param.a_attrs), b_set(param.b_attrs);
  if (!a_set.Intersect(b_set).empty()) GTEST_SKIP();
  Rng rng(8);
  Factor a = RandomFactor(param.a_attrs, param.a_sizes, rng);
  Factor b = RandomFactor(param.b_attrs, param.b_sizes, rng);
  EXPECT_NEAR(a.Multiply(b).Sum(), a.Sum() * b.Sum(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FactorBinaryOpTest,
    ::testing::Values(
        BinaryOpCase{{0}, {3}, {1}, {4}},
        BinaryOpCase{{0, 1}, {2, 3}, {1, 2}, {3, 2}},
        BinaryOpCase{{0, 2}, {2, 2}, {1}, {5}},
        BinaryOpCase{{1, 3, 5}, {2, 2, 2}, {3}, {2}},
        BinaryOpCase{{0, 1, 2}, {2, 2, 2}, {0, 1, 2}, {2, 2, 2}},
        BinaryOpCase{{}, {}, {0, 1}, {3, 3}}));

// Marginalization property sweep: summing out in two steps equals one step.
class FactorMarginalizeTest
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(FactorMarginalizeTest, TwoStepEqualsOneStep) {
  Rng rng(21);
  Factor f = RandomFactor({0, 1, 2, 3}, {2, 3, 2, 3}, rng);
  AttrSet target(GetParam());
  // One step.
  Factor direct = f.SumTo(target);
  // Two steps through an intermediate superset.
  AttrSet mid = target.Union(AttrSet({1}));
  Factor staged = f.SumTo(mid).SumTo(target);
  ASSERT_EQ(direct.num_cells(), staged.num_cells());
  for (int64_t i = 0; i < direct.num_cells(); ++i) {
    EXPECT_NEAR(direct.value(i), staged.value(i), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, FactorMarginalizeTest,
                         ::testing::Values(std::vector<int>{0},
                                           std::vector<int>{3},
                                           std::vector<int>{0, 2},
                                           std::vector<int>{0, 2, 3},
                                           std::vector<int>{}));

// ------------------------------------------ flat kernels == seed kernels --
// The loop-collapse kernels (DESIGN.md "Factor kernels") promise bitwise
// identical results to the seed odometer path. These tests run every
// rewritten operation under both switch positions and memcmp the bits.

// Restores the flat-kernel switch, SIMD level, and thread count on exit.
struct KernelConfigGuard {
  ~KernelConfigGuard() {
    SetFlatKernelsEnabled(true);
    SetSimdLevel(DefaultSimdLevel());
    SetParallelThreads(0);
  }
};

// Every SIMD level that can execute on this CPU/binary (always includes
// kScalar).
std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (SimdLevelSupported(SimdLevel::kAvx2)) {
    levels.push_back(SimdLevel::kAvx2);
  }
  if (SimdLevelSupported(SimdLevel::kAvx512)) {
    levels.push_back(SimdLevel::kAvx512);
  }
  return levels;
}

void ExpectBitwiseEq(const std::vector<double>& a,
                     const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << what << " differs bitwise between flat and seed kernels";
  }
}

// Runs every rewritten kernel on (a, b) and returns the concatenated result
// bits, so one vector comparison covers the whole operation set. `b`'s
// attrs must be a subset of `a.Add(b)`'s union (always true).
std::vector<double> RunAllKernels(const Factor& a, const Factor& b,
                                  const AttrSet& marg_target) {
  std::vector<double> out;
  auto append = [&out](const std::vector<double>& v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  Factor sum = a.Add(b);
  append(sum.values());
  append(a.Subtract(b).values());
  append(a.Multiply(b).values());

  Factor acc = sum;  // union shape: both a and b are subsets
  acc.AddInPlace(a, 1.75);
  acc.AddInPlace(b, -0.5);
  append(acc.values());

  append(sum.SumTo(marg_target).values());
  append(sum.LogSumExpTo(marg_target).values());
  Factor into;
  sum.SumToInto(marg_target, &into);
  append(into.values());
  sum.LogSumExpToInto(marg_target, &into);
  append(into.values());

  Factor ex = sum;
  ex.ExpInPlace(0.25);
  append(ex.values());
  append(sum.Exp(0.25).values());
  out.push_back(sum.Sum());
  out.push_back(sum.LogSumExp());
  out.push_back(a.L1DistanceTo(a.Multiply(Factor())));
  return out;
}

// Random factor pair sharing a random subset of attributes, with size-1
// axes allowed (they stress the planner's axis-dropping path).
struct FactorPair {
  Factor a, b;
  AttrSet target;  // subset of union(a, b) to marginalize onto
};

FactorPair RandomPair(Rng& rng) {
  const int universe = 5;
  std::vector<int> sizes(universe);
  for (int& s : sizes) s = 1 + static_cast<int>(rng.Uniform(0.0, 4.0));
  auto random_attrs = [&](bool allow_empty) {
    std::vector<int> attrs;
    for (int i = 0; i < universe; ++i) {
      if (rng.Uniform() < 0.5) attrs.push_back(i);
    }
    if (attrs.empty() && !allow_empty) attrs.push_back(0);
    return attrs;
  };
  auto build = [&](const std::vector<int>& attrs) {
    std::vector<int> fsizes;
    for (int atr : attrs) fsizes.push_back(sizes[atr]);
    Factor f(attrs, fsizes);
    for (double& v : f.mutable_values()) v = rng.Uniform(-3.0, 3.0);
    return f;
  };
  FactorPair pair;
  pair.a = build(random_attrs(false));
  pair.b = build(random_attrs(true));
  AttrSet union_set = pair.a.attr_set().Union(pair.b.attr_set());
  std::vector<int> target;
  for (int attr : union_set.attrs()) {
    if (rng.Uniform() < 0.5) target.push_back(attr);
  }
  pair.target = AttrSet(target);
  return pair;
}

TEST(FlatKernelTest, RandomizedShapesMatchSeedBitwise) {
  KernelConfigGuard guard;
  // Bitwise identity to the seed odometer is promised by the *scalar* SIMD
  // table; the AVX transcendental kernels are tolerance-gated instead
  // (tests/simd_test.cc).
  SetSimdLevel(SimdLevel::kScalar);
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    FactorPair pair = RandomPair(rng);
    SetFlatKernelsEnabled(false);
    std::vector<double> seed = RunAllKernels(pair.a, pair.b, pair.target);
    SetFlatKernelsEnabled(true);
    std::vector<double> flat = RunAllKernels(pair.a, pair.b, pair.target);
    ExpectBitwiseEq(seed, flat, "randomized kernel sweep");
  }
}

TEST(FlatKernelTest, LargeFactorsMatchSeedBitwiseAtAnyThreadCount) {
  KernelConfigGuard guard;
  SetSimdLevel(SimdLevel::kScalar);  // see RandomizedShapesMatchSeedBitwise
  // 32*32*34 = 34816 cells >= the parallel threshold (1 << 15), so the
  // chunked parallel paths run; 1-thread and 8-thread runs must agree with
  // each other and with the seed path bit for bit.
  Rng rng(77);
  Factor a({0, 1, 2}, {32, 32, 34});
  for (double& v : a.mutable_values()) v = rng.Uniform(-2.0, 2.0);
  Factor b({1, 2}, {32, 34});
  for (double& v : b.mutable_values()) v = rng.Uniform(-2.0, 2.0);
  AttrSet target({0, 2});

  std::vector<std::vector<double>> runs;
  for (bool flat : {false, true}) {
    for (int threads : {1, 8}) {
      SetFlatKernelsEnabled(flat);
      SetParallelThreads(threads);
      runs.push_back(RunAllKernels(a, b, target));
    }
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ExpectBitwiseEq(runs[0], runs[r], "large-factor kernel sweep");
  }
}

TEST(FlatKernelTest, SumToIntoReusesCapacityAndMatchesSumTo) {
  Rng rng(11);
  Factor f = RandomFactor({0, 1, 2}, {4, 3, 5}, rng);
  Factor out;
  f.SumToInto(AttrSet({0, 2}), &out);
  const double* data_before = out.values().data();
  ExpectBitwiseEq(f.SumTo(AttrSet({0, 2})).values(), out.values(),
                  "SumToInto");
  // Same-shape recompute into the warm buffer must not reallocate.
  f.SumToInto(AttrSet({0, 2}), &out);
  EXPECT_EQ(out.values().data(), data_before);
  f.LogSumExpToInto(AttrSet({0, 2}), &out);
  ExpectBitwiseEq(f.LogSumExpTo(AttrSet({0, 2})).values(), out.values(),
                  "LogSumExpToInto");
}

TEST(FlatKernelTest, PlanCacheHitsOnRepeatedShapes) {
  KernelConfigGuard guard;
  SetFlatKernelsEnabled(true);
  Rng rng(5);
  Factor a = RandomFactor({0, 1}, {6, 7}, rng);
  Factor b = RandomFactor({1}, {7}, rng);
  a.Multiply(b);  // prime the cache for this shape
  FactorWorkspace& ws = FactorWorkspace::Get();
  const int64_t hits_before = ws.plan_hits();
  for (int i = 0; i < 10; ++i) a.Multiply(b);
  EXPECT_GE(ws.plan_hits(), hits_before + 10);
}

// ----------------------------------------------- numeric edge cases ----

// Regression: LogSumExpTo's pass-1 max scatter used `<` comparisons that
// silently skip NaN, so a destination group consisting entirely of NaN
// kept its -inf max, tripped the structural-zero guard in pass 2, and came
// out as -inf — "this group has zero probability" — instead of propagating
// the NaN. (A mixed NaN/finite group already produced NaN through pass 2's
// exp(NaN - m).) A NaN contribution must poison exactly its destination
// cell, on the seed odometer, the flat scalar kernels, and every SIMD body.
TEST(FactorNumericEdgeCaseTest, NanInputPoisonsLogSumExpCell) {
  KernelConfigGuard guard;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Rows long enough (37) that the AVX-512 vector loop engages and NaNs
  // land inside full vectors, not just the scalar tail.
  const int kCols = 37;

  // Case 1 — contracted destination (marginalize the trailing axis,
  // destination stride 0): row 0 all NaN, row 1 clean.
  Factor by_row({0, 1}, {2, kCols});
  Rng rng(3003);
  for (double& v : by_row.mutable_values()) v = rng.Uniform(-2.0, 2.0);
  for (int j = 0; j < kCols; ++j) by_row.mutable_values()[j] = nan;
  double row1_max = kNegInf;
  for (int j = 0; j < kCols; ++j) {
    row1_max = std::max(row1_max, by_row.value(kCols + j));
  }
  double row1_acc = 0.0;
  for (int j = 0; j < kCols; ++j) {
    row1_acc += std::exp(by_row.value(kCols + j) - row1_max);
  }
  const double row1_lse = row1_max + std::log(row1_acc);

  // Case 2 — unit-stride destination (marginalize the leading axis):
  // column 17 all NaN, every other column clean. Also covers the mixed
  // group through case 1's rows target below.
  Factor by_col({0, 1}, {2, kCols});
  for (double& v : by_col.mutable_values()) v = rng.Uniform(-2.0, 2.0);
  by_col.mutable_values()[17] = nan;
  by_col.mutable_values()[kCols + 17] = nan;

  for (bool flat : {false, true}) {
    SetFlatKernelsEnabled(flat);
    for (SimdLevel level : SupportedSimdLevels()) {
      SetSimdLevel(level);
      Factor rows = by_row.LogSumExpTo(AttrSet({0}));
      EXPECT_TRUE(std::isnan(rows.value(0)))
          << "all-NaN row, flat=" << flat << " level=" << ToString(level);
      EXPECT_NEAR(rows.value(1), row1_lse, 1e-12)
          << "clean row, flat=" << flat << " level=" << ToString(level);
      Factor cols = by_col.LogSumExpTo(AttrSet({1}));
      for (int j = 0; j < kCols; ++j) {
        if (j == 17) {
          EXPECT_TRUE(std::isnan(cols.value(j)))
              << "all-NaN column, flat=" << flat
              << " level=" << ToString(level);
        } else {
          EXPECT_FALSE(std::isnan(cols.value(j)))
              << "clean column " << j << ", flat=" << flat
              << " level=" << ToString(level);
        }
      }
      // Mixed NaN/finite group (row 0 of by_col contains one NaN).
      Factor mixed = by_col.LogSumExpTo(AttrSet({0}));
      EXPECT_TRUE(std::isnan(mixed.value(0)));
      EXPECT_TRUE(std::isnan(mixed.value(1)));
    }
  }
}

// Regression: Exp/ExpInPlace with an all--inf factor (every probability
// zero) computes shift = Max() = -inf, and exp(-inf - -inf) turned every
// cell into NaN. The degenerate shift must yield the limit exp(v) = 0.
TEST(FactorNumericEdgeCaseTest, ExpOfAllNegInfFactorIsZero) {
  KernelConfigGuard guard;
  for (SimdLevel level : SupportedSimdLevels()) {
    SetSimdLevel(level);
    Factor a({0}, {100}, kNegInf);
    ASSERT_EQ(a.Max(), kNegInf);
    Factor e = a.Exp(a.Max());
    for (double v : e.values()) {
      ASSERT_EQ(v, 0.0) << "Exp level=" << ToString(level);
    }
    Factor b = a;
    b.ExpInPlace(b.Max());
    for (double v : b.values()) {
      ASSERT_EQ(v, 0.0) << "ExpInPlace level=" << ToString(level);
    }
  }
}

// ------------------------------------------- plan cache collisions ----

bool PlansEqual(const KernelPlan& x, const KernelPlan& y) {
  if (x.valid != y.valid || x.num_operands != y.num_operands ||
      x.num_outer != y.num_outer || x.inner_size != y.inner_size ||
      x.total != y.total) {
    return false;
  }
  for (int k = 0; k < x.num_operands; ++k) {
    if (x.inner_strides[k] != y.inner_strides[k]) return false;
  }
  for (int axis = 0; axis < x.num_outer; ++axis) {
    if (x.outer_sizes[axis] != y.outer_sizes[axis]) return false;
    for (int k = 0; k < x.num_operands; ++k) {
      if (x.outer_strides[k][axis] != y.outer_strides[k][axis]) return false;
    }
  }
  return true;
}

// The plan cache is direct-mapped with 256 slots, so distinct shapes can
// hash to the same slot. Hammer it with thousands of random (sizes,
// strides) keys — far more than 256, guaranteeing collisions — and check
// the returned plan always equals a freshly built one (i.e. a collision
// evicts, never aliases).
TEST(FlatKernelTest, PlanCacheServesCorrectPlanUnderCollisions) {
  FactorWorkspace& ws = FactorWorkspace::Get();
  Rng rng(31337);
  for (int trial = 0; trial < 4000; ++trial) {
    const int rank = 1 + static_cast<int>(rng.Uniform(0.0, 4.0));
    std::vector<int> sizes(rank);
    for (int& s : sizes) s = 1 + static_cast<int>(rng.Uniform(0.0, 5.0));
    const int num_operands = rng.Uniform() < 0.5 ? 1 : 2;
    std::vector<int64_t> stride_bufs[2];
    for (int k = 0; k < num_operands; ++k) {
      // Row-major strides of a random sub-factor: axes outside the subset
      // get stride 0, exactly what StridesIntoBuf produces.
      stride_bufs[k].assign(rank, 0);
      int64_t stride = 1;
      for (int axis = rank - 1; axis >= 0; --axis) {
        if (rng.Uniform() < 0.7) {
          stride_bufs[k][axis] = stride;
          stride *= sizes[axis];
        }
      }
    }
    const std::vector<int64_t>* strides[2] = {&stride_bufs[0],
                                              &stride_bufs[1]};
    const KernelPlan* cached = ws.GetPlan(sizes, strides, num_operands);
    const KernelPlan fresh = BuildKernelPlan(sizes, strides, num_operands);
    ASSERT_NE(cached, nullptr);  // rank <= 4 is always plannable
    ASSERT_TRUE(PlansEqual(*cached, fresh))
        << "cached plan differs from fresh build at trial " << trial;
  }
}

// --------------------------------------- zero-allocation steady state ----

TEST(FlatKernelTest, CalibrateAllocatesNothingAfterWarmup) {
  KernelConfigGuard guard;
  struct CacheGuard {
    ~CacheGuard() { SetInferenceCacheEnabled(true); }
  } cache_guard;
  // Cache-off Calibrate eagerly recomputes every message, belief, and the
  // partition function inside the call, into slots allocated on the first
  // pass. Factors stay far below the parallel threshold so everything runs
  // serially on this thread (parallel dispatch heap-allocates closures).
  SetInferenceCacheEnabled(false);
  std::vector<int> sizes(7, 3);
  Domain domain = Domain::WithSizes(sizes);
  std::vector<AttrSet> cliques;
  for (int i = 0; i < 6; ++i) cliques.push_back(AttrSet({i, i + 1}));
  MarkovRandomField model(domain, cliques);
  Rng rng(99);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor potential = model.potential(c);
    for (double& v : potential.mutable_values()) v = rng.Gaussian(0.0, 0.7);
    model.SetPotential(c, std::move(potential));
  }
  model.set_total(500.0);
  model.Calibrate();  // warm-up: allocates messages, beliefs, scratch
  model.Calibrate();  // warm-up: everything reaches steady-state capacity

  const int64_t before = HeapAllocations();
  model.Calibrate();
  const int64_t after = HeapAllocations();
  EXPECT_EQ(after - before, 0)
      << "steady-state Calibrate performed heap allocations";
}

// ----------------------------------------------- end-to-end determinism --

TEST(FlatKernelEndToEndTest, AimSyntheticBytesInvariantToKernelsAndThreads) {
  KernelConfigGuard guard;
  // Flat-off runs the seed odometer, which matches the flat path bitwise
  // only at the scalar SIMD level (the e2e SIMD-vs-scalar comparison is
  // tolerance-gated in tests/simd_test.cc).
  SetSimdLevel(SimdLevel::kScalar);
  Domain domain = Domain::WithSizes({2, 3, 4, 2, 3});
  Rng data_rng(808);
  Dataset data = SampleRandomBayesNet(domain, 800, 2, 0.4, data_rng);
  Workload workload = AllKWayWorkload(domain, 2);
  AimOptions options;
  options.max_size_mb = 20.0;
  options.round_estimation.max_iters = 30;
  options.final_estimation.max_iters = 80;

  std::vector<std::vector<std::vector<int32_t>>> runs;
  for (bool flat : {true, false}) {
    for (int threads : {1, 8}) {
      SetFlatKernelsEnabled(flat);
      SetParallelThreads(threads);
      AimMechanism aim(options);
      Rng rng(2024);
      MechanismResult result = aim.Run(data, workload, 0.2, rng);
      std::vector<std::vector<int32_t>> columns;
      for (int a = 0; a < domain.num_attributes(); ++a) {
        columns.push_back(result.synthetic.column(a));
      }
      runs.push_back(std::move(columns));
    }
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[0].size(), runs[r].size());
    for (size_t a = 0; a < runs[0].size(); ++a) {
      EXPECT_EQ(runs[0][a], runs[r][a])
          << "synthetic column " << a << " differs in configuration " << r;
    }
  }
}

}  // namespace
}  // namespace aim
