#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "factor/factor.h"
#include "util/rng.h"

namespace aim {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

Factor RandomFactor(std::vector<int> attrs, std::vector<int> sizes,
                    Rng& rng) {
  Factor f(std::move(attrs), std::move(sizes));
  for (double& v : f.mutable_values()) v = rng.Uniform(-2.0, 2.0);
  return f;
}

TEST(FactorTest, ScalarFactor) {
  Factor f;
  EXPECT_EQ(f.num_cells(), 1);
  EXPECT_EQ(f.num_attrs(), 0);
  EXPECT_DOUBLE_EQ(f.Sum(), 0.0);
}

TEST(FactorTest, ConstructionFillsValue) {
  Factor f({0, 2}, {3, 4}, 1.5);
  EXPECT_EQ(f.num_cells(), 12);
  for (double v : f.values()) EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(FactorTest, FromDomain) {
  Domain domain = Domain::WithSizes({2, 3, 4});
  Factor f = Factor::FromDomain(domain, AttrSet({0, 2}));
  EXPECT_EQ(f.num_cells(), 8);
  EXPECT_EQ(f.attrs(), (std::vector<int>{0, 2}));
  EXPECT_EQ(f.sizes(), (std::vector<int>{2, 4}));
}

TEST(FactorTest, AxisOf) {
  Factor f({1, 3, 7}, {2, 2, 2});
  EXPECT_EQ(f.AxisOf(1), 0);
  EXPECT_EQ(f.AxisOf(3), 1);
  EXPECT_EQ(f.AxisOf(7), 2);
  EXPECT_EQ(f.AxisOf(2), -1);
}

// Row-major, last attribute fastest: cell (i, j) of a {a0:2, a1:3} factor is
// at index i*3 + j.
TEST(FactorTest, LayoutConvention) {
  Factor f = Factor::FromValues({0, 1}, {2, 3}, {0, 1, 2, 3, 4, 5});
  // Sum out attribute 1 -> row sums.
  Factor rows = f.SumTo(AttrSet({0}));
  EXPECT_DOUBLE_EQ(rows.value(0), 0 + 1 + 2);
  EXPECT_DOUBLE_EQ(rows.value(1), 3 + 4 + 5);
  // Sum out attribute 0 -> column sums.
  Factor cols = f.SumTo(AttrSet({1}));
  EXPECT_DOUBLE_EQ(cols.value(0), 0 + 3);
  EXPECT_DOUBLE_EQ(cols.value(1), 1 + 4);
  EXPECT_DOUBLE_EQ(cols.value(2), 2 + 5);
}

TEST(FactorTest, AddDisjointBroadcasts) {
  Factor a = Factor::FromValues({0}, {2}, {1, 2});
  Factor b = Factor::FromValues({1}, {3}, {10, 20, 30});
  Factor c = a.Add(b);
  EXPECT_EQ(c.attrs(), (std::vector<int>{0, 1}));
  EXPECT_EQ(c.num_cells(), 6);
  // c(i, j) = a(i) + b(j), row-major.
  std::vector<double> expected = {11, 21, 31, 12, 22, 32};
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(c.value(i), expected[i]);
}

TEST(FactorTest, MultiplySharedAxis) {
  Factor a = Factor::FromValues({0, 1}, {2, 2}, {1, 2, 3, 4});
  Factor b = Factor::FromValues({1}, {2}, {10, 100});
  Factor c = a.Multiply(b);
  EXPECT_EQ(c.attrs(), (std::vector<int>{0, 1}));
  std::vector<double> expected = {10, 200, 30, 400};
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(c.value(i), expected[i]);
}

TEST(FactorTest, SubtractSelfIsZero) {
  Rng rng(1);
  Factor a = RandomFactor({0, 1, 2}, {2, 3, 2}, rng);
  Factor z = a.Subtract(a);
  for (double v : z.values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FactorTest, AddInPlaceSubsetBroadcast) {
  Factor a({0, 1}, {2, 2}, 0.0);
  Factor b = Factor::FromValues({1}, {2}, {5, 7});
  a.AddInPlace(b, 2.0);
  std::vector<double> expected = {10, 14, 10, 14};
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(a.value(i), expected[i]);
}

TEST(FactorTest, SumToEmptySetGivesScalarTotal) {
  Factor a = Factor::FromValues({0, 1}, {2, 2}, {1, 2, 3, 4});
  Factor s = a.SumTo(AttrSet{});
  EXPECT_EQ(s.num_cells(), 1);
  EXPECT_DOUBLE_EQ(s.value(0), 10.0);
}

TEST(FactorTest, LogSumExpToMatchesExpSumLog) {
  Rng rng(2);
  Factor a = RandomFactor({0, 1, 3}, {3, 2, 4}, rng);
  Factor direct = a.Exp().SumTo(AttrSet({0, 3})).Log();
  Factor stable = a.LogSumExpTo(AttrSet({0, 3}));
  ASSERT_EQ(direct.num_cells(), stable.num_cells());
  for (int64_t i = 0; i < direct.num_cells(); ++i) {
    EXPECT_NEAR(direct.value(i), stable.value(i), 1e-10);
  }
}

TEST(FactorTest, LogSumExpToHandlesNegInfCells) {
  Factor a = Factor::FromValues({0, 1}, {2, 2},
                                {kNegInf, kNegInf, 0.0, std::log(2.0)});
  Factor m = a.LogSumExpTo(AttrSet({0}));
  EXPECT_EQ(m.value(0), kNegInf);
  EXPECT_NEAR(m.value(1), std::log(3.0), 1e-12);
}

TEST(FactorTest, LogSumExpToLargeValuesStable) {
  Factor a = Factor::FromValues({0}, {3}, {1000.0, 1000.0, 1000.0});
  Factor m = a.LogSumExpTo(AttrSet{});
  EXPECT_NEAR(m.value(0), 1000.0 + std::log(3.0), 1e-9);
}

TEST(FactorTest, ExpWithShift) {
  Factor a = Factor::FromValues({0}, {2}, {0.0, std::log(4.0)});
  Factor e = a.Exp(std::log(2.0));
  EXPECT_NEAR(e.value(0), 0.5, 1e-12);
  EXPECT_NEAR(e.value(1), 2.0, 1e-12);
}

TEST(FactorTest, LogOfZeroIsNegInf) {
  Factor a = Factor::FromValues({0}, {2}, {0.0, 1.0});
  Factor l = a.Log();
  EXPECT_EQ(l.value(0), kNegInf);
  EXPECT_DOUBLE_EQ(l.value(1), 0.0);
}

TEST(FactorTest, L1DistanceTo) {
  Factor a = Factor::FromValues({0}, {2}, {1, 5});
  Factor b = Factor::FromValues({0}, {2}, {2, 3});
  EXPECT_DOUBLE_EQ(a.L1DistanceTo(b), 3.0);
}

TEST(FactorTest, ScaleAndShift) {
  Factor a = Factor::FromValues({0}, {2}, {1, 2});
  a.ScaleInPlace(3.0);
  a.AddScalarInPlace(1.0);
  EXPECT_DOUBLE_EQ(a.value(0), 4.0);
  EXPECT_DOUBLE_EQ(a.value(1), 7.0);
}

// Property-style sweep: Add/Multiply against brute-force evaluation over the
// union domain, across several attribute-set configurations.
struct BinaryOpCase {
  std::vector<int> a_attrs;
  std::vector<int> a_sizes;
  std::vector<int> b_attrs;
  std::vector<int> b_sizes;
};

class FactorBinaryOpTest : public ::testing::TestWithParam<BinaryOpCase> {};

TEST_P(FactorBinaryOpTest, AddMatchesBruteForce) {
  const auto& param = GetParam();
  Rng rng(99);
  Factor a = RandomFactor(param.a_attrs, param.a_sizes, rng);
  Factor b = RandomFactor(param.b_attrs, param.b_sizes, rng);
  Factor c = a.Add(b);

  // Brute force: walk every cell of c, decompose into coordinates, and look
  // up both operands.
  const auto& attrs = c.attrs();
  const auto& sizes = c.sizes();
  std::vector<int64_t> strides(attrs.size(), 1);
  for (int j = static_cast<int>(attrs.size()) - 2; j >= 0; --j) {
    strides[j] = strides[j + 1] * sizes[j + 1];
  }
  auto lookup = [&](const Factor& f, const std::vector<int>& coord) {
    int64_t idx = 0;
    std::vector<int64_t> fstrides(f.attrs().size(), 1);
    for (int j = static_cast<int>(f.attrs().size()) - 2; j >= 0; --j) {
      fstrides[j] = fstrides[j + 1] * f.sizes()[j + 1];
    }
    for (size_t j = 0; j < f.attrs().size(); ++j) {
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (attrs[i] == f.attrs()[j]) idx += coord[i] * fstrides[j];
      }
    }
    return f.value(idx);
  };
  for (int64_t cell = 0; cell < c.num_cells(); ++cell) {
    std::vector<int> coord(attrs.size());
    int64_t rest = cell;
    for (size_t j = 0; j < attrs.size(); ++j) {
      coord[j] = static_cast<int>(rest / strides[j]);
      rest %= strides[j];
    }
    EXPECT_NEAR(c.value(cell), lookup(a, coord) + lookup(b, coord), 1e-12);
  }
}

TEST_P(FactorBinaryOpTest, MultiplyCommutes) {
  const auto& param = GetParam();
  Rng rng(7);
  Factor a = RandomFactor(param.a_attrs, param.a_sizes, rng);
  Factor b = RandomFactor(param.b_attrs, param.b_sizes, rng);
  Factor ab = a.Multiply(b);
  Factor ba = b.Multiply(a);
  ASSERT_EQ(ab.num_cells(), ba.num_cells());
  for (int64_t i = 0; i < ab.num_cells(); ++i) {
    EXPECT_NEAR(ab.value(i), ba.value(i), 1e-12);
  }
}

TEST_P(FactorBinaryOpTest, SumOfProductEqualsProductOfSumsWhenDisjoint) {
  const auto& param = GetParam();
  AttrSet a_set(param.a_attrs), b_set(param.b_attrs);
  if (!a_set.Intersect(b_set).empty()) GTEST_SKIP();
  Rng rng(8);
  Factor a = RandomFactor(param.a_attrs, param.a_sizes, rng);
  Factor b = RandomFactor(param.b_attrs, param.b_sizes, rng);
  EXPECT_NEAR(a.Multiply(b).Sum(), a.Sum() * b.Sum(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FactorBinaryOpTest,
    ::testing::Values(
        BinaryOpCase{{0}, {3}, {1}, {4}},
        BinaryOpCase{{0, 1}, {2, 3}, {1, 2}, {3, 2}},
        BinaryOpCase{{0, 2}, {2, 2}, {1}, {5}},
        BinaryOpCase{{1, 3, 5}, {2, 2, 2}, {3}, {2}},
        BinaryOpCase{{0, 1, 2}, {2, 2, 2}, {0, 1, 2}, {2, 2, 2}},
        BinaryOpCase{{}, {}, {0, 1}, {3, 3}}));

// Marginalization property sweep: summing out in two steps equals one step.
class FactorMarginalizeTest
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(FactorMarginalizeTest, TwoStepEqualsOneStep) {
  Rng rng(21);
  Factor f = RandomFactor({0, 1, 2, 3}, {2, 3, 2, 3}, rng);
  AttrSet target(GetParam());
  // One step.
  Factor direct = f.SumTo(target);
  // Two steps through an intermediate superset.
  AttrSet mid = target.Union(AttrSet({1}));
  Factor staged = f.SumTo(mid).SumTo(target);
  ASSERT_EQ(direct.num_cells(), staged.num_cells());
  for (int64_t i = 0; i < direct.num_cells(); ++i) {
    EXPECT_NEAR(direct.value(i), staged.value(i), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, FactorMarginalizeTest,
                         ::testing::Values(std::vector<int>{0},
                                           std::vector<int>{3},
                                           std::vector<int>{0, 2},
                                           std::vector<int>{0, 2, 3},
                                           std::vector<int>{}));

}  // namespace
}  // namespace aim
