#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/rng.h"
#include "util/signal_cancel.h"
#include "util/status.h"
#include "util/strings.h"

namespace aim {
namespace {

// ---------------------------------------------------------------- Rng -----

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntIsUnbiased) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(7)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 7, 5 * std::sqrt(n / 7.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(4);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian(5.0, 2.0);
    sum += x;
    sum_sq += (x - 5.0) * (x - 5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 4.0, 0.1);
}

TEST(RngTest, GumbelMoments) {
  // Gumbel(0,1): mean = Euler-Mascheroni, var = pi^2/6.
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gumbel();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5772, 0.02);
  EXPECT_NEAR(var, M_PI * M_PI / 6.0, 0.05);
}

TEST(RngTest, SampleDiscreteMatchesWeights) {
  Rng rng(6);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, SampleDiscreteLogMatchesWeights) {
  Rng rng(61);
  std::vector<double> log_weights = {std::log(0.1), std::log(0.3),
                                     -std::numeric_limits<double>::infinity(),
                                     std::log(0.6)};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleDiscreteLog(log_weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, BinomialSmallMatchesMean) {
  Rng rng(8);
  const int trials = 20000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) sum += rng.Binomial(20, 0.3);
  EXPECT_NEAR(sum / trials, 6.0, 0.1);
}

TEST(RngTest, BinomialLargeMatchesMeanAndBounds) {
  Rng rng(9);
  const int trials = 5000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    int64_t x = rng.Binomial(100000, 0.4);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 100000);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / trials, 40000.0, 30.0);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(10);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(10, 0.0), 0);
  EXPECT_EQ(rng.Binomial(10, 1.0), 10);
}

TEST(RngTest, MultinomialSumsToN) {
  Rng rng(12);
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  for (int trial = 0; trial < 100; ++trial) {
    auto counts = rng.Multinomial(1000, weights);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}), 1000);
  }
}

TEST(RngTest, MultinomialProportions) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 4.0};
  double first = 0.0;
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    first += static_cast<double>(rng.Multinomial(100, weights)[0]);
  }
  EXPECT_NEAR(first / trials, 20.0, 0.5);
}

TEST(RngTest, MultinomialZeroWeightGetsNothing) {
  Rng rng(14);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  auto counts = rng.Multinomial(500, weights);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 500);
  EXPECT_EQ(counts[2], 0);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(15);
  auto perm = rng.Permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, ForkDecorrelates) {
  Rng rng(16);
  Rng child = rng.Fork();
  EXPECT_NE(rng.NextUint64(), child.NextUint64());
}

// --------------------------------------------------------------- math -----

TEST(MathTest, LogAddExpBasic) {
  EXPECT_NEAR(LogAddExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
}

TEST(MathTest, LogAddExpWithNegInf) {
  double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_NEAR(LogAddExp(ninf, 1.5), 1.5, 1e-12);
  EXPECT_NEAR(LogAddExp(1.5, ninf), 1.5, 1e-12);
  EXPECT_EQ(LogAddExp(ninf, ninf), ninf);
}

TEST(MathTest, LogAddExpLargeMagnitudes) {
  EXPECT_NEAR(LogAddExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogAddExp(-1000.0, -1000.0), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, LogSumExpMatchesDirect) {
  std::vector<double> v = {0.1, -0.5, 2.0, 1.0};
  double direct = 0.0;
  for (double x : v) direct += std::exp(x);
  EXPECT_NEAR(LogSumExp(v), std::log(direct), 1e-12);
}

TEST(MathTest, LogSumExpEmpty) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(MathTest, NormalCdfValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(MathTest, Distances) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {2.0, 0.0, 3.0};
  EXPECT_NEAR(L1Distance(a, b), 3.0, 1e-12);
  EXPECT_NEAR(SquaredL2Distance(a, b), 5.0, 1e-12);
}

TEST(MathTest, LogBinomialCoefficient) {
  EXPECT_NEAR(LogBinomialCoefficient(10, 3), std::log(120.0), 1e-9);
  EXPECT_EQ(LogBinomialCoefficient(5, 6),
            -std::numeric_limits<double>::infinity());
}

TEST(MathTest, BinomialMeanDeviationMatchesMonteCarlo) {
  // E|p - k/n| for Binomial(50, 0.3) via simulation.
  const int64_t n = 50;
  const double p = 0.3;
  double expected = BinomialMeanDeviation(n, p);
  Rng rng(77);
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    int64_t k = 0;
    for (int j = 0; j < n; ++j) k += rng.Uniform() < p ? 1 : 0;
    sum += std::fabs(p - static_cast<double>(k) / n);
  }
  EXPECT_NEAR(expected, sum / trials, 3e-3);
}

TEST(MathTest, BinomialMeanDeviationDegenerate) {
  EXPECT_EQ(BinomialMeanDeviation(10, 0.0), 0.0);
  EXPECT_EQ(BinomialMeanDeviation(10, 1.0), 0.0);
}

namespace {
double Quadratic(double x, const void*) { return (x - 3.0) * (x - 3.0); }
}  // namespace

TEST(MathTest, GoldenSectionFindsMinimum) {
  double x = GoldenSectionMinimize(&Quadratic, nullptr, -10.0, 10.0, 100);
  EXPECT_NEAR(x, 3.0, 1e-6);
}

// ------------------------------------------------------------- status -----

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------ strings -----

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(JoinStrings({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(StripWhitespace("  hi \t"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble(" 3.5 ", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_FALSE(ParseInt64("17.5", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringsTest, ParseInt32RangeChecks) {
  int v = 0;
  EXPECT_TRUE(ParseInt32("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt32("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt32("2147483647", &v));
  EXPECT_EQ(v, 2147483647);
  EXPECT_TRUE(ParseInt32("-2147483648", &v));
  EXPECT_EQ(v, -2147483647 - 1);
  // The values the old int64->int truncation let through: 2^32+1 used to
  // become 1, INT_MAX+1 used to wrap negative.
  EXPECT_FALSE(ParseInt32("4294967297", &v));
  EXPECT_FALSE(ParseInt32("2147483648", &v));
  EXPECT_FALSE(ParseInt32("-2147483649", &v));
  EXPECT_FALSE(ParseInt32("abc", &v));
  EXPECT_FALSE(ParseInt32("", &v));
}

TEST(StringsTest, ParseUint64RejectsSigns) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  // "-1" used to bit-cast through int64 to 2^64-1; it must be an error.
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("+3", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // 2^64
  EXPECT_FALSE(ParseUint64("3.5", &v));
  EXPECT_FALSE(ParseUint64("", &v));
}

TEST(StatusTest, CancelledMapsToExitNine) {
  const Status cancelled = CancelledError("interrupted");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(ExitCodeForStatus(cancelled), 9);
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
}

TEST(SignalCancelTest, ProcessTokenIsProcessWide) {
  // Same object from every call site, and settable/resettable like any
  // CancelToken (the handler only ever Cancel()s it).
  CancelToken& token = ProcessCancelToken();
  EXPECT_EQ(&token, &ProcessCancelToken());
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(ProcessCancelToken().cancelled());
  token.Reset();
  EXPECT_FALSE(ProcessCancelToken().cancelled());
  EXPECT_EQ(ReceivedCancelSignal(), 0);
}

}  // namespace
}  // namespace aim
