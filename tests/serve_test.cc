// Tests for the aimd service layer (src/serve/): wire protocol, rate
// limiting, tenant zCDP ledgers (the spent <= budget invariant under
// concurrent submissions), job lifecycle (cancel-mid-job leaves a
// resumable checkpoint; resumed output is byte-identical to an
// uninterrupted run), graceful-shutdown drain, and one real loopback
// round-trip over a socket.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/data_source.h"
#include "data/preprocess.h"
#include "dp/accountant.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "obs/metrics.h"
#include "robust/generations.h"
#include "serve/job_manager.h"
#include "serve/protocol.h"
#include "serve/rate_limiter.h"
#include "serve/server.h"
#include "serve/tenant.h"
#include "util/rng.h"

namespace aim {
namespace {

// ------------------------------------------------------------ fixtures ----

// A small mixed-value CSV: integer codes in a modest domain, enough rows
// that AIM runs a real multi-round schedule (so cancel-mid-job has rounds
// to interrupt) without making the suite slow.
std::string WriteTestCsv(const std::string& name, int rows = 400) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << "a,b,c,d\n";
  uint64_t state = 12345;
  for (int i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    out << (state >> 33) % 4 << "," << (state >> 17) % 3 << ","
        << (state >> 41) % 5 << "," << (state >> 25) % 2 << "\n";
  }
  return path;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

JobSpec TestSpec(const std::string& dataset) {
  JobSpec spec;
  spec.tenant = "t0";
  spec.dataset = dataset;
  spec.epsilon = 1.0;
  spec.delta = 1e-9;
  spec.workload = "all2way";
  spec.seed = 7;
  return spec;
}

bool WaitForState(const std::shared_ptr<Job>& job, Job::State wanted,
                  double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(job->mu);
      if (job->state == wanted) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard<std::mutex> lock(job->mu);
  return job->state == wanted;
}

// ---------------------------------------------------------------- JSON ----

TEST(JsonTest, ParsesScalarsAndNesting) {
  StatusOr<JsonValue> parsed = ParseJson(
      R"({"s":"hi\n\"x\"","n":-2.5,"b":true,"z":null,"a":[1,2],"o":{"k":3}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("s", ""), "hi\n\"x\"");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("n", 0.0), -2.5);
  EXPECT_TRUE(parsed->GetBool("b", false));
  ASSERT_NE(parsed->Find("z"), nullptr);
  EXPECT_TRUE(parsed->Find("z")->is_null());
  ASSERT_NE(parsed->Find("a"), nullptr);
  EXPECT_EQ(parsed->Find("a")->array().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->Find("o")->GetNumber("k", 0.0), 3.0);
}

TEST(JsonTest, RoundTripsThroughToJson) {
  const std::string text = R"({"a":[1,2.5,"x",false,null],"b":{"c":"d"}})";
  StatusOr<JsonValue> parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok());
  StatusOr<JsonValue> reparsed = ParseJson(parsed->ToJson());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(parsed->ToJson(), reparsed->ToJson());
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  // Depth bound: 100 nested arrays exceed the 64-level limit.
  EXPECT_FALSE(
      ParseJson(std::string(100, '[') + std::string(100, ']')).ok());
}

TEST(JsonTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonQuote("a\tb\x01"), "\"a\\tb\\u0001\"");
  StatusOr<JsonValue> back = ParseJson(JsonQuote("a\tb\x01"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsString(), "a\tb\x01");
}

// ---------------------------------------------------------------- HTTP ----

TEST(HttpTest, ParsesRequestLineHeadersAndBody) {
  StatusOr<HttpRequest> request = ParseHttpRequest(
      "POST /jobs?from=3 HTTP/1.1\r\nHost: x\r\nContent-Type:  "
      "application/json\r\n\r\n{\"a\":1}");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->path, "/jobs");
  EXPECT_EQ(request->query, "from=3");
  EXPECT_EQ(request->headers.at("content-type"), "application/json");
  EXPECT_EQ(request->body, "{\"a\":1}");
}

TEST(HttpTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseHttpRequest("garbage").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /\r\n\r\n").ok());  // no version
  EXPECT_FALSE(ParseHttpRequest("GET / SPDY/3\r\n\r\n").ok());
  EXPECT_FALSE(ParseHttpRequest("GET nopath HTTP/1.1\r\n\r\n").ok());
}

TEST(HttpTest, SplitPathDropsEmptySegments) {
  EXPECT_EQ(SplitPath("/jobs/j-1/events"),
            (std::vector<std::string>{"jobs", "j-1", "events"}));
  EXPECT_EQ(SplitPath("//jobs//"), (std::vector<std::string>{"jobs"}));
  EXPECT_TRUE(SplitPath("/").empty());
}

// --------------------------------------------------------- rate limiter ----

TEST(RateLimiterTest, BurstExhaustsThenRefuses) {
  RateLimiter limiter(3.0, 0.0);  // no refill: deterministic
  EXPECT_TRUE(limiter.Admit("t"));
  EXPECT_TRUE(limiter.Admit("t"));
  EXPECT_TRUE(limiter.Admit("t"));
  EXPECT_FALSE(limiter.Admit("t"));
  EXPECT_FALSE(limiter.Admit("t"));
  // Buckets are per tenant: another tenant is unaffected.
  EXPECT_TRUE(limiter.Admit("other"));
}

TEST(RateLimiterTest, RefillRestoresTokens) {
  RateLimiter limiter(1.0, 1000.0);  // fast refill for a fast test
  EXPECT_TRUE(limiter.Admit("t"));
  // Might race an instant refill, so just wait out a guaranteed one.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(limiter.Admit("t"));
  EXPECT_GE(limiter.Available("t"), 0.0);
}

// -------------------------------------------------------- tenant ledger ----

TEST(TenantLedgerTest, RefusesBeyondBudgetAndUnknownTenants) {
  TenantLedger ledger(/*default_rho=*/0.0);
  ASSERT_TRUE(ledger.Provision("acme", 1.0).ok());
  EXPECT_FALSE(ledger.Provision("acme", 2.0).ok());  // append-only
  EXPECT_EQ(ledger.TryReserve("nobody", 0.1).code(), StatusCode::kNotFound);
  EXPECT_TRUE(ledger.TryReserve("acme", 0.6).ok());
  const Status refused = ledger.TryReserve("acme", 0.6);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(ledger.TryReserve("acme", 0.4).ok());  // exactly exhausts
  EXPECT_FALSE(ledger.TryReserve("acme", 1e-3).ok());
  StatusOr<TenantLedger::TenantStatus> status = ledger.GetStatus("acme");
  ASSERT_TRUE(status.ok());
  EXPECT_LE(status->spent, status->budget);
  EXPECT_EQ(status->jobs_admitted, 2);
}

TEST(TenantLedgerTest, DefaultBudgetProvisionsOnFirstSight) {
  TenantLedger ledger(/*default_rho=*/0.5);
  EXPECT_TRUE(ledger.TryReserve("walk-in", 0.3).ok());
  EXPECT_FALSE(ledger.TryReserve("walk-in", 0.3).ok());
  StatusOr<TenantLedger::TenantStatus> status = ledger.GetStatus("walk-in");
  ASSERT_TRUE(status.ok());
  EXPECT_DOUBLE_EQ(status->budget, 0.5);
}

TEST(TenantLedgerTest, SpentNeverExceedsBudgetUnderConcurrency) {
  // 8 threads race 400 reservations of 0.01 against a budget of 1.0: no
  // interleaving may admit more than 100, and the PrivacyFilter invariant
  // spent() <= budget() must hold exactly afterwards.
  TenantLedger ledger(0.0);
  ASSERT_TRUE(ledger.Provision("shared", 1.0).ok());
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (ledger.TryReserve("shared", 0.01).ok()) {
          admitted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  StatusOr<TenantLedger::TenantStatus> status = ledger.GetStatus("shared");
  ASSERT_TRUE(status.ok());
  EXPECT_LE(status->spent, status->budget);
  // 100 fit exactly; tolerate one fewer in case the clamp tolerance rounds
  // the 100th reservation out.
  EXPECT_GE(admitted.load(), 99);
  EXPECT_LE(admitted.load(), 100);
  EXPECT_EQ(admitted.load(), status->jobs_admitted);
}

// ------------------------------------------------------------ job specs ----

TEST(JobSpecTest, ParsesAndValidates) {
  StatusOr<JsonValue> body = ParseJson(
      R"({"tenant":"t1","dataset":"/d.csv","epsilon":0.5,"delta":1e-6,)"
      R"("workload":"all2way","seed":42,"records":100,"bins":8})");
  ASSERT_TRUE(body.ok());
  StatusOr<JobSpec> spec = ParseJobSpec(*body);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->tenant, "t1");
  EXPECT_EQ(spec->mechanism, "AIM");  // default
  EXPECT_DOUBLE_EQ(spec->epsilon, 0.5);
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_EQ(spec->records, 100);
  EXPECT_EQ(spec->bins, 8);

  auto bad = [](const std::string& json) {
    StatusOr<JsonValue> parsed = ParseJson(json);
    EXPECT_TRUE(parsed.ok()) << json;
    return !ParseJobSpec(*parsed).ok();
  };
  EXPECT_TRUE(bad(R"({})"));  // no dataset
  EXPECT_TRUE(bad(R"({"dataset":"/d.csv","epsilon":-1})"));
  EXPECT_TRUE(bad(R"({"dataset":"/d.csv","delta":1.5})"));
  EXPECT_TRUE(bad(R"({"dataset":"/d.csv","workload":"bogus"})"));
  EXPECT_TRUE(bad(R"({"dataset":"/d.csv","seed":-3})"));
  EXPECT_TRUE(bad(R"({"dataset":"/d.csv","bins":0})"));
}

// ------------------------------------------------------- job lifecycle ----

class ServeJobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = WriteTestCsv("serve_jobs.csv");
    work_dir_ = ::testing::TempDir() + "/aimd_test";
  }
  std::string dataset_;
  std::string work_dir_;
};

TEST_F(ServeJobTest, RunsJobAndMatchesDirectRunByteForByte) {
  TenantLedger ledger(/*default_rho=*/100.0);
  JobManagerOptions options;
  options.work_dir = work_dir_;
  options.workers = 2;
  JobManager manager(options, &ledger);

  const JobSpec spec = TestSpec(dataset_);
  StatusOr<std::shared_ptr<Job>> submitted = manager.Submit(spec);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  const std::shared_ptr<Job>& job = *submitted;
  ASSERT_TRUE(manager.WaitIdle(300.0));
  ASSERT_TRUE(WaitForState(job, Job::State::kDone, 1.0))
      << "job state: " << Job::StateName(job->state) << " " << job->error;

  // The job emitted a per-job trace with round records and a final state
  // consistent with them.
  EXPECT_GT(job->trace.size(), 0u);
  EXPECT_EQ(job->trace.rounds_completed(), job->rounds);
  EXPECT_GT(job->rounds, 0);
  {
    std::lock_guard<std::mutex> lock(job->mu);
    EXPECT_TRUE(job->model.has_value());
    EXPECT_GT(job->rho_used, 0.0);
    EXPECT_LE(job->rho_used, job->rho * (1.0 + 1e-9));
  }

  // Byte-identity vs. the same run made directly (the aim_cli pipeline):
  // same preprocessing, workload, rho conversion, options, and seed
  // derivation must give the same synthetic CSV, byte for byte.
  StatusOr<RawTable> table = ReadCsv(dataset_);
  ASSERT_TRUE(table.ok());
  PreprocessOptions prep_options;
  prep_options.num_bins = spec.bins;
  StatusOr<PreprocessResult> prep = Preprocess(*table, prep_options);
  ASSERT_TRUE(prep.ok());
  const Workload workload = AllKWayWorkload(
      prep->dataset.domain(),
      std::min(2, prep->dataset.domain().num_attributes()));
  AimOptions aim_options;
  aim_options.record_candidates = false;
  AimMechanism mechanism(aim_options);
  DatasetSource direct_source(prep->dataset);
  Rng rng(spec.seed + 0x41494D);
  MechanismResult direct = mechanism.Run(
      direct_source, workload, CdpRho(spec.epsilon, spec.delta), rng);
  const std::string direct_path = work_dir_ + "/direct.csv";
  ASSERT_TRUE(WriteCsv(direct.synthetic, direct_path).ok());
  EXPECT_EQ(ReadFileBytes(job->output_path), ReadFileBytes(direct_path));

  // Post-hoc marginal query against the completed model: cells sum to the
  // model's estimated total, shape follows the domain.
  std::vector<int> sizes;
  StatusOr<std::vector<double>> marginal =
      manager.QueryMarginal(job->id, {"a", "b"}, &sizes);
  ASSERT_TRUE(marginal.ok()) << marginal.status().ToString();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(marginal->size(), static_cast<size_t>(sizes[0] * sizes[1]));
  double sum = 0.0;
  for (double v : *marginal) sum += v;
  EXPECT_NEAR(sum, direct.total_estimate,
              1e-3 * (1.0 + std::abs(direct.total_estimate)));

  EXPECT_FALSE(
      manager.QueryMarginal(job->id, {"nonexistent"}, nullptr).ok());
  EXPECT_FALSE(manager.QueryMarginal("j-404", {"a"}, nullptr).ok());
}

TEST_F(ServeJobTest, CancelMidJobLeavesResumableCheckpointAndResumeMatches) {
  TenantLedger ledger(/*default_rho=*/100.0);
  JobManagerOptions options;
  options.work_dir = work_dir_ + "_cancel";
  options.workers = 1;
  JobManager manager(options, &ledger);

  // Reference: an uninterrupted run of the same spec.
  JobSpec spec = TestSpec(dataset_);
  StatusOr<std::shared_ptr<Job>> reference = manager.Submit(spec);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(manager.WaitIdle(300.0));
  ASSERT_TRUE(WaitForState(*reference, Job::State::kDone, 1.0))
      << (*reference)->error;
  const std::string reference_bytes =
      ReadFileBytes((*reference)->output_path);

  // Victim: same spec, cancelled as soon as the first round lands.
  StatusOr<std::shared_ptr<Job>> victim = manager.Submit(spec);
  ASSERT_TRUE(victim.ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while ((*victim)->trace.rounds_completed() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE((*victim)->trace.rounds_completed(), 1);
  ASSERT_TRUE(manager.Cancel((*victim)->id).ok());
  ASSERT_TRUE(manager.WaitIdle(300.0));
  ASSERT_TRUE(WaitForState(*victim, Job::State::kCancelled, 1.0))
      << "state: " << Job::StateName((*victim)->state);

  // The wind-down forced a final checkpoint: the newest valid generation
  // loads under the job's fingerprint and sits at the round it stopped.
  uint64_t victim_fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock((*victim)->mu);
    victim_fingerprint = (*victim)->fingerprint;
  }
  StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
      (*victim)->checkpoint_path, victim_fingerprint, (*victim)->rho);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GE(loaded->snapshot.round, 0);
  EXPECT_LT(loaded->snapshot.rho_spent,
            (*victim)->rho * (1.0 + 1e-9));

  // Resume: a fresh submission picking up the victim's checkpoint must
  // finish and produce output byte-identical to the uninterrupted
  // reference — the strongest form of "the checkpoint was resumable".
  JobSpec resume_spec = spec;
  resume_spec.resume_from = (*victim)->checkpoint_path;
  StatusOr<std::shared_ptr<Job>> resumed = manager.Submit(resume_spec);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(manager.WaitIdle(300.0));
  ASSERT_TRUE(WaitForState(*resumed, Job::State::kDone, 1.0))
      << (*resumed)->error;
  EXPECT_EQ(ReadFileBytes((*resumed)->output_path), reference_bytes);

  // Three admissions were charged in full — no refunds for the cancelled
  // job (its measurements are on disk), and the invariant held throughout.
  StatusOr<TenantLedger::TenantStatus> tenant = ledger.GetStatus("t0");
  ASSERT_TRUE(tenant.ok());
  EXPECT_EQ(tenant->jobs_admitted, 3);
  EXPECT_NEAR(tenant->spent, 3 * (*victim)->rho, 1e-9);
  EXPECT_LE(tenant->spent, tenant->budget);
}

TEST_F(ServeJobTest, ShutdownDrainsRunningAndQueuedJobs) {
  SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetForTesting();
  TenantLedger ledger(/*default_rho=*/100.0);
  JobManagerOptions options;
  options.work_dir = work_dir_ + "_drain";
  options.workers = 1;  // the second job must still be queued at shutdown
  JobManager manager(options, &ledger);

  JobSpec spec = TestSpec(dataset_);
  StatusOr<std::shared_ptr<Job>> running = manager.Submit(spec);
  ASSERT_TRUE(running.ok());
  spec.seed = 8;
  StatusOr<std::shared_ptr<Job>> queued = manager.Submit(spec);
  ASSERT_TRUE(queued.ok());

  // Let the first job make some progress, then drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while ((*running)->trace.rounds_completed() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  manager.Shutdown();  // blocks until the workers joined

  // The running job wound down (cancelled at a round boundary, or done if
  // it beat the token) and left a loadable checkpoint; the queued one
  // never started.
  {
    std::lock_guard<std::mutex> lock((*running)->mu);
    EXPECT_TRUE((*running)->state == Job::State::kCancelled ||
                (*running)->state == Job::State::kDone)
        << Job::StateName((*running)->state);
  }
  uint64_t running_fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock((*running)->mu);
    running_fingerprint = (*running)->fingerprint;
  }
  StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
      (*running)->checkpoint_path, running_fingerprint, (*running)->rho);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  {
    std::lock_guard<std::mutex> lock((*queued)->mu);
    EXPECT_EQ((*queued)->state, Job::State::kCancelled);
  }
  // New submissions are refused after shutdown.
  EXPECT_EQ(manager.Submit(spec).status().code(), StatusCode::kUnavailable);

  // The running job's budget gauges published under its own label — the
  // per-job scoping that keeps concurrent jobs from clobbering each other.
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(
      registry.gauge("dp.filter.budget{job=" + (*running)->id + "}").value(),
      (*running)->rho);
  SetMetricsEnabled(false);
}

// ----------------------------------------------------- server routing ----

class ServeHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = WriteTestCsv("serve_http.csv");
    options_.port = 0;
    options_.jobs.work_dir = ::testing::TempDir() + "/aimd_http";
    options_.jobs.workers = 1;
    options_.default_tenant_rho = 0.0;
    options_.rate_burst = 100.0;
    options_.rate_per_second = 0.0;
  }

  std::string Submit(Server& server, const std::string& body) {
    HttpRequest request;
    request.method = "POST";
    request.path = "/jobs";
    request.body = body;
    last_response_ = server.Handle(request);
    StatusOr<JsonValue> json = ParseJson(last_response_.body);
    if (!json.ok()) return "";
    return json->GetString("id", "");
  }

  std::string dataset_;
  ServerOptions options_;
  HttpResponse last_response_;
};

TEST_F(ServeHttpTest, RoutesAndTenantRefusalOverHttp) {
  Server server(options_);
  // Provision a tenant with room for exactly one eps=1.0 job.
  const double rho_one = CdpRho(1.0, 1e-9);
  ASSERT_TRUE(server.tenants().Provision("t0", rho_one * 1.5).ok());

  {
    HttpRequest request;
    request.method = "GET";
    request.path = "/healthz";
    EXPECT_EQ(server.Handle(request).status, 200);
  }
  {
    HttpRequest request;
    request.method = "GET";
    request.path = "/nope";
    EXPECT_EQ(server.Handle(request).status, 404);
  }

  // Bad spec -> 400 (and no budget charged).
  Submit(server, "{\"epsilon\":1.0}");
  EXPECT_EQ(last_response_.status, 400);
  // Unknown tenant -> 404 (no default budget).
  Submit(server, "{\"tenant\":\"ghost\",\"dataset\":\"" + dataset_ + "\"}");
  EXPECT_EQ(last_response_.status, 404);

  // First job admitted (202); second refused 403: the remaining half-budget
  // cannot cover another full job, and the ledger never overspends.
  const std::string id =
      Submit(server, "{\"tenant\":\"t0\",\"dataset\":\"" + dataset_ +
                         "\",\"workload\":\"all2way\",\"seed\":7}");
  EXPECT_EQ(last_response_.status, 202);
  ASSERT_FALSE(id.empty());
  Submit(server, "{\"tenant\":\"t0\",\"dataset\":\"" + dataset_ +
                     "\",\"workload\":\"all2way\",\"seed\":8}");
  EXPECT_EQ(last_response_.status, 403);

  {
    HttpRequest request;
    request.method = "GET";
    request.path = "/tenants/t0";
    HttpResponse response = server.Handle(request);
    ASSERT_EQ(response.status, 200);
    StatusOr<JsonValue> json = ParseJson(response.body);
    ASSERT_TRUE(json.ok());
    EXPECT_LE(json->GetNumber("rho_spent", 1e9),
              json->GetNumber("rho_budget", 0.0));
    EXPECT_DOUBLE_EQ(json->GetNumber("jobs_admitted", 0.0), 1.0);
  }

  ASSERT_TRUE(server.jobs().WaitIdle(300.0));
  std::shared_ptr<Job> job = server.jobs().Find(id);
  ASSERT_NE(job, nullptr);
  ASSERT_TRUE(WaitForState(job, Job::State::kDone, 1.0)) << job->error;

  // Status, events, result, query — the full read side.
  {
    HttpRequest request;
    request.method = "GET";
    request.path = "/jobs/" + id;
    HttpResponse response = server.Handle(request);
    ASSERT_EQ(response.status, 200);
    StatusOr<JsonValue> json = ParseJson(response.body);
    ASSERT_TRUE(json.ok());
    EXPECT_EQ(json->GetString("state", ""), "done");
    EXPECT_GT(json->GetNumber("rounds", 0.0), 0.0);
  }
  {
    HttpRequest request;
    request.method = "GET";
    request.path = "/jobs/" + id + "/events";
    HttpResponse response = server.Handle(request);
    ASSERT_EQ(response.status, 200);
    // Every line is one well-formed JSON trace record.
    std::istringstream lines(response.body);
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
      EXPECT_TRUE(ParseJson(line).ok()) << line;
      ++count;
    }
    EXPECT_GT(count, 0);
    // Tail from the end: nothing new.
    request.query = "from=" + std::to_string(count);
    EXPECT_TRUE(server.Handle(request).body.empty());
  }
  {
    HttpRequest request;
    request.method = "GET";
    request.path = "/jobs/" + id + "/result";
    HttpResponse response = server.Handle(request);
    ASSERT_EQ(response.status, 200);
    EXPECT_EQ(response.content_type, "text/csv");
    EXPECT_EQ(response.body, ReadFileBytes(job->output_path));
  }
  {
    HttpRequest request;
    request.method = "POST";
    request.path = "/jobs/" + id + "/query";
    request.body = "{\"attrs\":[\"a\",\"d\"]}";
    HttpResponse response = server.Handle(request);
    ASSERT_EQ(response.status, 200);
    StatusOr<JsonValue> json = ParseJson(response.body);
    ASSERT_TRUE(json.ok());
    ASSERT_NE(json->Find("cells"), nullptr);
    EXPECT_EQ(json->Find("cells")->array().size(),
              static_cast<size_t>(4 * 2));
  }
  server.Shutdown();
}

TEST_F(ServeHttpTest, RateLimiterRefusesFloods) {
  options_.rate_burst = 2.0;
  options_.rate_per_second = 0.0;  // no refill: deterministic
  options_.default_tenant_rho = 100.0;
  Server server(options_);
  const std::string body =
      "{\"tenant\":\"flood\",\"dataset\":\"" + dataset_ + "\"}";
  Submit(server, body);
  EXPECT_EQ(last_response_.status, 202);
  Submit(server, body);
  EXPECT_EQ(last_response_.status, 202);
  Submit(server, body);
  EXPECT_EQ(last_response_.status, 429);
  // 429 happened before admission: only two jobs exist, two charges made.
  EXPECT_EQ(server.jobs().Jobs().size(), 2u);
  server.Shutdown();
}

TEST_F(ServeHttpTest, LoopbackSocketRoundTrip) {
  Server server(options_);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  std::thread serve_thread([&server] { server.ServeForever(nullptr); });

  auto roundtrip = [&server](const std::string& raw) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    EXPECT_EQ(send(fd, raw.data(), raw.size(), 0),
              static_cast<ssize_t>(raw.size()));
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      response.append(chunk, static_cast<size_t>(n));
    }
    close(fd);
    return response;
  };

  const std::string health =
      roundtrip("GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("{\"ok\":true}"), std::string::npos) << health;

  // POST with a body: Content-Length framing both ways.
  const std::string body = "{\"epsilon\":1.0}";  // valid JSON, bad spec
  const std::string submit = roundtrip(
      "POST /jobs HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(submit.find("HTTP/1.1 400"), std::string::npos) << submit;
  EXPECT_NE(submit.find("dataset"), std::string::npos) << submit;

  const std::string malformed = roundtrip("BOGUS\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400"), std::string::npos) << malformed;

  server.Shutdown();
  serve_thread.join();
}

}  // namespace
}  // namespace aim
