// Tests for the factor SIMD backend (src/factor/simd_dispatch.*):
//
//   * exact kernels — bitwise identical across every supported level,
//     including signed zeros, infinities, subnormals, and NaN poisoning
//   * transcendental kernels — ULP-bounded against scalar libm across
//     denormals, +-inf, NaN, and the exp overflow/underflow boundaries
//   * dispatch plumbing — detection, clamping, per-level tables
//   * end-to-end — PGM calibration and a full AIM run under the widest
//     SIMD level stay within the documented tolerance of the scalar run
//
// Documented tolerance contract (DESIGN.md "SIMD backend"): vexp/vlog lanes
// are within kMaxUlps of std::exp/std::log; LogSumExpTo outputs are within
// 1e-12 relative; end-to-end AIM workload marginals are within 1e-3 total
// variation (in practice the synthetic bytes are almost always identical).

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "factor/factor.h"
#include "factor/kernels.h"
#include "factor/simd_dispatch.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "pgm/markov_random_field.h"
#include "util/rng.h"

namespace aim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNegInf = -kInf;
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// Maximum lane error for the vector exp/log (measured worst case is ~1 ulp;
// 4 leaves headroom for other FMA hardware).
constexpr double kMaxUlps = 4.0;

// Distance between a and b in units of the larger value's ulp. Exact
// matches (including NaN vs NaN and equal infinities) are 0; a finite vs
// infinite mismatch is effectively infinite.
double UlpDiff(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return 0.0;
  if (a == b) return 0.0;
  if (std::isnan(a) || std::isnan(b) || std::isinf(a) || std::isinf(b)) {
    return kInf;
  }
  const double mag = std::max(std::fabs(a), std::fabs(b));
  int exp = 0;
  std::frexp(mag, &exp);
  double ulp = std::ldexp(1.0, exp - 53);
  ulp = std::max(ulp, std::numeric_limits<double>::denorm_min());
  return std::fabs(a - b) / ulp;
}

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (SimdLevelSupported(SimdLevel::kAvx2)) {
    levels.push_back(SimdLevel::kAvx2);
  }
  if (SimdLevelSupported(SimdLevel::kAvx512)) {
    levels.push_back(SimdLevel::kAvx512);
  }
  return levels;
}

std::vector<SimdLevel> SupportedSimdOnlyLevels() {
  std::vector<SimdLevel> levels = SupportedLevels();
  levels.erase(levels.begin());  // drop kScalar
  return levels;
}

struct SimdLevelGuard {
  ~SimdLevelGuard() { SetSimdLevel(DefaultSimdLevel()); }
};

// ------------------------------------------------- dispatch plumbing ----

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(SimdLevelSupported(SimdLevel::kScalar));
  const SimdOps* ops = SimdOpsForLevel(SimdLevel::kScalar);
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->level, SimdLevel::kScalar);
}

TEST(SimdDispatchTest, SupportedLevelsHaveConsistentTables) {
  for (SimdLevel level : SupportedLevels()) {
    const SimdOps* ops = SimdOpsForLevel(level);
    ASSERT_NE(ops, nullptr) << ToString(level);
    EXPECT_EQ(ops->level, level);
  }
}

TEST(SimdDispatchTest, SetSimdLevelClampsAndRestores) {
  SimdLevelGuard guard;
  EXPECT_EQ(SetSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  // Requesting above the detected level clamps to it.
  const SimdLevel got = SetSimdLevel(SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(got), static_cast<int>(DetectedSimdLevel()));
  EXPECT_EQ(ActiveSimdLevel(), got);
}

// ------------------------------------ exact kernels: bitwise identity ----

// Values stressing every IEEE edge the exact kernels can see. NaN is
// excluded here (payload propagation through x+y is not specified per
// lane order); the NaN-sensitive kernels get their own test below.
std::vector<double> EdgeValues(Rng& rng, int64_t n) {
  std::vector<double> v(n);
  const double specials[] = {0.0,
                             -0.0,
                             kInf,
                             kNegInf,
                             std::numeric_limits<double>::denorm_min(),
                             -std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::min(),
                             std::numeric_limits<double>::max(),
                             -std::numeric_limits<double>::max(),
                             1.0,
                             -1.0};
  for (int64_t i = 0; i < n; ++i) {
    if (rng.Uniform() < 0.25) {
      v[i] = specials[static_cast<int>(rng.Uniform(0.0, 11.0))];
    } else {
      v[i] = rng.Uniform(-1e3, 1e3);
    }
  }
  return v;
}

void ExpectBitwise(const std::vector<double>& want,
                   const std::vector<double>& got, const char* what,
                   SimdLevel level) {
  ASSERT_EQ(want.size(), got.size());
  EXPECT_EQ(0,
            std::memcmp(want.data(), got.data(),
                        want.size() * sizeof(double)))
      << what << " differs from scalar at level " << ToString(level);
}

TEST(SimdExactKernelTest, ElementwiseKernelsMatchScalarBitwise) {
  const SimdOps* scalar = SimdOpsForLevel(SimdLevel::kScalar);
  Rng rng(101);
  for (SimdLevel level : SupportedSimdOnlyLevels()) {
    const SimdOps* ops = SimdOpsForLevel(level);
    ASSERT_NE(ops, nullptr);
    // Lengths straddling vector width multiples and tails.
    for (int64_t n : {1, 3, 4, 7, 8, 9, 15, 16, 17, 64, 67, 1000}) {
      std::vector<double> a = EdgeValues(rng, n);
      std::vector<double> b = EdgeValues(rng, n);
      const double s = rng.Uniform(-10.0, 10.0);
      std::vector<double> want(n), got(n);

      scalar->add_vv(want.data(), a.data(), b.data(), n);
      ops->add_vv(got.data(), a.data(), b.data(), n);
      ExpectBitwise(want, got, "add_vv", level);
      scalar->sub_vv(want.data(), a.data(), b.data(), n);
      ops->sub_vv(got.data(), a.data(), b.data(), n);
      ExpectBitwise(want, got, "sub_vv", level);
      scalar->mul_vv(want.data(), a.data(), b.data(), n);
      ops->mul_vv(got.data(), a.data(), b.data(), n);
      ExpectBitwise(want, got, "mul_vv", level);
      scalar->add_vs(want.data(), a.data(), s, n);
      ops->add_vs(got.data(), a.data(), s, n);
      ExpectBitwise(want, got, "add_vs", level);
      scalar->sub_vs(want.data(), a.data(), s, n);
      ops->sub_vs(got.data(), a.data(), s, n);
      ExpectBitwise(want, got, "sub_vs", level);
      scalar->mul_vs(want.data(), a.data(), s, n);
      ops->mul_vs(got.data(), a.data(), s, n);
      ExpectBitwise(want, got, "mul_vs", level);
      scalar->sub_sv(want.data(), s, b.data(), n);
      ops->sub_sv(got.data(), s, b.data(), n);
      ExpectBitwise(want, got, "sub_sv", level);

      want = a;
      got = a;
      scalar->axpy(want.data(), b.data(), s, n);
      ops->axpy(got.data(), b.data(), s, n);
      ExpectBitwise(want, got, "axpy", level);
      want = a;
      got = a;
      scalar->add_scalar(want.data(), s, n);
      ops->add_scalar(got.data(), s, n);
      ExpectBitwise(want, got, "add_scalar", level);
      want = a;
      got = a;
      scalar->acc_add(want.data(), b.data(), n);
      ops->acc_add(got.data(), b.data(), n);
      ExpectBitwise(want, got, "acc_add", level);
    }
  }
}

TEST(SimdExactKernelTest, MaxKernelsMatchScalarBitwiseAndPoisonNan) {
  const SimdOps* scalar = SimdOpsForLevel(SimdLevel::kScalar);
  Rng rng(202);
  for (SimdLevel level : SupportedSimdOnlyLevels()) {
    const SimdOps* ops = SimdOpsForLevel(level);
    ASSERT_NE(ops, nullptr);
    for (int64_t n : {1, 3, 8, 9, 17, 64, 67, 513}) {
      for (double nan_prob : {0.0, 0.1, 1.0}) {
        std::vector<double> a = EdgeValues(rng, n);
        for (double& v : a) {
          if (rng.Uniform() < nan_prob) v = kNan;
        }
        std::vector<double> want = EdgeValues(rng, n);
        std::vector<double> got = want;
        scalar->acc_max(want.data(), a.data(), n);
        ops->acc_max(got.data(), a.data(), n);
        ExpectBitwise(want, got, "acc_max", level);

        const double m0 = rng.Uniform(-5.0, 5.0);
        const double want_m = scalar->reduce_max(m0, a.data(), n);
        const double got_m = ops->reduce_max(m0, a.data(), n);
        EXPECT_EQ(0, std::memcmp(&want_m, &got_m, sizeof(double)))
            << "reduce_max differs at level " << ToString(level)
            << " (want " << want_m << ", got " << got_m << ")";
      }
    }
  }
}

// ------------------------- transcendental kernels: ULP-bounded sweeps ----

// Inputs covering satellite-mandated edges: denormals, +-inf, NaN, and the
// exp overflow (~709.78) / underflow (~-745.13) boundaries, plus the
// subnormal-result band (-745.13, -708.4) and broad random fill.
std::vector<double> ExpSweepInputs(Rng& rng) {
  std::vector<double> xs = {
      0.0,     -0.0,     kInf,     kNegInf, kNan,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      709.782712893384,   // largest x with finite exp(x)
      709.7827128933841,  // first x overflowing to +inf
      -708.3964185322641, // smallest x with normal exp(x)
      -745.1332191019412, // last x with nonzero (denormal) exp(x)
      -745.1332191019413, // first x underflowing to 0
      -746.0,  710.0,     999.9,   -999.9,  1000.0,  -1000.0, 1000.5,
      -1000.5, 1e6,       -1e6,
  };
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.Uniform(-746.0, 710.5));
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.Uniform(-0.5, 0.5));
  // Dense scans across both boundaries (results sweep the subnormal range).
  for (double x = -745.5; x < -708.0; x += 1e-3) xs.push_back(x);
  for (double x = 709.0; x < 710.5; x += 1e-4) xs.push_back(x);
  return xs;
}

TEST(SimdTranscendentalTest, VExpUlpSweep) {
  Rng rng(303);
  std::vector<double> xs = ExpSweepInputs(rng);
  std::vector<double> out(xs.size());
  for (SimdLevel level : SupportedSimdOnlyLevels()) {
    const SimdOps* ops = SimdOpsForLevel(level);
    ASSERT_NE(ops, nullptr);
    ops->vexp(out.data(), xs.data(), 0.0, static_cast<int64_t>(xs.size()));
    double worst = 0.0;
    double worst_at = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      const double d = UlpDiff(std::exp(xs[i]), out[i]);
      if (d > worst) {
        worst = d;
        worst_at = xs[i];
      }
    }
    EXPECT_LE(worst, kMaxUlps)
        << "vexp worst lane at x=" << worst_at << " level "
        << ToString(level);
    // Shifted form exercises the d[i] = exp(a[i] - shift) fast path used by
    // Exp/ExpInPlace.
    const double shift = 3.25;
    ops->vexp(out.data(), xs.data(), shift,
              static_cast<int64_t>(xs.size()));
    for (size_t i = 0; i < std::min<size_t>(xs.size(), 5000); ++i) {
      EXPECT_LE(UlpDiff(std::exp(xs[i] - shift), out[i]), kMaxUlps)
          << "shifted vexp at x=" << xs[i];
    }
  }
}

TEST(SimdTranscendentalTest, VLogUlpSweep) {
  Rng rng(404);
  std::vector<double> xs = {
      0.0,     -0.0,  kInf,  kNegInf, kNan, -1.0, -1e308,
      1.0,     0.5,   2.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      4.9e-324, 1e-310, 2.2250738585072009e-308,  // largest subnormal
  };
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.Uniform(0.0, 1e6));
  for (int i = 0; i < 50000; ++i) {
    // Log-uniform across the full binade range, including subnormals.
    const int e = static_cast<int>(rng.Uniform(-1074.0, 1024.0));
    xs.push_back(std::ldexp(rng.Uniform(1.0, 2.0), e));
  }
  std::vector<double> out(xs.size());
  for (SimdLevel level : SupportedSimdOnlyLevels()) {
    const SimdOps* ops = SimdOpsForLevel(level);
    ASSERT_NE(ops, nullptr);
    ops->vlog(out.data(), xs.data(), static_cast<int64_t>(xs.size()));
    double worst = 0.0;
    double worst_at = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      // Scalar contract: x > 0 ? log(x) : -inf (negatives and NaN -> -inf).
      const double ref = xs[i] > 0 ? std::log(xs[i]) : kNegInf;
      const double d = UlpDiff(ref, out[i]);
      if (d > worst) {
        worst = d;
        worst_at = xs[i];
      }
    }
    EXPECT_LE(worst, kMaxUlps)
        << "vlog worst lane at x=" << worst_at << " level "
        << ToString(level);
  }
}

TEST(SimdTranscendentalTest, ExpAccAndAccExpMatchScalarWithinTolerance) {
  Rng rng(505);
  for (SimdLevel level : SupportedSimdOnlyLevels()) {
    const SimdOps* ops = SimdOpsForLevel(level);
    const SimdOps* scalar = SimdOpsForLevel(SimdLevel::kScalar);
    for (int64_t n : {1, 7, 8, 33, 512, 1000}) {
      std::vector<double> a(n);
      for (double& v : a) v = rng.Uniform(-30.0, 2.0);
      const double m = 2.0;
      const double want = scalar->exp_acc(0.5, a.data(), m, n);
      const double got = ops->exp_acc(0.5, a.data(), m, n);
      EXPECT_NEAR(got, want, std::fabs(want) * 1e-13 + 1e-300)
          << "exp_acc n=" << n << " level " << ToString(level);

      std::vector<double> mx(n), dw(n, 0.25), dg(n, 0.25);
      for (int64_t i = 0; i < n; ++i) {
        mx[i] = (i % 5 == 3) ? kNegInf : rng.Uniform(-1.0, 1.0);
      }
      std::vector<double> src(n);
      for (int64_t i = 0; i < n; ++i) src[i] = rng.Uniform(-5.0, 1.0);
      scalar->acc_exp(dw.data(), mx.data(), src.data(), n);
      ops->acc_exp(dg.data(), mx.data(), src.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        if (std::isinf(mx[i]) && mx[i] < 0) {
          // Structural-zero lanes must be left untouched, bitwise.
          EXPECT_EQ(dg[i], 0.25);
        }
        EXPECT_NEAR(dg[i], dw[i], std::fabs(dw[i]) * 1e-13)
            << "acc_exp lane " << i << " level " << ToString(level);
      }
    }
  }
}

// --------------------------------------------- factor-level tolerance ----

TEST(SimdFactorTest, LogSumExpToWithinToleranceAcrossLevels) {
  SimdLevelGuard guard;
  Rng rng(606);
  Factor f({0, 1, 2}, {5, 17, 23});
  for (double& v : f.mutable_values()) v = rng.Uniform(-8.0, 8.0);
  SetSimdLevel(SimdLevel::kScalar);
  const Factor want = f.LogSumExpTo(AttrSet({0, 2}));
  const Factor want_lead = f.LogSumExpTo(AttrSet({1, 2}));
  for (SimdLevel level : SupportedSimdOnlyLevels()) {
    SetSimdLevel(level);
    const Factor got = f.LogSumExpTo(AttrSet({0, 2}));
    for (int64_t i = 0; i < want.num_cells(); ++i) {
      EXPECT_NEAR(got.value(i), want.value(i),
                  std::fabs(want.value(i)) * 1e-12 + 1e-12)
          << ToString(level);
    }
    const Factor got_lead = f.LogSumExpTo(AttrSet({1, 2}));
    for (int64_t i = 0; i < want_lead.num_cells(); ++i) {
      EXPECT_NEAR(got_lead.value(i), want_lead.value(i),
                  std::fabs(want_lead.value(i)) * 1e-12 + 1e-12)
          << ToString(level);
    }
  }
}

TEST(SimdFactorTest, ExactFactorOpsBitwiseAcrossLevels) {
  SimdLevelGuard guard;
  Rng rng(707);
  Factor a({0, 1, 2}, {7, 9, 11});
  for (double& v : a.mutable_values()) v = rng.Uniform(-3.0, 3.0);
  Factor b({1, 2}, {9, 11});
  for (double& v : b.mutable_values()) v = rng.Uniform(-3.0, 3.0);
  SetSimdLevel(SimdLevel::kScalar);
  const std::vector<double> add = a.Add(b).values();
  const std::vector<double> sub = a.Subtract(b).values();
  const std::vector<double> mul = a.Multiply(b).values();
  const std::vector<double> marg = a.SumTo(AttrSet({0, 2})).values();
  Factor aip = a;
  aip.AddInPlace(b, 1.75);
  const std::vector<double> aipv = aip.values();
  for (SimdLevel level : SupportedSimdOnlyLevels()) {
    SetSimdLevel(level);
    ExpectBitwise(add, a.Add(b).values(), "Factor::Add", level);
    ExpectBitwise(sub, a.Subtract(b).values(), "Factor::Subtract", level);
    ExpectBitwise(mul, a.Multiply(b).values(), "Factor::Multiply", level);
    ExpectBitwise(marg, a.SumTo(AttrSet({0, 2})).values(), "Factor::SumTo",
                  level);
    Factor g = a;
    g.AddInPlace(b, 1.75);
    ExpectBitwise(aipv, g.values(), "Factor::AddInPlace", level);
  }
}

// ------------------------------------------------- end-to-end gates ----

TEST(SimdEndToEndTest, PgmCalibrationWithinToleranceAcrossLevels) {
  SimdLevelGuard guard;
  std::vector<int> sizes(6, 4);
  Domain domain = Domain::WithSizes(sizes);
  std::vector<AttrSet> cliques;
  for (int i = 0; i < 5; ++i) cliques.push_back(AttrSet({i, i + 1}));
  auto build = [&]() {
    MarkovRandomField model(domain, cliques);
    Rng rng(811);
    for (int c = 0; c < model.num_cliques(); ++c) {
      Factor potential = model.potential(c);
      for (double& v : potential.mutable_values()) {
        v = rng.Gaussian(0.0, 1.0);
      }
      model.SetPotential(c, std::move(potential));
    }
    model.set_total(1000.0);
    model.Calibrate();
    return model;
  };
  SetSimdLevel(SimdLevel::kScalar);
  MarkovRandomField scalar_model = build();
  for (SimdLevel level : SupportedSimdOnlyLevels()) {
    SetSimdLevel(level);
    MarkovRandomField simd_model = build();
    for (int i = 0; i < 5; ++i) {
      const std::vector<double> want =
          scalar_model.MarginalVector(AttrSet({i, i + 1}));
      const std::vector<double> got =
          simd_model.MarginalVector(AttrSet({i, i + 1}));
      ASSERT_EQ(want.size(), got.size());
      for (size_t j = 0; j < want.size(); ++j) {
        EXPECT_NEAR(got[j], want[j], std::fabs(want[j]) * 1e-9 + 1e-9)
            << "clique " << i << " cell " << j << " level "
            << ToString(level);
      }
    }
  }
}

// Normalized 2-way contingency table of (a, b) over a dataset.
std::vector<double> PairHistogram(const Dataset& data, int a, int b,
                                  const Domain& domain) {
  const auto& ca = data.column(a);
  const auto& cb = data.column(b);
  std::vector<double> h(
      static_cast<size_t>(domain.size(a)) * domain.size(b), 0.0);
  for (size_t r = 0; r < ca.size(); ++r) {
    h[static_cast<size_t>(ca[r]) * domain.size(b) + cb[r]] += 1.0;
  }
  for (double& v : h) v /= static_cast<double>(ca.size());
  return h;
}

// Full AIM run under the widest supported SIMD level vs. the scalar level.
// The documented end-to-end tolerance gate: every workload pair marginal of
// the two synthetic datasets agrees within 1e-3 total variation. (With the
// same seed the sampled bytes are expected to be identical unless a random
// draw lands within ~1 ulp of a category boundary; the tolerance covers
// that case.)
TEST(SimdEndToEndTest, AimSyntheticWithinToleranceUnderSimd) {
  if (DetectedSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no SIMD support on this host";
  }
  SimdLevelGuard guard;
  Domain domain = Domain::WithSizes({2, 3, 4, 2, 3});
  Rng data_rng(808);
  Dataset data = SampleRandomBayesNet(domain, 800, 2, 0.4, data_rng);
  Workload workload = AllKWayWorkload(domain, 2);
  AimOptions options;
  options.max_size_mb = 20.0;
  options.round_estimation.max_iters = 30;
  options.final_estimation.max_iters = 80;

  auto run = [&](SimdLevel level) {
    SetSimdLevel(level);
    AimMechanism aim(options);
    Rng rng(2024);
    return aim.Run(data, workload, 0.2, rng);
  };
  MechanismResult scalar_result = run(SimdLevel::kScalar);
  MechanismResult simd_result = run(DetectedSimdLevel());
  for (const WorkloadQuery& query : workload.queries()) {
    const auto& attrs = query.attrs.attrs();
    ASSERT_EQ(attrs.size(), 2u);
    const std::vector<double> want =
        PairHistogram(scalar_result.synthetic, attrs[0], attrs[1], domain);
    const std::vector<double> got =
        PairHistogram(simd_result.synthetic, attrs[0], attrs[1], domain);
    double tv = 0.0;
    for (size_t j = 0; j < want.size(); ++j) {
      tv += std::fabs(want[j] - got[j]);
    }
    EXPECT_LE(0.5 * tv, 1e-3)
        << "workload query (" << attrs[0] << "," << attrs[1] << ")";
  }
}

}  // namespace
}  // namespace aim
