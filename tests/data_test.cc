#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/domain.h"
#include "data/preprocess.h"
#include "data/simulators.h"
#include "marginal/marginal.h"
#include "util/math.h"
#include "util/rng.h"

namespace aim {
namespace {

// -------------------------------------------------------------- Domain ----

TEST(DomainTest, BasicAccessors) {
  Domain d({"a", "b"}, {2, 5});
  EXPECT_EQ(d.num_attributes(), 2);
  EXPECT_EQ(d.size(0), 2);
  EXPECT_EQ(d.size(1), 5);
  EXPECT_EQ(d.name(1), "b");
  EXPECT_EQ(d.IndexOf("b"), 1);
  EXPECT_EQ(d.IndexOf("zzz"), -1);
}

TEST(DomainTest, WithSizesNames) {
  Domain d = Domain::WithSizes({3, 4});
  EXPECT_EQ(d.name(0), "attr0");
  EXPECT_EQ(d.name(1), "attr1");
}

TEST(DomainTest, Log10TotalSize) {
  Domain d = Domain::WithSizes({10, 10, 10});
  EXPECT_NEAR(d.Log10TotalSize(), 3.0, 1e-12);
}

TEST(DomainTest, ProjectionSize) {
  Domain d = Domain::WithSizes({2, 3, 4});
  EXPECT_EQ(d.ProjectionSize({0, 2}), 8);
  EXPECT_EQ(d.ProjectionSize({}), 1);
}

TEST(DomainTest, ProjectionSizeSaturatesInsteadOfWrapping) {
  // 10 attributes of size 2^10 multiply to 2^100 >> 2^63. A wrapping
  // product would go negative and sail through size-budget filters; the
  // product must saturate at INT64_MAX instead.
  Domain d = Domain::WithSizes(std::vector<int>(10, 1 << 10));
  std::vector<int> all(10);
  for (int i = 0; i < 10; ++i) all[i] = i;
  EXPECT_EQ(d.ProjectionSize(all), std::numeric_limits<int64_t>::max());
  // Just below the edge stays exact: 2^62 fits.
  Domain big = Domain::WithSizes({1 << 21, 1 << 21, 1 << 20});
  EXPECT_EQ(big.ProjectionSize({0, 1, 2}), int64_t{1} << 62);
  // One more doubling saturates.
  Domain over = Domain::WithSizes({1 << 21, 1 << 21, 1 << 21, 2});
  EXPECT_EQ(over.ProjectionSize({0, 1, 2, 3}),
            std::numeric_limits<int64_t>::max());
}

// ------------------------------------------------------------- Dataset ----

TEST(DatasetTest, AppendAndRead) {
  Dataset data(Domain::WithSizes({2, 3}));
  data.AppendRecord({1, 2});
  data.AppendRecord({0, 0});
  EXPECT_EQ(data.num_records(), 2);
  EXPECT_EQ(data.value(0, 1), 2);
  EXPECT_EQ(data.Record(1), (std::vector<int>{0, 0}));
}

TEST(DatasetTest, FromColumns) {
  Dataset data = Dataset::FromColumns(Domain::WithSizes({2, 2}),
                                      {{0, 1, 1}, {1, 0, 1}});
  EXPECT_EQ(data.num_records(), 3);
  EXPECT_EQ(data.value(2, 0), 1);
}

TEST(DatasetTest, SubsampleCopiesRows) {
  Dataset data(Domain::WithSizes({3}));
  data.AppendRecord({0});
  data.AppendRecord({1});
  data.AppendRecord({2});
  Dataset sub = data.Subsample({2, 2, 0});
  EXPECT_EQ(sub.num_records(), 3);
  EXPECT_EQ(sub.value(0, 0), 2);
  EXPECT_EQ(sub.value(1, 0), 2);
  EXPECT_EQ(sub.value(2, 0), 0);
}

// ----------------------------------------------------------------- CSV ----

TEST(CsvTest, ParseBasic) {
  auto table = ParseCsv("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->rows[1][1], "y");
}

TEST(CsvTest, ParseHandlesCrlfAndBlankLines) {
  auto table = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RaggedRowErrorNamesLineAndFieldCounts) {
  auto table = ParseCsv("a,b,c\n1,2,3\n4,5\n6,7,8\n");
  ASSERT_FALSE(table.ok());
  const std::string& message = table.status().message();
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("expected 3 fields, got 2"), std::string::npos)
      << message;
  EXPECT_NE(message.find("'4'"), std::string::npos) << message;
  // A mid-file error is not a truncation.
  EXPECT_EQ(message.find("truncated"), std::string::npos) << message;
}

TEST(CsvTest, TruncatedFinalRowIsDiagnosed) {
  // Ragged last line and no trailing newline: a partially-written file.
  auto table = ParseCsv("a,b\n1,2\n3");
  ASSERT_FALSE(table.ok());
  const std::string& message = table.status().message();
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("truncated"), std::string::npos) << message;
}

TEST(CsvTest, RejectsEmbeddedNulBytes) {
  std::string content = "a,b\n1,2\n";
  content += std::string("x\0y", 3);
  content += ",4\n";
  auto table = ParseCsv(content);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  const std::string& message = table.status().message();
  EXPECT_NE(message.find("line 3, column 1"), std::string::npos) << message;
  EXPECT_NE(message.find("NUL"), std::string::npos) << message;
  EXPECT_NE(message.find("\\0"), std::string::npos) << message;
}

TEST(CsvTest, RejectsOverlongFieldsWithoutAborting) {
  std::string huge(static_cast<size_t>(1 << 20) + 1, 'x');
  auto table = ParseCsv("a,b\n" + huge + ",2\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  const std::string& message = table.status().message();
  EXPECT_NE(message.find("exceeds"), std::string::npos) << message;
  // The preview is clipped, not echoed wholesale.
  EXPECT_LT(message.size(), 300u);
}

TEST(CsvTest, ReadErrorsCarryTheFilePath) {
  std::string path = ::testing::TempDir() + "/ragged.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1\n";
  }
  auto table = ReadCsv(path);
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find(path), std::string::npos)
      << table.status().ToString();
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsEmpty) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, WriteReadRoundTrip) {
  Dataset data(Domain({"x", "y"}, {3, 3}));
  data.AppendRecord({1, 2});
  data.AppendRecord({0, 1});
  std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(WriteCsv(data, path).ok());
  auto table = ReadCsv(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsNotFound) {
  auto table = ReadCsv("/nonexistent/path.csv");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kNotFound);
}

// ----------------------------------------------------------- Preprocess ---

TEST(PreprocessTest, CategoricalColumnUsesActiveDomain) {
  auto table = ParseCsv("color\nred\nblue\nred\ngreen\n");
  ASSERT_TRUE(table.ok());
  auto result = Preprocess(*table);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->specs[0].numeric);
  EXPECT_EQ(result->specs[0].domain_size(), 3);
  EXPECT_EQ(result->dataset.domain().size(0), 3);
}

TEST(PreprocessTest, NumericColumnDiscretizedTo32Bins) {
  std::string csv = "v\n";
  for (int i = 0; i < 100; ++i) csv += std::to_string(i) + "\n";
  auto table = ParseCsv(csv);
  ASSERT_TRUE(table.ok());
  auto result = Preprocess(*table);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->specs[0].numeric);
  EXPECT_EQ(result->dataset.domain().size(0), 32);
  // min maps to bin 0, max to bin 31.
  EXPECT_EQ(result->dataset.value(0, 0), 0);
  EXPECT_EQ(result->dataset.value(99, 0), 31);
}

TEST(PreprocessTest, FewDistinctNumbersStayCategorical) {
  auto table = ParseCsv("v\n1\n2\n1\n3\n");
  ASSERT_TRUE(table.ok());
  auto result = Preprocess(*table);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->specs[0].numeric);
  EXPECT_EQ(result->specs[0].domain_size(), 3);
}

TEST(PreprocessTest, NullsGetTheirOwnValue) {
  auto table = ParseCsv("c,d\nx,1\n,1\ny,1\n");
  ASSERT_TRUE(table.ok());
  auto result = Preprocess(*table);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->specs[0].domain_size(), 3);  // "", "x", "y"
}

TEST(PreprocessTest, NumericWithNullsGetsExtraBin) {
  std::string csv = "v,w\n";
  for (int i = 0; i < 100; ++i) csv += std::to_string(i) + ",a\n";
  csv += ",a\n";  // one null
  auto table = ParseCsv(csv);
  ASSERT_TRUE(table.ok());
  auto result = Preprocess(*table);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->specs[0].numeric);
  EXPECT_EQ(result->dataset.domain().size(0), 33);
  EXPECT_EQ(result->dataset.value(100, 0), 32);  // null bin
}

TEST(PreprocessTest, CustomBinCount) {
  std::string csv = "v\n";
  for (int i = 0; i < 200; ++i) csv += std::to_string(i * 0.5) + "\n";
  auto table = ParseCsv(csv);
  ASSERT_TRUE(table.ok());
  PreprocessOptions options;
  options.num_bins = 8;
  auto result = Preprocess(*table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.domain().size(0), 8);
}

// ----------------------------------------------------------- Simulators ---

struct Table2Row {
  PaperDataset dataset;
  int64_t records;
  int dims;
  int min_domain;
  int max_domain;
};

class SimulatorTable2Test : public ::testing::TestWithParam<Table2Row> {};

TEST_P(SimulatorTable2Test, SchemaMatchesTable2) {
  const Table2Row& row = GetParam();
  SimulatorOptions options;
  options.record_scale = 1.0;  // full scale for schema check
  // Limit the cost of the check: generate few records but full schema.
  options.record_scale = 0.01;
  options.min_records = 100;
  SimulatedData sim = MakePaperDataset(row.dataset, options);
  const Domain& domain = sim.data.domain();
  EXPECT_EQ(domain.num_attributes(), row.dims);
  int min_size = domain.size(0), max_size = domain.size(0);
  for (int a = 0; a < domain.num_attributes(); ++a) {
    min_size = std::min(min_size, domain.size(a));
    max_size = std::max(max_size, domain.size(a));
  }
  EXPECT_EQ(min_size, row.min_domain);
  EXPECT_EQ(max_size, row.max_domain);
  EXPECT_GE(sim.target_attribute, 0);
  EXPECT_LT(sim.target_attribute, domain.num_attributes());
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, SimulatorTable2Test,
    ::testing::Values(
        Table2Row{PaperDataset::kAdult, 48842, 15, 2, 42},
        Table2Row{PaperDataset::kSalary, 135727, 9, 3, 501},
        Table2Row{PaperDataset::kMsnbc, 989818, 16, 18, 18},
        Table2Row{PaperDataset::kFire, 305119, 15, 2, 46},
        Table2Row{PaperDataset::kNltcs, 21574, 16, 2, 2},
        Table2Row{PaperDataset::kTitanic, 1304, 9, 2, 91}));

TEST(SimulatorTest, RecordScaleControlsSize) {
  SimulatorOptions options;
  options.record_scale = 0.05;
  SimulatedData sim = MakePaperDataset(PaperDataset::kNltcs, options);
  EXPECT_NEAR(static_cast<double>(sim.data.num_records()), 21574 * 0.05, 1.0);
}

TEST(SimulatorTest, DeterministicForSeed) {
  SimulatorOptions options;
  options.record_scale = 0.02;
  options.min_records = 200;
  SimulatedData a = MakePaperDataset(PaperDataset::kTitanic, options);
  SimulatedData b = MakePaperDataset(PaperDataset::kTitanic, options);
  ASSERT_EQ(a.data.num_records(), b.data.num_records());
  for (int attr = 0; attr < a.data.domain().num_attributes(); ++attr) {
    EXPECT_EQ(a.data.column(attr), b.data.column(attr));
  }
  EXPECT_EQ(a.target_attribute, b.target_attribute);
}

TEST(SimulatorTest, DataIsNotIndependent) {
  // The generating Bayesian network must induce real correlation: compare
  // a 2-way marginal against the product of its 1-way marginals.
  SimulatorOptions options;
  options.record_scale = 0.2;
  SimulatedData sim = MakePaperDataset(PaperDataset::kNltcs, options);
  const Dataset& data = sim.data;
  double n = static_cast<double>(data.num_records());
  std::vector<double> joint = ComputeMarginal(data, AttrSet({0, 1}));
  std::vector<double> m0 = ComputeMarginal(data, AttrSet({0}));
  std::vector<double> m1 = ComputeMarginal(data, AttrSet({1}));
  std::vector<double> indep(joint.size());
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) indep[i * 2 + j] = m0[i] * m1[j] / n;
  }
  EXPECT_GT(L1Distance(joint, indep), 0.02 * n)
      << "attributes 0 and 1 look independent";
}

TEST(SimulatorTest, FireHasStructuralZerosRespectedByData) {
  SimulatorOptions options;
  options.record_scale = 0.02;
  SimulatedData sim = MakePaperDataset(PaperDataset::kFire, options);
  ASSERT_EQ(sim.structural_zeros.size(), 9u);
  int64_t total_zero_tuples = 0;
  for (const auto& constraint : sim.structural_zeros) {
    ASSERT_EQ(constraint.attributes.size(), 2u);
    total_zero_tuples += static_cast<int64_t>(constraint.zero_tuples.size());
    AttrSet attrs(constraint.attributes);
    std::vector<double> marginal = ComputeMarginal(sim.data, attrs);
    MarginalIndexer indexer(sim.data.domain(), attrs);
    for (const auto& tuple : constraint.zero_tuples) {
      EXPECT_DOUBLE_EQ(marginal[indexer.IndexOfTuple(tuple)], 0.0)
          << "zero tuple occurs in data";
    }
  }
  EXPECT_GT(total_zero_tuples, 100);
}

TEST(SimulatorTest, NameRoundTrip) {
  for (PaperDataset dataset : AllPaperDatasets()) {
    PaperDataset parsed;
    ASSERT_TRUE(ParsePaperDataset(PaperDatasetName(dataset), &parsed));
    EXPECT_EQ(parsed, dataset);
  }
  PaperDataset unused;
  EXPECT_FALSE(ParsePaperDataset("bogus", &unused));
}

TEST(SimulatorTest, BayesNetSamplerRespectsDomain) {
  Rng rng(1);
  Domain domain = Domain::WithSizes({2, 3, 4});
  Dataset data = SampleRandomBayesNet(domain, 500, 2, 0.5, rng);
  EXPECT_EQ(data.num_records(), 500);
  for (int64_t row = 0; row < data.num_records(); ++row) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(data.value(row, a), 0);
      EXPECT_LT(data.value(row, a), domain.size(a));
    }
  }
}

}  // namespace
}  // namespace aim
