// Shared helpers for the test suites: brute-force reference computations to
// validate the factor algebra and graphical-model inference.

#ifndef AIM_TESTS_TEST_UTIL_H_
#define AIM_TESTS_TEST_UTIL_H_

#include <cmath>
#include <vector>

#include "data/domain.h"
#include "factor/factor.h"
#include "marginal/attr_set.h"
#include "marginal/marginal.h"
#include "pgm/markov_random_field.h"

namespace aim {
namespace testing_util {

// Enumerates every tuple of the domain, invoking fn(tuple).
template <typename Fn>
void ForEachTuple(const Domain& domain, Fn&& fn) {
  const int d = domain.num_attributes();
  std::vector<int> tuple(d, 0);
  while (true) {
    fn(tuple);
    int axis = d - 1;
    while (axis >= 0) {
      if (++tuple[axis] < domain.size(axis)) break;
      tuple[axis] = 0;
      --axis;
    }
    if (axis < 0) break;
  }
}

// Brute-force scaled marginal of the model on `r`: enumerates the full
// domain, exponentiates the sum of clique log-potentials, normalizes, and
// scales by total(). Only usable for tiny domains.
inline std::vector<double> BruteForceMarginal(const MarkovRandomField& model,
                                              const AttrSet& r) {
  const Domain& domain = model.domain();
  std::vector<MarginalIndexer> indexers;
  for (int c = 0; c < model.num_cliques(); ++c) {
    indexers.emplace_back(domain, model.tree().cliques[c]);
  }
  MarginalIndexer out_indexer(domain, r);
  std::vector<double> unnormalized(out_indexer.size(), 0.0);
  double z = 0.0;
  ForEachTuple(domain, [&](const std::vector<int>& tuple) {
    double log_p = 0.0;
    for (int c = 0; c < model.num_cliques(); ++c) {
      const AttrSet& clique = model.tree().cliques[c];
      std::vector<int> sub;
      sub.reserve(clique.size());
      for (int attr : clique) sub.push_back(tuple[attr]);
      log_p += model.potential(c).value(indexers[c].IndexOfTuple(sub));
    }
    double p = std::exp(log_p);
    z += p;
    std::vector<int> sub;
    sub.reserve(r.size());
    for (int attr : r) sub.push_back(tuple[attr]);
    unnormalized[out_indexer.IndexOfTuple(sub)] += p;
  });
  for (double& v : unnormalized) v *= model.total() / z;
  return unnormalized;
}

inline double MaxAbsDiff(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace testing_util
}  // namespace aim

#endif  // AIM_TESTS_TEST_UTIL_H_
