#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "util/rng.h"

namespace aim {
namespace {

// ---------------------------------------------------------- conversion ----

TEST(AccountantTest, CdpDeltaZeroRho) {
  EXPECT_DOUBLE_EQ(CdpDelta(0.0, 1.0), 0.0);
}

TEST(AccountantTest, CdpDeltaMonotoneInRho) {
  double prev = 0.0;
  for (double rho : {0.01, 0.05, 0.1, 0.5, 1.0}) {
    double delta = CdpDelta(rho, 1.0);
    EXPECT_GE(delta, prev);
    prev = delta;
  }
}

TEST(AccountantTest, CdpDeltaMonotoneDecreasingInEps) {
  double prev = 1.0;
  for (double eps : {0.5, 1.0, 2.0, 4.0}) {
    double delta = CdpDelta(0.2, eps);
    EXPECT_LE(delta, prev);
    prev = delta;
  }
}

TEST(AccountantTest, CdpDeltaKnownRegime) {
  // For eps >> rho the standard bound delta ~ exp(-(eps-rho)^2/(4 rho))
  // should roughly agree in order of magnitude.
  double rho = 0.1, eps = 3.0;
  double delta = CdpDelta(rho, eps);
  double classic = std::exp(-(eps - rho) * (eps - rho) / (4.0 * rho));
  EXPECT_LE(delta, classic * 1.01);       // CKS bound is tighter
  EXPECT_GT(delta, classic * 1e-4);       // but not wildly different
}

TEST(AccountantTest, EpsRoundTrip) {
  for (double rho : {0.01, 0.1, 1.0}) {
    double delta = 1e-9;
    double eps = CdpEps(rho, delta);
    EXPECT_NEAR(CdpDelta(rho, eps), delta, delta * 0.05);
  }
}

TEST(AccountantTest, RhoRoundTrip) {
  for (double eps : {0.1, 1.0, 10.0}) {
    double delta = 1e-9;
    double rho = CdpRho(eps, delta);
    EXPECT_GT(rho, 0.0);
    // Spending exactly rho must satisfy (eps, delta).
    EXPECT_LE(CdpDelta(rho, eps), delta * 1.001);
    // And rho should be maximal (1% more violates delta).
    EXPECT_GT(CdpDelta(rho * 1.05, eps), delta);
  }
}

TEST(AccountantTest, RhoIncreasesWithEps) {
  double delta = 1e-9;
  EXPECT_LT(CdpRho(0.1, delta), CdpRho(1.0, delta));
  EXPECT_LT(CdpRho(1.0, delta), CdpRho(10.0, delta));
}

TEST(AccountantTest, MechanismCosts) {
  EXPECT_DOUBLE_EQ(GaussianRho(2.0), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(ExponentialRho(2.0), 0.5);
}

// Boundary behavior of the rho <-> (eps, delta) conversions. These regimes
// used to drive the CdpEps bracket-doubling loop toward inf (poisoning the
// bisection with NaN midpoints); the loop is now bounded and must instead
// terminate with a bracket that still round-trips through CdpDelta.

TEST(AccountantTest, CdpEpsZeroRho) {
  EXPECT_DOUBLE_EQ(CdpEps(0.0, 1e-9), 0.0);
}

TEST(AccountantTest, CdpEpsDeltaAtLeastOneIsFree) {
  // Every mechanism is (0, 1)-DP, so delta >= 1 demands nothing.
  EXPECT_DOUBLE_EQ(CdpEps(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(CdpEps(1e6, 2.0), 0.0);
}

TEST(AccountantTest, CdpEpsTinyDelta) {
  // Near the smallest representable positive double. The analytic bound
  // eps ~= rho + 2*sqrt(rho*log(1/delta)) stays modest, and the result must
  // be finite and consistent with CdpDelta.
  const double delta = 1e-300;
  const double eps = CdpEps(1.0, delta);
  ASSERT_TRUE(std::isfinite(eps));
  EXPECT_GT(eps, 0.0);
  EXPECT_LE(CdpDelta(1.0, eps), delta * 1.05);
  EXPECT_GT(CdpDelta(1.0, eps * 0.95), delta);
}

TEST(AccountantTest, CdpEpsHugeRho) {
  for (double rho : {1e6, 1e10}) {
    const double delta = 1e-9;
    const double eps = CdpEps(rho, delta);
    ASSERT_TRUE(std::isfinite(eps)) << "rho=" << rho;
    // eps grows with rho and stays within the standard conversion bound.
    EXPECT_GT(eps, rho);
    EXPECT_LE(eps, rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta)) + 1.0);
    EXPECT_LE(CdpDelta(rho, eps), delta * 1.05);
  }
}

TEST(AccountantTest, CdpEpsStaysWithinClosedFormBound) {
  // Property: the Proposition-4 conversion is at least as tight as the
  // standard closed form eps <= rho + 2*sqrt(rho*log(1/delta)) everywhere.
  // Regression for the fixed golden-section bracket: with u capped at 40
  // (alpha <= 1 + e^40), very small rho pushed the true minimizer past the
  // bracket and CdpDelta overestimated, so CdpEps exceeded the closed form
  // (the tiny-rho x tiny-delta corner of this grid fails pre-fix).
  const double kRhos[] = {1e-42, 1e-40, 1e-36, 1e-32, 1e-20,
                          1e-10, 1e-4,  1e-1,  1.0,   10.0};
  const double kDeltas[] = {1e-300, 1e-30, 1e-9, 1e-3};
  for (double rho : kRhos) {
    for (double delta : kDeltas) {
      const double eps = CdpEps(rho, delta);
      const double bound = rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta));
      ASSERT_TRUE(std::isfinite(eps)) << "rho=" << rho << " delta=" << delta;
      EXPECT_LE(eps, bound * (1.0 + 1e-6) + 1e-300)
          << "rho=" << rho << " delta=" << delta;
      // Round-trip admissibility: the returned eps really does deliver the
      // requested delta under the accountant's own CdpDelta.
      EXPECT_LE(CdpDelta(rho, eps), delta * (1.0 + 1e-6))
          << "rho=" << rho << " delta=" << delta;
    }
  }
}

TEST(AccountantTest, CdpEpsTinyDeltaHugeRhoCombined) {
  const double eps = CdpEps(1e8, 1e-300);
  ASSERT_TRUE(std::isfinite(eps));
  EXPECT_LE(CdpDelta(1e8, eps), 1e-300 * 1.05);
}

TEST(AccountantTest, CdpRhoRoundTripAtExtremes) {
  // Tiny delta: the bracket in CdpRho must expand far enough and stay
  // finite; the result must still be (eps, delta)-admissible and maximal.
  for (double delta : {1e-300, 1e-30}) {
    const double rho = CdpRho(1.0, delta);
    ASSERT_TRUE(std::isfinite(rho)) << "delta=" << delta;
    EXPECT_GT(rho, 0.0);
    EXPECT_LE(CdpDelta(rho, 1.0), delta * 1.001);
    EXPECT_GT(CdpDelta(rho * 1.05, 1.0), delta);
  }
}

#if GTEST_HAS_DEATH_TEST
TEST(AccountantDeathTest, CdpRhoRejectsDeltaAtLeastOne) {
  // delta >= 1 admits every rho (CdpDelta clamps at 1), so the bracket
  // search would never find its target; the precondition is enforced.
  EXPECT_DEATH(CdpRho(1.0, 1.0), "delta must be in");
}

TEST(AccountantDeathTest, RejectsNonFiniteInputs) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(CdpEps(inf, 1e-9), "finite");
  EXPECT_DEATH(CdpRho(inf, 1e-9), "finite");
}
#endif  // GTEST_HAS_DEATH_TEST

// ---------------------------------------------------------------- filter --

TEST(PrivacyFilterTest, TracksSpending) {
  PrivacyFilter filter(1.0);
  EXPECT_TRUE(filter.CanSpend(0.6));
  filter.Spend(0.6);
  EXPECT_NEAR(filter.remaining(), 0.4, 1e-12);
  EXPECT_FALSE(filter.CanSpend(0.5));
  EXPECT_TRUE(filter.CanSpend(0.4));
  filter.Spend(0.4);
  EXPECT_NEAR(filter.spent(), 1.0, 1e-12);
}

TEST(PrivacyFilterTest, ToleratesFloatSlack) {
  PrivacyFilter filter(0.3);
  filter.Spend(0.1);
  filter.Spend(0.1);
  EXPECT_TRUE(filter.CanSpend(0.1));  // 0.30000000000000004 vs 0.3
  filter.Spend(0.1);
  // The tolerance admits the last spend, but the ledger clamps to the
  // exact budget: the filter never *reports* more than it was given.
  EXPECT_EQ(filter.spent(), 0.3);
  EXPECT_EQ(filter.remaining(), 0.0);
}

TEST(PrivacyFilterTest, ClampsFinalSpendToBudget) {
  // Regression: 0.1 + 0.1 + 0.1 > 0.3 in doubles. Before the clamp, the
  // final round of a budget split into floating-point slices left
  // spent_ > budget_ — a ledger claiming more rho than the accountant
  // granted, which the audit harness would flag as a reconciliation
  // failure. Finish() asserts the invariant.
  PrivacyFilter filter(0.3);
  filter.Spend(0.1);
  filter.Spend(0.1);
  filter.Spend(0.1);
  EXPECT_LE(filter.spent(), filter.budget());
  EXPECT_EQ(filter.spent(), 0.3);
  EXPECT_EQ(filter.Finish(), 0.3);
}

TEST(PrivacyFilterTest, LedgerRecordsEverySpend) {
  PrivacyFilter filter(1.0);
  filter.Spend(0.25);
  filter.Spend(0.5);
  filter.Spend(0.25);
  ASSERT_EQ(filter.ledger().size(), 3u);
  EXPECT_EQ(filter.ledger()[0], 0.25);
  EXPECT_EQ(filter.ledger()[1], 0.75);
  EXPECT_EQ(filter.ledger()[2], 1.0);
  EXPECT_EQ(filter.ledger().back(), filter.spent());
  // A restore replaces the history with the restored position.
  ASSERT_TRUE(filter.RestoreSpent(0.4).ok());
  ASSERT_EQ(filter.ledger().size(), 1u);
  EXPECT_EQ(filter.ledger()[0], 0.4);
}

TEST(PrivacyFilterDeathTest, RefusesOverspend) {
  PrivacyFilter filter(0.5);
  filter.Spend(0.4);
  EXPECT_DEATH(filter.Spend(0.2), "overspend");
}

TEST(PrivacyFilterTest, RestoreSpentSetsTheLedger) {
  PrivacyFilter filter(1.0);
  ASSERT_TRUE(filter.RestoreSpent(0.6).ok());
  EXPECT_EQ(filter.spent(), 0.6);
  EXPECT_NEAR(filter.remaining(), 0.4, 1e-12);
  // A restore replaces the position outright; it does not accumulate.
  ASSERT_TRUE(filter.RestoreSpent(0.25).ok());
  EXPECT_EQ(filter.spent(), 0.25);
}

TEST(PrivacyFilterTest, RestoreSpentBoundaries) {
  PrivacyFilter filter(0.3);
  // Zero and exactly-the-budget are both legitimate checkpoint positions.
  EXPECT_TRUE(filter.RestoreSpent(0.0).ok());
  EXPECT_TRUE(filter.RestoreSpent(0.3).ok());
  // The Spend/CanSpend float slack applies: three 0.1 spends sum to
  // 0.30000000000000004, and a snapshot of that ledger must restore —
  // clamped to the exact budget, preserving the spent <= budget invariant.
  EXPECT_TRUE(filter.RestoreSpent(0.1 + 0.1 + 0.1).ok());
  EXPECT_EQ(filter.spent(), 0.3);
  // Beyond the tolerance is an input error (a corrupt or foreign
  // snapshot), reported as a Status rather than a crash.
  Status overspent = filter.RestoreSpent(0.31);
  ASSERT_FALSE(overspent.ok());
  EXPECT_EQ(overspent.code(), StatusCode::kFailedPrecondition);
  Status negative = filter.RestoreSpent(-0.1);
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.code(), StatusCode::kInvalidArgument);
  Status nan = filter.RestoreSpent(std::nan(""));
  EXPECT_FALSE(nan.ok());
  // A failed restore leaves the ledger untouched.
  EXPECT_EQ(filter.spent(), 0.3);
}

// ------------------------------------------------------------ gaussian ----

TEST(GaussianMechanismTest, NoiseHasRequestedScale) {
  Rng rng(1);
  std::vector<double> values(20000, 10.0);
  std::vector<double> noisy = AddGaussianNoise(values, 3.0, rng);
  double sum = 0.0, sum_sq = 0.0;
  for (double v : noisy) {
    sum += v - 10.0;
    sum_sq += (v - 10.0) * (v - 10.0);
  }
  EXPECT_NEAR(sum / noisy.size(), 0.0, 0.1);
  EXPECT_NEAR(sum_sq / noisy.size(), 9.0, 0.3);
}

TEST(GaussianMechanismTest, ZeroSigmaIsIdentity) {
  Rng rng(2);
  std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_EQ(AddGaussianNoise(values, 0.0, rng), values);
}

// --------------------------------------------------------- exponential ----

TEST(ExponentialMechanismTest, InfiniteEpsIsArgmax) {
  Rng rng(3);
  std::vector<double> scores = {1.0, 5.0, 3.0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ExponentialMechanism(
                  scores, std::numeric_limits<double>::infinity(), 1.0, rng),
              1);
  }
}

TEST(ExponentialMechanismTest, SamplingDistributionMatchesTheory) {
  // Pr[i] ∝ exp(eps * q_i / 2Δ). With eps=2, Δ=1, scores {0, log 4}:
  // probabilities 1/5 and 4/5.
  Rng rng(4);
  std::vector<double> scores = {0.0, std::log(4.0)};
  int first = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (ExponentialMechanism(scores, 2.0, 1.0, rng) == 0) ++first;
  }
  EXPECT_NEAR(first / static_cast<double>(n), 0.2, 0.01);
}

TEST(ExponentialMechanismTest, SensitivityRescales) {
  // Doubling sensitivity halves the effective epsilon.
  Rng rng(5);
  std::vector<double> scores = {0.0, 2.0 * std::log(4.0)};
  int first = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (ExponentialMechanism(scores, 2.0, 2.0, rng) == 0) ++first;
  }
  EXPECT_NEAR(first / static_cast<double>(n), 0.2, 0.01);
}

TEST(ExponentialMechanismTest, ZeroEpsIsUniform) {
  Rng rng(6);
  std::vector<double> scores = {0.0, 100.0, -50.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[ExponentialMechanism(scores, 0.0, 1.0, rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 1.0 / 3.0, 0.02);
  }
}

TEST(NoisyMaxTest, ZeroScaleIsArgmax) {
  Rng rng(7);
  std::vector<double> scores = {0.5, -1.0, 2.0};
  EXPECT_EQ(NoisyMax(scores, 0.0, rng), 2);
}

TEST(NoisyMaxTest, AllNegInfSelectsUniformly) {
  // Regression: when every candidate is filtered to -inf, Gumbel noise
  // leaves every perturbed score at -inf, `s > best_score` never fired, and
  // index 0 was returned deterministically — a biased choice. The fix falls
  // back to a uniform draw.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> scores(3, -inf);
  Rng rng(11);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    int pick = NoisyMax(scores, 1.0, rng);
    ASSERT_GE(pick, 0);
    ASSERT_LT(pick, 3);
    ++counts[pick];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 1.0 / 3.0, 0.02);
  }
}

TEST(NoisyMaxTest, AllNegInfFallbackIsDeterministic) {
  // The fallback consumes the RNG deterministically: the same seed replays
  // the same picks (checkpoint/resume and the audit's paired trials depend
  // on byte-stable replay).
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> scores(5, -inf);
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(NoisyMax(scores, 2.0, a), NoisyMax(scores, 2.0, b));
  }
}

TEST(NoisyMaxTest, OneFiniteScoreAmongNegInfWins) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> scores = {-inf, 3.0, -inf};
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(NoisyMax(scores, 1.0, rng), 1);
  }
}

TEST(ExponentialMechanismTest, AllNegInfSelectsUniformly) {
  // The exponential mechanism delegates to NoisyMax, so an all-filtered
  // slate is uniform there too.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> scores(4, -inf);
  Rng rng(17);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[ExponentialMechanism(scores, 1.0, 1.0, rng)];
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 0.25, 0.02);
  }
}

}  // namespace
}  // namespace aim
