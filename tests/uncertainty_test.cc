#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "marginal/marginal.h"
#include "mechanisms/aim.h"
#include "uncertainty/bounds.h"
#include "uncertainty/estimators.h"
#include "uncertainty/subsampling.h"
#include "util/math.h"
#include "util/rng.h"

namespace aim {
namespace {

// ------------------------------------------- weighted average estimator ---

TEST(EstimatorTest, SingleExactMeasurementIsIdentity) {
  Domain domain = Domain::WithSizes({2, 3});
  std::vector<double> y = {1, 2, 3, 4, 5, 6};
  std::vector<Measurement> ms = {{AttrSet({0, 1}), y, 2.0}};
  auto est = WeightedAverageEstimator(domain, ms, AttrSet({0, 1}));
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->values, y);
  EXPECT_DOUBLE_EQ(est->sigma_bar, 2.0);
  EXPECT_EQ(est->support_count, 1);
}

TEST(EstimatorTest, ProjectionMarginalizesCorrectly) {
  Domain domain = Domain::WithSizes({2, 3});
  std::vector<double> y = {1, 2, 3, 10, 20, 30};
  std::vector<Measurement> ms = {{AttrSet({0, 1}), y, 1.0}};
  auto est = WeightedAverageEstimator(domain, ms, AttrSet({0}));
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->values[0], 6.0);
  EXPECT_DOUBLE_EQ(est->values[1], 60.0);
  // Variance per projected cell: (n_ri / n_r) sigma^2 = 3.
  EXPECT_NEAR(est->sigma_bar, std::sqrt(3.0), 1e-12);
}

TEST(EstimatorTest, TwoMeasurementsReduceVariance) {
  Domain domain = Domain::WithSizes({2, 2});
  std::vector<Measurement> ms = {
      {AttrSet({0}), {5, 5}, 2.0},
      {AttrSet({0, 1}), {2, 3, 2, 3}, 2.0},
  };
  auto est = WeightedAverageEstimator(domain, ms, AttrSet({0}));
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->support_count, 2);
  // sigma_bar^2 = [1/4 + 1/8]^-1 = 8/3 < 4 (either alone).
  EXPECT_NEAR(est->sigma_bar * est->sigma_bar, 8.0 / 3.0, 1e-12);
}

TEST(EstimatorTest, UnsupportedReturnsNullopt) {
  Domain domain = Domain::WithSizes({2, 2, 2});
  std::vector<Measurement> ms = {{AttrSet({0}), {1, 1}, 1.0}};
  EXPECT_FALSE(
      WeightedAverageEstimator(domain, ms, AttrSet({0, 1})).has_value());
}

TEST(EstimatorTest, UnbiasedOverNoiseDraws) {
  // Average of many independent noisy estimates converges to the truth.
  Domain domain = Domain::WithSizes({2, 2});
  std::vector<double> truth = {10, 20, 30, 40};
  Rng rng(5);
  std::vector<double> mean(2, 0.0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> noisy(4);
    for (int c = 0; c < 4; ++c) noisy[c] = truth[c] + 3.0 * rng.Gaussian();
    std::vector<Measurement> ms = {{AttrSet({0, 1}), noisy, 3.0}};
    auto est = WeightedAverageEstimator(domain, ms, AttrSet({0}));
    mean[0] += est->values[0];
    mean[1] += est->values[1];
  }
  EXPECT_NEAR(mean[0] / trials, 30.0, 0.5);
  EXPECT_NEAR(mean[1] / trials, 70.0, 0.5);
}

// -------------------------------------------------- Theorem 3 coverage ----

TEST(TheoremBoundsTest, L1NormTailBoundHolds) {
  // Theorem 5: P(||x||_1 >= sqrt(2 log 2) sigma n + lambda sigma sqrt(2n))
  // <= exp(-lambda^2). Empirically verify at lambda = 1.0 (bound 0.368).
  Rng rng(6);
  const int n = 64;
  const double sigma = 1.5;
  const double lambda = 1.0;
  const double threshold = std::sqrt(2.0 * std::log(2.0)) * sigma * n +
                           lambda * sigma * std::sqrt(2.0 * n);
  int exceed = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    double l1 = 0.0;
    for (int i = 0; i < n; ++i) l1 += std::fabs(sigma * rng.Gaussian());
    if (l1 >= threshold) ++exceed;
  }
  EXPECT_LT(exceed / static_cast<double>(trials), std::exp(-lambda * lambda));
}

TEST(TheoremBoundsTest, ExpectedL1MatchesSqrt2OverPi) {
  // Theorem 5 first part: E||x||_1 = sqrt(2/pi) n sigma.
  Rng rng(7);
  const int n = 100;
  const double sigma = 2.0;
  double sum = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    double l1 = 0.0;
    for (int i = 0; i < n; ++i) l1 += std::fabs(sigma * rng.Gaussian());
    sum += l1;
  }
  EXPECT_NEAR(sum / trials, std::sqrt(2.0 / M_PI) * n * sigma,
              0.01 * n * sigma);
}

// --------------------------------------------------- end-to-end bounds ----

struct AimRunFixture {
  Dataset data;
  Workload workload;
  MechanismResult result;
};

const AimRunFixture& SharedAimRun() {
  static const AimRunFixture* fixture = [] {
    auto* f = new AimRunFixture();
    Rng data_rng(42);
    Domain domain = Domain::WithSizes({2, 3, 4, 2, 3});
    f->data = SampleRandomBayesNet(domain, 4000, 2, 0.3, data_rng);
    f->workload = AllKWayWorkload(domain, 3);
    AimOptions options;
    options.round_estimation.max_iters = 40;
    options.final_estimation.max_iters = 150;
    AimMechanism aim(options);
    Rng rng(43);
    f->result = aim.Run(f->data, f->workload, CdpRho(10.0, 1e-9), rng);
    return f;
  }();
  return *fixture;
}

TEST(BoundsTest, BoundsCoverTrueErrors) {
  const AimRunFixture& f = SharedAimRun();
  UncertaintyQuantifier uq(f.data.domain(), f.result);
  int total = 0, covered = 0, supported = 0;
  for (const AttrSet& r : DownwardClosure(f.workload)) {
    auto bound = uq.BoundFor(r, f.result.synthetic);
    ASSERT_TRUE(bound.has_value()) << r.ToString();
    double true_error = L1Distance(ComputeMarginal(f.data, r),
                                   ComputeMarginal(f.result.synthetic, r));
    ++total;
    if (true_error <= bound->bound) ++covered;
    if (bound->supported) ++supported;
  }
  // 95% bounds: allow a little empirical slack but demand high coverage.
  EXPECT_GE(covered, total * 9 / 10)
      << covered << " of " << total << " marginals covered";
  EXPECT_GT(supported, 0);
}

TEST(BoundsTest, SupportedBoundMatchesCorollary1Formula) {
  // Hand-check Corollary 1 on a synthetic log with a single measurement:
  // bound = ||M_r(D̂) - ȳ_r||_1 + sqrt(2 log 2) σ̄ n_r + λ σ̄ sqrt(2 n_r).
  Domain domain = Domain::WithSizes({2});
  MechanismResult result;
  result.log.measurements.push_back(
      {AttrSet({0}), {30.0, 70.0}, 2.0});
  Dataset synthetic(domain);
  for (int i = 0; i < 25; ++i) synthetic.AppendRecord({0});
  for (int i = 0; i < 75; ++i) synthetic.AppendRecord({1});
  BoundOptions options;
  options.lambda = 1.7;
  UncertaintyQuantifier uq(domain, result, options);
  auto bound = uq.BoundFor(AttrSet({0}), synthetic);
  ASSERT_TRUE(bound.has_value());
  EXPECT_TRUE(bound->supported);
  const double n_r = 2.0, sigma_bar = 2.0;
  const double expected = (std::fabs(25.0 - 30.0) + std::fabs(75.0 - 70.0)) +
                          std::sqrt(2.0 * std::log(2.0)) * sigma_bar * n_r +
                          1.7 * sigma_bar * std::sqrt(2.0 * n_r);
  EXPECT_NEAR(bound->bound, expected, 1e-9);
}

TEST(BoundsTest, UnsupportedRatiosAreFinite) {
  // The paper reports the bound-to-error ratio distribution (Section 6.6);
  // here we only require the ratios to be finite and bounded away from
  // explosion on both classes (the 4.4-vs-8.3 ordering is data-dependent).
  const AimRunFixture& f = SharedAimRun();
  UncertaintyQuantifier uq(f.data.domain(), f.result);
  for (const AttrSet& r : DownwardClosure(f.workload)) {
    auto bound = uq.BoundFor(r, f.result.synthetic);
    ASSERT_TRUE(bound.has_value());
    EXPECT_TRUE(std::isfinite(bound->bound));
    EXPECT_GT(bound->bound, 0.0);
  }
}

TEST(BoundsTest, MeasuredMarginalsAreSupported) {
  const AimRunFixture& f = SharedAimRun();
  UncertaintyQuantifier uq(f.data.domain(), f.result);
  for (const Measurement& m : f.result.log.measurements) {
    auto bound = uq.BoundFor(m.attrs, f.result.synthetic);
    ASSERT_TRUE(bound.has_value());
    EXPECT_TRUE(bound->supported);
  }
}

// ----------------------------------------------------- subsampling --------

TEST(SubsamplingTest, ExpectedL1MatchesMonteCarlo) {
  Rng rng(8);
  Domain domain = Domain::WithSizes({4});
  Dataset data(domain);
  for (int v = 0; v < 4; ++v) {
    for (int i = 0; i < (v + 1) * 100; ++i) data.AppendRecord({v});
  }
  const int64_t n = data.num_records();
  const int64_t k = 50;
  std::vector<double> marginal = ComputeMarginal(data, AttrSet({0}));
  double expected = ExpectedSubsamplingL1(marginal, n, k);
  // Monte Carlo.
  double sum = 0.0;
  const int trials = 20000;
  std::vector<double> p(4);
  for (int v = 0; v < 4; ++v) p[v] = marginal[v] / n;
  for (int t = 0; t < trials; ++t) {
    std::vector<int64_t> counts = rng.Multinomial(k, p);
    double l1 = 0.0;
    for (int v = 0; v < 4; ++v) {
      l1 += std::fabs(p[v] - counts[v] / static_cast<double>(k));
    }
    sum += l1;
  }
  EXPECT_NEAR(expected, sum / trials, 0.01);
}

TEST(SubsamplingTest, ErrorDecreasesWithK) {
  Rng rng(9);
  Domain domain = Domain::WithSizes({3, 3});
  Dataset data = SampleRandomBayesNet(domain, 2000, 1, 0.5, rng);
  Workload workload = AllKWayWorkload(domain, 2);
  double prev = 1e9;
  for (int64_t k : {10, 100, 1000}) {
    double error = ExpectedSubsamplingWorkloadError(data, workload, k);
    EXPECT_LT(error, prev);
    prev = error;
  }
}

TEST(SubsamplingTest, MatchingFractionRoundTrip) {
  Rng rng(10);
  Domain domain = Domain::WithSizes({3, 4});
  Dataset data = SampleRandomBayesNet(domain, 5000, 1, 0.5, rng);
  Workload workload = AllKWayWorkload(domain, 2);
  const int64_t k = 500;
  double error = ExpectedSubsamplingWorkloadError(data, workload, k);
  double fraction = MatchingSubsamplingFraction(data, workload, error);
  EXPECT_NEAR(fraction, 0.1, 0.01);
}

TEST(SubsamplingTest, TinyTargetErrorSaturatesAtOne) {
  Rng rng(11);
  Domain domain = Domain::WithSizes({3, 4});
  Dataset data = SampleRandomBayesNet(domain, 1000, 1, 0.5, rng);
  Workload workload = AllKWayWorkload(domain, 2);
  EXPECT_DOUBLE_EQ(MatchingSubsamplingFraction(data, workload, 1e-12), 1.0);
}

TEST(SubsamplingTest, HugeTargetErrorGivesTinyFraction) {
  Rng rng(12);
  Domain domain = Domain::WithSizes({3, 4});
  Dataset data = SampleRandomBayesNet(domain, 1000, 1, 0.5, rng);
  Workload workload = AllKWayWorkload(domain, 2);
  double fraction = MatchingSubsamplingFraction(data, workload, 10.0);
  EXPECT_LE(fraction, 1.0 / 500.0);
}

}  // namespace
}  // namespace aim
