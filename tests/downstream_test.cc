// Tests for the downstream-utility extensions: naive-Bayes ML efficacy and
// linear/range-query workloads (Section 7 directions implemented here).

#include <cmath>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "eval/ml_efficacy.h"
#include "marginal/linear_query.h"
#include "marginal/marginal.h"
#include "util/rng.h"

namespace aim {
namespace {

// ------------------------------------------------------- naive Bayes ------

// A dataset where the label is a noisy copy of attribute 1.
Dataset LabeledData(int64_t n, double flip_prob, Rng& rng) {
  Domain domain = Domain::WithSizes({2, 2, 3});
  Dataset data(domain);
  for (int64_t i = 0; i < n; ++i) {
    int signal = static_cast<int>(rng.UniformInt(2));
    int label = rng.Uniform() < flip_prob ? 1 - signal : signal;
    int noise = static_cast<int>(rng.UniformInt(3));
    data.AppendRecord({label, signal, noise});
  }
  return data;
}

TEST(NaiveBayesTest, LearnsAPredictiveSignal) {
  Rng rng(1);
  Dataset data = LabeledData(4000, 0.1, rng);
  auto [train, test] = TrainTestSplit(data);
  NaiveBayesClassifier model(train, /*label_attr=*/0);
  // Bayes-optimal accuracy is 0.9; NB should get close.
  EXPECT_GT(model.Accuracy(test), 0.85);
}

TEST(NaiveBayesTest, PerfectSignalPerfectAccuracy) {
  Rng rng(2);
  Dataset data = LabeledData(1000, 0.0, rng);
  NaiveBayesClassifier model(data, 0);
  EXPECT_DOUBLE_EQ(model.Accuracy(data), 1.0);
}

TEST(NaiveBayesTest, UninformativeFeaturesGiveMajorityClass) {
  // Label independent of everything, 80/20 prior: accuracy ~ 0.8 via the
  // majority class.
  Rng rng(3);
  Domain domain = Domain::WithSizes({2, 4});
  Dataset data(domain);
  for (int i = 0; i < 2000; ++i) {
    data.AppendRecord({rng.Uniform() < 0.8 ? 0 : 1,
                       static_cast<int>(rng.UniformInt(4))});
  }
  auto [train, test] = TrainTestSplit(data);
  NaiveBayesClassifier model(train, 0);
  EXPECT_NEAR(model.Accuracy(test), 0.8, 0.06);
}

TEST(NaiveBayesTest, SmoothingHandlesUnseenValues) {
  // A test record with an attribute value absent from training must not
  // produce -inf scores.
  Domain domain = Domain::WithSizes({2, 3});
  Dataset train(domain);
  train.AppendRecord({0, 0});
  train.AppendRecord({1, 1});
  NaiveBayesClassifier model(train, 0);
  Dataset test(domain);
  test.AppendRecord({0, 2});  // value 2 unseen
  int prediction = model.Predict(test, 0);
  EXPECT_TRUE(prediction == 0 || prediction == 1);
}

TEST(NaiveBayesDeathTest, RejectsDatasetOverWiderDomain) {
  // Predict must validate values against the *training* domain: a dataset
  // over a wider domain would otherwise index past the conditional tables.
  Domain train_domain = Domain::WithSizes({2, 3});
  Dataset train(train_domain);
  train.AppendRecord({0, 0});
  train.AppendRecord({1, 2});
  NaiveBayesClassifier model(train, /*label_attr=*/0);

  Domain wide_domain = Domain::WithSizes({2, 5});
  Dataset wide(wide_domain);
  wide.AppendRecord({0, 4});  // valid for its own domain, not for training
  EXPECT_DEATH(model.Predict(wide, 0), "outside training domain");

  Domain extra_domain = Domain::WithSizes({2, 3, 2});
  Dataset extra(extra_domain);
  extra.AppendRecord({0, 1, 0});
  EXPECT_DEATH(model.Predict(extra, 0), "schema");
}

TEST(NaiveBayesTest, TrainTestSplitIsDisjointAndComplete) {
  Rng rng(4);
  Dataset data = LabeledData(100, 0.2, rng);
  auto [train, test] = TrainTestSplit(data, 4);
  EXPECT_EQ(train.num_records() + test.num_records(), 100);
  EXPECT_EQ(test.num_records(), 25);
}

TEST(NaiveBayesTest, EfficacyConvenienceMatchesClassifier) {
  Rng rng(5);
  Dataset data = LabeledData(1000, 0.1, rng);
  auto [train, test] = TrainTestSplit(data);
  NaiveBayesClassifier model(train, 0);
  EXPECT_DOUBLE_EQ(MlEfficacy(train, test, 0), model.Accuracy(test));
}

// ----------------------------------------------------- linear queries -----

TEST(LinearQueryTest, AnswerMatchesDirectCount) {
  Domain domain = Domain::WithSizes({4});
  Dataset data(domain);
  for (int v = 0; v < 4; ++v) {
    for (int i = 0; i <= v; ++i) data.AppendRecord({v});  // counts 1,2,3,4
  }
  LinearQuery q;
  q.attrs = AttrSet({0});
  q.coefficients = {1.0, 1.0, 0.0, 0.0};  // values <= 1
  EXPECT_DOUBLE_EQ(AnswerLinearQuery(data, q), 3.0);
}

TEST(LinearQueryTest, PrefixRangeQueriesAreNested) {
  Domain domain = Domain::WithSizes({5, 2});
  Rng rng(6);
  Dataset data = SampleRandomBayesNet(domain, 500, 1, 0.5, rng);
  std::vector<LinearQuery> queries = PrefixRangeQueries(domain, 0);
  ASSERT_EQ(queries.size(), 4u);
  double prev = -1.0;
  for (const LinearQuery& q : queries) {
    double answer = AnswerLinearQuery(data, q);
    EXPECT_GE(answer, prev);  // prefixes are monotone
    prev = answer;
  }
  EXPECT_LE(prev, 500.0);
}

TEST(LinearQueryTest, RandomRangeWorkloadIsDeterministicAndValid) {
  Domain domain = Domain::WithSizes({4, 5, 6});
  auto a = RandomRangeQueryWorkload(domain, 20, 9);
  auto b = RandomRangeQueryWorkload(domain, 20, 9);
  ASSERT_EQ(a.size(), 20u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].attrs, b[i].attrs);
    EXPECT_EQ(a[i].coefficients, b[i].coefficients);
    EXPECT_EQ(a[i].attrs.size(), 2);
    // Coefficients are a 0/1 rectangle with at least one cell.
    double mass = 0.0;
    for (double c : a[i].coefficients) {
      EXPECT_TRUE(c == 0.0 || c == 1.0);
      mass += c;
    }
    EXPECT_GE(mass, 1.0);
  }
}

TEST(LinearQueryTest, ErrorZeroOnIdenticalData) {
  Domain domain = Domain::WithSizes({4, 3});
  Rng rng(7);
  Dataset data = SampleRandomBayesNet(domain, 400, 1, 0.5, rng);
  auto queries = RandomRangeQueryWorkload(domain, 10, 3);
  EXPECT_DOUBLE_EQ(LinearQueryError(data, data, queries), 0.0);
}

TEST(LinearQueryTest, ErrorDetectsShiftedData) {
  Domain domain = Domain::WithSizes({4, 3});
  Dataset a(domain), b(domain);
  for (int i = 0; i < 100; ++i) {
    a.AppendRecord({0, 0});
    b.AppendRecord({3, 2});
  }
  auto queries = PrefixRangeQueries(domain, 0);
  // Query "value <= k" differs by 100 for every k < 3.
  LinearQuery q = queries[0];
  EXPECT_DOUBLE_EQ(std::fabs(AnswerLinearQuery(a, q) -
                             AnswerLinearQuery(b, q)),
                   100.0);
}

}  // namespace
}  // namespace aim
