#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "marginal/marginal.h"
#include "pgm/estimation.h"
#include "pgm/junction_tree.h"
#include "pgm/markov_random_field.h"
#include "pgm/synthetic.h"
#include "data/simulators.h"
#include "test_util.h"
#include "util/math.h"
#include "util/rng.h"

namespace aim {
namespace {

using testing_util::BruteForceMarginal;
using testing_util::MaxAbsDiff;

// ------------------------------------------------------ junction tree -----

TEST(JunctionTreeTest, SingletonModelCoversAllAttributes) {
  Domain domain = Domain::WithSizes({2, 3, 4});
  JunctionTree tree = BuildJunctionTree(domain, {});
  std::vector<char> covered(3, 0);
  for (const AttrSet& c : tree.cliques) {
    for (int attr : c) covered[attr] = 1;
  }
  for (char c : covered) EXPECT_TRUE(c);
  EXPECT_EQ(tree.edges.size(), tree.cliques.size() - 1);
}

TEST(JunctionTreeTest, ChainProducesPairCliques) {
  Domain domain = Domain::WithSizes({2, 2, 2, 2});
  std::vector<AttrSet> cliques = {AttrSet({0, 1}), AttrSet({1, 2}),
                                  AttrSet({2, 3})};
  JunctionTree tree = BuildJunctionTree(domain, cliques);
  EXPECT_EQ(tree.cliques.size(), 3u);
  for (const AttrSet& c : tree.cliques) EXPECT_EQ(c.size(), 2);
}

TEST(JunctionTreeTest, TriangleMergesIntoOneClique) {
  Domain domain = Domain::WithSizes({2, 2, 2});
  std::vector<AttrSet> cliques = {AttrSet({0, 1}), AttrSet({1, 2}),
                                  AttrSet({0, 2})};
  JunctionTree tree = BuildJunctionTree(domain, cliques);
  ASSERT_EQ(tree.cliques.size(), 1u);
  EXPECT_EQ(tree.cliques[0], AttrSet({0, 1, 2}));
}

TEST(JunctionTreeTest, CliquesAreMaximal) {
  Domain domain = Domain::WithSizes({2, 2, 2, 2, 2});
  std::vector<AttrSet> cliques = {AttrSet({0, 1, 2}), AttrSet({0, 1}),
                                  AttrSet({3})};
  JunctionTree tree = BuildJunctionTree(domain, cliques);
  for (size_t i = 0; i < tree.cliques.size(); ++i) {
    for (size_t j = 0; j < tree.cliques.size(); ++j) {
      if (i != j) EXPECT_FALSE(tree.cliques[i].IsSubsetOf(tree.cliques[j]));
    }
  }
}

// Running-intersection property: for every pair of cliques, their
// intersection is contained in every separator on the tree path between
// them.
TEST(JunctionTreeTest, RunningIntersectionProperty) {
  Domain domain = Domain::WithSizes({2, 2, 2, 2, 2, 2});
  std::vector<AttrSet> cliques = {AttrSet({0, 1}), AttrSet({1, 2}),
                                  AttrSet({2, 3}), AttrSet({3, 4}),
                                  AttrSet({1, 4}), AttrSet({5})};
  JunctionTree tree = BuildJunctionTree(domain, cliques);
  const int k = static_cast<int>(tree.cliques.size());
  // BFS path between every pair.
  for (int s = 0; s < k; ++s) {
    std::vector<int> parent(k, -1), parent_edge(k, -1);
    std::vector<int> queue = {s};
    std::vector<char> seen(k, 0);
    seen[s] = 1;
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      int c = queue[qi];
      for (auto [nbr, e] : tree.neighbors[c]) {
        if (!seen[nbr]) {
          seen[nbr] = 1;
          parent[nbr] = c;
          parent_edge[nbr] = e;
          queue.push_back(nbr);
        }
      }
    }
    for (int t = 0; t < k; ++t) {
      if (t == s) continue;
      AttrSet shared = tree.cliques[s].Intersect(tree.cliques[t]);
      int cur = t;
      while (cur != s) {
        EXPECT_TRUE(
            shared.IsSubsetOf(tree.edges[parent_edge[cur]].separator))
            << "RIP violated between cliques " << s << " and " << t;
        cur = parent[cur];
      }
    }
  }
}

TEST(JunctionTreeTest, JtSizeMatchesHandComputation) {
  // Cliques {0,1} and {1,2} over sizes {10, 20, 30}:
  // 8 * (10*20 + 20*30) bytes = 6400 bytes = 0.0064 MB.
  Domain domain = Domain::WithSizes({10, 20, 30});
  double mb = JtSizeMb(domain, {AttrSet({0, 1}), AttrSet({1, 2})});
  EXPECT_NEAR(mb, 8.0 * (200 + 600) / 1e6, 1e-12);
}

TEST(JunctionTreeTest, JtSizeMonotoneInCliques) {
  Domain domain = Domain::WithSizes({8, 8, 8, 8, 8});
  std::vector<AttrSet> base = {AttrSet({0, 1})};
  double s1 = JtSizeMb(domain, base);
  base.push_back(AttrSet({2, 3, 4}));
  double s2 = JtSizeMb(domain, base);
  EXPECT_GT(s2, s1);
}

// ------------------------------------------------- belief propagation -----

class MrfInferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MrfInferenceTest, MarginalsMatchBruteForce) {
  Rng rng(1000 + GetParam());
  Domain domain = Domain::WithSizes({2, 3, 2, 2});
  std::vector<AttrSet> cliques = {AttrSet({0, 1}), AttrSet({1, 2}),
                                  AttrSet({2, 3})};
  MarkovRandomField model(domain, cliques);
  model.set_total(100.0);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor p = model.potential(c);
    for (double& v : p.mutable_values()) v = rng.Uniform(-2.0, 2.0);
    model.SetPotential(c, std::move(p));
  }
  model.Calibrate();

  // Every 1-, 2-, and 3-way marginal, including out-of-model ones that need
  // variable elimination (e.g. {0,3}).
  std::vector<AttrSet> queries = {
      AttrSet({0}),    AttrSet({1}),    AttrSet({2}),    AttrSet({3}),
      AttrSet({0, 1}), AttrSet({0, 2}), AttrSet({0, 3}), AttrSet({1, 3}),
      AttrSet({0, 1, 2}), AttrSet({0, 2, 3}), AttrSet({0, 1, 3})};
  for (const AttrSet& r : queries) {
    std::vector<double> expected = BruteForceMarginal(model, r);
    std::vector<double> actual = model.MarginalVector(r);
    ASSERT_EQ(expected.size(), actual.size());
    EXPECT_LT(MaxAbsDiff(expected, actual), 1e-8)
        << "marginal mismatch on " << r.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrfInferenceTest, ::testing::Range(0, 5));

TEST(MrfTest, UniformModelGivesUniformMarginals) {
  Domain domain = Domain::WithSizes({2, 4});
  MarkovRandomField model(domain, {AttrSet({0, 1})});
  model.set_total(80.0);
  model.Calibrate();
  std::vector<double> m = model.MarginalVector(AttrSet({1}));
  for (double v : m) EXPECT_NEAR(v, 20.0, 1e-9);
}

TEST(MrfTest, MarginalsSumToTotal) {
  Rng rng(5);
  Domain domain = Domain::WithSizes({3, 3, 3});
  MarkovRandomField model(domain, {AttrSet({0, 1}), AttrSet({1, 2})});
  model.set_total(12345.0);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor p = model.potential(c);
    for (double& v : p.mutable_values()) v = rng.Gaussian();
    model.SetPotential(c, std::move(p));
  }
  model.Calibrate();
  for (const AttrSet& r :
       {AttrSet({0}), AttrSet({2}), AttrSet({0, 2}), AttrSet({0, 1, 2})}) {
    std::vector<double> m = model.MarginalVector(r);
    EXPECT_NEAR(std::accumulate(m.begin(), m.end(), 0.0), 12345.0, 1e-6);
  }
}

TEST(MrfTest, MarginalConsistencyAcrossCliques) {
  // The marginal on a separator must agree whether derived from either side.
  Rng rng(6);
  Domain domain = Domain::WithSizes({2, 2, 2, 2});
  MarkovRandomField model(domain, {AttrSet({0, 1, 2}), AttrSet({1, 2, 3})});
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor p = model.potential(c);
    for (double& v : p.mutable_values()) v = rng.Gaussian();
    model.SetPotential(c, std::move(p));
  }
  model.Calibrate();
  int c0 = model.ContainingClique(AttrSet({0, 1, 2}));
  int c1 = model.ContainingClique(AttrSet({1, 2, 3}));
  ASSERT_GE(c0, 0);
  ASSERT_GE(c1, 0);
  Factor from0 = model.CliqueBelief(c0).LogSumExpTo(AttrSet({1, 2}));
  Factor from1 = model.CliqueBelief(c1).LogSumExpTo(AttrSet({1, 2}));
  for (int64_t i = 0; i < from0.num_cells(); ++i) {
    EXPECT_NEAR(from0.value(i), from1.value(i), 1e-9);
  }
}

TEST(MrfTest, StructuralZeroPotentialForcesZeroMarginal) {
  Domain domain = Domain::WithSizes({2, 2});
  MarkovRandomField model(domain, {AttrSet({0, 1})});
  Factor p = model.potential(0);
  p.mutable_values()[0] = -std::numeric_limits<double>::infinity();
  model.SetPotential(0, std::move(p));
  model.set_total(100.0);
  model.Calibrate();
  std::vector<double> m = model.MarginalVector(AttrSet({0, 1}));
  EXPECT_DOUBLE_EQ(m[0], 0.0);
  EXPECT_NEAR(std::accumulate(m.begin(), m.end(), 0.0), 100.0, 1e-9);
}

// ----------------------------------------------------------- estimation ---

TEST(EstimationTest, EstimateTotalWeightsByVariance) {
  Measurement a{AttrSet({0}), {50.0, 50.0}, 1.0};
  Measurement b{AttrSet({1}), {300.0, 0.0}, 100.0};  // much noisier
  double total = EstimateTotal({a, b});
  // Should be far closer to 100 than to 300.
  EXPECT_GT(total, 99.0);
  EXPECT_LT(total, 110.0);
}

TEST(EstimationTest, EstimateTotalClampsToOne) {
  Measurement a{AttrSet({0}), {-5.0, -5.0}, 1.0};
  EXPECT_DOUBLE_EQ(EstimateTotal({a}), 1.0);
}

TEST(EstimationTest, RecoversNoiselessMarginals) {
  // Build a ground-truth dataset, measure two marginals exactly, and check
  // the estimator reproduces them.
  Rng rng(3);
  Domain domain = Domain::WithSizes({2, 3, 2});
  Dataset data = SampleRandomBayesNet(domain, 2000, 2, 0.5, rng);
  std::vector<Measurement> ms;
  for (const AttrSet& r : {AttrSet({0, 1}), AttrSet({1, 2})}) {
    ms.push_back({r, ComputeMarginal(data, r), 1e-3});
  }
  EstimationOptions options;
  options.max_iters = 2000;
  MarkovRandomField model = EstimateMrf(
      domain, ms, static_cast<double>(data.num_records()), options);
  for (const Measurement& m : ms) {
    std::vector<double> mu = model.MarginalVector(m.attrs);
    EXPECT_LT(L1Distance(mu, m.values), 2.0)
        << "marginal " << m.attrs.ToString() << " not matched";
  }
}

TEST(EstimationTest, ObjectiveDecreasesFromUniform) {
  Rng rng(4);
  Domain domain = Domain::WithSizes({2, 2, 2});
  Dataset data = SampleRandomBayesNet(domain, 500, 2, 0.3, rng);
  std::vector<Measurement> ms = {
      {AttrSet({0, 1}), ComputeMarginal(data, AttrSet({0, 1})), 1.0}};
  // Uniform model objective.
  MarkovRandomField uniform(domain, {AttrSet({0, 1})});
  uniform.set_total(static_cast<double>(data.num_records()));
  uniform.Calibrate();
  double before = EstimationObjective(uniform, ms);
  EstimationOptions options;
  options.max_iters = 200;
  MarkovRandomField fitted = EstimateMrf(
      domain, ms, static_cast<double>(data.num_records()), options);
  double after = EstimationObjective(fitted, ms);
  EXPECT_LT(after, before * 0.1);
}

TEST(EstimationTest, WarmStartPreservesFit) {
  Rng rng(5);
  Domain domain = Domain::WithSizes({2, 2, 2});
  Dataset data = SampleRandomBayesNet(domain, 1000, 2, 0.4, rng);
  std::vector<Measurement> ms = {
      {AttrSet({0, 1}), ComputeMarginal(data, AttrSet({0, 1})), 0.1}};
  EstimationOptions options;
  options.max_iters = 500;
  MarkovRandomField first = EstimateMrf(
      domain, ms, static_cast<double>(data.num_records()), options);
  // Add a measurement; warm-start fit should start near the old optimum
  // and end at least as good on the old measurement.
  ms.push_back({AttrSet({1, 2}), ComputeMarginal(data, AttrSet({1, 2})), 0.1});
  MarkovRandomField second =
      EstimateMrf(domain, ms, static_cast<double>(data.num_records()),
                  options, &first);
  double objective = EstimationObjective(second, ms);
  EXPECT_LT(objective, 50.0);
}

TEST(EstimationTest, StructuralZerosAreRespected) {
  Rng rng(6);
  Domain domain = Domain::WithSizes({2, 3});
  // Data where (0, 0) never occurs.
  Dataset data(domain);
  for (int i = 0; i < 300; ++i) {
    int b = static_cast<int>(rng.UniformInt(3));
    int a = (b == 0) ? 1 : static_cast<int>(rng.UniformInt(2));
    data.AppendRecord({a, b});
  }
  std::vector<Measurement> ms = {
      {AttrSet({0, 1}), ComputeMarginal(data, AttrSet({0, 1})), 1.0}};
  ZeroConstraint zero{AttrSet({0, 1}), {0}};  // cell (0,0)
  std::vector<ZeroConstraint> zeros = {zero};
  MarkovRandomField model =
      EstimateMrf(domain, ms, 300.0, {}, nullptr, &zeros);
  std::vector<double> mu = model.MarginalVector(AttrSet({0, 1}));
  EXPECT_DOUBLE_EQ(mu[0], 0.0);
}

// ------------------------------------------------------ synthetic data ----

TEST(RandomizedRoundTest, SumsExactly) {
  Rng rng(7);
  std::vector<double> weights = {0.1, 0.7, 0.2, 0.0};
  for (int64_t total : {0, 1, 7, 100, 12345}) {
    auto counts = RandomizedRound(weights, total, rng);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}),
              total);
    EXPECT_EQ(counts[3], 0);
  }
}

TEST(RandomizedRoundTest, ExactWhenIntegral) {
  Rng rng(8);
  std::vector<double> weights = {1.0, 3.0};
  auto counts = RandomizedRound(weights, 8, rng);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 6);
}

TEST(RandomizedRoundTest, UniformFallbackOnZeroMass) {
  Rng rng(9);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  auto counts = RandomizedRound(weights, 30, rng);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}), 30);
}

TEST(RandomizedRoundTest, ExactDivisionConsumesNoRandomness) {
  // With expected values exactly integral the floor pass assigns every
  // record; the remainder draw must not run, so the generator stays
  // untouched (asserted against a twin that never touched the sampler).
  Rng rng(55), twin(55);
  std::vector<double> weights = {2.0, 2.0, 4.0};
  auto counts = RandomizedRound(weights, 8, rng);
  EXPECT_EQ(counts, (std::vector<int64_t>{2, 2, 4}));
  EXPECT_EQ(rng.NextUint64(), twin.NextUint64());
}

TEST(RandomizedRoundTest, FractionalUnderflowFallsBackToUniform) {
  // Regression: at totals near 2^53 the per-cell expected value can be an
  // exact double integer (fractional part 0.0) while the floors still sum
  // below the total. The remainder draw then saw an all-zero weight vector,
  // and Rng::Multinomial dumped the whole remainder into cell 0 without
  // consuming randomness. The fix spreads such a remainder uniformly.
  const int64_t total = (int64_t{1} << 53) + 1;  // casts to 2^53 as double
  const std::vector<double> weights = {1.0, 1.0};
  const int64_t floor_each = int64_t{1} << 52;
  bool remainder_reached_cell_1 = false;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(seed);
    auto counts = RandomizedRound(weights, total, rng);
    EXPECT_EQ(counts[0] + counts[1], total);
    // Mirror the expected fallback with an identically seeded generator:
    // floors plus one uniformly multinomial-distributed leftover record.
    Rng mirror(seed);
    auto extra = mirror.Multinomial(1, {1.0, 1.0});
    EXPECT_EQ(counts[0], floor_each + extra[0]) << "seed " << seed;
    EXPECT_EQ(counts[1], floor_each + extra[1]) << "seed " << seed;
    if (counts[1] > floor_each) remainder_reached_cell_1 = true;
  }
  // The buggy path put the leftover in cell 0 every time; the uniform
  // fallback must reach the other cell for some seed.
  EXPECT_TRUE(remainder_reached_cell_1);
}

TEST(RandomizedRoundTest, NearIntegerWeightsStillSumExactly) {
  // Weights a hair below exact division: fractional parts are tiny but
  // positive, so the multinomial remainder path (not the fallback) runs.
  Rng rng(77);
  std::vector<double> weights = {1.0, 1.0 - 1e-12, 2.0};
  for (int64_t total : {4, 400, 40000}) {
    auto counts = RandomizedRound(weights, total, rng);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}),
              total);
  }
}

TEST(SyntheticTest, ReproducesModelMarginals) {
  Rng rng(10);
  Domain domain = Domain::WithSizes({2, 3, 2, 2});
  Dataset data = SampleRandomBayesNet(domain, 5000, 2, 0.4, rng);
  std::vector<Measurement> ms;
  for (const AttrSet& r :
       {AttrSet({0, 1}), AttrSet({1, 2}), AttrSet({2, 3})}) {
    ms.push_back({r, ComputeMarginal(data, r), 1e-2});
  }
  EstimationOptions options;
  options.max_iters = 1000;
  MarkovRandomField model = EstimateMrf(
      domain, ms, static_cast<double>(data.num_records()), options);
  Dataset synth = GenerateSyntheticData(model, data.num_records(), rng);
  EXPECT_EQ(synth.num_records(), data.num_records());
  for (const Measurement& m : ms) {
    std::vector<double> model_mu = model.MarginalVector(m.attrs);
    std::vector<double> synth_mu = ComputeMarginal(synth, m.attrs);
    // Randomized rounding keeps the synthetic marginal within a small
    // multiple of the number of cells of the model marginal.
    EXPECT_LT(L1Distance(model_mu, synth_mu),
              30.0 + 0.01 * data.num_records())
        << "synthetic marginal far from model on " << m.attrs.ToString();
  }
}

TEST(SyntheticTest, AllAttributesAssignedEvenIfUnmeasured) {
  Domain domain = Domain::WithSizes({2, 3, 4});
  MarkovRandomField model(domain, {AttrSet({0})});  // attrs 1, 2 unmeasured
  model.set_total(50.0);
  model.Calibrate();
  Rng rng(11);
  Dataset synth = GenerateSyntheticData(model, 100, rng);
  EXPECT_EQ(synth.num_records(), 100);
  // Unmeasured attributes should be roughly uniform.
  std::vector<double> m1 = ComputeMarginal(synth, AttrSet({1}));
  for (double v : m1) EXPECT_NEAR(v, 100.0 / 3.0, 15.0);
}

TEST(SyntheticTest, ZeroRecords) {
  Domain domain = Domain::WithSizes({2, 2});
  MarkovRandomField model(domain, {AttrSet({0, 1})});
  model.Calibrate();
  Rng rng(12);
  Dataset synth = GenerateSyntheticData(model, 0, rng);
  EXPECT_EQ(synth.num_records(), 0);
}

TEST(SyntheticTest, RespectsStructuralZeros) {
  Domain domain = Domain::WithSizes({2, 2});
  MarkovRandomField model(domain, {AttrSet({0, 1})});
  Factor p = model.potential(0);
  p.mutable_values()[0] = -std::numeric_limits<double>::infinity();
  model.SetPotential(0, std::move(p));
  model.set_total(1000.0);
  model.Calibrate();
  Rng rng(13);
  Dataset synth = GenerateSyntheticData(model, 1000, rng);
  std::vector<double> m = ComputeMarginal(synth, AttrSet({0, 1}));
  EXPECT_DOUBLE_EQ(m[0], 0.0);
}

}  // namespace
}  // namespace aim
