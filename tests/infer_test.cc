// Tests for the inference engine layer (DESIGN.md "Inference engine"):
// dirty-clique message caching in Calibrate(), batched AnswerMarginals, the
// own-mass normalization of Marginal, and the end-to-end bitwise-invariance
// guarantees (cache on == cache off, batched == sequential, any thread
// count).

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "pgm/inference.h"
#include "pgm/markov_random_field.h"
#include "test_util.h"
#include "util/rng.h"

namespace aim {
namespace {

// Restores global knobs (threads, cache switch, metrics) when a test exits.
struct GlobalConfigGuard {
  ~GlobalConfigGuard() {
    SetParallelThreads(0);
    SetInferenceCacheEnabled(true);
    SetMetricsEnabled(false);
  }
};

void ExpectBitwiseEq(const std::vector<double>& a,
                     const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty()) {
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << "vectors differ bitwise";
  }
}

// Chain model over `k + 1` ternary attributes with cliques {i, i+1} and
// Gaussian log-potentials: a >= k-clique junction tree whose structure is a
// path, convenient for reasoning about message reuse.
MarkovRandomField ChainModel(int k, uint64_t seed) {
  std::vector<int> sizes(k + 1, 3);
  Domain domain = Domain::WithSizes(sizes);
  std::vector<AttrSet> cliques;
  for (int i = 0; i < k; ++i) cliques.push_back(AttrSet({i, i + 1}));
  MarkovRandomField model(domain, cliques);
  Rng rng(seed);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor potential = model.potential(c);
    for (double& v : potential.mutable_values()) v = rng.Gaussian(0.0, 0.7);
    model.SetPotential(c, std::move(potential));
  }
  model.set_total(1000.0);
  model.Calibrate();
  return model;
}

// Query mix covering the interesting paths: clique-covered sets, subsets of
// cliques, out-of-clique sets (variable elimination), and duplicates.
std::vector<AttrSet> MixedQueries(const MarkovRandomField& model) {
  std::vector<AttrSet> queries;
  for (const AttrSet& clique : model.tree().cliques) queries.push_back(clique);
  const int d = model.domain().num_attributes();
  queries.push_back(AttrSet({0}));
  queries.push_back(AttrSet({d - 1}));
  queries.push_back(AttrSet({0, d - 1}));          // VE across the chain
  queries.push_back(AttrSet({1, d - 2}));          // VE
  queries.push_back(model.tree().cliques[0]);      // duplicate
  queries.push_back(AttrSet({0, d - 1}));          // duplicate VE
  return queries;
}

// ------------------------------------------------- batched == sequential --

TEST(AnswerMarginalsTest, BatchedMatchesSequentialBitwiseAtAnyThreadCount) {
  GlobalConfigGuard guard;
  for (int threads : {1, 8}) {
    SetParallelThreads(threads);
    MarkovRandomField model = ChainModel(8, /*seed=*/17);
    std::vector<AttrSet> queries = MixedQueries(model);

    std::vector<Factor> sequential;
    for (const AttrSet& q : queries) sequential.push_back(model.Marginal(q));
    std::vector<Factor> batched = model.AnswerMarginals(queries);

    ASSERT_EQ(sequential.size(), batched.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(sequential[i].attrs(), batched[i].attrs());
      ExpectBitwiseEq(sequential[i].values(), batched[i].values());
    }

    std::vector<std::vector<double>> vectors =
        model.AnswerMarginalVectors(queries);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectBitwiseEq(model.MarginalVector(queries[i]), vectors[i]);
    }
  }
}

TEST(AnswerMarginalsTest, EmptyBatchIsFine) {
  MarkovRandomField model = ChainModel(3, 5);
  std::vector<AttrSet> queries;
  EXPECT_TRUE(model.AnswerMarginals(queries).empty());
}

TEST(AnswerMarginalsTest, MatchesBruteForce) {
  MarkovRandomField model = ChainModel(4, 23);
  std::vector<AttrSet> queries = MixedQueries(model);
  std::vector<Factor> batched = model.AnswerMarginals(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<double> expected =
        testing_util::BruteForceMarginal(model, queries[i]);
    EXPECT_LT(testing_util::MaxAbsDiff(batched[i].values(), expected), 1e-8)
        << "query " << queries[i].ToString();
  }
}

// ------------------------------------- dirty calibrate == full calibrate --

TEST(DirtyCalibrateTest, MatchesFullRecalibrationBitwise) {
  GlobalConfigGuard guard;
  for (int threads : {1, 8}) {
    SetParallelThreads(threads);
    // `cached` keeps its message cache across an incremental update;
    // `fresh` is rebuilt from scratch with the same final potentials, so
    // its first calibration recomputes everything.
    MarkovRandomField cached = ChainModel(8, /*seed=*/31);
    std::vector<AttrSet> queries = MixedQueries(cached);
    // Materialize the cache fully before the update.
    for (const AttrSet& q : queries) cached.Marginal(q);

    Rng rng(99);
    Factor delta = cached.potential(3);
    for (double& v : delta.mutable_values()) v = rng.Gaussian(0.0, 0.5);
    cached.AccumulatePotential(3, delta, 1.0);
    cached.Calibrate();

    MarkovRandomField fresh = ChainModel(8, /*seed=*/31);
    fresh.AccumulatePotential(3, delta, 1.0);
    fresh.Calibrate();

    // And a cache-disabled model: eager full recalibration, seed behavior.
    SetInferenceCacheEnabled(false);
    MarkovRandomField eager = ChainModel(8, /*seed=*/31);
    eager.AccumulatePotential(3, delta, 1.0);
    eager.Calibrate();
    SetInferenceCacheEnabled(true);

    for (const AttrSet& q : queries) {
      std::vector<double> from_cached = cached.MarginalVector(q);
      ExpectBitwiseEq(from_cached, fresh.MarginalVector(q));
      ExpectBitwiseEq(from_cached, eager.MarginalVector(q));
    }
    EXPECT_EQ(cached.LogPartition(), fresh.LogPartition());
    EXPECT_EQ(cached.LogPartition(), eager.LogPartition());
  }
}

TEST(DirtyCalibrateTest, RepeatedUpdatesStayCorrect) {
  MarkovRandomField model = ChainModel(6, 7);
  Rng rng(3);
  for (int round = 0; round < 5; ++round) {
    int c = static_cast<int>(rng.UniformInt(model.num_cliques()));
    Factor delta = model.potential(c);
    for (double& v : delta.mutable_values()) v = rng.Gaussian(0.0, 0.3);
    model.AccumulatePotential(c, delta, 1.0);
    model.Calibrate();
    AttrSet q = model.tree().cliques[static_cast<int>(
        rng.UniformInt(model.num_cliques()))];
    std::vector<double> expected = testing_util::BruteForceMarginal(model, q);
    EXPECT_LT(testing_util::MaxAbsDiff(model.MarginalVector(q), expected),
              1e-8)
        << "round " << round;
  }
}

// ------------------------------------------------------ cache behaviour --

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().counter(name).value();
}

TEST(InferenceCacheTest, LocalUpdateReusesUnaffectedMessages) {
  GlobalConfigGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetForTesting();

  const int k = 10;
  MarkovRandomField model = ChainModel(k, 11);
  // Materialize every belief.
  for (const AttrSet& clique : model.tree().cliques) model.Marginal(clique);
  const int64_t after_full = CounterValue("pgm.infer.messages_recomputed");
  EXPECT_EQ(after_full, 2 * (k - 1));  // both directions of every edge

  // Dirty one clique, re-query that same clique: no message depends on the
  // queried clique's own potential from its side, so everything needed is
  // still cached and only the belief recomputes.
  Factor delta = model.potential(4);
  for (double& v : delta.mutable_values()) v = 0.25;
  model.AccumulatePotential(4, delta, 1.0);
  model.Calibrate();
  model.Marginal(model.tree().cliques[4]);
  EXPECT_EQ(CounterValue("pgm.infer.messages_recomputed"), after_full);
  EXPECT_GT(CounterValue("pgm.infer.messages_reused"), 0);

  // Querying everything else recomputes only the messages flowing away
  // from the dirty clique — strictly fewer than a full recalibration.
  for (const AttrSet& clique : model.tree().cliques) model.Marginal(clique);
  const int64_t after_update = CounterValue("pgm.infer.messages_recomputed");
  EXPECT_GT(after_update, after_full);
  EXPECT_LT(after_update - after_full, 2 * (k - 1));
}

TEST(InferenceCacheTest, BatchQueriesCounterCountsQueries) {
  GlobalConfigGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetForTesting();
  MarkovRandomField model = ChainModel(4, 2);
  std::vector<AttrSet> queries = MixedQueries(model);
  const int64_t before = CounterValue("pgm.infer.batch_queries");
  model.AnswerMarginals(queries);
  EXPECT_EQ(CounterValue("pgm.infer.batch_queries"),
            before + static_cast<int64_t>(queries.size()));
}

TEST(InferenceCacheTest, StructureChangeStartsFromFullCalibration) {
  GlobalConfigGuard guard;
  SetMetricsEnabled(true);

  // Growing the model (AIM adding a measured clique) builds a new
  // MarkovRandomField: its cache starts empty, so the first calibration of
  // the new structure recomputes every message it serves — the structure
  // change can never reuse stale messages from the old tree.
  std::vector<int> sizes(5, 3);
  Domain domain = Domain::WithSizes(sizes);
  std::vector<AttrSet> old_cliques = {AttrSet({0, 1}), AttrSet({1, 2})};
  MarkovRandomField old_model(domain, old_cliques);
  Rng rng(13);
  for (int c = 0; c < old_model.num_cliques(); ++c) {
    Factor potential = old_model.potential(c);
    for (double& v : potential.mutable_values()) v = rng.Gaussian(0.0, 0.5);
    old_model.SetPotential(c, std::move(potential));
  }
  old_model.Calibrate();
  for (const AttrSet& clique : old_model.tree().cliques) {
    old_model.Marginal(clique);
  }

  // New structure, potentials carried over (the estimation warm start).
  std::vector<AttrSet> new_cliques = old_cliques;
  new_cliques.push_back(AttrSet({2, 3}));
  new_cliques.push_back(AttrSet({3, 4}));
  MarkovRandomField new_model(domain, new_cliques);
  for (int i = 0; i < old_model.num_cliques(); ++i) {
    int j = new_model.ContainingClique(old_model.tree().cliques[i]);
    ASSERT_GE(j, 0);
    new_model.AccumulatePotential(j, old_model.potential(i), 1.0);
  }
  new_model.set_total(old_model.total());

  MetricsRegistry::Global().ResetForTesting();
  new_model.Calibrate();
  for (const AttrSet& clique : new_model.tree().cliques) {
    new_model.Marginal(clique);
  }
  const int edges = static_cast<int>(new_model.tree().edges.size());
  EXPECT_EQ(CounterValue("pgm.infer.messages_recomputed"), 2 * edges);

  // The refit model still answers correctly.
  for (const AttrSet& clique : new_model.tree().cliques) {
    std::vector<double> expected =
        testing_util::BruteForceMarginal(new_model, clique);
    EXPECT_LT(testing_util::MaxAbsDiff(new_model.MarginalVector(clique),
                                       expected),
              1e-8);
  }
}

TEST(InferenceCacheTest, ToggleReadsEnvironmentDefaultOn) {
  EXPECT_TRUE(InferenceCacheEnabled());
  SetInferenceCacheEnabled(false);
  EXPECT_FALSE(InferenceCacheEnabled());
  SetInferenceCacheEnabled(true);
  EXPECT_TRUE(InferenceCacheEnabled());
}

// ------------------------------------------------- normalization bugfix --

TEST(NormalizationTest, CliquePathAndVePathAgreeBitwise) {
  // Regression: Marginal() used to normalize clique-covered queries by the
  // global log-partition but VE queries by their own mass, so the same
  // query could get a different answer depending on the serving path. Both
  // paths now normalize by the factor's own mass. On this chain the two
  // paths execute the same float ops for {0,1}, so the agreement is exact.
  std::vector<int> sizes = {3, 4, 3};
  Domain domain = Domain::WithSizes(sizes);
  std::vector<AttrSet> cliques = {AttrSet({0, 1}), AttrSet({1, 2})};
  MarkovRandomField model(domain, cliques);
  Rng rng(41);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor potential = model.potential(c);
    for (double& v : potential.mutable_values()) v = rng.Gaussian(0.0, 1.0);
    model.SetPotential(c, std::move(potential));
  }
  model.set_total(500.0);
  model.Calibrate();

  AttrSet q({0, 1});
  ASSERT_GE(model.ContainingClique(q), 0);
  Factor via_clique = model.Marginal(q);
  Factor via_ve = model.MarginalViaVariableElimination(q);
  ASSERT_EQ(via_clique.attrs(), via_ve.attrs());
  ExpectBitwiseEq(via_clique.values(), via_ve.values());
}

TEST(NormalizationTest, BothPathsMatchBruteForceOnCoveredQueries) {
  MarkovRandomField model = ChainModel(4, 53);
  for (const AttrSet& q :
       {AttrSet({0, 1}), AttrSet({2}), AttrSet({3, 4}), AttrSet({1, 2})}) {
    std::vector<double> expected = testing_util::BruteForceMarginal(model, q);
    EXPECT_LT(
        testing_util::MaxAbsDiff(model.Marginal(q).values(), expected), 1e-8);
    EXPECT_LT(testing_util::MaxAbsDiff(
                  model.MarginalViaVariableElimination(q).values(), expected),
              1e-8);
  }
}

// ------------------------------------------- AIM end-to-end equivalence --

Dataset RunAimSynthetic(const Dataset& data, const Workload& workload) {
  AimOptions options;
  options.max_size_mb = 20.0;
  options.round_estimation.max_iters = 30;
  options.final_estimation.max_iters = 80;
  AimMechanism aim(options);
  Rng rng(2024);
  MechanismResult result = aim.Run(data, workload, /*rho=*/0.2, rng);
  EXPECT_TRUE(result.has_synthetic);
  return std::move(result.synthetic);
}

TEST(InferenceCacheTest, AimEndToEndBitwiseIdenticalCacheOnOffAndThreads) {
  GlobalConfigGuard guard;
  Rng rng(808);
  Domain domain = Domain::WithSizes({2, 3, 4, 2, 3});
  Dataset data = SampleRandomBayesNet(domain, 800, 2, 0.4, rng);
  Workload workload = AllKWayWorkload(domain, 2);

  SetParallelThreads(1);
  SetInferenceCacheEnabled(true);
  Dataset reference = RunAimSynthetic(data, workload);
  ASSERT_GT(reference.num_records(), 0);

  struct Config {
    bool cache;
    int threads;
  };
  for (Config config : {Config{false, 1}, Config{true, 8}, Config{false, 8}}) {
    SetInferenceCacheEnabled(config.cache);
    SetParallelThreads(config.threads);
    Dataset synthetic = RunAimSynthetic(data, workload);
    ASSERT_EQ(synthetic.num_records(), reference.num_records());
    for (int attr = 0; attr < domain.num_attributes(); ++attr) {
      const std::vector<int32_t>& a = reference.column(attr);
      const std::vector<int32_t>& b = synthetic.column(attr);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(0,
                std::memcmp(a.data(), b.data(), a.size() * sizeof(int32_t)))
          << "synthetic data differs (cache=" << config.cache
          << " threads=" << config.threads << ") at attribute " << attr;
    }
  }
}

// ------------------------------------------------------- copy and move --

TEST(InferenceCacheTest, CopiedModelAnswersIdentically) {
  MarkovRandomField model = ChainModel(5, 61);
  std::vector<AttrSet> queries = MixedQueries(model);
  for (const AttrSet& q : queries) model.Marginal(q);  // warm the cache

  MarkovRandomField copy = model;  // copies cache contents, fresh mutex
  for (const AttrSet& q : queries) {
    ExpectBitwiseEq(model.MarginalVector(q), copy.MarginalVector(q));
  }

  // The copy's cache is independent: mutating it leaves the original's
  // answers unchanged.
  Factor delta = copy.potential(0);
  for (double& v : delta.mutable_values()) v = 1.0;
  copy.AccumulatePotential(0, delta, 1.0);
  copy.Calibrate();
  EXPECT_TRUE(model.calibrated());
  std::vector<double> expected =
      testing_util::BruteForceMarginal(model, queries[0]);
  EXPECT_LT(
      testing_util::MaxAbsDiff(model.MarginalVector(queries[0]), expected),
      1e-8);

  MarkovRandomField moved = std::move(copy);
  std::vector<double> moved_expected =
      testing_util::BruteForceMarginal(moved, queries[0]);
  EXPECT_LT(testing_util::MaxAbsDiff(moved.MarginalVector(queries[0]),
                                     moved_expected),
            1e-8);
}

}  // namespace
}  // namespace aim
