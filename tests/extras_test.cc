// Tests for the extensions beyond Algorithm 4: the generalized exponential
// mechanism, Laplace-noise measurement, the public-data prior, the relaxed
// projection substrate, and additional graphical-model edge cases.

#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "dp/accountant.h"
#include "dp/mechanisms.h"
#include "eval/error.h"
#include "marginal/marginal.h"
#include "mechanisms/aim.h"
#include "mechanisms/relaxed_projection.h"
#include "pgm/estimation.h"
#include "pgm/junction_tree.h"
#include "pgm/synthetic.h"
#include "util/math.h"
#include "util/rng.h"

namespace aim {
namespace {

// ----------------------------------------- generalized exponential mech ---

TEST(GeneralizedEmTest, InfiniteEpsSelectsBestNormalizedMargin) {
  Rng rng(1);
  // Candidate 1 has the best score and equal sensitivities.
  std::vector<double> scores = {1.0, 5.0, 3.0};
  std::vector<double> sens = {1.0, 1.0, 1.0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(GeneralizedExponentialMechanism(
                  scores, sens, std::numeric_limits<double>::infinity(), rng),
              1);
  }
}

TEST(GeneralizedEmTest, BeatsMaxSensitivityEmWithOneJunkCandidate) {
  // One worthless high-sensitivity candidate inflates the global
  // sensitivity the naive EM must use; the generalized EM normalizes per
  // pair and identifies the true best candidate more reliably.
  Rng rng(2);
  std::vector<double> scores = {10.0, 0.0, 0.0};
  std::vector<double> sens = {1.0, 1.0, 100.0};
  const double eps = 20.0;
  const int trials = 4000;
  int gem_best = 0, naive_best = 0;
  for (int i = 0; i < trials; ++i) {
    if (GeneralizedExponentialMechanism(scores, sens, eps, rng) == 0) {
      ++gem_best;
    }
    if (ExponentialMechanism(scores, eps, /*sensitivity=*/100.0, rng) == 0) {
      ++naive_best;
    }
  }
  EXPECT_GT(gem_best, naive_best);
  EXPECT_GT(gem_best, trials / 2);
}

TEST(GeneralizedEmTest, SingleCandidate) {
  Rng rng(3);
  EXPECT_EQ(GeneralizedExponentialMechanism({7.0}, {2.0}, 1.0, rng), 0);
}

// Reference O(k^2) normalized-margin computation (the pre-optimization
// loop), used to pin down the top-2 fast path bit for bit.
std::vector<double> ReferenceNormalizedMargins(
    const std::vector<double>& scores,
    const std::vector<double>& sensitivities) {
  const size_t k = scores.size();
  std::vector<double> normalized(k);
  for (size_t i = 0; i < k; ++i) {
    double margin = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      margin = std::min(margin, (scores[i] - scores[j]) /
                                    (sensitivities[i] + sensitivities[j]));
    }
    normalized[i] = k > 1 ? margin : 0.0;
  }
  return normalized;
}

TEST(GeneralizedEmTest, TopTwoFastPathSelectsIdenticallyToQuadraticLoop) {
  // The O(k) top-2 scan must be *bitwise* equivalent to the quadratic
  // margin loop: same normalized scores, hence the same selection for the
  // same rng stream. Uniform sensitivities trigger the fast path.
  Rng data_rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 2 + static_cast<int>(data_rng.Uniform(0.0, 40.0));
    std::vector<double> scores(k);
    for (double& s : scores) s = data_rng.Uniform(-50.0, 50.0);
    if (trial % 3 == 0) scores[k / 2] = scores[0];  // exercise ties
    const double sens = data_rng.Uniform(0.5, 4.0);
    std::vector<double> sensitivities(k, sens);

    std::vector<double> reference =
        ReferenceNormalizedMargins(scores, sensitivities);
    // Gumbel-max over identical inputs with identical rng streams selects
    // identically, so comparing selections across many eps values verifies
    // the normalized scores agree bitwise.
    for (double eps : {0.1, 1.0, 10.0}) {
      Rng rng_fast(1000 + trial), rng_ref(1000 + trial);
      const int fast =
          GeneralizedExponentialMechanism(scores, sensitivities, eps, rng_fast);
      const int ref = ExponentialMechanism(reference, eps, 1.0, rng_ref);
      EXPECT_EQ(fast, ref) << "trial " << trial << " eps " << eps;
    }
  }
}

TEST(GeneralizedEmTest, NonUniformSensitivitiesUseExactQuadraticPath) {
  // Counterexample shape where the naive top-2-by-score shortcut would
  // pick the wrong pair: the best margin partner is NOT the runner-up by
  // score when sensitivities differ. The implementation must fall back to
  // the exact loop and agree with the reference.
  std::vector<double> scores = {0.0, -1.0, -0.9};
  std::vector<double> sensitivities = {100.0, 1.0, 1.0};
  std::vector<double> reference =
      ReferenceNormalizedMargins(scores, sensitivities);
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng_a(seed), rng_b(seed);
    EXPECT_EQ(
        GeneralizedExponentialMechanism(scores, sensitivities, 2.0, rng_a),
        ExponentialMechanism(reference, 2.0, 1.0, rng_b));
  }
}

// --------------------------------------------------------- Laplace --------

TEST(LaplaceTest, VarianceIsTwoScaleSquared) {
  Rng rng(4);
  std::vector<double> zeros(100000, 0.0);
  std::vector<double> noisy = AddLaplaceNoise(zeros, 3.0, rng);
  double mean = 0.0, var = 0.0;
  for (double v : noisy) mean += v;
  mean /= noisy.size();
  for (double v : noisy) var += (v - mean) * (v - mean);
  var /= noisy.size();
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 2.0 * 9.0, 0.5);
}

TEST(LaplaceTest, InverseCdfFiniteAtClosedBoundary) {
  // Rng::Uniform() draws from [0, 1), so u = Uniform() - 0.5 can be exactly
  // -0.5; the unclamped inverse CDF takes log(1 - 2*0.5) = log(0) = -inf
  // there. The clamp must cap the boundary at the distribution's finite
  // tail while leaving interior draws untouched.
  const double scale = 3.0;
  const double boundary = LaplaceInverseCdf(-0.5, scale);
  EXPECT_TRUE(std::isfinite(boundary));
  EXPECT_LT(boundary, 0.0);
  // The cap is the quantile of the smallest representable CDF argument —
  // deeper into the tail than any interior draw can reach.
  const double interior =
      LaplaceInverseCdf(std::nextafter(-0.5, 0.0), scale);
  EXPECT_TRUE(std::isfinite(interior));
  EXPECT_LT(boundary, interior);
  // Interior values are the plain inverse CDF, bit for bit.
  for (double u : {-0.4999, -0.25, -1e-12, 0.0, 1e-12, 0.25, 0.4999}) {
    const double expected =
        u < 0 ? scale * std::log(1.0 - 2.0 * std::fabs(u))
              : -scale * std::log(1.0 - 2.0 * std::fabs(u));
    EXPECT_DOUBLE_EQ(LaplaceInverseCdf(u, scale), expected) << "u=" << u;
  }
  // Symmetry: the positive side caps at the mirrored finite value.
  EXPECT_DOUBLE_EQ(LaplaceInverseCdf(0.5, scale), -boundary);
}

TEST(LaplaceTest, NoiseIsAlwaysFinite) {
  Rng rng(12);
  std::vector<double> zeros(200000, 0.0);
  for (double v : AddLaplaceNoise(zeros, 2.0, rng)) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(LaplaceTest, RhoAccounting) {
  // scale b, L1 sensitivity 1 => (1/b)-DP => (1/b)^2/2 zCDP.
  EXPECT_DOUBLE_EQ(LaplaceRho(2.0), 0.125);
  // At matched zCDP cost, Gaussian noise has HALF the variance of Laplace
  // (sigma^2 vs 2 b^2 with b = sigma) — the Section-3.2 argument.
  double sigma = 5.0;
  EXPECT_DOUBLE_EQ(LaplaceRho(sigma), GaussianRho(sigma));
}

// ------------------------------------------------------ AIM extensions ----

const Dataset& ExtrasData() {
  static const Dataset* data = [] {
    Rng rng(777);
    Domain domain = Domain::WithSizes({2, 3, 2, 4, 2});
    return new Dataset(SampleRandomBayesNet(domain, 4000, 2, 0.3, rng));
  }();
  return *data;
}

AimOptions FastAim() {
  AimOptions o;
  o.round_estimation.max_iters = 30;
  o.final_estimation.max_iters = 100;
  return o;
}

TEST(AimExtensionsTest, GeneralizedEmVariantRunsAndRespectsBudget) {
  AimOptions options = FastAim();
  options.use_generalized_em = true;
  AimMechanism aim(options);
  Workload workload = AllKWayWorkload(ExtrasData().domain(), 3);
  Rng rng(5);
  MechanismResult result = aim.Run(ExtrasData(), workload, 0.3, rng);
  EXPECT_LE(result.rho_used, 0.3 * (1 + 1e-6));
  EXPECT_GT(result.synthetic.num_records(), 0);
  EXPECT_TRUE(std::isfinite(
      WorkloadError(ExtrasData(), result.synthetic, workload)));
}

TEST(AimExtensionsTest, LaplaceNoiseVariantRuns) {
  AimOptions options = FastAim();
  options.noise = AimOptions::Noise::kLaplace;
  AimMechanism aim(options);
  Workload workload = AllKWayWorkload(ExtrasData().domain(), 3);
  Rng rng(6);
  MechanismResult result = aim.Run(ExtrasData(), workload, 0.3, rng);
  EXPECT_LE(result.rho_used, 0.3 * (1 + 1e-6));
  double error = WorkloadError(ExtrasData(), result.synthetic, workload);
  EXPECT_TRUE(std::isfinite(error));
}

TEST(AimExtensionsTest, PublicPriorKeepsLogClean) {
  // The prior pseudo-measurements must not appear in the measurement log
  // (they are not unbiased observations of the private data).
  AimOptions plain = FastAim();
  AimOptions boosted = plain;
  Dataset public_data = ExtrasData().Subsample({0, 1, 2, 3, 4, 5, 6, 7});
  boosted.public_data = &public_data;
  Workload workload = AllKWayWorkload(ExtrasData().domain(), 3);
  Rng rng_a(7), rng_b(7);
  MechanismResult base =
      AimMechanism(plain).Run(ExtrasData(), workload, 0.1, rng_a);
  MechanismResult with_prior =
      AimMechanism(boosted).Run(ExtrasData(), workload, 0.1, rng_b);
  // Same number of real measurements per round structure: init (d 1-ways)
  // plus one per round.
  EXPECT_EQ(base.log.measurements.size(),
            static_cast<size_t>(ExtrasData().domain().num_attributes() +
                                base.rounds));
  EXPECT_EQ(with_prior.log.measurements.size(),
            static_cast<size_t>(ExtrasData().domain().num_attributes() +
                                with_prior.rounds));
}

TEST(AimExtensionsTest, PublicPriorHelpsAtTinyEpsilon) {
  // Split the data: a public half and a private half from the same
  // distribution. At very small budget, the public prior should not hurt
  // and usually helps substantially. Average over seeds for stability.
  std::vector<int64_t> pub_rows, priv_rows;
  for (int64_t row = 0; row < ExtrasData().num_records(); ++row) {
    (row % 2 == 0 ? pub_rows : priv_rows).push_back(row);
  }
  Dataset public_data = ExtrasData().Subsample(pub_rows);
  Dataset private_data = ExtrasData().Subsample(priv_rows);
  Workload workload = AllKWayWorkload(private_data.domain(), 3);
  double base_total = 0.0, boosted_total = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    AimOptions plain = FastAim();
    plain.record_candidates = false;
    AimOptions boosted = plain;
    boosted.public_data = &public_data;
    Rng rng_a(100 + seed), rng_b(100 + seed);
    base_total += WorkloadError(
        private_data,
        AimMechanism(plain).Run(private_data, workload, 0.0005, rng_a)
            .synthetic,
        workload);
    boosted_total += WorkloadError(
        private_data,
        AimMechanism(boosted).Run(private_data, workload, 0.0005, rng_b)
            .synthetic,
        workload);
  }
  EXPECT_LT(boosted_total, base_total);
}

TEST(AimExtensionsDeathTest, PublicDataDomainMismatch) {
  AimOptions options = FastAim();
  Dataset wrong(Domain::WithSizes({2, 2}));
  wrong.AppendRecord({0, 0});
  options.public_data = &wrong;
  AimMechanism aim(options);
  Workload workload = AllKWayWorkload(ExtrasData().domain(), 2);
  Rng rng(9);
  EXPECT_DEATH(aim.Run(ExtrasData(), workload, 0.1, rng), "domain");
}

// ------------------------------------------------- relaxed projection -----

TEST(RelaxedProjectionTest, UniformInitGivesNearUniformMarginals) {
  Domain domain = Domain::WithSizes({2, 3});
  RelaxedProjectionOptions options;
  options.rows = 50;
  Rng rng(10);
  RelaxedDataset relaxed(domain, options, rng);
  std::vector<double> m = relaxed.Marginal(AttrSet({1}), 300.0);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_NEAR(std::accumulate(m.begin(), m.end(), 0.0), 300.0, 1e-6);
  for (double v : m) EXPECT_NEAR(v, 100.0, 10.0);
}

TEST(RelaxedProjectionTest, FitReducesLoss) {
  Rng rng(11);
  Domain domain = Domain::WithSizes({2, 3});
  Dataset data = SampleRandomBayesNet(domain, 1000, 1, 0.3, rng);
  Measurement m{AttrSet({0, 1}), ComputeMarginal(data, AttrSet({0, 1})),
                1.0};
  RelaxedProjectionOptions options;
  options.rows = 50;
  options.iters = 200;
  RelaxedDataset relaxed(domain, options, rng);
  double before = L1Distance(relaxed.Marginal(m.attrs, 1000.0), m.values);
  relaxed.FitTo({m}, 1000.0);
  double after = L1Distance(relaxed.Marginal(m.attrs, 1000.0), m.values);
  EXPECT_LT(after, before * 0.3);
}

TEST(RelaxedProjectionTest, RoundProducesValidRecords) {
  Domain domain = Domain::WithSizes({2, 3, 4});
  RelaxedProjectionOptions options;
  options.rows = 10;
  Rng rng(12);
  RelaxedDataset relaxed(domain, options, rng);
  Dataset out = relaxed.Round(123, rng);
  EXPECT_EQ(out.num_records(), 123);
  for (int64_t row = 0; row < out.num_records(); ++row) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(out.value(row, a), 0);
      EXPECT_LT(out.value(row, a), domain.size(a));
    }
  }
}

TEST(RelaxedProjectionTest, RoundedDataMatchesFittedMarginals) {
  Rng rng(13);
  Domain domain = Domain::WithSizes({2, 2});
  // A strongly correlated target marginal.
  Measurement m{AttrSet({0, 1}), {450, 50, 50, 450}, 1.0};
  RelaxedProjectionOptions options;
  options.rows = 100;
  options.iters = 300;
  RelaxedDataset relaxed(domain, options, rng);
  relaxed.FitTo({m}, 1000.0);
  Dataset out = relaxed.Round(1000, rng);
  std::vector<double> counts = ComputeMarginal(out, AttrSet({0, 1}));
  EXPECT_LT(L1Distance(counts, m.values), 250.0);
}

// --------------------------------------------------- pgm edge cases -------

TEST(PgmExtrasTest, DisconnectedComponentsAreIndependent) {
  Rng rng(14);
  Domain domain = Domain::WithSizes({2, 2, 3, 3});
  MarkovRandomField model(domain, {AttrSet({0, 1}), AttrSet({2, 3})});
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor p = model.potential(c);
    for (double& v : p.mutable_values()) v = rng.Gaussian();
    model.SetPotential(c, std::move(p));
  }
  model.set_total(1.0);
  model.Calibrate();
  // Marginal spanning both components equals the product of the parts.
  std::vector<double> joint = model.MarginalVector(AttrSet({0, 2}));
  std::vector<double> m0 = model.MarginalVector(AttrSet({0}));
  std::vector<double> m2 = model.MarginalVector(AttrSet({2}));
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(joint[i * 3 + j], m0[i] * m2[j], 1e-9);
    }
  }
}

TEST(PgmExtrasTest, RemeasuredMarginalFitsPrecisionWeightedCombination) {
  // Two measurements of the same marginal with different noise levels: the
  // fit should match the precision-weighted average, not either one.
  Domain domain = Domain::WithSizes({2});
  Measurement precise{AttrSet({0}), {80.0, 20.0}, 1.0};
  Measurement noisy{AttrSet({0}), {50.0, 50.0}, 100.0};
  EstimationOptions options;
  options.max_iters = 2000;
  MarkovRandomField model =
      EstimateMrf(domain, {precise, noisy}, 100.0, options);
  std::vector<double> mu = model.MarginalVector(AttrSet({0}));
  // Weighted by 1/sigma (the estimation objective's weights): heavily
  // toward the precise measurement.
  EXPECT_NEAR(mu[0], 80.0, 3.0);
}

TEST(PgmExtrasTest, RandomCliqueSetsSatisfyJunctionTreeInvariants) {
  // Property sweep: random clique structures must always produce trees
  // covering all attributes with the running-intersection property.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(3000 + seed);
    const int d = 3 + static_cast<int>(rng.UniformInt(8));
    std::vector<int> sizes(d);
    for (int& s : sizes) s = 2 + static_cast<int>(rng.UniformInt(4));
    Domain domain = Domain::WithSizes(sizes);
    std::vector<AttrSet> cliques;
    const int num_cliques = 1 + static_cast<int>(rng.UniformInt(6));
    for (int c = 0; c < num_cliques; ++c) {
      std::vector<int> attrs;
      int width = 1 + static_cast<int>(rng.UniformInt(3));
      for (int j = 0; j < width; ++j) {
        attrs.push_back(static_cast<int>(rng.UniformInt(d)));
      }
      cliques.push_back(AttrSet(attrs));
    }
    JunctionTree tree = BuildJunctionTree(domain, cliques);
    // Coverage.
    std::set<int> covered;
    for (const AttrSet& c : tree.cliques) {
      for (int attr : c) covered.insert(attr);
    }
    EXPECT_EQ(static_cast<int>(covered.size()), d);
    // Tree shape.
    EXPECT_EQ(tree.edges.size(), tree.cliques.size() - 1);
    // Every input clique is inside some tree clique.
    for (const AttrSet& c : cliques) {
      EXPECT_GE(tree.ContainingClique(c), 0);
    }
    // Running-intersection property via edge separators: for each
    // attribute, the set of cliques containing it forms a connected
    // subtree. Verify by union-find over edges whose separator contains
    // the attribute.
    for (int attr = 0; attr < d; ++attr) {
      std::vector<int> parent(tree.cliques.size());
      std::iota(parent.begin(), parent.end(), 0);
      std::function<int(int)> find = [&](int x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
      for (const auto& edge : tree.edges) {
        if (edge.separator.Contains(attr)) {
          parent[find(edge.a)] = find(edge.b);
        }
      }
      int root = -1;
      for (size_t c = 0; c < tree.cliques.size(); ++c) {
        if (!tree.cliques[c].Contains(attr)) continue;
        if (root == -1) {
          root = find(static_cast<int>(c));
        } else {
          EXPECT_EQ(find(static_cast<int>(c)), root)
              << "attribute " << attr << " induces a disconnected subtree";
        }
      }
    }
  }
}

TEST(PgmExtrasTest, SyntheticGenerationMatchesRequestedCountNotTotal) {
  Domain domain = Domain::WithSizes({3, 3});
  MarkovRandomField model(domain, {AttrSet({0, 1})});
  model.set_total(5000.0);  // model scale differs from requested count
  model.Calibrate();
  Rng rng(15);
  Dataset out = GenerateSyntheticData(model, 250, rng);
  EXPECT_EQ(out.num_records(), 250);
}

}  // namespace
}  // namespace aim
