#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "marginal/marginal.h"
#include "mechanisms/aim.h"
#include "mechanisms/gaussian_baseline.h"
#include "mechanisms/independent.h"
#include "mechanisms/mst.h"
#include "mechanisms/mwem_pgm.h"
#include "mechanisms/privbayes_pgm.h"
#include "mechanisms/registry.h"
#include "obs/trace.h"
#include "pgm/estimation.h"
#include "pgm/junction_tree.h"
#include "util/rng.h"

namespace aim {
namespace {

// Small but genuinely correlated test dataset.
const Dataset& TestData() {
  static const Dataset* data = [] {
    Rng rng(12345);
    Domain domain = Domain::WithSizes({2, 3, 4, 2, 3, 2});
    return new Dataset(SampleRandomBayesNet(domain, 3000, 2, 0.3, rng));
  }();
  return *data;
}

Workload TestWorkload() { return AllKWayWorkload(TestData().domain(), 3); }

// Fast options for tests.
RegistryOptions FastOptions() {
  RegistryOptions o;
  o.round_iters = 30;
  o.final_iters = 100;
  o.rp_rows = 40;
  o.rp_iters = 30;
  o.mwem_rounds = 6;
  return o;
}

// A "blind" reference error: uniform synthetic data of the same size.
double UniformError() {
  static const double error = [] {
    Rng rng(1);
    const Dataset& data = TestData();
    Dataset uniform(data.domain());
    std::vector<int> record(data.domain().num_attributes());
    for (int64_t i = 0; i < data.num_records(); ++i) {
      for (int a = 0; a < data.domain().num_attributes(); ++a) {
        record[a] = static_cast<int>(rng.UniformInt(data.domain().size(a)));
      }
      uniform.AppendRecord(record);
    }
    return WorkloadError(TestData(), uniform, TestWorkload());
  }();
  return error;
}

// ------------------------------------------- all mechanisms, one sweep ----

class AllMechanismsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllMechanismsTest, RespectsBudgetAndProducesOutput) {
  auto mechanism = MechanismByName(GetParam(), FastOptions());
  ASSERT_NE(mechanism, nullptr);
  EXPECT_EQ(mechanism->name(), GetParam());
  const double rho = CdpRho(1.0, 1e-9);
  Rng rng(7);
  MechanismResult result =
      mechanism->Run(TestData(), TestWorkload(), rho, rng);

  EXPECT_LE(result.rho_used, rho * (1.0 + 1e-6));
  EXPECT_GT(result.rho_used, 0.0);
  EXPECT_FALSE(result.log.measurements.empty() &&
               result.query_answers.empty());
  if (result.has_synthetic) {
    EXPECT_GT(result.synthetic.num_records(), 0);
    EXPECT_EQ(result.synthetic.domain().num_attributes(),
              TestData().domain().num_attributes());
  } else {
    EXPECT_EQ(static_cast<int>(result.query_answers.size()),
              TestWorkload().num_queries());
  }
  double error = WorkloadError(TestData(), result, TestWorkload());
  EXPECT_TRUE(std::isfinite(error));
  EXPECT_GE(error, 0.0);
}

TEST_P(AllMechanismsTest, DeterministicGivenSeed) {
  auto mechanism = MechanismByName(GetParam(), FastOptions());
  const double rho = 0.05;
  Rng rng_a(99), rng_b(99);
  MechanismResult a = mechanism->Run(TestData(), TestWorkload(), rho, rng_a);
  MechanismResult b = mechanism->Run(TestData(), TestWorkload(), rho, rng_b);
  EXPECT_DOUBLE_EQ(WorkloadError(TestData(), a, TestWorkload()),
                   WorkloadError(TestData(), b, TestWorkload()));
}

TEST_P(AllMechanismsTest, LearnsSomethingAtHighBudget) {
  auto mechanism = MechanismByName(GetParam(), FastOptions());
  const double rho = CdpRho(10.0, 1e-9);
  Rng rng(21);
  MechanismResult result =
      mechanism->Run(TestData(), TestWorkload(), rho, rng);
  double error = WorkloadError(TestData(), result, TestWorkload());
  // Everything (even Independent, since the data has strong 1-way skew)
  // must beat blind uniform data at eps = 10.
  EXPECT_LT(error, UniformError())
      << GetParam() << " is worse than uniform synthetic data";
}

INSTANTIATE_TEST_SUITE_P(Roster, AllMechanismsTest,
                         ::testing::ValuesIn(StandardMechanismNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(RegistryTest, UnknownNameIsNull) {
  EXPECT_EQ(MechanismByName("NoSuchMechanism"), nullptr);
}

TEST(RegistryTest, StandardRosterMatchesNames) {
  auto mechanisms = StandardMechanisms(FastOptions());
  auto names = StandardMechanismNames();
  ASSERT_EQ(mechanisms.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(mechanisms[i]->name(), names[i]);
  }
}

TEST(RegistryTest, Table1TaxonomyRows) {
  // AIM is the only mechanism with all four checkmarks (Table 1).
  auto mechanisms = StandardMechanisms(FastOptions());
  int full_rows = 0;
  for (const auto& m : mechanisms) {
    MechanismTraits t = m->traits();
    if (t.workload_aware && t.data_aware && t.budget_aware &&
        t.efficiency_aware) {
      ++full_rows;
      EXPECT_EQ(m->name(), "AIM");
    }
  }
  EXPECT_EQ(full_rows, 1);
}

// ------------------------------------------------------------- AIM --------

AimOptions FastAim() {
  AimOptions o;
  o.round_estimation.max_iters = 30;
  o.final_estimation.max_iters = 100;
  return o;
}

TEST(AimTest, ConsumesEntireBudget) {
  AimMechanism aim(FastAim());
  const double rho = 0.2;
  Rng rng(3);
  MechanismResult result = aim.Run(TestData(), TestWorkload(), rho, rng);
  // The privacy filter + final-round exhaustion should land exactly on rho.
  EXPECT_NEAR(result.rho_used, rho, 1e-9 * rho + 1e-12);
  EXPECT_GE(result.rounds, 1);
}

TEST(AimTest, InitializationMeasuresAllOneWays) {
  AimMechanism aim(FastAim());
  Rng rng(4);
  MechanismResult result = aim.Run(TestData(), TestWorkload(), 0.1, rng);
  const int d = TestData().domain().num_attributes();
  std::set<AttrSet> one_ways;
  for (const Measurement& m : result.log.measurements) {
    if (m.attrs.size() == 1) one_ways.insert(m.attrs);
  }
  EXPECT_EQ(static_cast<int>(one_ways.size()), d);
}

TEST(AimTest, ModelCapacityRespected) {
  AimOptions options = FastAim();
  options.max_size_mb = 0.01;  // very tight
  AimMechanism aim(options);
  Rng rng(5);
  MechanismResult result = aim.Run(TestData(), TestWorkload(), 0.5, rng);
  std::vector<AttrSet> cliques;
  for (const Measurement& m : result.log.measurements) {
    cliques.push_back(m.attrs);
  }
  // The realized model must stay within the cap (candidates are filtered
  // by the partial-budget allowance, which is <= the full cap).
  EXPECT_LE(JtSizeMb(TestData().domain(), cliques),
            options.max_size_mb * (1.0 + 1e-9));
}

TEST(AimTest, MoreBudgetMoreRounds) {
  AimMechanism aim(FastAim());
  Rng rng_lo(6), rng_hi(6);
  MechanismResult lo = aim.Run(TestData(), TestWorkload(),
                               CdpRho(0.1, 1e-9), rng_lo);
  MechanismResult hi = aim.Run(TestData(), TestWorkload(),
                               CdpRho(10.0, 1e-9), rng_hi);
  EXPECT_GT(hi.rounds, lo.rounds);
}

TEST(AimTest, ErrorDecreasesWithBudget) {
  AimMechanism aim(FastAim());
  double lo_error = 0.0, hi_error = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng_lo(100 + seed), rng_hi(200 + seed);
    lo_error += WorkloadError(
        TestData(),
        aim.Run(TestData(), TestWorkload(), CdpRho(0.1, 1e-9), rng_lo),
        TestWorkload());
    hi_error += WorkloadError(
        TestData(),
        aim.Run(TestData(), TestWorkload(), CdpRho(10.0, 1e-9), rng_hi),
        TestWorkload());
  }
  EXPECT_LT(hi_error, lo_error);
}

TEST(AimTest, BeatsIndependentOnCorrelatedData) {
  AimMechanism aim(FastAim());
  IndependentMechanism independent;
  const double rho = CdpRho(10.0, 1e-9);
  double aim_error = 0.0, ind_error = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng_a(300 + seed), rng_i(400 + seed);
    aim_error += WorkloadError(
        TestData(), aim.Run(TestData(), TestWorkload(), rho, rng_a),
        TestWorkload());
    ind_error += WorkloadError(
        TestData(), independent.Run(TestData(), TestWorkload(), rho, rng_i),
        TestWorkload());
  }
  EXPECT_LT(aim_error, ind_error);
}

TEST(AimTest, RecordsRoundsAndCandidates) {
  AimMechanism aim(FastAim());
  Rng rng(8);
  MechanismResult result = aim.Run(TestData(), TestWorkload(), 0.5, rng);
  ASSERT_FALSE(result.log.rounds.empty());
  for (const RoundInfo& info : result.log.rounds) {
    EXPECT_GT(info.sigma, 0.0);
    EXPECT_GT(info.epsilon, 0.0);
    EXPECT_FALSE(info.candidates.empty());
    // The selected marginal must be among the candidates.
    bool found = false;
    for (const auto& c : info.candidates) {
      if (c.attrs == info.selected) found = true;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_TRUE(result.final_model.has_value());
  EXPECT_TRUE(result.penultimate_model.has_value());
}

TEST(AimTest, StructuralZerosRespectedInSyntheticData) {
  // Forbid (0, 0) on attributes {0, 3}.
  AimOptions options = FastAim();
  ZeroConstraint zero;
  zero.attrs = AttrSet({0, 3});
  zero.zero_cells = {0};
  options.structural_zeros = {zero};
  // Rebuild data without (0,0) occurrences on {0,3}.
  Dataset data(TestData().domain());
  for (int64_t row = 0; row < TestData().num_records(); ++row) {
    std::vector<int> record = TestData().Record(row);
    if (record[0] == 0 && record[3] == 0) record[3] = 1;
    data.AppendRecord(record);
  }
  AimMechanism aim(options);
  Rng rng(9);
  MechanismResult result = aim.Run(data, TestWorkload(), 0.5, rng);
  std::vector<double> marginal =
      ComputeMarginal(result.synthetic, AttrSet({0, 3}));
  EXPECT_DOUBLE_EQ(marginal[0], 0.0);
}

TEST(AimTest, SyntheticRecordCountOverride) {
  AimOptions options = FastAim();
  options.synthetic_records = 123;
  AimMechanism aim(options);
  Rng rng(10);
  MechanismResult result = aim.Run(TestData(), TestWorkload(), 0.1, rng);
  EXPECT_EQ(result.synthetic.num_records(), 123);
}

// Algorithm 1 keeps the total estimate in sync with the full measurement
// log: every refit re-runs the inverse-variance EstimateTotal over all
// released measurements. A regression here (e.g. freezing the estimate at
// its initialization-time value) silently ignores later, lower-noise
// measurements. Must hold under both ablation settings.
TEST(AimTest, TotalReestimatedFromAllMeasurements) {
  for (bool use_init : {true, false}) {
    AimOptions options = FastAim();
    options.use_initialization = use_init;
    AimMechanism aim(options);
    Rng rng(11);
    MechanismResult result = aim.Run(TestData(), TestWorkload(), 0.3, rng);
    ASSERT_FALSE(result.log.measurements.empty());
    const double expected = EstimateTotal(result.log.measurements);
    EXPECT_NEAR(result.total_estimate, expected,
                1e-9 * std::abs(expected) + 1e-12)
        << "use_initialization=" << use_init;
  }
}

// ------------------------------------- JT-SIZE candidate filter ----------

TEST(SizeCapFilterTest, AdmitsCandidatesWithinAllowance) {
  SizeCapFallback fallback;
  std::vector<int> ids = FilterCandidatesByJtSize(
      {0.5, 3.0, 1.0, 2.5}, /*size_cap=*/1.5, /*max_size_mb=*/4.0, &fallback);
  EXPECT_EQ(fallback, SizeCapFallback::kNone);
  EXPECT_EQ(ids, (std::vector<int>{0, 2}));
}

TEST(SizeCapFilterTest, EmptyAllowanceFallsBackToMaxSize) {
  // Nothing fits the round allowance (0.1), but two candidates fit the full
  // MAX-SIZE budget; both must be admitted so the exponential mechanism
  // still has a real choice, and the clamp is against max_size_mb — not
  // a single global argmin.
  SizeCapFallback fallback;
  std::vector<int> ids = FilterCandidatesByJtSize(
      {2.0, 8.0, 3.0}, /*size_cap=*/0.1, /*max_size_mb=*/4.0, &fallback);
  EXPECT_EQ(fallback, SizeCapFallback::kRelaxedToMaxSize);
  EXPECT_EQ(ids, (std::vector<int>{0, 2}));
}

TEST(SizeCapFilterTest, NothingFitsMaxSizeAdmitsSmallest) {
  SizeCapFallback fallback;
  std::vector<int> ids = FilterCandidatesByJtSize(
      {9.0, 6.0, 7.0}, /*size_cap=*/0.1, /*max_size_mb=*/4.0, &fallback);
  EXPECT_EQ(fallback, SizeCapFallback::kViolatesMaxSize);
  EXPECT_EQ(ids, (std::vector<int>{1}));
}

TEST(SizeCapFilterTest, FallbackEmitsTraceWarning) {
  // Drive AIM with a cap so tight the mandatory 1-way cliques exceed it:
  // every round must report a fallback through the trace stream.
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  AimOptions options = FastAim();
  options.max_size_mb = 1e-6;
  AimMechanism aim(options);
  Rng rng(12);
  MechanismResult result = aim.Run(TestData(), TestWorkload(), 0.1, rng);
  ASSERT_GE(result.rounds, 1);
  auto warnings = sink.events_of_type("aim_warning");
  ASSERT_FALSE(warnings.empty());
  for (const TraceEvent& w : warnings) {
    EXPECT_EQ(w.GetString("kind"), "size_cap_fallback");
    EXPECT_GT(w.GetInt("admitted"), 0);
  }
}

TEST(AimMaxRoundsTest, MatchesFormulaAndClamps) {
  EXPECT_EQ(AimMaxRounds(5.0), 60);
  EXPECT_EQ(AimMaxRounds(96.0), 970);  // 16 rounds/attr * 6 attrs
  EXPECT_EQ(AimMaxRounds(0.0), 10);
  EXPECT_EQ(AimMaxRounds(-3.0), 10);
  // Values that overflowed the old `10 * int(T) + 10` expression clamp to
  // the 1e9 ceiling instead of going negative or UB.
  EXPECT_EQ(AimMaxRounds(3e8), 1000000000);
  EXPECT_EQ(AimMaxRounds(1e18), 1000000000);
  EXPECT_EQ(AimMaxRounds(std::numeric_limits<double>::infinity()),
            1000000000);
}

// Ablations: each switch must still produce a working mechanism.
struct AblationCase {
  const char* name;
  AimOptions options;
};

class AimAblationTest : public ::testing::TestWithParam<int> {};

TEST_P(AimAblationTest, RunsAndRespectsBudget) {
  AimOptions options = FastAim();
  switch (GetParam()) {
    case 0:
      options.use_downward_closure = false;
      break;
    case 1:
      options.use_workload_weights = false;
      break;
    case 2:
      options.use_noise_penalty = false;
      break;
    case 3:
      options.use_annealing = false;
      break;
    case 4:
      options.use_initialization = false;
      break;
  }
  AimMechanism aim(options);
  Rng rng(60 + GetParam());
  const double rho = 0.3;
  MechanismResult result = aim.Run(TestData(), TestWorkload(), rho, rng);
  EXPECT_LE(result.rho_used, rho * (1.0 + 1e-6));
  EXPECT_GT(result.synthetic.num_records(), 0);
  EXPECT_TRUE(std::isfinite(
      WorkloadError(TestData(), result, TestWorkload())));
}

INSTANTIATE_TEST_SUITE_P(Switches, AimAblationTest, ::testing::Range(0, 5));

// -------------------------------------------------------- MWEM+PGM --------

TEST(MwemPgmTest, RunsRequestedRounds) {
  MwemPgmOptions options;
  options.rounds = 4;
  options.round_estimation.max_iters = 30;
  options.final_estimation.max_iters = 50;
  MwemPgmMechanism mwem(options);
  Rng rng(11);
  MechanismResult result = mwem.Run(TestData(), TestWorkload(), 0.5, rng);
  EXPECT_EQ(result.rounds, 4);
  EXPECT_EQ(result.log.measurements.size(), 4u);
  EXPECT_NEAR(result.rho_used, 0.5, 1e-9);
}

TEST(MwemPgmTest, SelectsOnlyWorkloadQueries) {
  MwemPgmOptions options;
  options.rounds = 5;
  options.round_estimation.max_iters = 20;
  options.final_estimation.max_iters = 20;
  MwemPgmMechanism mwem(options);
  Rng rng(12);
  Workload workload = TestWorkload();
  MechanismResult result = mwem.Run(TestData(), workload, 0.5, rng);
  std::set<AttrSet> allowed;
  for (const auto& q : workload.queries()) allowed.insert(q.attrs);
  for (const Measurement& m : result.log.measurements) {
    EXPECT_TRUE(allowed.count(m.attrs)) << m.attrs.ToString();
  }
}

// ------------------------------------------------------------- MST --------

TEST(MstTest, MeasuresSpanningTree) {
  MstOptions options;
  options.estimation.max_iters = 50;
  MstMechanism mst(options);
  Rng rng(13);
  MechanismResult result = mst.Run(TestData(), TestWorkload(), 0.5, rng);
  const int d = TestData().domain().num_attributes();
  int pairs = 0;
  std::vector<int> component(d);
  std::iota(component.begin(), component.end(), 0);
  for (const Measurement& m : result.log.measurements) {
    if (m.attrs.size() == 2) {
      ++pairs;
      int a = m.attrs[0], b = m.attrs[1];
      int from = component[b], to = component[a];
      EXPECT_NE(from, to) << "selected pairs contain a cycle";
      for (int v = 0; v < d; ++v) {
        if (component[v] == from) component[v] = to;
      }
    }
  }
  EXPECT_EQ(pairs, d - 1);
  // All vertices connected.
  for (int v = 1; v < d; ++v) EXPECT_EQ(component[v], component[0]);
}

// -------------------------------------------------------- PrivBayes -------

TEST(PrivBayesTest, MeasuresOneCliquePerAttribute) {
  PrivBayesOptions options;
  options.estimation.max_iters = 50;
  PrivBayesPgmMechanism privbayes(options);
  Rng rng(14);
  MechanismResult result =
      privbayes.Run(TestData(), TestWorkload(), 0.5, rng);
  const int d = TestData().domain().num_attributes();
  EXPECT_EQ(static_cast<int>(result.log.measurements.size()), d);
  // Every attribute appears in at least one measured clique.
  std::set<int> covered;
  for (const Measurement& m : result.log.measurements) {
    for (int attr : m.attrs) covered.insert(attr);
  }
  EXPECT_EQ(static_cast<int>(covered.size()), d);
}

// --------------------------------------------------------- Gaussian -------

TEST(GaussianBaselineTest, AnswersAllQueriesWithCorrectShapes) {
  GaussianBaselineMechanism gaussian;
  Rng rng(15);
  Workload workload = TestWorkload();
  MechanismResult result = gaussian.Run(TestData(), workload, 0.5, rng);
  EXPECT_FALSE(result.has_synthetic);
  ASSERT_EQ(static_cast<int>(result.query_answers.size()),
            workload.num_queries());
  for (int i = 0; i < workload.num_queries(); ++i) {
    EXPECT_EQ(static_cast<int64_t>(result.query_answers[i].size()),
              MarginalSize(TestData().domain(), workload.query(i).attrs));
  }
  EXPECT_NEAR(result.rho_used, 0.5, 1e-9);
}

TEST(GaussianBaselineTest, LargerMarginalsGetMoreNoise) {
  // PrivSyn allocation: sigma_i increases with n_i... inversely — check
  // the realized sigmas are ordered opposite to n^(1/3).
  GaussianBaselineMechanism gaussian;
  Rng rng(16);
  Workload workload;
  workload.Add(AttrSet({0, 1}));        // small
  workload.Add(AttrSet({1, 2, 4}));     // larger
  MechanismResult result = gaussian.Run(TestData(), workload, 0.5, rng);
  double sigma_small = result.log.measurements[0].sigma;
  double sigma_large = result.log.measurements[1].sigma;
  EXPECT_GT(sigma_small, sigma_large);
}

}  // namespace
}  // namespace aim
